"""Installable package definition: ``pip install -e .`` gives you the
``repro`` package (no PYTHONPATH juggling) and the ``repro`` /
``repro-experiments`` console scripts."""

from setuptools import find_packages, setup

setup(
    name="repro-polystyrene",
    version="1.0.0",
    description=(
        "Reproduction of 'Polystyrene: the Decentralized Data Shape That "
        "Never Dies' (Bouget, Kermarrec, Kervadec, Taiani - ICDCS 2014) "
        "with a parallel experiment runtime"
    ),
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    # The claims gate's recorded expectations ship with the package.
    package_data={"repro.eval": ["expected.json"]},
    include_package_data=True,
    python_requires=">=3.9",
    install_requires=[
        "numpy",
    ],
    extras_require={
        # Optional compiled kernel backend for the batch engine
        # (REPRO_KERNEL_BACKEND=numba); absent numba silently falls
        # back to the pure-NumPy kernels with byte-identical results.
        "compiled": [
            "numba",
        ],
        "dev": [
            "pytest",
            "pytest-benchmark",
            "pytest-cov",
            "hypothesis",
            "scipy",
            "ruff",
        ],
    },
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
            "repro-experiments=repro.cli:main",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "License :: OSI Approved :: MIT License",
        "Topic :: System :: Distributed Computing",
    ],
)
