"""Tests for the statistics helpers."""

import math

import pytest

from repro.analysis.stats import (
    MeanCI,
    aggregate_series,
    aggregate_series_ci,
    mean_ci,
    summarize,
)


class TestMeanCI:
    def test_single_value(self):
        ci = mean_ci([4.0])
        assert ci.mean == 4.0
        assert ci.half_width == 0.0
        assert ci.n == 1

    def test_constant_sample_zero_width(self):
        ci = mean_ci([2.0, 2.0, 2.0])
        assert ci.mean == 2.0
        assert ci.half_width == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_ci([])

    def test_known_t_interval(self):
        # n=4, sd=1: t(0.975, 3) = 3.1824, half = 3.1824/2 = 1.5912
        values = [-1.0, 0.0, 1.0, 0.0]
        ci = mean_ci(values)
        sd = (sum(v * v for v in values) / 3) ** 0.5
        assert ci.mean == pytest.approx(0.0)
        assert ci.half_width == pytest.approx(3.1824 * sd / 2, rel=1e-3)

    def test_bounds(self):
        ci = MeanCI(5.0, 1.5, 10)
        assert ci.low == 3.5
        assert ci.high == 6.5

    def test_str_format(self):
        assert "±" in str(mean_ci([1.0, 2.0]))

    def test_ci_shrinks_with_n(self):
        wide = mean_ci([0.0, 1.0])
        narrow = mean_ci([0.0, 1.0] * 20)
        assert narrow.half_width < wide.half_width


class TestAggregateSeries:
    def test_roundwise_mean(self):
        runs = [[1.0, 2.0], [3.0, 4.0]]
        assert aggregate_series(runs) == [2.0, 3.0]

    def test_truncates_to_shortest(self):
        runs = [[1.0, 2.0, 3.0], [1.0, 2.0]]
        assert len(aggregate_series(runs)) == 2

    def test_empty(self):
        assert aggregate_series([]) == []

    def test_ci_version(self):
        out = aggregate_series_ci([[1.0, 2.0], [3.0, 2.0]])
        assert len(out) == 2
        assert out[0].mean == pytest.approx(2.0)
        assert out[1].half_width == 0.0


class TestSummarize:
    def test_fields(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0
        assert summary["mean"] == pytest.approx(2.0)
        assert summary["n"] == 3

    def test_single(self):
        assert summarize([5.0])["std"] == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])
