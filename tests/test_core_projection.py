"""Tests for the projection step."""

import pytest

from repro.core.projection import (
    make_projection,
    project_centroid,
    project_medoid,
)
from repro.core.state import PolystyreneState
from repro.errors import ConfigurationError
from repro.spaces import Euclidean, FlatTorus
from repro.types import DataPoint

PLANE = Euclidean(2)
TORUS = FlatTorus(16.0, 16.0)


def state_with(coords):
    return PolystyreneState(
        [DataPoint(i, tuple(c)) for i, c in enumerate(coords)]
    )


class TestMedoidProjection:
    def test_single_guest_is_position(self):
        state = state_with([(3.0, 4.0)])
        assert project_medoid(PLANE, state, (0.0, 0.0)) == (3.0, 4.0)

    def test_empty_guests_keep_current(self):
        state = PolystyreneState()
        assert project_medoid(PLANE, state, (9.0, 9.0)) == (9.0, 9.0)

    def test_medoid_is_a_guest(self):
        coords = [(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]
        state = state_with(coords)
        assert project_medoid(PLANE, state, (0.0, 0.0)) in coords

    def test_works_across_torus_seam(self):
        # Guests straddle the seam; centroid arithmetic would say 8.0
        # (the opposite side), the medoid stays on the cluster.
        state = state_with([(15.0, 0.0), (0.0, 0.0), (1.0, 0.0)])
        pos = project_medoid(TORUS, state, (0.0, 0.0))
        assert pos == (0.0, 0.0)


class TestCentroidProjection:
    def test_mean_position(self):
        state = state_with([(0.0, 0.0), (2.0, 2.0)])
        assert project_centroid(PLANE, state, (0.0, 0.0)) == pytest.approx(
            (1.0, 1.0)
        )

    def test_empty_guests_keep_current(self):
        state = PolystyreneState()
        assert project_centroid(PLANE, state, (5.0, 5.0)) == (5.0, 5.0)

    def test_rejected_outside_euclidean(self):
        state = state_with([(0.0, 0.0)])
        with pytest.raises(ConfigurationError):
            project_centroid(TORUS, state, (0.0, 0.0))


class TestFactory:
    def test_lookup(self):
        assert make_projection("medoid") is project_medoid
        assert make_projection("centroid") is project_centroid

    def test_unknown(self):
        with pytest.raises(ConfigurationError):
            make_projection("nope")
