"""Tests for reinjection events and observers."""

from repro.sim.observers import (
    AliveCountObserver,
    CallbackObserver,
    PositionSnapshotter,
)
from repro.sim.reinjection import reinjection, spawn_fresh_nodes

from .helpers import grid_coords, make_sim


class TestReinjection:
    def test_event_adds_nodes(self, torus):
        sim, _, _ = make_sim(torus, grid_coords(2, 2))
        sim.schedule(1, reinjection([(0.5, 0.5), (1.5, 1.5)]))
        sim.run(2)
        assert sim.network.n_total == 6
        assert sim.network.n_alive == 6

    def test_fresh_nodes_have_positions_but_no_points(self, torus):
        sim, _, _ = make_sim(torus, grid_coords(2, 2))
        nodes = spawn_fresh_nodes(sim, [(0.25, 0.25)])
        assert nodes[0].pos == (0.25, 0.25)
        assert nodes[0].initial_point is None

    def test_positions_frozen_at_schedule_time(self, torus):
        sim, _, _ = make_sim(torus, grid_coords(2, 2))
        positions = [(0.5, 0.5)]
        event = reinjection(positions)
        positions.append((9.0, 9.0))  # mutating the list must not leak
        event(sim)
        assert sim.network.n_total == 5


class TestObservers:
    def test_callback_observer(self, torus):
        sim, _, _ = make_sim(torus, grid_coords(2, 2))
        calls = []
        sim.observers.append(CallbackObserver(lambda s: calls.append(s.round)))
        sim.run(3)
        assert calls == [0, 1, 2]

    def test_snapshotter_records_requested_rounds(self, torus):
        sim, _, _ = make_sim(torus, grid_coords(2, 2))
        snap = PositionSnapshotter([0, 2])
        sim.observers.append(snap)
        sim.run(4)
        assert sorted(snap.snapshots) == [0, 2]
        assert len(snap.snapshots[0]) == 4

    def test_snapshotter_sees_post_failure_population(self, torus):
        sim, _, _ = make_sim(torus, grid_coords(2, 2))
        snap = PositionSnapshotter([1])
        sim.observers.append(snap)
        sim.schedule(1, lambda s: s.network.fail([0], s.round))
        sim.run(2)
        assert len(snap.snapshots[1]) == 3

    def test_alive_count_observer(self, torus):
        sim, _, _ = make_sim(torus, grid_coords(2, 2))
        obs = AliveCountObserver()
        sim.observers.append(obs)
        sim.schedule(1, lambda s: s.network.fail([0, 1], s.round))
        sim.run(3)
        assert obs.counts == [4, 2, 2]
