"""Tests for deterministic RNG management."""

from repro.sim.rng import derive_seed, sample_without, spawn


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "layer", "tman") == derive_seed(42, "layer", "tman")

    def test_keys_matter(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_base_seed_matters(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_non_negative(self):
        assert derive_seed(0) >= 0
        assert derive_seed(10**18, "x", 3) >= 0


class TestSpawn:
    def test_independent_streams(self):
        a = spawn(0, "a")
        b = spawn(0, "b")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_reproducible(self):
        assert spawn(3, "x").random() == spawn(3, "x").random()


class TestSampleWithout:
    def test_respects_exclusion(self):
        rng = spawn(0, "t")
        out = sample_without(rng, list(range(10)), 5, exclude=[0, 1, 2, 3, 4])
        assert set(out) <= {5, 6, 7, 8, 9}
        assert len(out) == 5

    def test_shrinks_when_small(self):
        rng = spawn(0, "t")
        out = sample_without(rng, [1, 2], 10)
        assert sorted(out) == [1, 2]

    def test_zero_k(self):
        rng = spawn(0, "t")
        assert sample_without(rng, [1, 2, 3], 0) == []

    def test_all_excluded(self):
        rng = spawn(0, "t")
        assert sample_without(rng, [1, 2], 5, exclude=[1, 2]) == []

    def test_no_duplicates(self):
        rng = spawn(1, "t")
        out = sample_without(rng, list(range(20)), 10)
        assert len(set(out)) == 10
