"""The shipped examples must at least be valid, importable programs.

(Running them end-to-end takes minutes; the fast quickstart is executed
for real, the rest are compile-checked.)
"""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {path.name for path in ALL_EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3  # the deliverable floor; we ship more


@pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
def test_example_has_module_docstring(path):
    source = path.read_text()
    assert source.lstrip().startswith(('"""', "#!"))
    assert '"""' in source


def test_quickstart_runs():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    assert "reshaping time:" in result.stdout
