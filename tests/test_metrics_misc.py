"""Tests for proximity, reshaping, storage and message metrics."""

import math

import pytest

from repro.core.state import PolystyreneState
from repro.metrics.messages import layer_share, per_node_cost, per_node_series
from repro.metrics.proximity import node_proximity, proximity
from repro.metrics.reshaping import reference_homogeneity, reshaping_time
from repro.metrics.storage import average_storage, node_storage, total_unique_points
from repro.sim.engine import Simulation
from repro.sim.network import Network, SimNode
from repro.spaces import FlatTorus
from repro.types import DataPoint

from .helpers import NullLayer

TORUS = FlatTorus(8.0, 4.0)


def sim_with_views(view_map, positions):
    network = Network()
    for nid in sorted(positions):
        network.add_node(positions[nid])
    for nid, view in view_map.items():
        network.node(nid).tman_view = {
            peer: positions[peer] for peer in view
        }
    return Simulation(TORUS, network, [NullLayer()], seed=0)


class TestProximity:
    def test_mean_of_k_closest(self):
        positions = {0: (0.0, 0.0), 1: (1.0, 0.0), 2: (2.0, 0.0), 3: (3.0, 0.0)}
        sim = sim_with_views({0: [1, 2, 3]}, positions)
        node = sim.network.node(0)
        assert node_proximity(TORUS, sim, node, k=2) == pytest.approx(1.5)

    def test_uses_true_positions_not_view(self):
        positions = {0: (0.0, 0.0), 1: (1.0, 0.0)}
        sim = sim_with_views({0: [1]}, positions)
        sim.network.node(1).pos = (4.0, 0.0)  # moved since last gossip
        node = sim.network.node(0)
        assert node_proximity(TORUS, sim, node, k=1) == pytest.approx(4.0)

    def test_dead_neighbours_ignored(self):
        positions = {0: (0.0, 0.0), 1: (1.0, 0.0), 2: (2.0, 0.0)}
        sim = sim_with_views({0: [1, 2]}, positions)
        sim.network.fail([1], rnd=0)
        node = sim.network.node(0)
        assert node_proximity(TORUS, sim, node, k=1) == pytest.approx(2.0)

    def test_no_view_is_nan(self):
        positions = {0: (0.0, 0.0)}
        sim = sim_with_views({}, positions)
        node = sim.network.node(0)
        node.tman_view = {}
        assert math.isnan(node_proximity(TORUS, sim, node))

    def test_network_mean(self):
        positions = {0: (0.0, 0.0), 1: (1.0, 0.0)}
        sim = sim_with_views({0: [1], 1: [0]}, positions)
        assert proximity(TORUS, sim, k=1) == pytest.approx(1.0)


class TestReshaping:
    def test_reference_homogeneity_paper_values(self):
        assert reference_homogeneity(3200, 3200) == pytest.approx(0.5)
        assert reference_homogeneity(3200, 1600) == pytest.approx(
            math.sqrt(2) / 2
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            reference_homogeneity(0, 10)
        with pytest.raises(ValueError):
            reference_homogeneity(10, 0)

    def test_reshaping_counts_from_perturbation(self):
        series = [0.0, 0.0, 5.0, 3.0, 0.6, 0.5]
        assert reshaping_time(series, perturbation_round=2, threshold=0.7) == 3

    def test_immediate_reconvergence_is_one(self):
        series = [0.0, 0.5]
        assert reshaping_time(series, perturbation_round=1, threshold=0.7) == 1

    def test_never_reconverges(self):
        series = [0.0, 5.0, 5.0, 5.0]
        assert reshaping_time(series, 1, 0.7) is None

    def test_negative_round_rejected(self):
        with pytest.raises(ValueError):
            reshaping_time([0.0], -1, 0.5)


class TestStorage:
    def test_node_storage(self):
        node = SimNode(0, (0.0, 0.0))
        node.poly = PolystyreneState([DataPoint(0, (0.0, 0.0))])
        node.poly.ghosts[4] = {1: DataPoint(1, (1.0, 0.0))}
        assert node_storage(node) == 2

    def test_node_without_state(self):
        assert node_storage(SimNode(0, (0.0, 0.0))) == 0

    def test_average(self):
        nodes = []
        for i in range(2):
            node = SimNode(i, (0.0, 0.0))
            node.poly = PolystyreneState(
                [DataPoint(j, (0.0, 0.0)) for j in range(i + 1)]
            )
            nodes.append(node)
        assert average_storage(nodes) == pytest.approx(1.5)

    def test_average_empty(self):
        assert average_storage([]) == 0.0

    def test_total_unique(self):
        shared = DataPoint(0, (0.0, 0.0))
        a = SimNode(0, (0.0, 0.0))
        a.poly = PolystyreneState([shared])
        b = SimNode(1, (0.0, 0.0))
        b.poly = PolystyreneState([shared, DataPoint(1, (1.0, 0.0))])
        assert total_unique_points([a, b]) == 2


class TestMessages:
    def test_per_node_cost_excludes_rps(self):
        snapshot = {"rps": 100.0, "tman": 60.0, "polystyrene": 20.0}
        assert per_node_cost(snapshot, n_alive=4) == pytest.approx(20.0)

    def test_per_node_cost_zero_alive(self):
        assert per_node_cost({"tman": 10.0}, 0) == 0.0

    def test_series_length_check(self):
        with pytest.raises(ValueError):
            per_node_series([{"a": 1.0}], [1, 2])

    def test_series(self):
        history = [{"tman": 10.0}, {"tman": 20.0, "rps": 99.0}]
        assert per_node_series(history, [2, 2]) == [5.0, 10.0]

    def test_layer_share(self):
        history = [{"tman": 90.0, "polystyrene": 10.0}] * 3
        assert layer_share(history, "tman") == pytest.approx(0.9)

    def test_layer_share_empty(self):
        assert layer_share([], "tman") == 0.0

    def test_layer_share_window(self):
        history = [{"tman": 100.0}, {"tman": 0.0, "polystyrene": 100.0}]
        assert layer_share(history, "tman", start=1) == 0.0
