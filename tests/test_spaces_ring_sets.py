"""Tests for the ring and Jaccard set spaces."""

import pytest

from repro.spaces import JaccardSpace, Ring


class TestRing:
    def test_wraps(self, unit_ring):
        assert unit_ring.distance((0.9,), (0.1,)) == pytest.approx(0.2)

    def test_max_half_circumference(self, unit_ring):
        assert unit_ring.distance((0.0,), (0.5,)) == pytest.approx(0.5)

    def test_position_helper(self):
        ring = Ring(10.0)
        assert ring.position(0.25) == pytest.approx((2.5,))

    def test_position_wraps(self):
        ring = Ring(10.0)
        assert ring.position(1.25) == pytest.approx((2.5,))

    def test_dim(self, unit_ring):
        assert unit_ring.dim == 1

    def test_area_is_circumference(self):
        assert Ring(7.0).area == pytest.approx(7.0)


class TestJaccard:
    def test_identical_sets(self):
        space = JaccardSpace()
        s = frozenset({"a", "b"})
        assert space.distance(s, s) == 0.0

    def test_disjoint_sets(self):
        space = JaccardSpace()
        assert space.distance(frozenset({"a"}), frozenset({"b"})) == 1.0

    def test_partial_overlap(self):
        space = JaccardSpace()
        a = frozenset({1, 2, 3})
        b = frozenset({2, 3, 4})
        assert space.distance(a, b) == pytest.approx(1 - 2 / 4)

    def test_both_empty(self):
        space = JaccardSpace()
        assert space.distance(frozenset(), frozenset()) == 0.0

    def test_one_empty(self):
        space = JaccardSpace()
        assert space.distance(frozenset(), frozenset({"x"})) == 1.0

    def test_symmetry(self):
        space = JaccardSpace()
        a = frozenset({1, 2})
        b = frozenset({2, 3, 4})
        assert space.distance(a, b) == space.distance(b, a)

    def test_triangle_inequality_exhaustive_small(self):
        space = JaccardSpace()
        universe = [frozenset(s) for s in ([], [1], [2], [1, 2], [1, 3], [1, 2, 3])]
        for a in universe:
            for b in universe:
                for c in universe:
                    assert space.distance(a, c) <= (
                        space.distance(a, b) + space.distance(b, c) + 1e-12
                    )

    def test_coord_builder(self):
        assert JaccardSpace.coord([1, 2, 2]) == frozenset({1, 2})

    def test_distance_many_fallback(self):
        space = JaccardSpace()
        origin = frozenset({1, 2})
        out = space.distance_many(origin, [frozenset({1, 2}), frozenset({3})])
        assert out[0] == 0.0
        assert out[1] == 1.0
