"""Tests for the greedy routing substrate."""

import random

import pytest

from repro.routing import evaluate_routing, greedy_route, point_targets
from repro.sim.engine import Simulation
from repro.sim.network import Network
from repro.spaces import Euclidean, FlatTorus
from repro.types import DataPoint

from .helpers import NullLayer, grid_coords

# A plain (non-wrapping) plane, so the chain below really is a line
# with two ends rather than a broken ring.
PLANE = Euclidean(2)
TORUS = FlatTorus(8.0, 4.0)


def chain_sim():
    """Nodes 0..7 in a line; each node's view = its neighbours."""
    network = Network()
    for x in range(8):
        network.add_node((float(x), 0.0))
    for x in range(8):
        view = {}
        if x > 0:
            view[x - 1] = (float(x - 1), 0.0)
        if x < 7:
            view[x + 1] = (float(x + 1), 0.0)
        network.node(x).tman_view = view
    return Simulation(PLANE, network, [NullLayer()], seed=0)


class TestGreedyRoute:
    def test_routes_along_chain(self):
        sim = chain_sim()
        result = greedy_route(sim, PLANE, sim.network.node(0), (4.0, 0.0),
                              tolerance=0.1)
        assert result.success
        assert result.hops == 4
        assert result.path == [0, 1, 2, 3, 4]
        assert result.reason == "delivered"

    def test_immediate_delivery(self):
        sim = chain_sim()
        result = greedy_route(sim, PLANE, sim.network.node(3), (3.2, 0.0),
                              tolerance=0.5)
        assert result.success
        assert result.hops == 0

    def test_local_minimum_detected(self):
        sim = chain_sim()
        # Kill the middle of the chain: routes to the far side get stuck.
        sim.network.fail([3, 4], rnd=0)
        result = greedy_route(sim, PLANE, sim.network.node(0), (6.0, 0.0),
                              tolerance=0.1)
        assert not result.success
        assert result.reason == "local-minimum"

    def test_max_hops(self):
        sim = chain_sim()
        result = greedy_route(sim, PLANE, sim.network.node(0), (7.0, 0.0),
                              tolerance=0.1, max_hops=2)
        assert not result.success
        assert result.reason == "max-hops"
        assert result.hops == 2

    def test_skips_dead_neighbours(self):
        sim = chain_sim()
        sim.network.fail([1], rnd=0)
        result = greedy_route(sim, PLANE, sim.network.node(0), (2.0, 0.0),
                              tolerance=0.1)
        assert not result.success  # only path went through node 1


class TestEvaluateRouting:
    def test_full_chain_delivers(self):
        sim = chain_sim()
        targets = [(float(x), 0.0) for x in range(8)]
        quality = evaluate_routing(
            sim, PLANE, targets, n_routes=50, tolerance=0.1,
            rng=random.Random(1),
        )
        assert quality.delivery_rate == 1.0
        assert quality.local_minimum_rate == 0.0
        assert quality.mean_hops_delivered >= 0.0

    def test_empty_targets_rejected(self):
        sim = chain_sim()
        with pytest.raises(ValueError):
            evaluate_routing(sim, PLANE, [], n_routes=5)

    def test_point_targets(self):
        points = [DataPoint(0, (1.0, 2.0)), DataPoint(1, (3.0, 4.0))]
        assert point_targets(points) == [(1.0, 2.0), (3.0, 4.0)]


class TestRoutingAfterCatastrophe:
    """The intro's claim, end to end: losing the shape breaks routing;
    Polystyrene restores it."""

    @pytest.fixture(scope="class")
    def scenario_pair(self):
        from repro.experiments.scenario import ScenarioConfig, build_simulation
        from repro.sim.failures import half_space_failure

        out = {}
        for protocol in ("tman", "polystyrene"):
            config = ScenarioConfig(
                width=16,
                height=8,
                protocol=protocol,
                replication=4,
                failure_round=10,
                reinjection_round=None,
                total_rounds=35,
                seed=5,
                metrics=("homogeneity",),
            )
            sim, _, _, points = build_simulation(config)
            sim.schedule(10, half_space_failure(0, 8.0))
            sim.run(35)
            out[protocol] = (sim, points)
        return out

    def test_tman_routing_degrades(self, scenario_pair):
        sim, points = scenario_pair["tman"]
        quality = evaluate_routing(
            sim, sim.space, point_targets(points), n_routes=120,
            tolerance=1.0, rng=random.Random(2),
        )
        # Half the keys sit in the hole: delivery caps well below 1.
        assert quality.delivery_rate < 0.75

    def test_polystyrene_routing_survives(self, scenario_pair):
        sim, points = scenario_pair["polystyrene"]
        quality = evaluate_routing(
            sim, sim.space, point_targets(points), n_routes=120,
            tolerance=1.0, rng=random.Random(2),
        )
        assert quality.delivery_rate > 0.9
