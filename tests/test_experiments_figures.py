"""Tests for the per-figure experiment modules (at smoke scale).

These validate that each figure module produces a complete, coherent
report — and that the headline relationships the paper plots hold in
the generated data.
"""

import pytest

from repro.experiments import fig1, fig6, fig7, fig10, fig89, table2
from repro.experiments.presets import SMOKE
from repro.experiments.registry import run_experiment
from repro.experiments.suite import run_comparison, scenario_name, snapshot_rounds_for


SEED = 7  # matches the session suite fixture → cache hit


class TestSuiteCache:
    def test_cache_returns_same_objects(self, smoke_suite):
        again = run_comparison(SMOKE, seed=SEED)
        for name in smoke_suite:
            assert again[name] is smoke_suite[name]

    def test_names(self, smoke_suite):
        assert set(smoke_suite) == {
            "Polystyrene_K2",
            "Polystyrene_K4",
            "Polystyrene_K8",
            "TMan",
        }

    def test_snapshot_rounds_cover_figures(self):
        rounds = snapshot_rounds_for(SMOKE)
        assert SMOKE.failure_round + 2 in rounds
        assert SMOKE.failure_round + 8 in rounds


class TestFig1:
    def test_report_structure(self):
        result = fig1.run_fig1(SMOKE, seed=1)
        assert "(a) Round 0" in result.report
        assert "(c) After the catastrophic failure" in result.report

    def test_shape_lost(self):
        result = fig1.run_fig1(SMOKE, seed=1)
        assert result.homogeneity_after_failure > 2 * result.homogeneity_converged + 0.5
        assert result.empty_fraction_after_failure > 0.3
        assert result.empty_fraction_converged < 0.1


class TestFig6:
    def test_reports(self, smoke_suite):
        result = fig6.run_fig6(SMOKE, seed=SEED)
        assert "Figure 6a" in result.report_homogeneity
        assert "Figure 6b" in result.report_proximity
        assert "TMan" in result.report_homogeneity

    def test_polystyrene_beats_tman(self, smoke_suite):
        result = fig6.run_fig6(SMOKE, seed=SEED)
        poly = result.results[scenario_name("polystyrene", 4)]
        tman = result.results[scenario_name("tman")]
        assert poly.final("homogeneity") < tman.final("homogeneity")


class TestFig7:
    def test_reports(self, smoke_suite):
        result = fig7.run_fig7(SMOKE, seed=SEED)
        assert "Figure 7a" in result.report_memory
        assert "Figure 7b" in result.report_messages

    def test_tman_share_majority_for_all_k(self, smoke_suite):
        result = fig7.run_fig7(SMOKE, seed=SEED)
        for name, share in result.tman_share.items():
            assert share > 0.5, name

    def test_tman_share_is_one_for_baseline(self, smoke_suite):
        result = fig7.run_fig7(SMOKE, seed=SEED)
        assert result.tman_share["TMan"] == pytest.approx(1.0)


class TestFig89:
    def test_report_sections(self, smoke_suite):
        result = fig89.run_fig89(SMOKE, seed=SEED)
        assert "Fig 8a" in result.report
        assert "Fig 9b" in result.report

    def test_tman_stays_clumped_polystyrene_uniform(self, smoke_suite):
        result = fig89.run_fig89(SMOKE, seed=SEED)
        assert (
            result.empty_fraction_poly_reinjected
            <= result.empty_fraction_tman_reinjected + 0.05
        )
        assert result.empty_fraction_repair_done < 0.25


class TestTable2:
    def test_rows_and_model(self):
        result = table2.run_table2(SMOKE, ks=(2, 4), repetitions=2, base_seed=1)
        assert len(result.rows) == 2
        for row in result.rows:
            assert row.reliability.mean == pytest.approx(
                row.expected_reliability, abs=8.0
            )
            assert row.non_converged == 0
        assert "Table II" in result.report

    def test_reliability_ordering(self):
        result = table2.run_table2(SMOKE, ks=(2, 8), repetitions=2, base_seed=3)
        assert result.rows[0].reliability.mean < result.rows[1].reliability.mean


class TestFig10:
    def test_fig10a_scales(self):
        result = fig10.run_fig10a(SMOKE, ks=(4,), repetitions=1, base_seed=2)
        assert len(result.cells) == len(SMOKE.sweep_grids)
        assert "Figure 10a" in result.report
        for cell in result.cells:
            assert cell.reshaping.mean == cell.reshaping.mean  # not NaN
            assert cell.reshaping.mean <= 20

    def test_fig10b_split_ordering(self):
        result = fig10.run_fig10b(
            SMOKE, splits=("basic", "advanced"), repetitions=1, base_seed=2
        )
        # At the largest smoke grid, advanced must not be slower than
        # basic (the paper reports ~2.9x faster at scale).
        largest = max(c.n_nodes for c in result.cells)
        cells = {c.label: c for c in result.cells if c.n_nodes == largest}
        assert (
            cells["split=advanced"].reshaping.mean
            <= cells["split=basic"].reshaping.mean
        )


class TestRegistryExecution:
    def test_run_experiment_fig6a(self, smoke_suite):
        out = run_experiment("fig6a", preset=SMOKE, seed=SEED)
        assert "Figure 6a" in out
