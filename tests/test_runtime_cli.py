"""CLI surface of the runtime subsystem: sweep, results, resume."""

from __future__ import annotations

from repro.cli import build_parser, main
from repro.experiments.scenario import ScenarioConfig, prepare_scenario
from repro.runtime import checkpoint
from repro.runtime.store import ResultStore


class TestParser:
    def test_run_accepts_workers(self):
        args = build_parser().parse_args(
            ["run", "fig6a", "--scale", "smoke", "--workers", "4"]
        )
        assert args.workers == 4

    def test_run_allows_resume_without_experiment(self):
        args = build_parser().parse_args(
            ["run", "--resume", "x.ckpt", "--rounds", "5"]
        )
        assert args.experiment is None
        assert args.resume == "x.ckpt"

    def test_sweep_grid_options(self):
        args = build_parser().parse_args(
            [
                "sweep",
                "--scale",
                "smoke",
                "--ks",
                "2,4",
                "--seeds",
                "3",
                "--workers",
                "2",
                "--store",
                "out.jsonl",
            ]
        )
        assert args.ks == [2, 4]
        assert args.seeds == 3
        assert args.store == "out.jsonl"


class TestCommands:
    def test_run_without_experiment_or_resume_fails(self, capsys):
        assert main(["run"]) == 2
        assert "experiment id or --resume" in capsys.readouterr().err

    def test_resume_flow(self, tmp_path, capsys):
        config = ScenarioConfig(
            width=6,
            height=3,
            failure_round=4,
            reinjection_round=None,
            total_rounds=20,
            metrics=("homogeneity",),
            seed=0,
        )
        sim, *_ = prepare_scenario(config)
        sim.run(2)
        path = tmp_path / "run.ckpt"
        checkpoint.save(checkpoint.snapshot(sim), path)

        out_path = tmp_path / "after.ckpt"
        code = main(
            [
                "run",
                "--resume",
                str(path),
                "--rounds",
                "6",
                "--save-checkpoint",
                str(out_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "round=2" in out
        assert "ran 6 rounds" in out
        assert out_path.exists()

        # The CLI-resumed state matches an uninterrupted in-process run.
        straight, *_ = prepare_scenario(config)
        straight.run(8)
        loaded = checkpoint.restore(checkpoint.load(out_path))
        assert checkpoint.state_digest(loaded) == checkpoint.state_digest(
            straight
        )

    def test_resume_missing_checkpoint_errors(self, tmp_path, capsys):
        code = main(["run", "--resume", str(tmp_path / "absent.ckpt")])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_sweep_store_results_roundtrip(self, tmp_path, capsys):
        store_path = tmp_path / "cells.jsonl"
        code = main(
            [
                "sweep",
                "--scale",
                "smoke",
                "--ks",
                "2",
                "--seeds",
                "2",
                "--workers",
                "1",
                "--store",
                str(store_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sweep over 2 cells" in out

        store = ResultStore(store_path)
        run_id = store.latest_run_id()
        assert len(store.cells(run_id=run_id, status="ok")) == 2

        # Resuming the finished run does nothing.
        code = main(
            [
                "sweep",
                "--scale",
                "smoke",
                "--ks",
                "2",
                "--seeds",
                "2",
                "--store",
                str(store_path),
                "--resume-run",
            ]
        )
        assert code == 0
        assert "already in the store" in capsys.readouterr().out

        # And `repro results` renders the stored cells.
        assert main(["results", str(store_path)]) == 0
        out = capsys.readouterr().out
        assert run_id in out
        assert "replication=2/split=advanced/seed=1" in out

    def test_results_on_empty_store(self, tmp_path, capsys):
        assert main(["results", str(tmp_path / "none.jsonl")]) == 1
        assert "no runs recorded" in capsys.readouterr().out

    def test_resume_run_requires_store(self, capsys):
        assert main(["sweep", "--scale", "smoke", "--resume-run"]) == 2
        assert "--store" in capsys.readouterr().err
