"""End-to-end CLI test: run a real (small) experiment through main()."""

from repro.cli import main


class TestRunCommand:
    def test_run_fig1_smoke(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        exit_code = main(["run", "fig1", "--scale", "smoke", "--seed", "2"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "(a) Round 0" in out
        assert "T-Man alone loses the shape" in out

    def test_module_invocation_surface(self):
        # ``python -m repro`` shares the same entry point.
        import repro.__main__  # noqa: F401  (import must not execute main)
