"""Tests for diameter (farthest-pair) computation."""

import numpy as np
import pytest

from repro.errors import EmptySelectionError
from repro.spaces import FlatTorus, diameter, diameter_exact, diameter_sampled


class TestExact:
    def test_needs_two_points(self, plane):
        with pytest.raises(EmptySelectionError):
            diameter_exact(plane, [(0, 0)])

    def test_two_points(self, plane):
        assert diameter_exact(plane, [(0, 0), (1, 1)]) == (0, 1)

    def test_finds_extremes(self, plane):
        coords = [(5, 5), (0, 0), (10, 10), (6, 6)]
        i, j = diameter_exact(plane, coords)
        assert {coords[i], coords[j]} == {(0, 0), (10, 10)}

    def test_matches_bruteforce(self, plane):
        rng = np.random.default_rng(6)
        coords = [tuple(rng.uniform(0, 10, 2)) for _ in range(15)]
        i, j = diameter_exact(plane, coords)
        best = max(
            plane.distance(a, b) for n, a in enumerate(coords) for b in coords[n:]
        )
        assert plane.distance(coords[i], coords[j]) == pytest.approx(best)

    def test_torus_diameter_respects_wrap(self):
        torus = FlatTorus(16.0)
        # On the ring, 15 and 1 are close (2 apart); 4 and 12 are the
        # true farthest pair (8 apart, the half-period).
        coords = [(15.0,), (1.0,), (4.0,), (12.0,)]
        i, j = diameter_exact(torus, coords)
        assert {coords[i], coords[j]} == {(4.0,), (12.0,)}


class TestSampled:
    def test_needs_two_points(self, plane):
        with pytest.raises(EmptySelectionError):
            diameter_sampled(plane, [(1, 1)])

    def test_reasonable_approximation(self, plane):
        rng = np.random.default_rng(7)
        coords = [tuple(rng.uniform(0, 100, 2)) for _ in range(200)]
        i, j = diameter_sampled(plane, coords)
        approx = plane.distance(coords[i], coords[j])
        exact_i, exact_j = diameter_exact(plane, coords)
        exact = plane.distance(coords[exact_i], coords[exact_j])
        # Farthest-point iteration is a 1/2-approximation in any metric
        # space; in practice on random data it is near-exact.
        assert approx >= 0.5 * exact

    def test_deterministic_without_rng(self, plane):
        coords = [(float(i) ** 1.1, 0.0) for i in range(60)]
        assert diameter_sampled(plane, coords) == diameter_sampled(plane, coords)

    def test_identical_points(self, plane):
        coords = [(1.0, 1.0)] * 40
        i, j = diameter_sampled(plane, coords)
        assert 0 <= i < 40 and 0 <= j < 40


class TestDispatch:
    def test_small_exact(self, plane):
        coords = [(0, 0), (9, 0), (5, 0)]
        i, j = diameter(plane, coords)
        assert {coords[i], coords[j]} == {(0, 0), (9, 0)}

    def test_large_sampled_valid(self, plane):
        coords = [(float(i), float(i % 3)) for i in range(100)]
        i, j = diameter(plane, coords)
        assert 0 <= i < 100 and 0 <= j < 100 and i != j
