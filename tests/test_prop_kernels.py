"""Property tests: batched space kernels ≡ the scalar reference.

The array core routes every hot-path distance through the batched
kernels (``distance_block``, ``distance_sq_block``, ``pairwise``,
``knn_indices`` and the canonical-coordinate ``rank_*`` variants).
These tests pin the contract for every shipped space: per-row float
equality with the scalar ``distance``/``distance_sq`` calls (exact for
the shipped implementations — they run the same operation sequence),
identical rankings, and sensible behaviour on the edge cases the
simulator produces (torus wraparound, a single node, an all-dead
network).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.network import Network
from repro.spaces import Euclidean, FlatTorus, JaccardSpace, Ring

finite = st.floats(
    min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False
)


def coords_2d(min_size=1, max_size=12):
    return st.lists(st.tuples(finite, finite), min_size=min_size, max_size=max_size)


def sets_coords(min_size=1, max_size=10):
    item = st.integers(min_value=0, max_value=20)
    return st.lists(
        st.frozensets(item, max_size=6), min_size=min_size, max_size=max_size
    )


VECTOR_SPACES = [Euclidean(2), FlatTorus(80.0, 40.0), FlatTorus(1.5, 7.25)]


@pytest.mark.parametrize("space", VECTOR_SPACES, ids=repr)
@given(data=st.data())
@settings(max_examples=60, deadline=None)
def test_distance_block_matches_scalar(space, data):
    coords = data.draw(coords_2d())
    origin = data.draw(st.tuples(finite, finite))
    batch = space.pack_batch(coords)
    block = space.distance_block(origin, batch)
    sq_block = space.distance_sq_block(origin, batch)
    scalar = np.array([space.distance(origin, c) for c in coords])
    scalar_sq = np.array([space.distance_sq(origin, c) for c in coords])
    np.testing.assert_allclose(block, scalar, rtol=1e-12, atol=1e-9)
    np.testing.assert_allclose(sq_block, scalar_sq, rtol=1e-12, atol=1e-9)
    # Between block and sq-block the relation is exact squaring up to
    # the sqrt rounding.
    np.testing.assert_allclose(block * block, sq_block, rtol=1e-12, atol=1e-9)


@pytest.mark.parametrize("space", VECTOR_SPACES, ids=repr)
@given(data=st.data())
@settings(max_examples=40, deadline=None)
def test_pairwise_matches_distance_block_rows(space, data):
    coords = data.draw(coords_2d(min_size=2, max_size=8))
    batch = space.pack_batch(coords)
    matrix = space.pairwise(batch)
    matrix_sq = space.pairwise_sq(batch)
    for i in range(len(coords)):
        np.testing.assert_array_equal(matrix[i], space.distance_block(batch[i], batch))
        np.testing.assert_array_equal(
            matrix_sq[i], space.distance_sq_block(batch[i], batch)
        )
    # Symmetry and zero diagonal (up to float noise from the fold).
    np.testing.assert_allclose(matrix, matrix.T, rtol=1e-12, atol=1e-9)
    np.testing.assert_allclose(np.diag(matrix), 0.0, atol=1e-9)


@pytest.mark.parametrize("space", VECTOR_SPACES, ids=repr)
@given(data=st.data())
@settings(max_examples=40, deadline=None)
def test_knn_indices_matches_scalar_ranking(space, data):
    coords = data.draw(coords_2d(min_size=1, max_size=10))
    origin = data.draw(st.tuples(finite, finite))
    k = data.draw(st.integers(min_value=0, max_value=len(coords) + 2))
    got = space.knn_indices(origin, space.pack_batch(coords), k).tolist()
    dists = space.distance_block(origin, space.pack_batch(coords))
    want = sorted(range(len(coords)), key=lambda i: (dists[i], i))[:k]
    assert got == want


def _wrap_all(space, coords):
    return [space.wrap(c) for c in coords]


@pytest.mark.parametrize("space", [FlatTorus(80.0, 40.0), FlatTorus(3.0, 5.0)], ids=repr)
@given(data=st.data())
@settings(max_examples=60, deadline=None)
def test_torus_rank_kernels_on_canonical_coords(space, data):
    """On wrapped (canonical) coordinates the rank kernels agree with
    the general squared kernels to the last units in the last place
    (the row-dot may fuse multiply-adds) and produce the *identical
    ranking* — the precondition the simulator relies on."""
    coords = _wrap_all(space, data.draw(coords_2d(max_size=10)))
    origin = space.wrap(data.draw(st.tuples(finite, finite)))
    batch = space.pack_batch(coords)
    rank_sq = space.rank_sq_block(origin, batch)
    general_sq = space.distance_sq_block(origin, batch)
    np.testing.assert_allclose(rank_sq, general_sq, rtol=1e-12, atol=1e-9)
    np.testing.assert_allclose(
        space.pairwise_rank_sq(batch), space.pairwise_sq(batch),
        rtol=1e-12, atol=1e-9,
    )
    np.testing.assert_array_equal(
        space.pairwise_canonical(batch), space.pairwise(batch)
    )
    ids = np.arange(len(coords))
    assert np.lexsort((ids, rank_sq)).tolist() == np.lexsort((ids, general_sq)).tolist()


def test_torus_rank_kernels_bit_exact_on_grid():
    """On integer grid coordinates (the evaluation scenarios) squared
    distances are exactly representable, so the rank kernels are
    bit-identical to the general ones — this is what keeps the golden
    digests unchanged."""
    space = FlatTorus(8.0, 4.0)
    coords = [(float(x), float(y)) for x in range(8) for y in range(4)]
    batch = space.pack_batch(coords)
    for origin in [(0.0, 0.0), (7.0, 3.0), (4.0, 2.0)]:
        np.testing.assert_array_equal(
            space.rank_sq_block(origin, batch),
            space.distance_sq_block(origin, batch),
        )
    np.testing.assert_array_equal(
        space.pairwise_rank_sq(batch), space.pairwise_sq(batch)
    )


def test_torus_wraparound_block():
    """The classic wraparound case: opposite corners are 1 step apart
    on the torus, through the boundary."""
    space = FlatTorus(80.0, 40.0)
    batch = space.pack_batch([(79.0, 39.0), (0.0, 0.0), (40.0, 20.0)])
    dists = space.distance_block((0.0, 0.0), batch)
    assert dists[0] == pytest.approx(np.sqrt(2.0))
    assert dists[1] == 0.0
    assert dists[2] == pytest.approx(np.hypot(40.0, 20.0))


def test_ring_kernels_inherit_torus():
    space = Ring(1.0)
    batch = space.pack_batch([(0.9,), (0.5,), (0.1,)])
    np.testing.assert_allclose(
        space.distance_block((0.0,), batch), [0.1, 0.5, 0.1], atol=1e-12
    )


class TestJaccardKernels:
    space = JaccardSpace()

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_block_matches_scalar(self, data):
        coords = data.draw(sets_coords())
        origin = data.draw(st.frozensets(st.integers(0, 20), max_size=6))
        batch = self.space.pack_batch(coords)
        block = self.space.distance_block(origin, batch)
        sq_block = self.space.distance_sq_block(origin, batch)
        for i, coord in enumerate(coords):
            assert block[i] == self.space.distance(origin, coord)
            assert sq_block[i] == self.space.distance_sq(origin, coord)

    def test_distance_sq_exact(self):
        a, b = frozenset({1, 2, 3}), frozenset({2, 3, 4, 5})
        d = self.space.distance(a, b)
        assert self.space.distance_sq(a, b) == d * d
        assert self.space.distance_sq(frozenset(), frozenset()) == 0.0

    def test_empty_sets_in_block(self):
        empty = frozenset()
        batch = self.space.pack_batch([empty, frozenset({1})])
        dists = self.space.distance_block(empty, batch)
        assert dists.tolist() == [0.0, 1.0]

    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_pairwise_symmetric(self, data):
        coords = data.draw(sets_coords(min_size=2, max_size=6))
        matrix = self.space.pairwise(self.space.pack_batch(coords))
        np.testing.assert_array_equal(matrix, matrix.T)
        assert np.all(np.diag(matrix) == 0.0)

    def test_distance_many_vectorised(self):
        coords = [frozenset({1, 2}), frozenset({3}), frozenset()]
        origin = frozenset({1})
        got = self.space.distance_many(origin, coords)
        want = [self.space.distance(origin, c) for c in coords]
        assert got.tolist() == want


class TestSimulatorEdgeCases:
    def test_single_node_network_kernels(self):
        network = Network()
        network.add_node((1.0, 2.0))
        ids = np.array([0])
        assert network.alive_mask(ids).tolist() == [True]
        assert network.positions_of(ids).tolist() == [[1.0, 2.0]]

    def test_all_dead_network_mask(self):
        network = Network()
        for i in range(4):
            network.add_node((float(i), 0.0))
        network.fail([0, 1, 2, 3], rnd=1)
        ids = np.array([0, 1, 2, 3])
        assert not network.alive_mask(ids).any()
        assert network.alive_ids() == []
        assert network.alive_positions().shape == (0, 2)

    def test_empty_batch_blocks(self):
        space = FlatTorus(8.0, 4.0)
        batch = space.pack_batch([])
        assert space.distance_block((0.0, 0.0), batch).shape == (0,)
        assert space.knn_indices((0.0, 0.0), batch, 3).shape == (0,)


@pytest.mark.parametrize("space", VECTOR_SPACES, ids=repr)
@given(data=st.data())
@settings(max_examples=60, deadline=None)
def test_distance_rows_matches_scalar(space, data):
    """Row-paired kernel (homogeneity's single-holder scan, the batch
    merge rankings) ≡ the scalar distance per row."""
    n = data.draw(st.integers(min_value=1, max_value=10))
    a = data.draw(st.lists(st.tuples(finite, finite), min_size=n, max_size=n))
    b = data.draw(st.lists(st.tuples(finite, finite), min_size=n, max_size=n))
    rows = space.distance_rows(space.pack_batch(a), space.pack_batch(b))
    scalar = np.array([space.distance(x, y) for x, y in zip(a, b)])
    np.testing.assert_allclose(rows, scalar, rtol=1e-12, atol=1e-9)


@pytest.mark.parametrize(
    "space", [Euclidean(2), FlatTorus(80.0, 40.0)], ids=repr
)
@given(data=st.data())
@settings(max_examples=40, deadline=None)
def test_rank_sq_rows_matches_scalar_on_canonical(space, data):
    """Per-row-origin rank kernel (the batch engine's workhorse) ≡ the
    scalar rank_sq_block per row, on canonical coordinates."""
    def canonical(draw_n):
        if isinstance(space, FlatTorus):
            xs = st.tuples(
                st.floats(min_value=0, max_value=79.99, allow_nan=False),
                st.floats(min_value=0, max_value=39.99, allow_nan=False),
            )
        else:
            xs = st.tuples(finite, finite)
        return st.lists(xs, min_size=draw_n, max_size=draw_n)

    n = data.draw(st.integers(min_value=1, max_value=6))
    m = data.draw(st.integers(min_value=1, max_value=8))
    origins = data.draw(canonical(n))
    blocks = [data.draw(canonical(m)) for _ in range(n)]
    batch = np.asarray(blocks, dtype=float)
    got = space.rank_sq_rows(space.pack_batch(origins), batch)
    for i in range(n):
        want = space.rank_sq_block(origins[i], batch[i])
        np.testing.assert_allclose(got[i], want, rtol=1e-12, atol=1e-9)

# -- batch kernel backends: bucketed kernels vs sort-based references ------
#
# The receiver-bucketed merge kernels replaced the global composite-key
# sorts; the originals are retained as ``*_reference`` and these suites
# pin exact output equality — same survivors, same slots, same ages,
# same tie-breaking — for every available backend (numpy always; numba
# joins when installed, and when it is missing ``available_backends()``
# simply never lists it, which is itself asserted below).

from repro.sim.batch import backend as kernel_backend
from repro.sim.batch import kernels as batch_kernels

BACKENDS = kernel_backend.available_backends()


def flat_loads(allow_ties=True, single_receiver=False, duplicate_ids=False):
    """Strategy for flat (recv, ids, dists, ages) merge loads, biased
    toward the degenerate shapes: empty loads, one receiver bucket,
    heavily duplicated ids, tied distances."""
    n_recv = st.just(1) if single_receiver else st.integers(1, 6)
    id_pool = st.just(7) if duplicate_ids else st.integers(0, 9)
    dist = (
        st.sampled_from([0.0, 1.0, 2.0, 2.0, 5.0])
        if allow_ties
        else st.floats(0.0, 100.0, allow_nan=False)
    )
    return st.tuples(
        n_recv,
        st.lists(
            st.tuples(id_pool, dist, st.integers(0, 50), st.integers(0, 2)),
            min_size=0,
            max_size=60,
        ),
    )


def _unpack_load(draw_pair, data):
    n_recv, rows = draw_pair
    n = len(rows)
    recv = data.draw(
        st.lists(st.integers(0, n_recv - 1), min_size=n, max_size=n)
    )
    if data.draw(st.booleans()):  # callers send both orders
        recv = sorted(recv)
    recv = np.asarray(recv, dtype=np.int64)
    ids = np.asarray([r[0] for r in rows], dtype=np.int64)
    dists = np.asarray([r[1] for r in rows], dtype=float)
    ages = np.asarray([r[2] for r in rows], dtype=np.int64)
    prio = np.asarray([r[3] for r in rows], dtype=np.int64)
    return recv, ids, dists, ages, prio


def test_numba_backend_gated_not_installed_means_numpy():
    """Requesting the optional backend must never fail: without numba
    installed it resolves to numpy (and the suites below then simply
    run numpy twice as one available backend)."""
    resolved = kernel_backend.get_backend("numba")
    assert resolved.name in ("numba", "numpy")
    assert "numpy" in BACKENDS
    with kernel_backend.use_backend("numba"):
        active = kernel_backend.active_backend()
        assert active.name in ("numba", "numpy")


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize(
    "shape",
    [
        dict(),
        dict(single_receiver=True),
        dict(duplicate_ids=True),
        dict(allow_ties=False),
    ],
    ids=("mixed", "single-receiver", "all-duplicate-ids", "no-ties"),
)
@given(data=st.data())
@settings(max_examples=40, deadline=None)
def test_dedup_rank_truncate_matches_reference(backend, shape, data):
    recv, ids, dists, ages, _ = _unpack_load(
        data.draw(flat_loads(**shape)), data
    )
    cap = data.draw(st.integers(1, 8))

    def dist_of(kept):
        return dists[kept]

    want = batch_kernels.dedup_rank_truncate_reference(
        recv, ids, dist_of, cap, ages
    )
    with kernel_backend.use_backend(backend):
        got = batch_kernels.dedup_rank_truncate(recv, ids, dist_of, cap, ages)
    assert len(got) == len(want)
    for g, w in zip(got, want):
        np.testing.assert_array_equal(g, w)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize(
    "shape",
    [dict(), dict(single_receiver=True), dict(duplicate_ids=True)],
    ids=("mixed", "single-receiver", "all-duplicate-ids"),
)
@given(data=st.data())
@settings(max_examples=40, deadline=None)
def test_dedup_priority_truncate_matches_reference(backend, shape, data):
    recv, ids, _, ages, prio = _unpack_load(
        data.draw(flat_loads(**shape)), data
    )
    order_in = np.arange(len(recv), dtype=np.int64)
    cap = data.draw(st.integers(1, 8))
    want = batch_kernels.dedup_priority_truncate_reference(
        recv, ids, prio, order_in, ages, cap
    )
    with kernel_backend.use_backend(backend):
        got = batch_kernels.dedup_priority_truncate(
            recv, ids, prio, order_in, ages, cap
        )
    for g, w in zip(got, want):
        np.testing.assert_array_equal(g, w)


def _merge_model(space, pos, ids_pad, coords_pad, valid, cap, ages_pad):
    """Dict-model of the fused padded merge: per row keep the rightmost
    copy of each id, rank by sqrt(rank_sq) with id tie-break, truncate.
    Distances come from the same ``rank_sq_rows`` matrix the kernel
    uses, so the comparison isolates the dedup/rank/truncate logic."""
    n_rows, width = ids_pad.shape
    dsq = space.rank_sq_rows(pos, coords_pad)
    out_ids = np.full((n_rows, cap), -1, dtype=np.int64)
    out_coords = np.zeros((n_rows, cap, coords_pad.shape[2]))
    out_ages = np.zeros((n_rows, cap), dtype=np.int64)
    for r in range(n_rows):
        lastcol = {}
        for c in range(width):
            if valid[r, c]:
                lastcol[int(ids_pad[r, c])] = c
        ranked = sorted(
            lastcol.items(), key=lambda kv: (np.sqrt(dsq[r, kv[1]]), kv[0])
        )[:cap]
        for slot, (pid, c) in enumerate(ranked):
            out_ids[r, slot] = pid
            out_coords[r, slot] = coords_pad[r, c]
            if ages_pad is not None:
                out_ages[r, slot] = ages_pad[r, c]
    if ages_pad is None:
        return out_ids, out_coords
    return out_ids, out_coords, out_ages


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("grid", [True, False], ids=("int-grid", "float"))
@given(data=st.data())
@settings(max_examples=30, deadline=None)
def test_merge_rank_truncate_matches_dict_model(backend, grid, data):
    """The fused padded merge ≡ a per-row dict model, on both the exact
    integer-key path (grid coordinates) and the float sqrt path, with
    empty rows, duplicate ids and tied distances in the mix."""
    space = FlatTorus(16.0, 8.0)
    n_rows = data.draw(st.integers(1, 5))
    width = data.draw(st.integers(1, 12))
    cap = data.draw(st.integers(1, 6))
    if grid:
        coord = st.tuples(
            st.integers(0, 15).map(float), st.integers(0, 7).map(float)
        )
    else:
        coord = st.tuples(
            st.floats(0, 15.99, allow_nan=False),
            st.floats(0, 7.99, allow_nan=False),
        )
    rows = data.draw(
        st.lists(
            st.lists(
                st.tuples(st.integers(0, 6), coord, st.integers(0, 30)),
                min_size=width,
                max_size=width,
            ),
            min_size=n_rows,
            max_size=n_rows,
        )
    )
    valid = np.asarray(
        data.draw(
            st.lists(
                st.lists(st.booleans(), min_size=width, max_size=width),
                min_size=n_rows,
                max_size=n_rows,
            )
        ),
        dtype=bool,
    )
    pos = space.pack_batch([data.draw(coord) for _ in range(n_rows)])
    ids_pad = np.where(
        valid, np.asarray([[e[0] for e in row] for row in rows]), -1
    ).astype(np.int64)
    coords_pad = np.asarray(
        [[e[1] for e in row] for row in rows], dtype=float
    )
    ages_pad = np.asarray([[e[2] for e in row] for row in rows], dtype=np.int64)
    with_ages = data.draw(st.booleans())
    args = (space, pos, ids_pad, coords_pad, valid, cap)
    want = _merge_model(*args, ages_pad if with_ages else None)
    with kernel_backend.use_backend(backend):
        got = batch_kernels.merge_rank_truncate(
            *args, ages_pad if with_ages else None
        )
    assert len(got) == len(want)
    for g, w in zip(got, want):
        np.testing.assert_array_equal(g, w)


@pytest.mark.parametrize("backend", BACKENDS)
def test_dedup_kernels_empty_load(backend):
    """Empty flat loads (no bucket at all) return empty selections on
    every backend."""
    empty = np.zeros(0, dtype=np.int64)
    with kernel_backend.use_backend(backend):
        sel, slot = batch_kernels.dedup_rank_truncate(
            empty, empty, lambda kept: np.zeros(0), 4
        )
        assert len(sel) == 0 and len(slot) == 0
        sel, slot, age = batch_kernels.dedup_priority_truncate(
            empty, empty, empty, empty, empty, 4
        )
        assert len(sel) == 0 and len(slot) == 0 and len(age) == 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_dedup_rank_truncate_tie_break_is_id_order(backend):
    """Equal distances rank by ascending id — the contract the golden
    digests depend on, checked against a hand-built load."""
    recv = np.zeros(4, dtype=np.int64)
    ids = np.asarray([9, 3, 7, 5], dtype=np.int64)

    def dist_of(kept):
        return np.ones(len(kept), dtype=float)

    with kernel_backend.use_backend(backend):
        sel, slot = batch_kernels.dedup_rank_truncate(recv, ids, dist_of, 3)
    assert ids[sel].tolist() == [3, 5, 7]
    assert slot.tolist() == [0, 1, 2]


@given(data=st.data())
@settings(max_examples=50, deadline=None)
def test_counting_partition_matches_stable_argsort(data):
    """The migration round's counting-based stable partition (valid
    candidates packed to the front, order preserved) ≡ the stable
    argsort on ``~valid`` it replaced."""
    n = data.draw(st.integers(1, 8))
    w = data.draw(st.integers(1, 10))
    cand = np.asarray(
        data.draw(
            st.lists(
                st.lists(st.integers(-1, 50), min_size=w, max_size=w),
                min_size=n,
                max_size=n,
            )
        ),
        dtype=np.int64,
    )
    valid = cand >= 0
    run_v = np.cumsum(valid, axis=1)
    counts = run_v[:, -1]
    col = np.arange(w, dtype=np.int64)
    dest = np.where(valid, run_v - 1, counts[:, None] + col - run_v)
    packed = np.empty_like(cand)
    np.put_along_axis(packed, dest, cand, axis=1)
    order = np.argsort(~valid, axis=1, kind="stable")
    want = np.take_along_axis(cand, order, axis=1)
    np.testing.assert_array_equal(packed, want)
