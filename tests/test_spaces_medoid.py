"""Tests for medoid computation."""

import numpy as np
import pytest

from repro.errors import EmptySelectionError
from repro.spaces import (
    Euclidean,
    FlatTorus,
    medoid,
    medoid_exact,
    medoid_sampled,
    sum_sq_distances,
)


class TestSumSq:
    def test_simple(self, plane):
        total = sum_sq_distances(plane, (0, 0), [(1, 0), (0, 2)])
        assert total == pytest.approx(1.0 + 4.0)

    def test_empty(self, plane):
        assert sum_sq_distances(plane, (0, 0), []) == 0.0


class TestMedoidExact:
    def test_empty_raises(self, plane):
        with pytest.raises(EmptySelectionError):
            medoid_exact(plane, [])

    def test_singleton(self, plane):
        assert medoid_exact(plane, [(3, 3)]) == 0

    def test_outlier_pulls_medoid(self, plane):
        coords = [(0, 0), (1, 0), (2, 0), (3, 0), (10, 0)]
        # Squared distances make the outlier at x=10 pull the medoid to
        # (3,0): cost 63 there vs 70 at (2,0).
        idx = medoid_exact(plane, coords)
        assert coords[idx] == (3, 0)

    def test_is_argmin_of_cost(self, plane):
        rng = np.random.default_rng(3)
        coords = [tuple(rng.uniform(0, 10, 2)) for _ in range(12)]
        idx = medoid_exact(plane, coords)
        costs = [sum_sq_distances(plane, c, coords) for c in coords]
        assert costs[idx] == pytest.approx(min(costs))

    def test_tie_breaks_by_first_index(self, plane):
        coords = [(0, 0), (0, 0), (0, 0)]
        assert medoid_exact(plane, coords) == 0

    def test_modular_space(self):
        torus = FlatTorus(16.0)
        # Around the seam: 15, 0, 1 — the middle element is 0.
        coords = [(15.0,), (0.0,), (1.0,)]
        idx = medoid_exact(torus, coords)
        assert coords[idx] == (0.0,)


class TestMedoidSampled:
    def test_small_set_delegates_to_exact(self, plane):
        coords = [(0, 0), (1, 0), (5, 5)]
        assert medoid_sampled(plane, coords) == medoid_exact(plane, coords)

    def test_large_set_returns_valid_index(self, plane):
        rng = np.random.default_rng(4)
        coords = [tuple(rng.uniform(0, 10, 2)) for _ in range(100)]
        idx = medoid_sampled(plane, coords, sample_size=20)
        assert 0 <= idx < 100

    def test_large_set_near_optimal_on_cluster(self, plane):
        # Tight cluster + one far outlier: any sensible approximation
        # must not return the outlier.
        coords = [(float(i % 7) / 10, float(i % 5) / 10) for i in range(60)]
        coords.append((100.0, 100.0))
        idx = medoid_sampled(plane, coords, sample_size=15)
        assert coords[idx] != (100.0, 100.0)

    def test_deterministic_without_rng(self, plane):
        coords = [(float(i), 0.0) for i in range(50)]
        assert medoid_sampled(plane, coords) == medoid_sampled(plane, coords)

    def test_with_rng(self, plane):
        coords = [(float(i), 0.0) for i in range(50)]
        rng = np.random.default_rng(5)
        idx = medoid_sampled(plane, coords, rng=rng)
        assert 0 <= idx < 50

    def test_empty_raises(self, plane):
        with pytest.raises(EmptySelectionError):
            medoid_sampled(plane, [])


class TestMedoidDispatch:
    def test_returns_member(self, plane):
        coords = [(0, 0), (4, 4), (2, 2)]
        assert medoid(plane, coords) in coords

    def test_large_input_uses_sampling(self, plane):
        coords = [(float(i), 0.0) for i in range(200)]
        result = medoid(plane, coords)
        assert result in coords
