"""Causal span tracing: emission, cross-process propagation (pool
children, fork-mode cells, cluster workers and spawned ``repro worker``
daemons), tree reconstruction, critical-path analysis, Chrome trace
export, tail --follow, and cross-run regression diffing."""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import obs
from repro.cli import main as cli_main
from repro.experiments.scenario import ScenarioConfig
from repro.obs import log as obs_log
from repro.obs import metrics as obs_metrics
from repro.obs import report as obs_report
from repro.obs import mem as obs_mem
from repro.obs import series as obs_series
from repro.obs import trace as obs_trace
from repro.runtime.cluster import open_queue, run_distributed_sweep
from repro.runtime.runner import ParallelRunner, SweepTask

WORKERS = 2


def _reset_obs() -> None:
    obs_metrics.set_enabled(False)
    obs_metrics.registry().reset()
    obs_log.set_level("off")
    obs_log.set_events_path(None)
    obs.profiling.set_active(False)
    obs._RUN_DIR = None
    obs_trace.set_enabled(False)
    obs_trace.set_spans_path(None)
    obs_trace._BUFFER.clear()
    obs_trace._CTX.set(None)
    obs_series.set_enabled(False)
    obs_series.set_series_path(None)
    obs_series._BUFFER.clear()
    obs_series.reset_cell()
    obs_mem.set_enabled(False)
    obs_mem.reset()
    for var in (
        obs.ENV_LOG,
        obs.ENV_OBS_DIR,
        obs.ENV_OBS,
        obs.ENV_PROFILE,
        obs_trace.ENV_CTX,
    ):
        os.environ.pop(var, None)


@pytest.fixture(autouse=True)
def obs_clean():
    yield
    _reset_obs()


def tiny_config(**overrides) -> ScenarioConfig:
    base = dict(
        width=6,
        height=3,
        failure_round=3,
        reinjection_round=None,
        total_rounds=6,
        metrics=("homogeneity",),
        seed=0,
    )
    base.update(overrides)
    return ScenarioConfig(**base)


def tiny_tasks(n: int = 4):
    return [
        SweepTask(task_id=f"seed-{seed}", config=tiny_config(seed=seed))
        for seed in range(n)
    ]


def one_trace(spans) -> str:
    """Assert all spans share one trace id and return it."""
    ids = {rec["trace"] for rec in spans}
    assert len(ids) == 1, f"expected one trace id, got {ids}"
    return ids.pop()


# -- shared real runs (expensive; built once) --------------------------------


@pytest.fixture(scope="module")
def pool_run(tmp_path_factory) -> Path:
    """One 2-worker pool sweep traced into a run dir."""
    run_dir = tmp_path_factory.mktemp("pool_run")
    obs.configure(dir=run_dir)
    try:
        ParallelRunner(workers=WORKERS).run(tiny_tasks())
    finally:
        obs_trace.flush()
        _reset_obs()
    return run_dir


@pytest.fixture(scope="module")
def pool_run_twin(tmp_path_factory) -> Path:
    """A second, identically-configured pool sweep (the diff baseline's
    clean candidate)."""
    run_dir = tmp_path_factory.mktemp("pool_run_twin")
    obs.configure(dir=run_dir)
    try:
        ParallelRunner(workers=WORKERS).run(tiny_tasks())
    finally:
        obs_trace.flush()
        _reset_obs()
    return run_dir


# -- span emission -----------------------------------------------------------


class TestSpanEmission:
    def test_disabled_span_is_null_and_writes_nothing(self, tmp_path):
        obs_trace.set_spans_path(tmp_path / "spans.jsonl")
        assert obs_trace.span("anything", key=1) is obs_trace.NULL_SPAN
        with obs_trace.span("anything"):
            pass
        assert obs_trace.flush() == 0
        assert not (tmp_path / "spans.jsonl").exists()

    def test_nested_spans_parent_correctly(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        obs_trace.set_spans_path(path)
        obs_trace.set_enabled(True)
        with obs_trace.span("outer", n_tasks=2):
            with obs_trace.span("inner"):
                pass
        obs_trace.flush()
        spans = obs_trace.load_spans(path)
        assert [s["name"] for s in spans] == ["inner", "outer"]
        inner, outer = spans
        one_trace(spans)
        assert outer["parent"] is None
        assert inner["parent"] == outer["span"]
        assert outer["attrs"] == {"n_tasks": 2}
        assert inner["dur"] >= 0 and outer["dur"] >= inner["dur"]

    def test_exception_annotates_and_propagates(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        obs_trace.set_spans_path(path)
        obs_trace.set_enabled(True)
        with pytest.raises(ValueError):
            with obs_trace.span("doomed"):
                raise ValueError("boom")
        obs_trace.flush()
        [span] = obs_trace.load_spans(path)
        assert span["attrs"]["error"] == "ValueError"

    def test_traced_decorator(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        obs_trace.set_spans_path(path)

        @obs_trace.traced("work.unit")
        def work(x):
            return x + 1

        assert work.__obs_traced__ == "work.unit"
        assert work(1) == 2  # disabled: plain call, nothing recorded
        obs_trace.set_enabled(True)
        assert work(2) == 3
        obs_trace.flush()
        [span] = obs_trace.load_spans(path)
        assert span["name"] == "work.unit"

    def test_record_leaf_under_current_span(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        obs_trace.set_spans_path(path)
        obs_trace.set_enabled(True)
        with obs_trace.span("parent"):
            obs_trace.record("kernel.x", time.time(), 0.001)
        obs_trace.flush()
        spans = obs_trace.load_spans(path)
        by_name = {s["name"]: s for s in spans}
        assert by_name["kernel.x"]["parent"] == by_name["parent"]["span"]

    def test_adopt_token_tolerates_garbage(self):
        for bad in (None, "", "notoken", ":", "a:", ":b"):
            with obs_trace.adopt_token(bad):
                assert obs_trace.current() is None
        with obs_trace.adopt_token("t1:s1"):
            assert obs_trace.current() == ("t1", "s1")
            assert obs_trace.context_token() == "t1:s1"
        assert obs_trace.current() is None  # binding restored

    def test_timed_kernels_emit_leaf_spans_when_tracing(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        obs_trace.set_spans_path(path)
        obs_trace.set_enabled(True)
        obs_metrics.set_enabled(True)

        @obs_metrics.timed("kernel.test_leaf")
        def kernel():
            return 42

        with obs_trace.span("parent"):
            assert kernel() == 42
        obs_trace.flush()
        names = [s["name"] for s in obs_trace.load_spans(path)]
        assert "kernel.test_leaf" in names

    def test_load_spans_skips_torn_trailing_line(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        obs_trace.set_spans_path(path)
        obs_trace.set_enabled(True)
        with obs_trace.span("whole"):
            pass
        obs_trace.flush()
        with open(path, "a", encoding="utf8") as handle:
            handle.write('{"kind": "span", "torn...')
        [span] = obs_trace.load_spans(path)
        assert span["name"] == "whole"


# -- tree reconstruction ------------------------------------------------------


def synth(name, span, parent=None, start=0.0, dur=1.0, **attrs):
    rec = {
        "kind": "span",
        "trace": "t0",
        "span": span,
        "parent": parent,
        "name": name,
        "start": start,
        "dur": dur,
        "pid": 1,
    }
    if attrs:
        rec["attrs"] = attrs
    return rec


class TestTree:
    def test_orphans_are_flagged_not_dropped(self, tmp_path):
        spans = [
            synth("sweep", "a", None, 0.0, 5.0),
            synth("cell", "b", "a", 0.1, 1.0),
            synth("round", "c", "missing-parent", 0.2, 0.5),
        ]
        roots, orphans = obs_trace.build_tree(spans)
        assert [r.name for r in roots] == ["sweep"]
        assert [o.name for o in orphans] == ["round"]
        assert orphans[0].orphan
        path = tmp_path / "spans.jsonl"
        path.write_text(
            "\n".join(json.dumps(s) for s in spans) + "\n", encoding="utf8"
        )
        rendered = obs_trace.format_tree(path)
        assert "1 orphan(s)" in rendered
        assert "[orphaned: parent span missing]" in rendered

    def test_sibling_collapse(self, tmp_path):
        spans = [synth("sweep", "root", None, 0.0, 10.0)]
        for i in range(8):
            spans.append(
                synth("round", f"r{i}", "root", float(i), 1.0, round=i)
            )
        path = tmp_path / "spans.jsonl"
        path.write_text(
            "\n".join(json.dumps(s) for s in spans) + "\n", encoding="utf8"
        )
        rendered = obs_trace.format_tree(path)
        assert "×7 more round" in rendered
        # Only the first sibling renders individually.
        assert rendered.count("round=") == 1


class TestCriticalPath:
    def test_chain_follows_last_finishing_child(self):
        spans = [
            synth("sweep", "root", None, 0.0, 10.0, n_tasks=2),
            synth("cell", "c1", "root", 0.0, 3.0, task_id="t1", worker="w1"),
            synth("cell", "c2", "root", 1.0, 8.5, task_id="t2", worker="w2"),
            synth("round", "r1", "c2", 1.0, 8.0, round=0),
        ]
        analysis = obs_trace.critical_path(spans)
        assert [s["name"] for s in analysis["chain"]] == [
            "sweep", "cell", "round",
        ]
        assert analysis["chain"][1]["attrs"]["task_id"] == "t2"
        assert analysis["wall_s"] == 10.0
        lanes = {w["worker"]: w for w in analysis["workers"]}
        assert set(lanes) == {"w1", "w2"}
        # w1 runs 3s of a 10s window: idle ~70%, biggest gap is the
        # 7s tail after its one cell.
        assert lanes["w1"]["cells"] == 1
        assert lanes["w1"]["idle_frac"] == pytest.approx(0.7)
        assert lanes["w1"]["gap_before"] == "(end of sweep)"
        # w2's biggest gap is the 1s wait before its first cell.
        assert lanes["w2"]["gap_before"] == "t2"

    def test_empty_stream(self):
        assert obs_trace.critical_path([]) == {
            "chain": [],
            "workers": [],
            "wall_s": 0.0,
        }


class TestChromeExport:
    def test_schema(self, tmp_path):
        spans = [
            synth("sweep", "root", None, 100.0, 2.0),
            synth("cell", "c1", "root", 100.5, 1.0, worker="w1", task_id="t"),
        ]
        trace = obs_trace.chrome_trace(spans)
        assert set(trace) == {"traceEvents", "displayTimeUnit"}
        events = trace["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        meta = [e for e in events if e["ph"] == "M"]
        assert len(complete) == 2 and len(meta) == 1
        for event in complete:
            assert {"name", "cat", "ph", "ts", "dur", "pid", "tid"} <= set(event)
            assert event["ts"] >= 0  # relative to earliest span
        # The pid hosting a worker-attributed cell is named as a lane.
        assert meta[0]["args"]["name"] == "worker w1"
        [cell] = [e for e in complete if e["name"] == "cell"]
        assert cell["ts"] == pytest.approx(0.5e6)
        assert cell["args"]["parent"] == "root"

    def test_write_is_valid_json(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        path.write_text(
            json.dumps(synth("sweep", "root", None)) + "\n", encoding="utf8"
        )
        out = obs_trace.write_chrome_trace(path, tmp_path / "chrome.json")
        loaded = json.loads(out.read_text())
        assert loaded["traceEvents"]


# -- cross-process propagation ------------------------------------------------


class TestPoolPropagation:
    def test_pool_sweep_stitches_into_one_tree(self, pool_run):
        spans = obs_trace.load_spans(pool_run)
        assert spans, "pool sweep recorded no spans"
        one_trace(spans)
        roots, orphans = obs_trace.build_tree(spans)
        assert len(roots) == 1 and roots[0].name == "sweep"
        assert orphans == []
        names = {s["name"] for s in spans}
        assert {"sweep", "cell", "round"} <= names
        cells = [s for s in spans if s["name"] == "cell"]
        assert len(cells) == 4
        assert {c["attrs"]["task_id"] for c in cells} == {
            f"seed-{i}" for i in range(4)
        }
        # Cells ran in pool children: more than one emitting pid total.
        assert len({s["pid"] for s in spans}) > 1

    def test_spawn_children_adopt_env_token(self, tmp_path):
        """The spawn seam itself: a child with no inherited contextvar
        re-joins the sweep through REPRO_TRACE_CTX."""
        obs.configure(dir=tmp_path)
        env = {obs_trace.ENV_CTX: "tid0:sid0"}
        obs.configure_from_env({**env, obs.ENV_OBS_DIR: str(tmp_path)})
        assert obs_trace.current() == ("tid0", "sid0")
        with obs_trace.span("child"):
            pass
        obs_trace.flush()
        [span] = [
            s
            for s in obs_trace.load_spans(tmp_path)
            if s["name"] == "child"
        ]
        assert span["trace"] == "tid0" and span["parent"] == "sid0"


class TestDistributedPropagation:
    def test_two_worker_distributed_sweep_is_one_tree(self, tmp_path):
        run_dir = tmp_path / "run"
        obs.configure(dir=run_dir)
        try:
            run_distributed_sweep(
                tiny_tasks(), tmp_path / "q", workers=WORKERS, poll_s=0.05
            )
        finally:
            obs_trace.flush()
        spans = obs_trace.load_spans(run_dir)
        one_trace(spans)
        roots, orphans = obs_trace.build_tree(spans)
        assert len(roots) == 1 and roots[0].name == "sweep.distributed"
        assert orphans == []
        names = {s["name"] for s in spans}
        assert {"checkpoint.publish", "cell", "round"} <= names
        cells = [s for s in spans if s["name"] == "cell"]
        workers = {
            c["attrs"].get("worker")
            for c in cells
            if c["attrs"].get("worker")
        }
        assert workers, "no cell carries a worker identity"

    def test_spawned_worker_daemon_joins_trace_via_env_and_manifest(
        self, tmp_path
    ):
        """A real ``repro worker`` subprocess — sharing no fork state
        with the coordinator — picks the obs config up from the
        environment and the trace parent from the queue manifest."""
        run_dir = tmp_path / "run"
        queue_path = tmp_path / "q"
        obs.configure(dir=run_dir)
        try:
            run_distributed_sweep(
                tiny_tasks(2), queue_path, workers=1, join=False
            )
        finally:
            obs_trace.flush()
        manifest = open_queue(queue_path).manifest()
        assert manifest.get("trace"), "manifest carries no trace token"

        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = (
            src + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH")
            else src
        )
        env[obs.ENV_OBS_DIR] = str(run_dir)
        env[obs.ENV_OBS] = "1"
        subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "worker",
                "--queue",
                str(queue_path),
                "--worker-id",
                "daemon-1",
                "--poll",
                "0.05",
            ],
            env=env,
            check=True,
            timeout=300,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        assert open_queue(queue_path).is_complete()
        spans = obs_trace.load_spans(run_dir)
        one_trace(spans)
        roots, orphans = obs_trace.build_tree(spans)
        assert len(roots) == 1 and roots[0].name == "sweep.distributed"
        assert orphans == []
        # The grid's cells all ran in the daemon; any other cell spans
        # are the coordinator's local prefix-checkpoint computations.
        cells = [s for s in spans if s["name"] == "cell"]
        daemon_cells = [
            c for c in cells if c["attrs"].get("worker") == "daemon-1"
        ]
        assert {c["attrs"]["task_id"] for c in daemon_cells} == {
            "seed-0",
            "seed-1",
        }


# -- tail --follow ------------------------------------------------------------


class TestFollowStream:
    def test_yields_appends_and_buffers_torn_lines(self, tmp_path):
        obs_dir = tmp_path / "obs"
        obs_dir.mkdir()
        path = obs_dir / "events.jsonl"
        line1 = json.dumps(
            {"kind": "event", "ts": "t", "level": "info", "event": "one"}
        )
        line2 = json.dumps(
            {"kind": "event", "ts": "t", "level": "info", "event": "two"}
        )
        torn, rest = line2[:10], line2[10:]
        path.write_text(line1 + "\n" + torn, encoding="utf8")

        polls = {"n": 0}

        def stop():
            polls["n"] += 1
            return polls["n"] > 200  # safety valve

        gen = obs_report.follow_stream(
            tmp_path, stream="events", poll_s=0.01, stop=stop, from_start=True
        )
        first = next(gen)
        assert "one" in first  # torn tail not yielded yet
        with open(path, "a", encoding="utf8") as handle:
            handle.write(rest + "\n")
        second = next(gen)
        assert "two" in second
        gen.close()

    def test_stop_without_data_terminates(self, tmp_path):
        lines = list(
            obs_report.follow_stream(
                tmp_path, stream="events", poll_s=0.01, stop=lambda: True
            )
        )
        assert lines == []


# -- diffing ------------------------------------------------------------------


class TestDiff:
    def test_identical_data_does_not_regress(self, pool_run, tmp_path):
        same = obs_report.write_scaled_copy(pool_run, tmp_path / "same", 1.0)
        diff = obs_report.diff_runs(pool_run, same)
        assert diff["rows"], "copied run shares no histograms"
        assert diff["regressions"] == []
        assert diff["counters"] == []

    def test_twin_runs_pass_under_jitter_tolerant_floors(
        self, pool_run, pool_run_twin
    ):
        """Two real runs of the same grid: sub-millisecond histograms
        jitter hard on a busy host, so this asserts the *configurable*
        contract — generous floors keep honest twins green."""
        diff = obs_report.diff_runs(
            pool_run, pool_run_twin, threshold=5.0, min_total_s=0.5
        )
        assert diff["rows"], "twin runs share no histograms"
        assert diff["regressions"] == []

    def test_scaled_copy_regresses_and_counters_stay_informational(
        self, pool_run, tmp_path
    ):
        slow = obs_report.write_scaled_copy(pool_run, tmp_path / "slow", 4.0)
        diff = obs_report.diff_runs(pool_run, slow)
        assert diff["regressions"], "4x slowdown not flagged"
        # Counter deltas never regress anything on their own.
        assert all(r["regressed"] for r in diff["regressions"])
        rendered = obs_report.format_diff(diff)
        assert "REGRESSED" in rendered

    def test_span_histograms_fold_into_diff(self, pool_run):
        hists = obs_report._diff_hists(pool_run)
        assert any(name.startswith("span.") for name in hists)
        assert "span.cell" in hists
        cell = hists["span.cell"]
        assert cell["count"] == 4
        assert cell["min"] <= cell["p50"] <= cell["p95"] <= cell["max"]

    def test_missing_obs_data_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no obs data"):
            obs_report.diff_runs(tmp_path, tmp_path)


# -- CLI surfaces -------------------------------------------------------------


class TestCli:
    def test_trace_tree_and_critical_path(self, pool_run, capsys):
        assert cli_main(["obs", "trace", "tree", str(pool_run)]) == 0
        out = capsys.readouterr().out
        assert "1 root(s), 0 orphan(s)" in out
        assert "sweep" in out
        assert cli_main(["obs", "trace", "critical-path", str(pool_run)]) == 0
        out = capsys.readouterr().out
        assert "critical path:" in out
        assert "worker utilisation" in out

    def test_export_default_path(self, pool_run, capsys):
        assert cli_main(["obs", "export", str(pool_run), "--format", "chrome"]) == 0
        out_path = pool_run / "obs" / "trace_chrome.json"
        assert out_path.is_file()
        trace = json.loads(out_path.read_text())
        assert trace["traceEvents"]
        assert "perfetto" in capsys.readouterr().out

    def test_tail_spans_stream(self, pool_run, capsys):
        assert cli_main(
            ["obs", "tail", str(pool_run), "--stream", "spans", "--lines", "5"]
        ) == 0
        assert "span " in capsys.readouterr().out

    def test_diff_gate_exit_codes(self, pool_run, tmp_path, capsys):
        same = obs_report.write_scaled_copy(pool_run, tmp_path / "same", 1.0)
        assert cli_main(
            ["obs", "diff", str(pool_run), str(same), "--gate"]
        ) == 0
        assert "obs diff gate: ok" in capsys.readouterr().err
        slow = obs_report.write_scaled_copy(pool_run, tmp_path / "slow", 4.0)
        assert cli_main(
            ["obs", "diff", str(pool_run), str(slow), "--gate"]
        ) == 1
        assert "obs diff gate: FAIL" in capsys.readouterr().err

    def test_missing_data_is_one_clear_line(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert cli_main(["obs", "trace", "tree", str(empty)]) == 1
        captured = capsys.readouterr()
        assert captured.err.startswith("error: no span stream found")
        assert "Traceback" not in captured.err
        assert cli_main(["obs", "report", str(empty)]) == 1
        assert capsys.readouterr().err.startswith("error: no metrics stream")
