"""Observability through the runtime: cell metrics propagation, digest
invariance with instrumentation on, store verification, and the obs /
queue-status / results CLI surfaces."""

from __future__ import annotations

import json
import os
import time

import pytest

from repro import obs
from repro.cli import main as cli_main
from repro.experiments.scenario import ScenarioConfig, prepare_scenario
from repro.obs import log as obs_log
from repro.obs import mem as obs_mem
from repro.obs import metrics as obs_metrics
from repro.obs import series as obs_series
from repro.obs import trace as obs_trace
from repro.runtime import checkpoint as ckpt
from repro.runtime.runner import ParallelRunner, SweepTask
from repro.runtime.store import ResultStore, summary_digest

WORKERS = 2


@pytest.fixture(autouse=True)
def obs_clean():
    yield
    obs_metrics.set_enabled(False)
    obs_metrics.registry().reset()
    obs_log.set_level("off")
    obs_log.set_events_path(None)
    obs.profiling.set_active(False)
    obs._RUN_DIR = None
    obs_trace.set_enabled(False)
    obs_trace.set_spans_path(None)
    obs_trace._BUFFER.clear()
    obs_trace._CTX.set(None)
    obs_series.set_enabled(False)
    obs_series.set_series_path(None)
    obs_series._BUFFER.clear()
    obs_series.reset_cell()
    obs_mem.set_enabled(False)
    obs_mem.reset()
    for var in (
        obs.ENV_LOG,
        obs.ENV_OBS_DIR,
        obs.ENV_OBS,
        obs.ENV_PROFILE,
        obs_trace.ENV_CTX,
    ):
        os.environ.pop(var, None)


def tiny_config(**overrides) -> ScenarioConfig:
    base = dict(
        width=6,
        height=3,
        failure_round=3,
        reinjection_round=None,
        total_rounds=8,
        metrics=("homogeneity",),
        seed=0,
    )
    base.update(overrides)
    return ScenarioConfig(**base)


def run_digest(config: ScenarioConfig) -> str:
    sim, *_ = prepare_scenario(config)
    sim.run(config.total_rounds)
    return ckpt.state_digest(sim)


class TestTrajectoryInvariance:
    @pytest.mark.parametrize("engine", ["event", "batch"])
    def test_state_digest_identical_with_obs_enabled(self, tmp_path, engine):
        """Instrumentation is read-only: enabling metrics + debug
        logging + profiling (ArraySampler attached) must leave the
        trajectory bit-identical in both engines."""
        config = tiny_config(engine=engine)
        plain = run_digest(config)
        obs.configure(
            log_level="debug", dir=tmp_path, profile=True, export_env=False
        )
        instrumented = run_digest(config)
        assert instrumented == plain

    def test_summary_digest_identical_with_obs_enabled(self, tmp_path):
        store_a = ResultStore(tmp_path / "plain.jsonl")
        ParallelRunner(workers=1).run(
            [SweepTask(task_id="c", config=tiny_config())], store=store_a
        )
        obs.configure(dir=tmp_path / "run", export_env=False)
        store_b = ResultStore(tmp_path / "instrumented.jsonl")
        ParallelRunner(workers=1).run(
            [SweepTask(task_id="c", config=tiny_config())], store=store_b
        )
        digest_a = [summary_digest(c) for c in store_a.cells()]
        digest_b = [summary_digest(c) for c in store_b.cells()]
        assert digest_a == digest_b
        # The instrumented record carries the metrics section, the
        # plain one does not — and the digest ignores it by design.
        assert "metrics" in store_b.cells()[0]
        assert "metrics" not in store_a.cells()[0]


class TestCellMetricsPropagation:
    def test_parallel_children_flush_per_cell_metrics(self, tmp_path):
        """Metrics context propagates into ParallelRunner pool children:
        every cell comes back with its own snapshot and its own
        metrics.jsonl line tagged with the cell's task_id."""
        obs.configure(dir=tmp_path, log_level="debug")
        tasks = [
            SweepTask(task_id=f"cell-{seed}", config=tiny_config(seed=seed))
            for seed in range(3)
        ]
        cells = ParallelRunner(workers=WORKERS).run(tasks)
        assert len(cells) == 3
        for cell in cells:
            assert cell.metrics is not None
            assert cell.metrics["counters"]["rounds"] == 8
            assert "round.wall" in cell.metrics["hists"]
        lines = [
            json.loads(l)
            for l in (tmp_path / "obs" / "metrics.jsonl")
            .read_text()
            .splitlines()
        ]
        tagged = {l["ctx"]["task_id"] for l in lines}
        assert tagged == {"cell-0", "cell-1", "cell-2"}
        seeds = {l["ctx"]["seed"] for l in lines}
        assert seeds == {0, 1, 2}

    def test_cell_metrics_none_when_disabled(self):
        cells = ParallelRunner(workers=1).run(
            [SweepTask(task_id="c", config=tiny_config())]
        )
        assert cells[0].metrics is None

    def test_errored_cell_still_flushes_metrics(self, tmp_path):
        class Exploding(SweepTask):
            def run(self):
                obs_metrics.count("made.it", 1)
                raise RuntimeError("boom")

        obs.configure(dir=tmp_path, export_env=False)
        cells = ParallelRunner(workers=1).run(
            [Exploding(task_id="x", config=tiny_config())]
        )
        assert cells[0].status == "error"
        assert cells[0].metrics["counters"]["made.it"] == 1
        line = json.loads(
            (tmp_path / "obs" / "metrics.jsonl").read_text().splitlines()[0]
        )
        assert line["ctx"]["status"] == "error"


class TestStoreVerify:
    def _store_with_cells(self, tmp_path, n=2):
        store = ResultStore(tmp_path / "results.jsonl")
        tasks = [
            SweepTask(task_id=f"cell-{s}", config=tiny_config(seed=s))
            for s in range(n)
        ]
        ParallelRunner(workers=1).run(tasks, store=store)
        return store

    def test_clean_store_verifies_ok(self, tmp_path):
        store = self._store_with_cells(tmp_path)
        report = store.verify()
        assert report["ok"]
        assert report["runs"] == 1
        assert report["cells"] == 2
        assert report["cells_ok"] == 2
        assert not report["torn_tail"]
        assert report["problems"] == []

    def test_torn_tail_is_nonfatal(self, tmp_path):
        store = self._store_with_cells(tmp_path)
        with store.path.open("a") as fh:
            fh.write('{"kind": "cell", "half writ')
        report = store.verify()
        assert report["ok"]
        assert report["torn_tail"]
        assert any("torn" in p for p in report["problems"])

    def test_midfile_corruption_is_fatal(self, tmp_path):
        store = self._store_with_cells(tmp_path)
        lines = store.path.read_text().splitlines()
        lines.insert(1, '{"kind": "cell", "half writ')
        store.path.write_text("\n".join(lines) + "\n")
        report = store.verify()
        assert not report["ok"]
        assert any("mid-file" in p for p in report["problems"])

    def test_config_hash_mismatch_is_fatal(self, tmp_path):
        store = self._store_with_cells(tmp_path, n=1)
        lines = store.path.read_text().splitlines()
        record = json.loads(lines[1])
        assert record["kind"] == "cell"
        record["config_hash"] = "0" * 16
        lines[1] = json.dumps(record, sort_keys=True)
        store.path.write_text("\n".join(lines) + "\n")
        report = store.verify()
        assert not report["ok"]
        assert any("config_hash" in p for p in report["problems"])

    def test_duplicates_counted_but_ok(self, tmp_path):
        store = self._store_with_cells(tmp_path, n=1)
        lines = store.path.read_text().splitlines()
        store.path.write_text("\n".join(lines + [lines[1]]) + "\n")
        report = store.verify()
        assert report["ok"]
        assert report["duplicates"] == 1

    def test_missing_file(self, tmp_path):
        report = ResultStore(tmp_path / "void.jsonl").verify()
        assert not report["ok"]


class TestResultsVerifyCLI:
    def test_verify_ok_exit_zero(self, tmp_path, capsys):
        store = ResultStore(tmp_path / "results.jsonl")
        ParallelRunner(workers=1).run(
            [SweepTask(task_id="c", config=tiny_config())], store=store
        )
        code = cli_main(["results", str(store.path), "--verify"])
        out = capsys.readouterr().out
        assert code == 0
        assert "verify: OK" in out

    def test_verify_corrupt_exit_one(self, tmp_path, capsys):
        path = tmp_path / "results.jsonl"
        path.write_text('{"broken\n{"kind": "run", "run_id": "r"}\n')
        code = cli_main(["results", str(path), "--verify"])
        assert code == 1
        assert "verify: FAILED" in capsys.readouterr().out


class TestObsCLI:
    def _instrumented_run(self, tmp_path):
        obs.configure(dir=tmp_path / "run", log_level="debug", export_env=False)
        ParallelRunner(workers=1).run(
            [SweepTask(task_id="c", config=tiny_config())]
        )
        return tmp_path / "run"

    def test_obs_report_renders(self, tmp_path, capsys):
        run_dir = self._instrumented_run(tmp_path)
        assert cli_main(["obs", "report", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "Per-round phases" in out
        assert "Counters" in out

    def test_obs_tail_renders_both_streams(self, tmp_path, capsys):
        run_dir = self._instrumented_run(tmp_path)
        assert cli_main(["obs", "tail", str(run_dir), "--lines", "5"]) == 0
        assert "cell.done" in capsys.readouterr().out
        assert (
            cli_main(
                ["obs", "tail", str(run_dir), "--stream", "metrics"]
            )
            == 0
        )
        assert "metrics" in capsys.readouterr().out


class TestQueueStatusCLI:
    def test_status_shows_heartbeat_age_and_attempts(self, tmp_path, capsys):
        from repro.runtime.cluster.queue import TaskSpec, open_queue

        queue = open_queue(tmp_path / "q")
        queue.publish(
            [
                TaskSpec(task_id="cell-0", config=tiny_config(seed=0)),
                TaskSpec(task_id="cell-1", config=tiny_config(seed=1)),
            ]
        )
        lease = queue.claim("w1")
        assert lease is not None
        queue.register_worker(
            "w1",
            {
                "host": "h",
                "pid": 1,
                "started": time.time() - 30,
                "last_seen": time.time() - 5,
                "cells_ok": 1,
                "cells_error": 0,
                "cells_lost": 0,
            },
        )
        assert cli_main(["queue", "status", str(tmp_path / "q")]) == 0
        out = capsys.readouterr().out
        assert "worker w1: heartbeat" in out
        assert "ago" in out
        assert "1 ok" in out
        assert f"working on {lease.task.task_id} (attempt 1)" in out

    def test_status_flags_unregistered_lease_holder(self, tmp_path, capsys):
        from repro.runtime.cluster.queue import TaskSpec, open_queue

        queue = open_queue(tmp_path / "q")
        queue.publish([TaskSpec(task_id="cell-0", config=tiny_config())])
        assert queue.claim("ghost") is not None
        cli_main(["queue", "status", str(tmp_path / "q")])
        out = capsys.readouterr().out
        assert "worker ghost: unregistered" in out
