"""Cross-engine statistical equivalence: batch vs event.

The batch engine (semantics version 2) does not reproduce the event
engine's trajectories — it must reproduce its *science*.  The claims
that make this precise live in :func:`repro.eval.dataset.equivalence_cases`
(one definition shared with the ``repro eval`` gate — see README
"Claims gate"); this suite executes those cases through the same
stored-cell path the gate uses (``cell_record`` → ``group_cells`` →
``score_equivalence``) and asserts the verdicts.

The base case stays tier-1 with one test per metric family (the Fig. 6
homogeneity and proximity curves, the Fig. 7 storage and message-cost
curves, Table II / Fig. 10 reliability and reshaping time).  The
ablation cases — failure-detection delay, neighbor backup placement,
the Vicinity topology substrate — discharge the ROADMAP's open
equivalence axes and are marked ``eval``/``slow``.
"""

from __future__ import annotations

import pytest

from repro.analysis.bands import ensemble_mean, equivalence_band
from repro.eval.dataset import equivalence_cases
from repro.eval.scorers import group_cells, score_equivalence
from repro.experiments.scenario import run_scenario
from repro.runtime.store import cell_record

CASES = {c.case_id.split("/", 1)[1]: c for c in equivalence_cases()}
BASE = CASES["base"]
ABLATIONS = sorted(set(CASES) - {"base"})


def _cells(case, engine):
    """Run one case's grid under one engine and hand back the stored
    cells exactly as the eval runner would (content-addressed records
    grouped by variant)."""
    records = [
        cell_record(
            "test-equivalence",
            f"test/{label}/{config.seed}",
            config,
            status="ok",
            result=run_scenario(config),
        )
        for label, config in case.configs(engine)
    ]
    return group_cells(case, engine, records)


@pytest.fixture(scope="module")
def base_cells():
    return {engine: _cells(BASE, engine) for engine in ("event", "batch")}


@pytest.mark.parametrize("stat", sorted(BASE.param_dict["stats"]))
def test_metric_within_confidence_band(base_cells, stat):
    """Per metric family: the two engines' seed-ensemble means lie
    within ``z`` combined standard errors of each other, plus the
    per-stat absolute floor (so zero-variance metrics cannot
    manufacture infinite z-scores)."""
    params = BASE.param_dict
    ev = base_cells["event"].values(stat, "all")
    bv = base_cells["batch"].values(stat, "all")
    want = len(BASE.seeds)
    assert len(ev) == want, f"event {stat}: only {len(ev)}/{want} converged"
    assert len(bv) == want, f"batch {stat}: only {len(bv)}/{want} converged"
    band = equivalence_band(
        ev, bv, z=params["z"], floor=params["stats"][stat]
    )
    assert band.within, (
        f"{stat}: batch mean {ensemble_mean(bv):.4f} vs event mean "
        f"{ensemble_mean(ev):.4f} — {band.describe()} "
        f"(batch {bv}, event {ev})"
    )


def test_base_case_scores_pass(base_cells):
    """The whole-case verdict — the same scorer the CI gate runs."""
    score = score_equivalence(BASE, base_cells)
    assert score.passed, score.diagnosis
    assert score.engine == "both"
    assert len(score.details) == len(BASE.param_dict["stats"])


def test_both_engines_recover_the_shape(base_cells):
    """The paper's headline claim holds under either engine: after
    reinjection the shape is recovered (homogeneity back near the
    pre-failure level)."""
    for engine in ("event", "batch"):
        final = base_cells[engine].values("final.homogeneity", "all")
        assert ensemble_mean(final) < 0.2, (engine, final)


@pytest.mark.eval
@pytest.mark.slow
@pytest.mark.parametrize("suffix", ABLATIONS)
def test_ablation_equivalence(suffix):
    """Equivalence holds along the ablation axes: detector delay,
    backup placement, vicinity topology (ROADMAP open items)."""
    case = CASES[suffix]
    cells = {engine: _cells(case, engine) for engine in ("event", "batch")}
    score = score_equivalence(case, cells)
    assert score.passed, f"{case.case_id}: {score.diagnosis}"
    assert score.details, "ablation case scored no statistics"
