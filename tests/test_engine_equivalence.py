"""Cross-engine statistical equivalence: batch vs event.

The batch engine (semantics version 2) does not reproduce the event
engine's trajectories — it must reproduce its *science*.  This suite
runs the paper scenario under both engines over a seed ensemble and
asserts that every reported metric family (the Fig. 6 homogeneity and
proximity curves, the Fig. 7 storage and message-cost curves, Table II
/ Fig. 10 reliability and reshaping time) agrees within confidence
bands: the two engines' seed-ensemble means must lie within
``Z_LIMIT`` combined standard errors of each other (plus a small
absolute floor so zero-variance metrics cannot manufacture infinite
z-scores).

Seeds and scale are chosen so the suite stays tier-1-runnable; the same
bands hold at larger scales (checked manually when the engine changes —
see benchmarks/bench_fig10a/BENCH_core.json for the recorded
largest-cell comparison).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.scenario import ScenarioConfig, run_scenario

SEEDS = range(5)
#: Combined-standard-error multiple two ensemble means may differ by.
#: 3σ gives a per-metric false-failure rate well under 1% while still
#: catching any systematic engine bias (a real bias shows up as z ≫ 3
#: because the per-seed spread of these metrics is small).
Z_LIMIT = 3.0
#: Absolute slack added to every band: metrics with near-zero seed
#: variance (message cost, converged homogeneity) stay comparable.
ABS_FLOOR = {
    "homogeneity_mid": 0.05,
    "homogeneity_final": 0.02,
    "proximity_final": 0.02,
    "storage_peak": 0.75,
    "message_cost": 2.0,
    "reliability": 0.02,
    "reshaping_time": 1.5,
}


def _config(engine: str, seed: int) -> ScenarioConfig:
    return ScenarioConfig(
        width=16,
        height=8,
        failure_round=10,
        reinjection_round=40,
        total_rounds=70,
        seed=seed,
        engine=engine,
    )


def _metrics(engine: str) -> dict:
    out: dict = {name: [] for name in ABS_FLOOR}
    for seed in SEEDS:
        result = run_scenario(_config(engine, seed))
        hom = result.series["homogeneity"]
        out["homogeneity_mid"].append(hom[25])  # mid-recovery (fig 6a)
        out["homogeneity_final"].append(hom[-1])
        out["proximity_final"].append(result.series["proximity"][-1])
        out["storage_peak"].append(max(result.series["storage"]))  # fig 7a
        out["message_cost"].append(
            float(np.mean(result.series["message_cost"][3:]))  # fig 7b
        )
        out["reliability"].append(result.reliability)  # table 2
        out["reshaping_time"].append(
            float(result.reshaping_time)
            if result.reshaping_time is not None
            else np.nan
        )
    return out


@pytest.fixture(scope="module")
def ensembles():
    return _metrics("batch"), _metrics("event")


@pytest.mark.parametrize("metric", sorted(ABS_FLOOR))
def test_metric_within_confidence_band(ensembles, metric):
    batch, event = ensembles
    b = np.asarray(batch[metric], dtype=float)
    e = np.asarray(event[metric], dtype=float)
    assert np.isfinite(b).all(), f"batch {metric} never converged: {b}"
    assert np.isfinite(e).all(), f"event {metric} never converged: {e}"
    n = len(b)
    se = float(np.sqrt(np.var(b, ddof=1) / n + np.var(e, ddof=1) / n))
    gap = abs(float(np.mean(b)) - float(np.mean(e)))
    limit = Z_LIMIT * se + ABS_FLOOR[metric]
    assert gap <= limit, (
        f"{metric}: batch mean {np.mean(b):.4f} vs event mean "
        f"{np.mean(e):.4f} — gap {gap:.4f} exceeds band {limit:.4f} "
        f"(batch {b}, event {e})"
    )


def test_both_engines_recover_the_shape(ensembles):
    """The paper's headline claim holds under either engine: after
    reinjection the shape is recovered (homogeneity back near the
    pre-failure level)."""
    batch, event = ensembles
    assert np.mean(batch["homogeneity_final"]) < 0.2
    assert np.mean(event["homogeneity_final"]) < 0.2
