"""Structured event logging: levels, context binding, sinks, readers."""

from __future__ import annotations

import json
import os

import pytest

from repro import obs
from repro.obs import log as obs_log
from repro.obs import metrics as obs_metrics
from repro.obs.report import (
    format_report,
    format_tail,
    load_jsonl,
    load_metrics_records,
    resolve_events_path,
    resolve_metrics_path,
)


@pytest.fixture(autouse=True)
def obs_clean():
    yield
    obs_metrics.set_enabled(False)
    obs_metrics.registry().reset()
    obs_log.set_level("off")
    obs_log.set_events_path(None)
    obs.profiling.set_active(False)
    obs._RUN_DIR = None
    obs.series.set_enabled(False)
    obs.series.set_series_path(None)
    obs.series._BUFFER.clear()
    obs.series.reset_cell()
    obs.mem.set_enabled(False)
    obs.mem.reset()
    for var in (obs.ENV_LOG, obs.ENV_OBS_DIR, obs.ENV_OBS, obs.ENV_PROFILE):
        os.environ.pop(var, None)


class TestLevels:
    def test_parse_level_names(self):
        assert obs_log.parse_level("debug") == obs_log.DEBUG
        assert obs_log.parse_level("WARN") == obs_log.WARNING
        assert obs_log.parse_level("off") == obs_log.OFF
        assert obs_log.parse_level(None) == obs_log.OFF
        assert obs_log.parse_level("nonsense") == obs_log.OFF

    def test_disabled_emits_nothing(self, capsys):
        obs_log.set_level("off")
        obs_log.info("should.vanish", x=1)
        obs_log.error("also.vanishes")
        assert capsys.readouterr().err == ""

    def test_stderr_gated_by_level(self, capsys):
        obs_log.set_level("warning")
        obs_log.info("below.threshold")
        obs_log.warning("at.threshold", n=2)
        err = capsys.readouterr().err
        assert "below.threshold" not in err
        assert "at.threshold" in err
        assert "n=2" in err


class TestBinding:
    def test_bind_merges_and_restores(self):
        assert obs_log.context() == {}
        with obs_log.bind(run="r1"):
            with obs_log.bind(task="t1"):
                assert obs_log.context() == {"run": "r1", "task": "t1"}
            assert obs_log.context() == {"run": "r1"}
        assert obs_log.context() == {}

    def test_bound_fields_ride_on_records(self, tmp_path):
        events = tmp_path / "events.jsonl"
        obs_log.set_events_path(events)
        with obs_log.bind(worker="w9"):
            obs_log.info("probe", extra=1)
        record = json.loads(events.read_text())
        assert record["worker"] == "w9"
        assert record["extra"] == 1
        assert record["event"] == "probe"

    def test_explicit_fields_shadow_bound_context(self, tmp_path):
        events = tmp_path / "events.jsonl"
        obs_log.set_events_path(events)
        with obs_log.bind(task="bound"):
            obs_log.info("probe", task="explicit")
        assert json.loads(events.read_text())["task"] == "explicit"


class TestFileSink:
    def test_file_records_all_levels_regardless_of_stderr_level(
        self, tmp_path, capsys
    ):
        """The on-disk stream is complete even when the console is
        quiet: stderr shows warnings only, events.jsonl gets debug."""
        events = tmp_path / "events.jsonl"
        obs_log.set_level("warning")
        obs_log.set_events_path(events)
        obs_log.debug("quiet.detail")
        obs_log.warning("loud.warning")
        err = capsys.readouterr().err
        assert "quiet.detail" not in err
        levels = [json.loads(l)["event"] for l in events.read_text().splitlines()]
        assert levels == ["quiet.detail", "loud.warning"]

    def test_unserialisable_fields_fall_back_to_repr(self, tmp_path):
        events = tmp_path / "events.jsonl"
        obs_log.set_events_path(events)
        obs_log.info("probe", weird={1, 2})
        record = json.loads(events.read_text())
        assert "1" in record["weird"] and "2" in record["weird"]


class TestReaders:
    def test_load_jsonl_skips_torn_lines(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        path.write_text('{"a": 1}\n{"broken...\n{"b": 2}\n{"torn tail')
        records = load_jsonl(path)
        assert records == [{"a": 1}, {"b": 2}]

    def test_resolvers_accept_run_dir_obs_dir_and_file(self, tmp_path):
        obs_dir = tmp_path / "obs"
        obs_dir.mkdir()
        events = obs_dir / "events.jsonl"
        metrics = obs_dir / "metrics.jsonl"
        events.write_text("{}\n")
        metrics.write_text("{}\n")
        assert resolve_events_path(tmp_path) == events
        assert resolve_events_path(obs_dir) == events
        assert resolve_events_path(events) == events
        assert resolve_metrics_path(tmp_path) == metrics
        assert resolve_events_path(tmp_path / "nowhere") is None

    def test_format_tail_renders_events_and_metrics(self, tmp_path):
        obs.configure(dir=tmp_path, log_level="debug", export_env=False)
        obs_log.info("hello.world", n=1)
        obs_metrics.count("c", 2)
        obs.flush_cell_metrics({"task_id": "cell-0"})
        tail = format_tail(tmp_path, lines=5)
        assert "hello.world" in tail and "n=1" in tail
        mtail = format_tail(tmp_path, lines=5, stream="metrics")
        assert "task_id=cell-0" in mtail and "1 counters" in mtail

    def test_format_tail_missing_stream(self, tmp_path):
        assert "no events stream" in format_tail(tmp_path / "void")

    def test_format_report_sections_and_aggregation(self, tmp_path):
        """Two flushed cell lines aggregate: counters add, histogram
        counts add, and names land in their prefix sections."""
        obs.configure(dir=tmp_path, export_env=False)
        for _ in range(2):
            obs_metrics.registry().reset()
            obs_metrics.count("rounds", 10)
            obs_metrics.observe("round.wall", 0.5)
            obs_metrics.observe("kernel.split.basic", 0.001)
            obs_metrics.observe("unprefixed.thing", 1.0)
            obs.flush_cell_metrics()
        report = format_report(tmp_path)
        assert "Per-round phases" in report
        assert "Kernels" in report
        assert "Other distributions" in report
        assert "rounds" in report
        # Aggregated across both lines: round.wall count is 2.
        wall_row = next(
            l for l in report.splitlines() if l.startswith("wall")
        )
        assert "| 2 " in wall_row

    def test_format_report_reads_profile_json(self, tmp_path):
        from repro.obs.profiling import Profiler

        obs_metrics.set_enabled(True)
        obs_metrics.registry().reset()
        obs_metrics.observe("round.wall", 0.25)
        prof = Profiler(top=5)
        prof.start()
        sum(range(1000))
        prof.write(tmp_path / "profile.json")
        report = format_report(tmp_path / "profile.json")
        assert "Per-round phases" in report
        data = json.loads((tmp_path / "profile.json").read_text())
        assert data["kind"] == "profile"
        assert data["peak_rss_bytes"] > 0
        assert isinstance(data["hot_functions"], list)

    def test_load_metrics_records_raises_when_nothing_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_metrics_records(tmp_path / "void")
