"""Property-based tests (hypothesis) for spaces, medoids and diameters."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spaces import (
    Euclidean,
    FlatTorus,
    JaccardSpace,
    diameter_exact,
    medoid_exact,
    sum_sq_distances,
)

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
coord2 = st.tuples(finite, finite)
torus_coord = st.tuples(
    st.floats(min_value=0, max_value=100, allow_nan=False),
    st.floats(min_value=0, max_value=50, allow_nan=False),
)
item_set = st.frozensets(st.integers(min_value=0, max_value=20), max_size=8)

PLANE = Euclidean(2)
TORUS = FlatTorus(100.0, 50.0)
JACCARD = JaccardSpace()


class TestEuclideanAxioms:
    @given(coord2, coord2)
    def test_symmetry(self, a, b):
        assert math.isclose(
            PLANE.distance(a, b), PLANE.distance(b, a), rel_tol=1e-9, abs_tol=1e-9
        )

    @given(coord2)
    def test_identity(self, a):
        assert PLANE.distance(a, a) == 0.0

    @given(coord2, coord2)
    def test_non_negative(self, a, b):
        assert PLANE.distance(a, b) >= 0.0

    @given(coord2, coord2, coord2)
    def test_triangle(self, a, b, c):
        assert PLANE.distance(a, c) <= (
            PLANE.distance(a, b) + PLANE.distance(b, c) + 1e-6
        )


class TestTorusAxioms:
    @given(torus_coord, torus_coord)
    def test_symmetry(self, a, b):
        assert math.isclose(
            TORUS.distance(a, b), TORUS.distance(b, a), rel_tol=1e-9, abs_tol=1e-9
        )

    @given(torus_coord)
    def test_identity(self, a):
        assert TORUS.distance(a, a) == 0.0

    @given(torus_coord, torus_coord, torus_coord)
    def test_triangle(self, a, b, c):
        assert TORUS.distance(a, c) <= (
            TORUS.distance(a, b) + TORUS.distance(b, c) + 1e-7
        )

    @given(torus_coord, torus_coord)
    def test_bounded_by_half_diagonal(self, a, b):
        assert TORUS.distance(a, b) <= TORUS.max_distance + 1e-9

    @given(torus_coord, torus_coord, st.integers(-3, 3), st.integers(-3, 3))
    def test_translation_invariance_by_periods(self, a, b, kx, ky):
        shifted = (b[0] + kx * 100.0, b[1] + ky * 50.0)
        assert math.isclose(
            TORUS.distance(a, b), TORUS.distance(a, shifted), abs_tol=1e-6
        )


class TestJaccardAxioms:
    @given(item_set, item_set)
    def test_symmetry(self, a, b):
        assert JACCARD.distance(a, b) == JACCARD.distance(b, a)

    @given(item_set)
    def test_identity(self, a):
        assert JACCARD.distance(a, a) == 0.0

    @given(item_set, item_set)
    def test_range(self, a, b):
        assert 0.0 <= JACCARD.distance(a, b) <= 1.0

    @given(item_set, item_set, item_set)
    def test_triangle(self, a, b, c):
        assert JACCARD.distance(a, c) <= (
            JACCARD.distance(a, b) + JACCARD.distance(b, c) + 1e-12
        )


class TestMedoidProperties:
    @given(st.lists(coord2, min_size=1, max_size=12))
    def test_medoid_is_member_and_argmin(self, coords):
        idx = medoid_exact(PLANE, coords)
        assert 0 <= idx < len(coords)
        best = min(sum_sq_distances(PLANE, c, coords) for c in coords)
        assert math.isclose(
            sum_sq_distances(PLANE, coords[idx], coords),
            best,
            rel_tol=1e-9,
            abs_tol=1e-9,
        )

    @given(st.lists(torus_coord, min_size=1, max_size=10))
    def test_medoid_on_torus(self, coords):
        idx = medoid_exact(TORUS, coords)
        best = min(sum_sq_distances(TORUS, c, coords) for c in coords)
        assert sum_sq_distances(TORUS, coords[idx], coords) <= best + 1e-9


class TestDiameterProperties:
    @given(st.lists(coord2, min_size=2, max_size=12))
    def test_diameter_is_max_pair(self, coords):
        i, j = diameter_exact(PLANE, coords)
        span = PLANE.distance(coords[i], coords[j])
        for a in coords:
            for b in coords:
                assert PLANE.distance(a, b) <= span + 1e-9

    @given(st.lists(torus_coord, min_size=2, max_size=10))
    def test_diameter_on_torus(self, coords):
        i, j = diameter_exact(TORUS, coords)
        span = TORUS.distance(coords[i], coords[j])
        for a in coords:
            for b in coords:
                assert TORUS.distance(a, b) <= span + 1e-9
