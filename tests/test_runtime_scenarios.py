"""Churn schedules: generators, composition, and determinism."""

from __future__ import annotations

import pickle

import pytest

from repro.errors import ConfigurationError
from repro.experiments.scenario import ScenarioConfig, build_simulation
from repro.runtime import checkpoint
from repro.runtime.scenarios import (
    ChurnSchedule,
    catastrophic,
    compose,
    correlated_region,
    flash_crowd,
    mass_failure,
    trickle,
)


def fresh_sim(seed: int = 2):
    config = ScenarioConfig(
        width=8,
        height=4,
        failure_round=None,
        reinjection_round=None,
        total_rounds=60,
        metrics=("homogeneity",),
        seed=seed,
    )
    sim, *_ = build_simulation(config)
    return sim


class TestGenerators:
    def test_catastrophic_half_space(self):
        sim = fresh_sim()
        catastrophic(5, threshold=4.0).install(sim)
        sim.run(6)
        # Half the 8-wide torus (x < 4.0) dies: 4 columns x 4 rows.
        assert sim.network.n_alive == 16

    def test_correlated_region_ball(self):
        sim = fresh_sim()
        schedule = correlated_region(sim.space, 3, center=(2.0, 2.0), radius=1.0)
        before = sim.network.n_alive
        schedule.install(sim)
        sim.run(4)
        died = before - sim.network.n_alive
        # The unit-step grid has exactly 5 nodes within distance 1 of
        # (2,2): the center and its 4 axis neighbours.
        assert died == 5

    def test_trickle_kills_roughly_rate(self):
        sim = fresh_sim()
        trickle(0, 19, rate=0.05).install(sim)
        sim.run(20)
        died = 32 - sim.network.n_alive
        # 5%/round over 20 rounds kills ~1-0.95^20 = 64% in expectation;
        # loose determinism-friendly bounds.
        assert 5 <= died <= 30

    def test_flash_crowd_spawns_pointless_nodes(self):
        sim = fresh_sim()
        positions = [(0.5, 0.5), (1.5, 0.5), (2.5, 0.5)]
        flash_crowd(4, positions).install(sim)
        sim.run(5)
        assert sim.network.n_total == 32 + 3
        fresh = [n for n in sim.network.alive_nodes() if n.initial_point is None]
        assert len(fresh) == 3

    def test_mass_failure_fraction(self):
        sim = fresh_sim()
        mass_failure(2, 0.25).install(sim)
        sim.run(3)
        assert sim.network.n_alive == 24

    def test_trickle_rejects_empty_window(self):
        with pytest.raises(ConfigurationError):
            trickle(10, 9, 0.1)

    def test_negative_round_rejected(self):
        with pytest.raises(ConfigurationError):
            ChurnSchedule("bad").add(-1, lambda sim: None)


class TestComposition:
    def test_compose_merges_sorted(self):
        merged = compose(
            flash_crowd(30, [(0.5, 0.5)]),
            catastrophic(10, threshold=4.0),
            trickle(15, 17, 0.01),
        )
        rounds = [rnd for rnd, _ in merged.events]
        assert rounds == sorted(rounds)
        assert merged.first_round == 10
        assert merged.last_round == 30
        assert len(merged) == 5

    def test_composite_workload_runs(self):
        """Trickle churn + a region outage + a flash crowd of
        replacements — a workload the paper never ran — executes
        deterministically end to end."""

        def build_and_run(seed: int) -> str:
            sim = fresh_sim(seed)
            compose(
                trickle(5, 15, 0.02),
                correlated_region(sim.space, 18, (2.0, 2.0), 2.5),
                flash_crowd(25, [(0.5, 0.5), (1.5, 1.5), (2.5, 2.5)]),
            ).install(sim)
            sim.run(30)
            return checkpoint.state_digest(sim)

        assert build_and_run(7) == build_and_run(7)
        assert build_and_run(7) != build_and_run(8)

    def test_schedules_are_picklable(self):
        sim = fresh_sim()
        schedule = compose(
            catastrophic(10, 4.0),
            trickle(5, 8, 0.01),
            correlated_region(sim.space, 12, (1.0, 1.0), 1.5),
            flash_crowd(20, [(0.5, 0.5)]),
            mass_failure(15, 0.1),
        )
        clone = pickle.loads(pickle.dumps(schedule))
        assert len(clone) == len(schedule)
        assert [rnd for rnd, _ in clone.events] == [
            rnd for rnd, _ in schedule.events
        ]

    def test_scheduled_sim_checkpoints_to_disk(self, tmp_path):
        """A simulation with a whole composite schedule pending can be
        saved, loaded, and resumed bit-identically."""
        sim = fresh_sim()
        compose(
            trickle(5, 15, 0.02),
            correlated_region(sim.space, 18, (2.0, 2.0), 2.5),
            flash_crowd(25, [(0.5, 0.5)]),
        ).install(sim)
        sim.run(3)
        path = tmp_path / "scheduled.ckpt"
        checkpoint.save(checkpoint.snapshot(sim), path)
        resumed = checkpoint.restore(checkpoint.load(path))
        sim.run(27)
        resumed.run(27)
        assert checkpoint.state_digest(sim) == checkpoint.state_digest(resumed)
