"""Tests for the T-Man topology construction layer."""

import pytest

from repro.gossip.rps import PeerSamplingLayer
from repro.gossip.tman import TManLayer
from repro.metrics.proximity import proximity
from repro.sim.engine import Simulation
from repro.sim.network import Network
from repro.spaces import FlatTorus

from .helpers import grid_coords


def build(width=8, height=8, seed=0, **tman_kwargs):
    space = FlatTorus(float(width), float(height))
    network = Network()
    for coord in grid_coords(width, height):
        network.add_node(coord)
    rps = PeerSamplingLayer(view_size=8, shuffle_length=4)
    kwargs = dict(message_size=10, psi=5, view_cap=30, bootstrap_size=5)
    kwargs.update(tman_kwargs)
    tman = TManLayer(space, rps, **kwargs)
    sim = Simulation(space, network, [rps, tman], seed=seed)
    sim.init_all_nodes()
    return sim, tman


class TestValidation:
    def test_message_size(self):
        space = FlatTorus(4.0)
        rps = PeerSamplingLayer(view_size=4, shuffle_length=2)
        with pytest.raises(ValueError):
            TManLayer(space, rps, message_size=0)

    def test_psi(self):
        space = FlatTorus(4.0)
        rps = PeerSamplingLayer(view_size=4, shuffle_length=2)
        with pytest.raises(ValueError):
            TManLayer(space, rps, psi=0)

    def test_view_cap(self):
        space = FlatTorus(4.0)
        rps = PeerSamplingLayer(view_size=4, shuffle_length=2)
        with pytest.raises(ValueError):
            TManLayer(space, rps, view_cap=0)


class TestInit:
    def test_bootstrap_from_rps(self):
        sim, tman = build()
        for node in sim.network.alive_nodes():
            assert 0 < len(node.tman_view) <= tman.bootstrap_size
            assert node.nid not in node.tman_view


class TestConvergence:
    def test_proximity_improves(self):
        sim, tman = build()
        start = proximity(sim.space, sim)
        sim.run(15)
        end = proximity(sim.space, sim)
        assert end < start

    def test_converges_to_grid_neighbours(self):
        sim, tman = build()
        sim.run(20)
        # On a converged unit grid the 4 closest neighbours are at
        # distance 1, so proximity approaches 1.0.
        assert proximity(sim.space, sim) < 1.25

    def test_view_bounded_by_cap(self):
        sim, tman = build(view_cap=12)
        sim.run(10)
        for node in sim.network.alive_nodes():
            assert len(node.tman_view) <= 12

    def test_deterministic_given_seed(self):
        sim_a, _ = build(seed=3)
        sim_b, _ = build(seed=3)
        sim_a.run(5)
        sim_b.run(5)
        views_a = {n.nid: dict(n.tman_view) for n in sim_a.network.alive_nodes()}
        views_b = {n.nid: dict(n.tman_view) for n in sim_b.network.alive_nodes()}
        assert views_a == views_b


class TestNeighbors:
    def test_neighbors_sorted_and_alive(self):
        sim, tman = build()
        sim.run(10)
        node = sim.network.node(0)
        neigh = tman.neighbors(sim, node, 4)
        assert len(neigh) == 4
        dists = [
            sim.space.distance(node.pos, node.tman_view[nid]) for nid in neigh
        ]
        assert dists == sorted(dists)

    def test_neighbors_skip_dead(self):
        sim, tman = build()
        sim.run(5)
        node = sim.network.node(0)
        victims = list(node.tman_view)[:3]
        sim.network.fail(victims, rnd=sim.round)
        neigh = tman.neighbors(sim, node, 10)
        assert not (set(neigh) & set(victims))

    def test_neighbors_empty_view(self):
        sim, tman = build()
        node = sim.network.node(0)
        node.tman_view = {}
        assert tman.neighbors(sim, node, 4) == []


class TestFailureHandling:
    def test_dead_entries_purged_on_gossip(self):
        sim, _ = build()
        sim.run(5)
        victims = list(range(8))
        sim.network.fail(victims, rnd=sim.round)
        sim.run(2)
        for node in sim.network.alive_nodes():
            assert not (set(node.tman_view) & set(victims))

    def test_boundary_relinks_after_half_failure(self):
        sim, _ = build()
        sim.run(10)
        victims = [n for n in range(64) if n // 8 < 4]  # x < 4 columns
        sim.network.fail(victims, rnd=sim.round)
        sim.run(5)
        # Survivors keep functional neighbourhoods (links healed).
        assert proximity(sim.space, sim) < 3.0

    def test_view_rebootstraps_when_emptied(self):
        sim, _ = build()
        node = sim.network.node(0)
        node.tman_view = {}
        sim.run(1)
        assert len(node.tman_view) > 0


class TestTraffic:
    def test_charges_tman_layer(self):
        sim, _ = build()
        sim.run(1)
        assert sim.meter.history[0].get("tman", 0) > 0

    def test_cost_bounded_by_message_size(self):
        sim, tman = build(message_size=10)
        sim.run(3)
        n = sim.network.n_alive
        for snapshot in sim.meter.history:
            # Each node initiates one exchange: 2 buffers of <= m
            # descriptors (3 units each), and is partner in at most
            # n-1 more — bound the per-round total loosely.
            assert snapshot["tman"] <= n * 2 * 2 * 10 * 3

    def test_updates_refresh_positions(self):
        sim, tman = build()
        sim.run(5)
        # Move a node, gossip, and check some peer learned the new pos.
        node = sim.network.node(0)
        node.pos = (3.3, 3.3)
        sim.run(2)
        learned = sum(
            1
            for other in sim.network.alive_nodes()
            if other.tman_view.get(0) == (3.3, 3.3)
        )
        assert learned > 0
