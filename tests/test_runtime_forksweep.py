"""Phase-fork sweeps: shared prefixes, checkpoint cache, byte-identity.

The load-bearing guarantee: a fork-mode sweep produces *exactly* the
results of a cold-start sweep, cell for cell — enforced here over an
8-cell ablation grid and down to the ``state_digest`` level, plus the
failure modes (corrupt cache, stale cache, unforkable cells) that must
degrade to cold runs rather than crash or drift.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.errors import ConfigurationError, RunnerError
from repro.experiments.scenario import (
    DIVERGENT_FIELDS,
    ScenarioConfig,
    apply_divergence,
    fork_round,
    prefix_scenario,
    prepare_scenario,
    run_prefix,
    run_scenario,
)
from repro.runtime import checkpoint
from repro.runtime.forksweep import (
    CheckpointCache,
    ForkContinuationTask,
    clear_checkpoint_memo,
    fork_scenarios,
    plan_fork_sweep,
    run_fork_sweep,
)
from repro.runtime.runner import ParallelRunner, SweepTask, grid_tasks
from repro.runtime.store import ResultStore, config_hash


def small_config(**overrides) -> ScenarioConfig:
    base = dict(
        width=8,
        height=4,
        failure_round=5,
        reinjection_round=12,
        total_rounds=16,
        metrics=("homogeneity",),
        seed=3,
    )
    base.update(overrides)
    return ScenarioConfig(**base)


def ablation_grid(**base_overrides):
    """An 8-cell grid diverging only after the failure round."""
    return grid_tasks(
        small_config(**base_overrides),
        {
            "failure_fraction": (0.25, 0.5),
            "reinjection_round": (12, None),
            "total_rounds": (16, 20),
        },
    )


def assert_results_identical(a, b, label=""):
    assert a.series == b.series, label
    assert a.n_alive == b.n_alive, label
    assert a.reliability == b.reliability, label
    assert a.reshaping_time == b.reshaping_time, label
    assert a.snapshots == b.snapshots, label
    assert a.message_history == b.message_history, label
    assert a.rps_fallbacks == b.rps_fallbacks, label


class TestPrefixSplit:
    def test_prefix_neutralises_exactly_the_divergent_fields(self):
        config = small_config(
            failure_fraction=0.25,
            detector_delay=2,
            reinjection_count=5,
            retention_rounds=10,
        )
        prefix = prefix_scenario(config)
        for field_name in DIVERGENT_FIELDS:
            assert getattr(prefix, field_name) != getattr(config, field_name)
        assert prefix.width == config.width
        assert prefix.split == config.split
        assert prefix.seed == config.seed
        assert prefix.failure_round == config.failure_round

    def test_prefix_is_idempotent(self):
        prefix = prefix_scenario(small_config())
        assert prefix_scenario(prefix) == prefix

    def test_divergent_variants_share_one_prefix(self):
        hashes = {
            config_hash(prefix_scenario(cfg))
            for cfg in (
                small_config(failure_fraction=0.25),
                small_config(failure_fraction=0.75),
                small_config(reinjection_round=None),
                small_config(total_rounds=30, reinjection_round=25),
                small_config(detector_delay=3),
            )
        }
        assert len(hashes) == 1

    def test_prefix_fields_split_the_groups(self):
        """Anything shaping Phase 1 — seed, K, split, shape — must not
        share a checkpoint."""
        base = config_hash(prefix_scenario(small_config()))
        for overrides in (
            {"seed": 4},
            {"replication": 2},
            {"split": "pd"},
            {"width": 16},
            {"failure_round": 6},
        ):
            other = config_hash(prefix_scenario(small_config(**overrides)))
            assert other != base, overrides

    def test_unforkable_configs(self):
        assert prefix_scenario(small_config(failure_round=None,
                                            reinjection_round=None)) is None
        assert fork_round(small_config(failure_round=0)) is None

    def test_apply_divergence_rejects_wrong_round(self):
        config = small_config()
        sim = run_prefix(config)
        sim.run(1)
        with pytest.raises(ConfigurationError, match="forks at round"):
            apply_divergence(sim, config)

    def test_apply_divergence_rejects_foreign_prefix(self):
        sim = run_prefix(small_config(seed=1))
        with pytest.raises(ConfigurationError, match="mismatch"):
            apply_divergence(sim, small_config(seed=2))

    def test_apply_divergence_requires_handles(self):
        from repro.experiments.scenario import build_simulation

        sim, *_ = build_simulation(prefix_scenario(small_config()))
        sim.run(5)
        with pytest.raises(ConfigurationError, match="handles"):
            apply_divergence(sim, small_config())


class TestByteIdentity:
    def test_fork_equals_cold_at_digest_level(self):
        """The strongest form: the *simulation state* after a forked
        continuation equals the cold run's, bit for bit."""
        config = small_config(failure_fraction=0.25)
        cold_sim, *_ = prepare_scenario(config)
        cold_sim.run(config.total_rounds)

        ck = checkpoint.snapshot(run_prefix(config))
        forked = apply_divergence(checkpoint.restore(ck), config)
        forked.run(config.total_rounds - forked.round)

        assert checkpoint.state_digest(forked) == checkpoint.state_digest(
            cold_sim
        )

    def test_eight_cell_grid_identical_to_cold(self, tmp_path):
        """Acceptance criterion: a fork-mode sweep over a >= 8-cell
        ablation grid matches cold-start mode per cell."""
        tasks = ablation_grid()
        assert len(tasks) >= 8
        plan = plan_fork_sweep(tasks)
        assert len(plan.groups) == 1 and not plan.cold

        cold = ParallelRunner(workers=1).run(tasks)
        forked = run_fork_sweep(
            tasks, workers=1, cache=CheckpointCache(tmp_path)
        )
        for cold_cell, fork_cell in zip(cold, forked):
            assert cold_cell.ok and fork_cell.ok
            assert fork_cell.forked_from is not None
            assert_results_identical(
                cold_cell.result, fork_cell.result, fork_cell.task_id
            )

    def test_parallel_fork_sweep_identical(self, tmp_path):
        tasks = ablation_grid()
        cold = ParallelRunner(workers=1).run(tasks)
        forked = run_fork_sweep(
            tasks, workers=2, cache=CheckpointCache(tmp_path)
        )
        for cold_cell, fork_cell in zip(cold, forked):
            assert_results_identical(cold_cell.result, fork_cell.result)

    def test_detector_delay_diverges_from_shared_prefix(self, tmp_path):
        configs = [
            small_config(detector_delay=d, reinjection_round=None)
            for d in (0, 2)
        ]
        forked = fork_scenarios(configs, cache=CheckpointCache(tmp_path))
        for config, result in zip(configs, forked):
            assert_results_identical(result, run_scenario(config))
        # The delayed detector must actually change the outcome, or the
        # divergence axis is vacuous.
        assert forked[0].series != forked[1].series

    def test_mixed_grid_runs_unforkable_cells_cold(self, tmp_path):
        tasks = ablation_grid() + [
            SweepTask(
                task_id="no-failure",
                config=small_config(
                    failure_round=None, reinjection_round=None
                ),
            )
        ]
        plan = plan_fork_sweep(tasks)
        assert [t.task_id for t in plan.cold] == ["no-failure"]
        cells = run_fork_sweep(tasks, workers=1, cache=CheckpointCache(tmp_path))
        assert all(cell.ok for cell in cells)
        assert cells[-1].forked_from is None
        assert_results_identical(
            cells[-1].result, run_scenario(tasks[-1].config)
        )


class TestCheckpointCache:
    def test_store_then_load_roundtrip(self, tmp_path):
        config = small_config()
        prefix = prefix_scenario(config)
        cache = CheckpointCache(tmp_path)
        digest, path = cache.store(
            prefix, checkpoint.snapshot(run_prefix(config))
        )
        assert path.exists()
        assert cache.digest_of(cache.key(prefix)) == digest
        loaded = cache.load(cache.key(prefix))
        assert loaded is not None
        assert checkpoint.state_digest(loaded.sim) == digest

    def test_truncated_checkpoint_is_a_miss_not_a_crash(self, tmp_path):
        config = small_config()
        cache = CheckpointCache(tmp_path)
        _, path = cache.store(
            prefix_scenario(config), checkpoint.snapshot(run_prefix(config))
        )
        path.write_bytes(path.read_bytes()[:64])
        assert cache.load(cache.key(prefix_scenario(config))) is None
        assert not path.exists()  # corrupt entry discarded

    def test_stale_digest_is_a_miss(self, tmp_path):
        """A checkpoint whose content no longer matches its advertised
        digest (simulation semantics changed under the cache) must be
        recomputed, not trusted."""
        config = small_config()
        cache = CheckpointCache(tmp_path)
        _, path = cache.store(
            prefix_scenario(config), checkpoint.snapshot(run_prefix(config))
        )
        lied = path.with_name(
            path.name.split("-", 1)[0] + "-" + "f" * 64 + ".ckpt"
        )
        path.rename(lied)
        assert cache.load(cache.key(prefix_scenario(config))) is None
        assert not lied.exists()

    def test_corrupt_cache_sweep_falls_back_cold(self, tmp_path):
        tasks = ablation_grid()
        cache = CheckpointCache(tmp_path)
        cold = ParallelRunner(workers=1).run(tasks)
        run_fork_sweep(tasks, workers=1, cache=cache)  # populate
        ckpt_path = Path(cache.entries()[0]["path"])
        ckpt_path.write_bytes(ckpt_path.read_bytes()[:100])
        # A fresh process would read the truncated file from disk; in
        # this one the (correctness-neutral) memo still holds the good
        # copy, so drop it to actually exercise the corruption path.
        clear_checkpoint_memo()

        cells = run_fork_sweep(tasks, workers=1, cache=cache)
        for cold_cell, cell in zip(cold, cells):
            assert cell.ok
            assert cell.forked_from is None  # cold fallback, recorded as such
            assert_results_identical(cold_cell.result, cell.result)

    def test_entries_and_gc(self, tmp_path):
        cache = CheckpointCache(tmp_path)
        for seed in (1, 2):
            config = small_config(seed=seed)
            cache.store(
                prefix_scenario(config),
                checkpoint.snapshot(run_prefix(config)),
            )
        entries = cache.entries()
        assert len(entries) == 2
        for entry in entries:
            assert entry["round"] == 5
            assert entry["size_bytes"] > 0
            assert entry["config"]["failure_fraction"] == 0.0
        # Age-gated gc keeps fresh entries; unconditional gc drops all.
        assert cache.gc(older_than_s=3600.0) == []
        removed = cache.gc()
        assert len(removed) == 2
        assert cache.entries() == []
        assert not any(tmp_path.glob("*.json"))

    def test_gc_on_missing_directory(self, tmp_path):
        cache = CheckpointCache(tmp_path / "never-created")
        assert cache.entries() == []
        assert cache.gc() == []

    def test_sidecar_metadata_is_json(self, tmp_path):
        from repro.sim.engine import SEMANTICS_VERSION

        config = small_config()
        cache = CheckpointCache(tmp_path)
        digest, path = cache.store(
            prefix_scenario(config), checkpoint.snapshot(run_prefix(config))
        )
        meta = json.loads(path.with_suffix(".json").read_text())
        assert meta["state_digest"] == digest
        assert meta["n_alive"] == 32
        assert meta["semantics_version"] == SEMANTICS_VERSION

    def test_semantics_version_bump_orphans_old_entries(
        self, tmp_path, monkeypatch
    ):
        """A declared change to simulation semantics must never fork
        from pre-change checkpoints: the version is part of the key."""
        config = small_config()
        prefix = prefix_scenario(config)
        cache = CheckpointCache(tmp_path)
        cache.store(prefix, checkpoint.snapshot(run_prefix(config)))
        old_key = cache.key(prefix)
        assert cache.find(old_key) is not None

        monkeypatch.setattr("repro.sim.engine.SEMANTICS_VERSION", 999)
        new_key = cache.key(prefix)
        assert new_key != old_key
        assert cache.find(new_key) is None  # old entry never found again

    def test_second_sweep_reuses_the_cached_prefix(self, tmp_path):
        tasks = ablation_grid()
        cache = CheckpointCache(tmp_path)
        seen = []

        def progress(done, total, cell):
            seen.append(cell.task_id)

        run_fork_sweep(tasks, workers=1, cache=cache, progress=progress)
        first = [tid for tid in seen if tid.startswith("prefix-")]
        assert len(first) == 1
        seen.clear()
        run_fork_sweep(tasks, workers=1, cache=cache, progress=progress)
        assert not any(tid.startswith("prefix-") for tid in seen)


class TestStoreIntegration:
    def test_forked_from_recorded_per_cell(self, tmp_path):
        tasks = ablation_grid()
        store = ResultStore(tmp_path / "results.jsonl")
        cache = CheckpointCache(tmp_path / "ck")
        run_fork_sweep(tasks, workers=1, cache=cache, store=store, run_id="fork-run")
        records = store.cells(run_id="fork-run", status="ok")
        assert len(records) == len(tasks)
        digests = {record["forked_from"] for record in records}
        assert len(digests) == 1 and None not in digests
        prefix_hash = plan_fork_sweep(tasks).groups[0].prefix_hash
        assert digests == {cache.digest_of(prefix_hash)}

    def test_resume_after_interrupt_skips_done_cells(self, tmp_path):
        tasks = ablation_grid()
        store = ResultStore(tmp_path / "results.jsonl")
        cache = CheckpointCache(tmp_path / "ck")
        run_fork_sweep(
            tasks[:3], workers=1, cache=cache, store=store, run_id="resume-me"
        )
        cells = run_fork_sweep(
            tasks, workers=1, cache=cache, store=store, run_id="resume-me"
        )
        # Only the missing cells ran; the store now covers the grid.
        assert len(cells) == len(tasks) - 3
        assert store.completed("resume-me") == {t.task_id for t in tasks}

    def test_resume_of_finished_run_skips_prefix_simulation(self, tmp_path):
        """A completed sweep whose cache was gc'ed must not re-simulate
        prefixes nobody needs on resume."""
        tasks = ablation_grid()
        store = ResultStore(tmp_path / "results.jsonl")
        cache = CheckpointCache(tmp_path / "ck")
        run_fork_sweep(tasks, workers=1, cache=cache, store=store, run_id="done")
        cache.gc()
        seen = []
        cells = run_fork_sweep(
            tasks,
            workers=1,
            cache=cache,
            store=store,
            run_id="done",
            progress=lambda d, t, cell: seen.append(cell.task_id),
        )
        assert cells == [] and seen == []
        assert cache.entries() == []  # nothing was recomputed either

    def test_cold_cells_store_null_provenance(self, tmp_path):
        store = ResultStore(tmp_path / "results.jsonl")
        tasks = [
            SweepTask(
                task_id="cold",
                config=small_config(
                    failure_round=None, reinjection_round=None
                ),
            )
        ]
        run_fork_sweep(
            tasks,
            workers=1,
            cache=CheckpointCache(tmp_path / "ck"),
            store=store,
            run_id="r",
        )
        (record,) = store.cells(run_id="r")
        assert record["forked_from"] is None


class TestForkScenarios:
    def test_results_in_input_order(self, tmp_path):
        configs = [
            small_config(failure_fraction=f, reinjection_round=None)
            for f in (0.5, 0.25)
        ]
        results = fork_scenarios(configs, cache=CheckpointCache(tmp_path))
        assert [r.config.failure_fraction for r in results] == [0.5, 0.25]

    def test_errors_are_reraised(self, tmp_path, monkeypatch):
        def boom(self):
            raise ValueError("exploded in the worker")

        monkeypatch.setattr(ForkContinuationTask, "run", boom)
        with pytest.raises(RunnerError, match="exploded"):
            fork_scenarios(
                [small_config()], cache=CheckpointCache(tmp_path)
            )

    def test_plan_describe_mentions_savings(self):
        plan = plan_fork_sweep(ablation_grid())
        text = plan.describe()
        assert "1 shared prefix" in text
        assert f"{plan.rounds_saved} Phase-1 rounds" in text
        assert plan.rounds_saved == 5 * (8 - 1)
