"""Metrics registry: counters, gauges, histograms, timers, flushing."""

from __future__ import annotations

import json
import multiprocessing
import os
import threading

import pytest

from repro import obs
from repro.obs import log as obs_log
from repro.obs import metrics as obs_metrics
from repro.obs import mem as obs_mem
from repro.obs import series as obs_series
from repro.obs import trace as obs_trace
from repro.obs.metrics import Histogram, MetricsRegistry, timed


@pytest.fixture(autouse=True)
def obs_clean():
    """Every test leaves observability exactly as it found it: off."""
    yield
    obs_metrics.set_enabled(False)
    obs_metrics.registry().reset()
    obs_log.set_level("off")
    obs_log.set_events_path(None)
    obs.profiling.set_active(False)
    obs._RUN_DIR = None
    obs_trace.set_enabled(False)
    obs_trace.set_spans_path(None)
    obs_trace._BUFFER.clear()
    obs_trace._CTX.set(None)
    obs_series.set_enabled(False)
    obs_series.set_series_path(None)
    obs_series._BUFFER.clear()
    obs_series.reset_cell()
    obs_mem.set_enabled(False)
    obs_mem.reset()
    for var in (
        obs.ENV_LOG,
        obs.ENV_OBS_DIR,
        obs.ENV_OBS,
        obs.ENV_PROFILE,
        obs_trace.ENV_CTX,
    ):
        os.environ.pop(var, None)


class TestHistogram:
    def test_five_number_summary(self):
        h = Histogram()
        for v in (3.0, 1.0, 2.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(6.0)
        assert snap["min"] == 1.0
        assert snap["max"] == 3.0
        assert snap["mean"] == pytest.approx(2.0)

    def test_empty_snapshot_has_finite_bounds(self):
        snap = Histogram().snapshot()
        assert snap == {
            "count": 0,
            "sum": 0.0,
            "min": 0.0,
            "max": 0.0,
            "mean": 0.0,
            "p50": 0.0,
            "p95": 0.0,
            "p99": 0.0,
            "res": [],
        }

    def test_merge_is_exact(self):
        """Merging per-process snapshots equals observing everything in
        one histogram — exactly for count/sum/min/max/mean (the
        property the obs report's aggregation rests on); the percentile
        reservoirs carry the same sample here (both under cap) merely
        in a different order."""
        a, b, whole = Histogram(), Histogram(), Histogram()
        for i, v in enumerate([0.5, 4.0, 1.5, 2.5, 0.1]):
            (a if i % 2 else b).observe(v)
            whole.observe(v)
        merged = Histogram()
        merged.merge_snapshot(a.snapshot())
        merged.merge_snapshot(b.snapshot())
        got, want = merged.snapshot(), whole.snapshot()
        for key in ("count", "sum", "min", "max", "mean", "p50", "p95", "p99"):
            assert got[key] == want[key], key
        assert sorted(got["res"]) == sorted(want["res"])

    def test_percentiles_from_reservoir(self):
        h = Histogram()
        for v in range(1, 101):  # 1..100, fewer than fits exactly? no: cap 64
            h.observe(float(v))
        snap = h.snapshot()
        # Reservoir is an unbiased sample; with values spanning 1..100
        # the estimates must land inside the observed range and be
        # ordered.
        assert snap["min"] == 1.0 and snap["max"] == 100.0
        assert 1.0 <= snap["p50"] <= snap["p95"] <= snap["p99"] <= 100.0
        assert len(snap["res"]) == obs_metrics.RESERVOIR_CAP

    def test_percentiles_exact_when_under_cap(self):
        h = Histogram()
        for v in range(1, 21):  # 20 values, cap is 64 -> exact sample
            h.observe(float(v))
        snap = h.snapshot()
        assert snap["p50"] == 10.0
        assert snap["p95"] == 19.0
        assert snap["p99"] == 20.0

    def test_merging_empty_snapshot_is_noop(self):
        h = Histogram()
        h.observe(1.0)
        before = h.snapshot()
        h.merge_snapshot(Histogram().snapshot())
        assert h.snapshot() == before


class TestRegistry:
    def test_counters_accumulate(self):
        reg = MetricsRegistry()
        reg.count("x")
        reg.count("x", 4)
        assert reg.counter_value("x") == 5
        assert reg.counter_value("absent") == 0

    def test_gauge_last_wins_gauge_max_keeps_peak(self):
        reg = MetricsRegistry()
        reg.gauge("g", 10.0)
        reg.gauge("g", 3.0)
        reg.gauge_max("peak", 10.0)
        reg.gauge_max("peak", 3.0)
        snap = reg.snapshot()
        assert snap["gauges"]["g"] == 3.0
        assert snap["gauges"]["peak"] == 10.0

    def test_timer_records_elapsed(self):
        reg = MetricsRegistry()
        with reg.timer("t"):
            pass
        h = reg.hist("t")
        assert h["count"] == 1
        assert h["min"] >= 0.0

    def test_timer_nesting_same_name_is_independent(self):
        """Nested timings of one name are separate observations with
        the outer >= the inner (each ``timer`` call returns a fresh
        instance)."""
        reg = MetricsRegistry()
        with reg.timer("t"):
            with reg.timer("t"):
                pass
        h = reg.hist("t")
        assert h["count"] == 2
        assert h["max"] >= h["min"]

    def test_reset_and_is_empty(self):
        reg = MetricsRegistry()
        assert reg.is_empty()
        reg.count("x")
        reg.observe("h", 1.0)
        reg.gauge("g", 1.0)
        assert not reg.is_empty()
        reg.reset()
        assert reg.is_empty()

    def test_merge_snapshot_counters_add_gauges_max(self):
        reg = MetricsRegistry()
        reg.count("c", 2)
        reg.gauge("g", 5.0)
        reg.merge_snapshot({"counters": {"c": 3}, "gauges": {"g": 1.0}})
        snap = reg.snapshot()
        assert snap["counters"]["c"] == 5
        assert snap["gauges"]["g"] == 5.0

    def test_thread_safety_under_contention(self):
        """Concurrent counting/observing from many threads loses no
        updates (the worker heartbeat thread shares the registry with
        the drain loop)."""
        reg = MetricsRegistry()
        n_threads, per_thread = 8, 500

        def pound():
            for _ in range(per_thread):
                reg.count("c")
                reg.observe("h", 1.0)

        threads = [threading.Thread(target=pound) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter_value("c") == n_threads * per_thread
        assert reg.hist("h")["count"] == n_threads * per_thread


class TestModuleFastPath:
    def test_disabled_records_nothing(self):
        obs_metrics.registry().reset()
        obs_metrics.set_enabled(False)
        obs_metrics.count("x")
        obs_metrics.observe("h", 1.0)
        obs_metrics.gauge("g", 1.0)
        with obs_metrics.timer("t"):
            pass
        assert obs_metrics.registry().is_empty()

    def test_disabled_timer_is_the_null_singleton(self):
        obs_metrics.set_enabled(False)
        assert obs_metrics.timer("t") is obs_metrics.NULL_TIMER

    def test_enabled_records(self):
        obs_metrics.registry().reset()
        obs_metrics.set_enabled(True)
        obs_metrics.count("x", 2)
        with obs_metrics.timer("t"):
            pass
        reg = obs_metrics.registry()
        assert reg.counter_value("x") == 2
        assert reg.hist("t")["count"] == 1


class TestTimedDecorator:
    def test_preserves_function_and_marks_wrapper(self):
        @timed("kernel.probe")
        def add(a, b):
            return a + b

        assert add(1, 2) == 3
        assert add.__obs_timed__ == "kernel.probe"
        assert add.__wrapped__(3, 4) == 7
        assert add.__name__ == "add"

    def test_times_only_when_enabled(self):
        @timed("kernel.probe2")
        def work():
            return 42

        obs_metrics.registry().reset()
        obs_metrics.set_enabled(False)
        work()
        assert obs_metrics.registry().hist("kernel.probe2") is None
        obs_metrics.set_enabled(True)
        work()
        work()
        assert obs_metrics.registry().hist("kernel.probe2")["count"] == 2

    def test_records_even_when_the_kernel_raises(self):
        @timed("kernel.boom")
        def boom():
            raise ValueError("x")

        obs_metrics.registry().reset()
        obs_metrics.set_enabled(True)
        with pytest.raises(ValueError):
            boom()
        assert obs_metrics.registry().hist("kernel.boom")["count"] == 1

    def test_shipped_kernels_are_wrapped(self):
        from repro.core import split as core_split
        from repro.sim.batch import kernels as batch_kernels

        assert core_split.split_basic.__obs_timed__ == "kernel.split.basic"
        assert (
            batch_kernels.pairs_member.__obs_timed__ == "kernel.pairs_member"
        )


def _flush_lines(path, worker):
    """Child body for the concurrent-flush test (module-level: pickles
    under spawn)."""
    reg = MetricsRegistry()
    for i in range(50):
        reg.count("cells", 1)
        reg.observe("h", float(i))
        obs_metrics.flush(path, ctx={"worker": worker}, snapshot=reg.snapshot())


class TestFlush:
    def test_flush_appends_one_parseable_line(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        reg = MetricsRegistry()
        reg.count("c", 1)
        record = obs_metrics.flush(path, ctx={"task": "t1"}, snapshot=reg.snapshot())
        assert record["kind"] == "metrics"
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        parsed = json.loads(lines[0])
        assert parsed["ctx"] == {"task": "t1"}
        assert parsed["counters"] == {"c": 1}

    def test_concurrent_flushers_interleave_whole_lines(self, tmp_path):
        """O_APPEND single-write flushing: many processes appending to
        one metrics.jsonl never tear each other's lines."""
        path = str(tmp_path / "metrics.jsonl")
        ctx = multiprocessing.get_context()
        procs = [
            ctx.Process(target=_flush_lines, args=(path, f"w{i}"))
            for i in range(4)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join()
        assert all(p.exitcode == 0 for p in procs)
        lines = open(path).read().splitlines()
        assert len(lines) == 4 * 50
        for line in lines:
            json.loads(line)  # every line parses — no interleaving


class TestCellScope:
    def test_reset_for_cell_clears_registry_and_binds_context(self):
        obs_metrics.set_enabled(True)
        obs_metrics.count("stale", 9)
        with obs.reset_for_cell(task_id="cell-1", seed=7):
            assert obs_metrics.registry().is_empty()
            assert obs_log.context() == {"task_id": "cell-1", "seed": 7}
        assert obs_log.context() == {}

    def test_flush_cell_metrics_disabled_returns_none(self):
        obs_metrics.set_enabled(False)
        assert obs.flush_cell_metrics() is None

    def test_flush_cell_metrics_empty_registry_returns_none(self):
        obs_metrics.set_enabled(True)
        obs_metrics.registry().reset()
        assert obs.flush_cell_metrics() is None

    def test_flush_cell_metrics_writes_and_returns_snapshot(self, tmp_path):
        obs.configure(dir=tmp_path, export_env=False)
        obs_metrics.count("c", 3)
        with obs_log.bind(task_id="cell-9"):
            snap = obs.flush_cell_metrics({"status": "ok"})
        assert snap["counters"]["c"] == 3
        lines = (tmp_path / "obs" / "metrics.jsonl").read_text().splitlines()
        record = json.loads(lines[0])
        assert record["ctx"] == {"task_id": "cell-9", "status": "ok"}


class TestConfigure:
    def test_configure_exports_env_for_children(self, tmp_path):
        obs.configure(log_level="info", dir=tmp_path, profile=True)
        assert os.environ[obs.ENV_LOG] == "info"
        assert os.environ[obs.ENV_OBS_DIR] == str(tmp_path)
        assert os.environ[obs.ENV_PROFILE] == "1"
        assert obs_metrics.ENABLED  # dir implies metrics

    def test_configure_from_env_adopts_without_reexport(self, tmp_path):
        env = {
            obs.ENV_LOG: "warning",
            obs.ENV_OBS_DIR: str(tmp_path),
            obs.ENV_OBS: "1",
        }
        obs.configure_from_env(env)
        assert obs_log.LEVEL == obs_log.WARNING
        assert obs.metrics_path() == tmp_path / "obs" / "metrics.jsonl"
        assert obs_metrics.ENABLED

    def test_none_arguments_leave_settings_untouched(self, tmp_path):
        obs.configure(log_level="debug", dir=tmp_path, export_env=False)
        obs.configure(export_env=False)
        assert obs_log.LEVEL == obs_log.DEBUG
        assert obs.run_dir() == tmp_path
