"""Tests for the network model and failure detectors."""

import random

import pytest

from repro.errors import DeadNodeError, UnknownNodeError
from repro.sim.network import (
    DelayedFailureDetector,
    Network,
    PerfectFailureDetector,
)
from repro.types import DataPoint


def make_network(n=5):
    net = Network()
    for i in range(n):
        net.add_node((float(i), 0.0), DataPoint(i, (float(i), 0.0)))
    return net


class TestMembership:
    def test_sequential_ids(self):
        net = make_network(3)
        assert sorted(net.nodes) == [0, 1, 2]

    def test_counts(self):
        net = make_network(4)
        assert net.n_total == 4
        assert net.n_alive == 4

    def test_node_lookup(self):
        net = make_network(2)
        assert net.node(1).pos == (1.0, 0.0)

    def test_unknown_node(self):
        net = make_network(1)
        with pytest.raises(UnknownNodeError):
            net.node(99)

    def test_initial_point_attached(self):
        net = make_network(2)
        assert net.node(0).initial_point.pid == 0

    def test_add_node_without_point(self):
        net = make_network(1)
        node = net.add_node((5.0, 5.0))
        assert node.initial_point is None
        assert net.is_alive(node.nid)


class TestFailures:
    def test_fail_removes_from_alive(self):
        net = make_network(3)
        net.fail([1], rnd=4)
        assert not net.is_alive(1)
        assert net.n_alive == 2
        assert net.death_round(1) == 4

    def test_fail_idempotent(self):
        net = make_network(3)
        assert net.fail([1], rnd=1) == [1]
        assert net.fail([1], rnd=2) == []
        assert net.death_round(1) == 1

    def test_fail_unknown_raises(self):
        net = make_network(1)
        with pytest.raises(UnknownNodeError):
            net.fail([42], rnd=0)

    def test_alive_node_accessor(self):
        net = make_network(2)
        net.fail([0], rnd=0)
        with pytest.raises(DeadNodeError):
            net.alive_node(0)
        assert net.alive_node(1).nid == 1

    def test_alive_ids_cache_invalidation(self):
        net = make_network(3)
        before = net.alive_ids()
        net.fail([0], rnd=0)
        assert 0 not in net.alive_ids()
        assert 0 in before  # old list untouched

    def test_crash_stop_no_recovery_path(self):
        net = make_network(2)
        net.fail([0], rnd=0)
        # There is intentionally no API to resurrect a node.
        assert not hasattr(net, "revive")


class TestSampling:
    def test_random_alive_excludes(self):
        net = make_network(5)
        rng = random.Random(0)
        out = net.random_alive(rng, 3, exclude=[0, 1])
        assert set(out) <= {2, 3, 4}

    def test_random_alive_skips_dead(self):
        net = make_network(5)
        net.fail([0, 1, 2], rnd=0)
        rng = random.Random(0)
        assert set(net.random_alive(rng, 5)) == {3, 4}

    def test_random_alive_empty_pool(self):
        net = make_network(1)
        rng = random.Random(0)
        assert net.random_alive(rng, 2, exclude=[0]) == []


class TestDetectors:
    def test_perfect_detector_immediate(self):
        net = Network(PerfectFailureDetector())
        net.add_node((0.0,))
        net.fail([0], rnd=5)
        assert net.detects_failed(0, rnd=5)

    def test_perfect_detector_alive(self):
        net = Network(PerfectFailureDetector())
        net.add_node((0.0,))
        assert not net.detects_failed(0, rnd=0)

    def test_delayed_detector(self):
        net = Network(DelayedFailureDetector(delay=3))
        net.add_node((0.0,))
        net.fail([0], rnd=10)
        assert not net.detects_failed(0, rnd=10)
        assert not net.detects_failed(0, rnd=12)
        assert net.detects_failed(0, rnd=13)

    def test_delayed_detector_never_false_positive(self):
        net = Network(DelayedFailureDetector(delay=2))
        net.add_node((0.0,))
        assert not net.detects_failed(0, rnd=100)

    def test_delay_zero_equals_perfect(self):
        net = Network(DelayedFailureDetector(delay=0))
        net.add_node((0.0,))
        net.fail([0], rnd=1)
        assert net.detects_failed(0, rnd=1)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            DelayedFailureDetector(delay=-1)

    def test_detects_unknown_raises(self):
        net = make_network(1)
        with pytest.raises(UnknownNodeError):
            net.detects_failed(9, rnd=0)
