"""Tests for Polystyrene configuration, point factory, and node state."""

import pytest

from repro.core.config import PolystyreneConfig
from repro.core.points import PointFactory
from repro.core.state import PolystyreneState
from repro.errors import ConfigurationError
from repro.types import DataPoint


class TestConfig:
    def test_defaults_match_paper(self):
        config = PolystyreneConfig()
        assert config.replication == 4
        assert config.psi == 5
        assert config.split == "advanced"
        assert config.projection == "medoid"

    def test_invalid_replication(self):
        with pytest.raises(ConfigurationError):
            PolystyreneConfig(replication=-1)

    def test_zero_replication_allowed(self):
        # K=0 means no backups: recovery can never fire, but the
        # migration machinery still works.
        assert PolystyreneConfig(replication=0).replication == 0

    def test_invalid_split(self):
        with pytest.raises(ConfigurationError):
            PolystyreneConfig(split="fancy")

    def test_invalid_projection(self):
        with pytest.raises(ConfigurationError):
            PolystyreneConfig(projection="mean")

    def test_invalid_placement(self):
        with pytest.raises(ConfigurationError):
            PolystyreneConfig(backup_placement="everywhere")

    def test_invalid_psi(self):
        with pytest.raises(ConfigurationError):
            PolystyreneConfig(psi=0)

    def test_all_splits_accepted(self):
        for split in ("basic", "pd", "md", "advanced"):
            assert PolystyreneConfig(split=split).split == split


class TestPointFactory:
    def test_sequential_ids(self):
        factory = PointFactory()
        a = factory.create((0.0, 0.0))
        b = factory.create((1.0, 1.0))
        assert (a.pid, b.pid) == (0, 1)

    def test_create_many(self):
        factory = PointFactory()
        points = factory.create_many([(0.0,), (1.0,), (2.0,)])
        assert [p.pid for p in points] == [0, 1, 2]

    def test_registry(self):
        factory = PointFactory()
        point = factory.create((3.0,))
        assert factory.get(point.pid) is point
        assert len(factory) == 1

    def test_all_points_order(self):
        factory = PointFactory()
        created = factory.create_many([(0.0,), (1.0,)])
        assert factory.all_points == created


class TestState:
    def test_initial_guests(self):
        point = DataPoint(0, (0.0, 0.0))
        state = PolystyreneState([point])
        assert state.n_guests == 1
        assert state.guests[0] is point

    def test_empty_state(self):
        state = PolystyreneState()
        assert state.n_guests == 0
        assert state.n_ghosts == 0
        assert state.storage_load == 0
        assert state.backups == set()

    def test_add_guests_dedups_by_pid(self):
        state = PolystyreneState()
        state.add_guests([DataPoint(1, (0.0,)), DataPoint(1, (0.0,))])
        assert state.n_guests == 1

    def test_set_guests_replaces(self):
        state = PolystyreneState([DataPoint(1, (0.0,))])
        state.set_guests([DataPoint(2, (1.0,)), DataPoint(3, (2.0,))])
        assert sorted(state.guests) == [2, 3]

    def test_storage_counts_ghosts(self):
        state = PolystyreneState([DataPoint(1, (0.0,))])
        state.ghosts[7] = {2: DataPoint(2, (1.0,)), 3: DataPoint(3, (2.0,))}
        state.ghosts[9] = {4: DataPoint(4, (3.0,))}
        assert state.n_ghosts == 3
        assert state.storage_load == 4

    def test_ghost_origins(self):
        state = PolystyreneState()
        state.ghosts[5] = {}
        state.ghosts[2] = {}
        assert sorted(state.ghost_origins()) == [2, 5]
