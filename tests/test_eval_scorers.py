"""Scorer unit tests against synthetic stored cells.

Every scorer consumes result-store cell records, never live
simulations — so these tests hand-build the records (correct content
hashes, synthetic summaries) and pin the verdicts: known-pass,
known-fail, borderline-on-tolerance, and missing-cell ensembles."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.eval.dataset import case_by_id
from repro.eval.scorers import (
    FAIL,
    PASS,
    SKIP,
    CaseCells,
    extract_stat,
    group_cells,
    score_band,
    score_case,
    score_equivalence,
    score_improvement,
    score_threshold,
)
from repro.runtime.store import config_hash

BAND_CASE = case_by_id("smoke/fig6-homogeneity")
THRESHOLD_MAX_CASE = case_by_id("smoke/fig6-shape-recovery")
THRESHOLD_MIN_CASE = case_by_id("smoke/table2-reliability-floor")
IMPROVEMENT_CASE = case_by_id("smoke/fig89-repair-progress")
CONVERGED_CASE = case_by_id("smoke/table2-reshaping")
EQUIVALENCE_CASE = case_by_id("equivalence/base")


def summary(
    mid=0.30, final=0.10, pre_reinjection=0.25, early=0.6, late=0.3,
    reliability=0.97, reshaping=12.0,
):
    return {
        "reliability": reliability,
        "reshaping_time": reshaping,
        "final": {"homogeneity": final, "proximity": 0.99},
        "probes": {
            "mid_recovery": {"homogeneity": mid},
            "early_repair": {"homogeneity": early},
            "late_repair": {"homogeneity": late},
            "pre_reinjection": {"homogeneity": pre_reinjection},
        },
        "storage_peak": 4.0,
        "message_mean": 60.0,
    }


def records_for(case, engine, summary_fn=None, drop=0):
    """Synthetic ok cells for a case's grid: correct content hashes so
    :func:`group_cells` accepts them, summaries from ``summary_fn``."""
    make = summary_fn or (lambda label, config: summary())
    records = [
        {
            "kind": "cell",
            "status": "ok",
            "config_hash": config_hash(config),
            "summary": make(label, config),
        }
        for label, config in case.configs(engine)
    ]
    return records[: len(records) - drop] if drop else records


def cells_for(case, engine="event", summary_fn=None, drop=0):
    return group_cells(case, engine, records_for(case, engine, summary_fn, drop))


def expectation(value_mid=0.30, value_final=0.10, tol=0.05):
    return {
        "groups": {
            "all": {
                "probes.mid_recovery.homogeneity": {
                    "value": value_mid, "tol": tol,
                },
                "final.homogeneity": {"value": value_final, "tol": tol},
            }
        }
    }


# -- extract_stat / group_cells ----------------------------------------------


def test_extract_stat_dotted_paths():
    record = {"summary": summary(mid=0.42)}
    assert extract_stat(record, "probes.mid_recovery.homogeneity") == 0.42
    assert extract_stat(record, "reliability") == 0.97
    assert extract_stat(record, "probes.nope.homogeneity") is None
    assert extract_stat(record, "reshaping_time.deeper") is None
    assert extract_stat({"summary": None}, "reliability") is None


def test_group_cells_is_content_addressed():
    """A record whose hash matches no grid config is never counted, and
    a duplicate hash counts once (later record wins)."""
    records = records_for(BAND_CASE, "event")
    records.append({"status": "ok", "config_hash": "deadbeef00000000",
                    "summary": summary()})
    records.append(dict(records[0], summary=summary(mid=0.99)))
    cells = group_cells(BAND_CASE, "event", records)
    assert sum(len(g) for g in cells.groups.values()) == len(BAND_CASE.seeds)
    assert not cells.missing()
    # the duplicate superseded the original
    assert 0.99 in cells.values("probes.mid_recovery.homogeneity", "all")


def test_group_cells_ignores_errored_records():
    records = records_for(BAND_CASE, "event")
    records[0] = dict(records[0], status="error", summary=None)
    cells = group_cells(BAND_CASE, "event", records)
    assert cells.missing() == {"all": 1}


# -- band scorer -------------------------------------------------------------


def test_band_known_pass():
    score = score_band(BAND_CASE, cells_for(BAND_CASE), expectation())
    assert score.status == PASS
    assert score.diagnosis == ""
    assert len(score.details) == 2
    assert all(d["ok"] for d in score.details)


def test_band_known_fail_names_the_stat():
    score = score_band(
        BAND_CASE,
        cells_for(BAND_CASE, summary_fn=lambda l, c: summary(mid=0.80)),
        expectation(),
    )
    assert score.status == FAIL
    assert "probes.mid_recovery.homogeneity[all]" in score.diagnosis
    assert "EXCEEDS" in score.diagnosis
    # the untouched stat still scored ok
    assert any(d["ok"] for d in score.details)


def test_band_borderline_on_tolerance():
    """gap == tol is within (inclusive band); one epsilon over fails."""
    on_edge = score_band(
        BAND_CASE, cells_for(BAND_CASE), expectation(value_mid=0.25, tol=0.05)
    )
    assert on_edge.status == PASS
    over = score_band(
        BAND_CASE, cells_for(BAND_CASE), expectation(value_mid=0.25, tol=0.0499)
    )
    assert over.status == FAIL


def test_band_missing_cell_fails_with_diagnosis():
    score = score_band(
        BAND_CASE, cells_for(BAND_CASE, drop=1), expectation()
    )
    assert score.status == FAIL
    assert "incomplete ensemble" in score.diagnosis
    assert "1 cell(s) short" in score.diagnosis


def test_band_zero_tolerance_scale_fails():
    """The perturbed-gate contract: --tolerance-scale 0 turns any
    nonzero gap into a failure."""
    score = score_band(
        BAND_CASE,
        cells_for(BAND_CASE, summary_fn=lambda l, c: summary(mid=0.3001)),
        expectation(),
        tolerance_scale=0.0,
    )
    assert score.status == FAIL


def test_band_without_expectation_skips():
    score = score_band(BAND_CASE, cells_for(BAND_CASE), expected=None)
    assert score.status == SKIP
    assert "--update-expected" in score.diagnosis


def test_band_require_converged():
    """table2-reshaping: a None reshaping_time is a non-converged cell
    and fails the claim when require_converged is set."""
    def diverged(label, config):
        return summary(reshaping=None if config.seed == 0 else 12.0)

    score = score_band(
        CONVERGED_CASE,
        cells_for(CONVERGED_CASE, summary_fn=diverged),
        {"groups": {}},
    )
    assert score.status == FAIL
    assert "converged" in score.diagnosis


# -- threshold scorer --------------------------------------------------------


def test_threshold_max_pass_and_fail():
    ok = score_threshold(THRESHOLD_MAX_CASE, cells_for(THRESHOLD_MAX_CASE))
    assert ok.status == PASS
    bad = score_threshold(
        THRESHOLD_MAX_CASE,
        cells_for(THRESHOLD_MAX_CASE, summary_fn=lambda l, c: summary(final=0.5)),
    )
    assert bad.status == FAIL
    assert "violates <= 0.2" in bad.diagnosis


def test_threshold_min_immune_to_tolerance_scale():
    """Thresholds encode the paper's qualitative bounds; perturbing the
    tolerance must not touch them."""
    cells = cells_for(THRESHOLD_MIN_CASE)
    assert score_threshold(
        THRESHOLD_MIN_CASE, cells, tolerance_scale=0.0
    ).status == PASS
    bad = score_threshold(
        THRESHOLD_MIN_CASE,
        cells_for(
            THRESHOLD_MIN_CASE, summary_fn=lambda l, c: summary(reliability=0.5)
        ),
    )
    assert bad.status == FAIL


# -- improvement scorer ------------------------------------------------------


def test_improvement_pass_fail_and_missing_probe():
    ok = score_improvement(IMPROVEMENT_CASE, cells_for(IMPROVEMENT_CASE))
    assert ok.status == PASS  # early 0.6 -> late 0.3 improves by 0.3

    regressed = score_improvement(
        IMPROVEMENT_CASE,
        cells_for(
            IMPROVEMENT_CASE, summary_fn=lambda l, c: summary(early=0.3, late=0.6)
        ),
    )
    assert regressed.status == FAIL
    assert "improved by only" in regressed.diagnosis

    def no_probe(label, config):
        out = summary()
        del out["probes"]["late_repair"]
        return out

    missing = score_improvement(
        IMPROVEMENT_CASE, cells_for(IMPROVEMENT_CASE, summary_fn=no_probe)
    )
    assert missing.status == FAIL
    assert "missing probe values" in missing.diagnosis


# -- equivalence scorer ------------------------------------------------------


def test_equivalence_pass_and_engine_attribution():
    cells = {
        "event": cells_for(EQUIVALENCE_CASE, "event"),
        "batch": cells_for(EQUIVALENCE_CASE, "batch"),
    }
    score = score_equivalence(EQUIVALENCE_CASE, cells)
    assert score.status == PASS
    assert score.engine == "both"


def test_equivalence_fails_on_missing_engine():
    score = score_equivalence(
        EQUIVALENCE_CASE, {"event": cells_for(EQUIVALENCE_CASE, "event")}
    )
    assert score.status == FAIL
    assert "no cells for the batch engine" in score.diagnosis


def test_equivalence_fails_on_systematic_gap():
    cells = {
        "event": cells_for(EQUIVALENCE_CASE, "event"),
        "batch": cells_for(
            EQUIVALENCE_CASE,
            "batch",
            summary_fn=lambda l, c: summary(reliability=0.5),
        ),
    }
    score = score_equivalence(EQUIVALENCE_CASE, cells)
    assert score.status == FAIL
    assert "reliability[all]" in score.diagnosis


def test_equivalence_fails_on_nonconverged_values():
    cells = {
        "event": cells_for(
            EQUIVALENCE_CASE, "event",
            summary_fn=lambda l, c: summary(reshaping=None),
        ),
        "batch": cells_for(EQUIVALENCE_CASE, "batch"),
    }
    score = score_equivalence(EQUIVALENCE_CASE, cells)
    assert score.status == FAIL
    assert "non-finite/missing values" in score.diagnosis


# -- dispatch ----------------------------------------------------------------


def test_score_case_one_verdict_per_engine():
    cells = {
        "event": cells_for(BAND_CASE, "event"),
        "batch": cells_for(BAND_CASE, "batch"),
    }
    scores = score_case(BAND_CASE, cells, expectation())
    assert [s.engine for s in scores] == ["batch", "event"]
    assert all(s.passed for s in scores)


def test_score_case_both_engine_case_scores_once():
    cells = {
        "event": cells_for(EQUIVALENCE_CASE, "event"),
        "batch": cells_for(EQUIVALENCE_CASE, "batch"),
    }
    scores = score_case(EQUIVALENCE_CASE, cells)
    assert len(scores) == 1
    assert scores[0].engine == "both"


def test_score_case_unknown_scorer():
    import dataclasses

    bogus = dataclasses.replace(BAND_CASE, scorer="nope")
    with pytest.raises(ConfigurationError, match="unknown scorer"):
        score_case(bogus, {"event": cells_for(BAND_CASE)})


def test_case_cells_missing_accounting():
    cells = CaseCells(
        engine="event",
        groups={"all": [{"summary": summary()}]},
        expected_counts={"all": 3},
    )
    assert cells.missing() == {"all": 2}
    assert cells.values("final.homogeneity", "all") == [0.10]
    assert cells.values("final.homogeneity", "absent") == []
