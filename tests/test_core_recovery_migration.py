"""Tests for recovery (Algorithm 2) and migration (Algorithm 3)."""

import pytest

from repro.core.config import PolystyreneConfig
from repro.core.migration import MigrationManager
from repro.core.protocol import PolystyreneLayer
from repro.core.recovery import recover_node
from repro.core.split import make_split
from repro.spaces import FlatTorus

from .helpers import StubRPS, StubTMan, grid_coords, make_sim

TORUS = FlatTorus(8.0, 4.0)


def build(width=4, height=2, K=2, split="advanced"):
    rps, tman = StubRPS(), StubTMan(TORUS)
    sim, factory, points = make_sim(
        TORUS, grid_coords(width, height), layers=[rps, tman]
    )
    config = PolystyreneConfig(replication=K, split=split)
    poly = PolystyreneLayer(TORUS, config, rps, tman)
    for node in sim.network.alive_nodes():
        poly.init_node(sim, node)
    return sim, config, rps, tman, points


class TestRecovery:
    def test_reactivates_ghosts_of_failed_origin(self):
        sim, config, rps, tman, points = build()
        holder = sim.network.node(0)
        origin = sim.network.node(1)
        holder.poly.ghosts[origin.nid] = dict(origin.poly.guests)
        sim.network.fail([origin.nid], rnd=0)
        recovered = recover_node(sim, holder)
        assert recovered == [origin.nid]
        assert set(origin.poly.guests) <= set(holder.poly.guests)
        assert origin.nid not in holder.poly.ghosts

    def test_alive_origin_untouched(self):
        sim, config, rps, tman, points = build()
        holder = sim.network.node(0)
        origin = sim.network.node(1)
        holder.poly.ghosts[origin.nid] = dict(origin.poly.guests)
        assert recover_node(sim, holder) == []
        assert origin.nid in holder.poly.ghosts
        assert points[1].pid not in holder.poly.guests

    def test_multiple_failed_origins(self):
        sim, config, rps, tman, points = build()
        holder = sim.network.node(0)
        for origin_id in (1, 2, 3):
            origin = sim.network.node(origin_id)
            holder.poly.ghosts[origin_id] = dict(origin.poly.guests)
        sim.network.fail([1, 3], rnd=0)
        recovered = recover_node(sim, holder)
        assert sorted(recovered) == [1, 3]
        assert 2 in holder.poly.ghosts

    def test_all_backup_holders_recover_duplicates(self):
        # The paper's storage spike: every backup holder of a failed
        # node reactivates the same points.
        sim, config, rps, tman, points = build()
        origin = sim.network.node(0)
        for holder_id in (1, 2):
            sim.network.node(holder_id).poly.ghosts[0] = dict(origin.poly.guests)
        sim.network.fail([0], rnd=0)
        for holder_id in (1, 2):
            recover_node(sim, sim.network.node(holder_id))
        assert points[0].pid in sim.network.node(1).poly.guests
        assert points[0].pid in sim.network.node(2).poly.guests


class TestMigration:
    def test_exchange_is_partition_of_union(self):
        sim, config, rps, tman, points = build()
        manager = MigrationManager(config, make_split("advanced"))
        p, q = sim.network.node(0), sim.network.node(5)
        union = set(p.poly.guests) | set(q.poly.guests)
        manager.exchange(sim, p, q)
        after_p, after_q = set(p.poly.guests), set(q.poly.guests)
        assert after_p | after_q == union
        assert not (after_p & after_q)

    def test_exchange_dedups_shared_points(self):
        # Both hold the same recovered point: after the exchange it
        # exists exactly once.
        sim, config, rps, tman, points = build()
        p, q = sim.network.node(0), sim.network.node(1)
        shared = points[7]
        p.poly.add_guests([shared])
        q.poly.add_guests([shared])
        manager = MigrationManager(config, make_split("advanced"))
        manager.exchange(sim, p, q)
        count = (shared.pid in p.poly.guests) + (shared.pid in q.poly.guests)
        assert count == 1

    def test_exchange_with_empty_partner(self):
        # A freshly reinjected node has no guests and must receive some.
        sim, config, rps, tman, points = build()
        p = sim.network.node(0)
        fresh = sim.spawn_node((0.4, 0.4))
        fresh.poly = type(p.poly)()
        p.poly.add_guests([points[1], points[2]])
        manager = MigrationManager(config, make_split("basic"))
        manager.exchange(sim, p, fresh)
        assert len(p.poly.guests) + len(fresh.poly.guests) == 3

    def test_partner_selection_uses_psi_plus_rps(self):
        sim, config, rps, tman, points = build()
        manager = MigrationManager(config, make_split("advanced"))
        node = sim.network.node(0)
        partner = manager.select_partner(sim, node, rps, tman)
        assert partner is not None
        assert partner != node.nid
        assert sim.network.is_alive(partner)

    def test_no_partner_when_alone(self):
        sim, config, rps, tman, points = build()
        survivors = [0]
        sim.network.fail(
            [n for n in sim.network.alive_ids() if n not in survivors], rnd=0
        )
        manager = MigrationManager(config, make_split("advanced"))
        assert manager.select_partner(sim, sim.network.node(0), rps, tman) is None

    def test_migration_charges_traffic(self):
        sim, config, rps, tman, points = build()
        manager = MigrationManager(config, make_split("advanced"))
        manager.exchange(sim, sim.network.node(0), sim.network.node(1))
        assert sim.meter.round_cost("polystyrene") > 0

    def test_step_node_runs_exchange(self):
        sim, config, rps, tman, points = build()
        manager = MigrationManager(config, make_split("advanced"))
        assert manager.step_node(sim, sim.network.node(0), rps, tman)

    @pytest.mark.parametrize("split", ["basic", "pd", "md", "advanced"])
    def test_no_point_lost_over_many_exchanges(self, split):
        sim, config, rps, tman, points = build(width=4, height=4, split=split)
        manager = MigrationManager(config, make_split(split))
        rng = sim.rng_for("test")
        for _ in range(100):
            ids = sim.network.alive_ids()
            a, b = rng.sample(ids, 2)
            manager.exchange(sim, sim.network.node(a), sim.network.node(b))
        held = set()
        for node in sim.network.alive_nodes():
            held.update(node.poly.guests)
        assert held == {p.pid for p in points}
