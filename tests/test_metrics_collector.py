"""Tests for the per-round metrics recorder."""

import csv

import pytest

from repro.metrics.collector import MetricsRecorder
from repro.spaces import FlatTorus

from .helpers import grid_coords, make_sim

TORUS = FlatTorus(4.0, 2.0)


def recorded_sim(metrics=("homogeneity", "storage", "message_cost")):
    sim, factory, points = make_sim(TORUS, grid_coords(4, 2))
    recorder = MetricsRecorder(TORUS, points, metrics=metrics)
    sim.observers.append(recorder)
    return sim, recorder


class TestRecorder:
    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError):
            MetricsRecorder(TORUS, [], metrics=("latency",))

    def test_records_each_round(self):
        sim, recorder = recorded_sim()
        sim.run(4)
        assert len(recorder.n_alive) == 4
        for name in recorder.metrics:
            assert len(recorder.series[name]) == 4

    def test_only_requested_metrics(self):
        sim, recorder = recorded_sim(metrics=("storage",))
        sim.run(2)
        assert set(recorder.series) == {"storage"}

    def test_message_cost_from_meter(self):
        sim, recorder = recorded_sim(metrics=("message_cost",))
        sim.meter.charge("tman", 80.0)
        sim.step()
        assert recorder.series["message_cost"][0] == pytest.approx(10.0)

    def test_alive_counts_track_failures(self):
        sim, recorder = recorded_sim(metrics=("storage",))
        sim.schedule(1, lambda s: s.network.fail([0, 1], s.round))
        sim.run(2)
        assert recorder.n_alive == [8, 6]

    def test_rows_and_header_consistent(self):
        sim, recorder = recorded_sim()
        sim.run(2)
        rows = recorder.rows()
        header = recorder.header()
        assert len(rows) == 2
        assert all(len(row) == len(header) for row in rows)
        assert rows[0][0] == 0 and rows[1][0] == 1

    def test_write_csv(self, tmp_path):
        sim, recorder = recorded_sim(metrics=("storage",))
        sim.run(3)
        path = tmp_path / "series.csv"
        recorder.write_csv(str(path))
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["round", "n_alive", "storage"]
        assert len(rows) == 4
