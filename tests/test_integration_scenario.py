"""End-to-end integration tests: the paper's qualitative claims.

These run the full three-phase scenario at smoke scale (via the shared
session fixture) and assert the *shape* of every headline result:
who wins, by roughly what factor, and where the analytical model lands.
"""

import math

import pytest

from repro.core.backup import survival_probability
from repro.experiments.suite import scenario_name
from repro.metrics.messages import layer_share


def poly(smoke_suite, k):
    return smoke_suite[scenario_name("polystyrene", k)]


def tman(smoke_suite):
    return smoke_suite[scenario_name("tman")]


class TestReshaping:
    def test_polystyrene_reshapes_quickly_all_k(self, smoke_suite):
        for k in (2, 4, 8):
            result = poly(smoke_suite, k)
            assert result.reshaping_time is not None
            # Paper: < 10 rounds at 3,200 nodes; smaller networks are
            # faster still.
            assert result.reshaping_time <= 12

    def test_tman_never_reshapes(self, smoke_suite):
        assert tman(smoke_suite).reshaping_time is None

    def test_higher_k_not_faster(self, smoke_suite):
        # More redundant copies need deduplication (paper Sec. IV-B).
        assert (
            poly(smoke_suite, 8).reshaping_time
            >= poly(smoke_suite, 2).reshaping_time
        )

    def test_homogeneity_spikes_then_recovers(self, smoke_suite):
        result = poly(smoke_suite, 4)
        fr = result.config.failure_round
        hom = result.series["homogeneity"]
        assert hom[fr] > result.h_ref_after_failure  # spike at failure
        assert hom[fr + 15] < result.h_ref_after_failure  # recovered

    def test_tman_homogeneity_stuck_after_failure(self, smoke_suite):
        result = tman(smoke_suite)
        fr = result.config.failure_round
        rr = result.config.reinjection_round
        hom = result.series["homogeneity"]
        # Flat, high homogeneity across the whole failure phase.  (The
        # plateau height scales with torus width: 5.25 on the paper's
        # 80-wide torus, ~1.25 on the 16-wide smoke torus.)
        assert hom[rr - 1] > 1.5 * result.h_ref_after_failure
        assert hom[rr - 1] == pytest.approx(hom[fr + 3], rel=0.15)


class TestReliability:
    @pytest.mark.parametrize("k", [2, 4, 8])
    def test_matches_analytical_model(self, smoke_suite, k):
        measured = poly(smoke_suite, k).reliability
        expected = survival_probability(k, 0.5)
        # 128 points only; allow a generous tolerance around the model.
        assert measured == pytest.approx(expected, abs=0.08)

    def test_reliability_increases_with_k(self, smoke_suite):
        values = [poly(smoke_suite, k).reliability for k in (2, 4, 8)]
        assert values[0] <= values[1] <= values[2]

    def test_tman_loses_exactly_the_failed_half(self, smoke_suite):
        assert tman(smoke_suite).reliability == pytest.approx(0.5)


class TestReinjection:
    def test_polystyrene_much_better_than_tman_after_reinjection(
        self, smoke_suite
    ):
        p = poly(smoke_suite, 4).final("homogeneity")
        t = tman(smoke_suite).final("homogeneity")
        # Paper: 0.035 vs 0.35 — a 10x gap; require at least 3x.
        assert p < t / 3

    def test_tman_final_homogeneity_is_parallel_grid_offset(self, smoke_suite):
        # Lost points sit sqrt(0.5^2+0.5^2) from the nearest fresh
        # node; half the points are lost => mean ~= 0.3536.
        assert tman(smoke_suite).final("homogeneity") == pytest.approx(
            math.sqrt(2) / 4, abs=0.08
        )

    def test_population_restored(self, smoke_suite):
        result = poly(smoke_suite, 4)
        assert result.n_alive[-1] == result.config.n_nodes


class TestProximity:
    def test_polystyrene_neighbourhoods_stay_reasonable(self, smoke_suite):
        result = poly(smoke_suite, 4)
        fr = result.config.failure_round
        prox = result.series["proximity"]
        # Paper: 1.50 vs 1.005 during the failure phase (grid step 1).
        assert prox[fr + 8] < 3.0

    def test_comparable_to_tman_at_end(self, smoke_suite):
        p = poly(smoke_suite, 4).final("proximity")
        t = tman(smoke_suite).final("proximity")
        assert p < 2.0 * t + 0.5

    def test_tman_converges_to_unit_grid(self, smoke_suite):
        result = tman(smoke_suite)
        fr = result.config.failure_round
        assert result.series["proximity"][fr - 1] < 1.6


class TestStorage:
    @pytest.mark.parametrize("k", [2, 4, 8])
    def test_steady_state_one_plus_k(self, smoke_suite, k):
        result = poly(smoke_suite, k)
        fr = result.config.failure_round
        assert result.series["storage"][fr - 1] == pytest.approx(1 + k, rel=0.15)

    def test_storage_roughly_doubles_after_failure(self, smoke_suite):
        result = poly(smoke_suite, 4)
        fr = result.config.failure_round
        rr = result.config.reinjection_round
        before = result.series["storage"][fr - 1]
        after = result.series["storage"][rr - 1]
        assert 1.4 * before < after < 3.0 * before

    def test_tman_storage_is_one(self, smoke_suite):
        result = tman(smoke_suite)
        rr = result.config.reinjection_round
        # One point per node, no ghosts, until point-less fresh nodes
        # dilute the average at reinjection.
        assert all(v == 1.0 for v in result.series["storage"][:rr])
        assert all(v <= 1.0 for v in result.series["storage"][rr:])

    def test_spike_at_failure_deduplicated(self, smoke_suite):
        result = poly(smoke_suite, 8)
        fr = result.config.failure_round
        rr = result.config.reinjection_round
        spike = max(result.series["storage"][fr : fr + 3])
        settled = result.series["storage"][rr - 1]
        assert spike >= settled


class TestMessages:
    def test_tman_dominates_polystyrene_traffic(self, smoke_suite):
        share = layer_share(poly(smoke_suite, 8).message_history, "tman")
        # Paper: 93.6% for K=8; require a clear majority.
        assert share > 0.6

    def test_tman_baseline_cost_flat(self, smoke_suite):
        result = tman(smoke_suite)
        fr = result.config.failure_round
        costs = result.series["message_cost"]
        assert costs[fr - 1] == pytest.approx(costs[-1], rel=0.2)

    def test_polystyrene_overhead_bounded(self, smoke_suite):
        p = poly(smoke_suite, 4)
        t = tman(smoke_suite)
        fr = p.config.failure_round
        # Pre-failure steady state: Polystyrene adds modest overhead.
        assert p.series["message_cost"][fr - 1] < 2.5 * t.series["message_cost"][fr - 1]


class TestSnapshots:
    def test_repair_covers_the_dead_half(self, smoke_suite):
        from repro.viz.ascii import occupancy_stats

        result = poly(smoke_suite, 4)
        fr = result.config.failure_round
        periods = result.config.grid.periods
        started = occupancy_stats(result.snapshots[fr + 2], periods, cols=8, rows=4)
        done = occupancy_stats(result.snapshots[fr + 8], periods, cols=8, rows=4)
        # Both snapshots show survivors flowing back over the hole
        # (plain T-Man leaves ~half the cells empty instead).
        assert started["empty_fraction"] < 0.3
        assert done["empty_fraction"] < 0.25

    def test_tman_leaves_half_empty(self, smoke_suite):
        from repro.viz.ascii import occupancy_stats

        result = tman(smoke_suite)
        fr = result.config.failure_round
        periods = result.config.grid.periods
        stats = occupancy_stats(result.snapshots[fr + 8], periods, cols=8, rows=4)
        assert stats["empty_fraction"] > 0.35


class TestHygiene:
    def test_rps_rarely_needs_bootstrap_oracle(self, smoke_suite):
        for result in smoke_suite.values():
            n_rounds = result.config.total_rounds
            assert result.rps_fallbacks <= result.config.n_nodes * n_rounds * 0.01

    def test_deterministic_rerun(self, smoke_suite):
        from repro.experiments.presets import SMOKE
        from repro.experiments.scenario import ScenarioConfig, run_scenario
        from repro.experiments.suite import snapshot_rounds_for

        config = ScenarioConfig.from_preset(
            SMOKE,
            protocol="polystyrene",
            replication=4,
            seed=7,
            snapshot_rounds=snapshot_rounds_for(SMOKE),
        )
        rerun = run_scenario(config)
        cached = poly(smoke_suite, 4)
        assert rerun.series["homogeneity"] == cached.series["homogeneity"]
        assert rerun.reliability == cached.reliability
