"""Tests for the Cyclon-style peer-sampling layer."""

import pytest

from repro.gossip.rps import PeerSamplingLayer
from repro.sim.engine import Simulation
from repro.sim.network import Network
from repro.spaces import FlatTorus

from .helpers import grid_coords


def build(n_side=6, view_size=6, shuffle_length=3, seed=0):
    space = FlatTorus(float(n_side), float(n_side))
    network = Network()
    coords = grid_coords(n_side, n_side)
    for coord in coords:
        network.add_node(coord)
    rps = PeerSamplingLayer(view_size=view_size, shuffle_length=shuffle_length)
    sim = Simulation(space, network, [rps], seed=seed)
    sim.init_all_nodes()
    return sim, rps


class TestValidation:
    def test_view_size_positive(self):
        with pytest.raises(ValueError):
            PeerSamplingLayer(view_size=0)

    def test_shuffle_length_bounds(self):
        with pytest.raises(ValueError):
            PeerSamplingLayer(view_size=5, shuffle_length=6)
        with pytest.raises(ValueError):
            PeerSamplingLayer(view_size=5, shuffle_length=0)


class TestInit:
    def test_views_filled(self):
        sim, rps = build()
        for node in sim.network.alive_nodes():
            assert len(node.rps_view) == rps.view_size

    def test_no_self_loops(self):
        sim, _ = build()
        for node in sim.network.alive_nodes():
            assert node.nid not in node.rps_view


class TestShuffle:
    def test_views_stay_bounded(self):
        sim, rps = build()
        sim.run(10)
        for node in sim.network.alive_nodes():
            assert 0 < len(node.rps_view) <= rps.view_size
            assert node.nid not in node.rps_view

    def test_views_churn_over_time(self):
        sim, _ = build()
        before = {n.nid: set(n.rps_view) for n in sim.network.alive_nodes()}
        sim.run(10)
        changed = sum(
            1
            for n in sim.network.alive_nodes()
            if set(n.rps_view) != before[n.nid]
        )
        assert changed > len(before) * 0.8

    def test_dead_entries_evicted(self):
        sim, _ = build()
        sim.network.fail([0, 1, 2], rnd=0)
        sim.run(3)
        for node in sim.network.alive_nodes():
            assert not ({0, 1, 2} & set(node.rps_view))

    def test_charges_rps_traffic(self):
        sim, _ = build()
        sim.run(1)
        assert sim.meter.history[0].get("rps", 0) > 0

    def test_survives_catastrophic_failure(self):
        sim, _ = build(n_side=8)
        half = [n for n in range(64) if n % 8 < 4]
        sim.network.fail(half, rnd=0)
        sim.run(5)
        for node in sim.network.alive_nodes():
            assert len(node.rps_view) > 0

    def test_randomness_views_not_identical(self):
        sim, _ = build(n_side=8)
        sim.run(5)
        views = [frozenset(n.rps_view) for n in sim.network.alive_nodes()]
        assert len(set(views)) > len(views) // 2


class TestSample:
    def test_sample_returns_alive_peers(self):
        sim, rps = build()
        node = sim.network.node(0)
        out = rps.sample(sim, node, 3)
        assert len(out) == 3
        assert all(sim.network.is_alive(nid) for nid in out)
        assert node.nid not in out

    def test_sample_respects_exclude(self):
        sim, rps = build()
        node = sim.network.node(0)
        view_peers = tuple(node.rps_view)
        out = rps.sample(sim, node, 2, exclude=view_peers)
        assert not (set(out) & set(view_peers))

    def test_fallback_when_view_dead(self):
        sim, rps = build()
        node = sim.network.node(0)
        sim.network.fail(list(node.rps_view), rnd=0)
        before = rps.bootstrap_fallbacks
        out = rps.sample(sim, node, 2)
        assert out  # the oracle fallback still finds peers
        assert rps.bootstrap_fallbacks == before + 1

    def test_two_node_network(self):
        space = FlatTorus(2.0)
        network = Network()
        network.add_node((0.0,))
        network.add_node((1.0,))
        rps = PeerSamplingLayer(view_size=2, shuffle_length=1)
        sim = Simulation(space, network, [rps], seed=0)
        sim.init_all_nodes()
        sim.run(5)  # must not crash or livelock
        assert rps.sample(sim, network.node(0), 1) == [1]
