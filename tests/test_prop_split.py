"""Property-based tests for the SPLIT functions.

The core protocol invariant: every SPLIT variant returns a true
partition of its input — no point lost, no point duplicated — in every
space.  Losing a point here would silently break the "never dies"
guarantee, so this is the most valuable property in the suite.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.split import split_advanced, split_basic, split_md, split_pd
from repro.spaces import Euclidean, FlatTorus
from repro.types import DataPoint

PLANE = Euclidean(2)
TORUS = FlatTorus(20.0, 10.0)

coord = st.tuples(
    st.floats(min_value=0, max_value=20, allow_nan=False),
    st.floats(min_value=0, max_value=10, allow_nan=False),
)
coord_list = st.lists(coord, min_size=0, max_size=25)

SPLITS = [split_basic, split_pd, split_md, split_advanced]


def as_points(coords):
    return [DataPoint(i, c) for i, c in enumerate(coords)]


@given(coord_list, coord, coord)
def test_all_splits_partition_plane(coords, pos_p, pos_q):
    points = as_points(coords)
    expected = {p.pid for p in points}
    for split in SPLITS:
        left, right = split(PLANE, points, pos_p, pos_q)
        left_ids = {p.pid for p in left}
        right_ids = {p.pid for p in right}
        assert left_ids | right_ids == expected
        assert not (left_ids & right_ids)


@given(coord_list, coord, coord)
def test_all_splits_partition_torus(coords, pos_p, pos_q):
    points = as_points(coords)
    expected = {p.pid for p in points}
    for split in SPLITS:
        left, right = split(TORUS, points, pos_p, pos_q)
        left_ids = {p.pid for p in left}
        right_ids = {p.pid for p in right}
        assert left_ids | right_ids == expected
        assert not (left_ids & right_ids)


@given(coord_list, coord, coord)
def test_basic_split_respects_closeness(coords, pos_p, pos_q):
    points = as_points(coords)
    left, right = split_basic(PLANE, points, pos_p, pos_q)
    for p in left:
        assert PLANE.distance(p.coord, pos_p) < PLANE.distance(p.coord, pos_q)
    for p in right:
        assert PLANE.distance(p.coord, pos_q) <= PLANE.distance(p.coord, pos_p)


@given(coord_list, coord, coord)
def test_advanced_never_worse_displacement_than_swapped(coords, pos_p, pos_q):
    """The MD heuristic chooses the assignment with the smaller total
    medoid-to-position displacement (Algorithm 5 lines 5-13)."""
    from repro.spaces.medoid import medoid

    points = as_points(coords)
    if len(points) < 2:
        return
    left, right = split_advanced(PLANE, points, pos_p, pos_q)
    if not left or not right:
        return
    m_left = medoid(PLANE, [p.coord for p in left])
    m_right = medoid(PLANE, [p.coord for p in right])
    chosen = PLANE.distance(m_left, pos_p) + PLANE.distance(m_right, pos_q)
    swapped = PLANE.distance(m_right, pos_p) + PLANE.distance(m_left, pos_q)
    assert chosen <= swapped + 1e-9
