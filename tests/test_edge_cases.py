"""Edge-case tests for corners the mainline suites do not reach."""

import pytest

from repro.errors import ConfigurationError

from repro.core.config import PolystyreneConfig
from repro.core.migration import MigrationManager
from repro.core.protocol import PolystyreneLayer
from repro.core.split import make_split
from repro.core.backup import BackupManager
from repro.sim.engine import Simulation
from repro.sim.network import DelayedFailureDetector, Network
from repro.spaces import FlatTorus

from .helpers import NullLayer, StubRPS, StubTMan, grid_coords, make_sim

TORUS = FlatTorus(8.0, 4.0)


class TestDetectionCache:
    def test_delayed_detection_flips_between_rounds(self):
        """The per-round detection cache must not freeze a delayed
        detector's answer across rounds."""
        network = Network(DelayedFailureDetector(delay=2))
        for coord in grid_coords(2, 2):
            network.add_node(coord)
        sim = Simulation(TORUS, network, [NullLayer()], seed=0)
        network.fail([0], rnd=0)
        assert not sim.detects_failed(0)  # round 0: not yet visible
        sim.run(1)
        assert not sim.detects_failed(0)  # round 1
        sim.run(1)
        assert sim.detects_failed(0)  # round 2: delay elapsed

    def test_cache_invalidated_by_new_failure_same_round(self):
        sim, _, _ = make_sim(TORUS, grid_coords(2, 2))
        assert not sim.detects_failed(1)
        sim.network.fail([1], rnd=sim.round)
        assert sim.detects_failed(1)

    def test_unknown_id_is_simply_not_detected(self):
        sim, _, _ = make_sim(TORUS, grid_coords(2, 2))
        assert not sim.detects_failed(999)


class TestMigrationCorners:
    def _manager(self, sim):
        config = PolystyreneConfig(replication=1)
        poly = PolystyreneLayer(TORUS, config, StubRPS(), StubTMan(TORUS))
        for node in sim.network.alive_nodes():
            poly.init_node(sim, node)
        return MigrationManager(config, make_split("advanced"))

    def test_both_pools_empty(self):
        sim, _, _ = make_sim(TORUS, grid_coords(2, 2), with_points=False)
        manager = self._manager(sim)
        a, b = sim.network.node(0), sim.network.node(1)
        manager.exchange(sim, a, b)
        assert a.poly.n_guests == 0
        assert b.poly.n_guests == 0

    def test_exchange_is_idempotent_when_already_optimal(self):
        sim, _, points = make_sim(TORUS, grid_coords(2, 2))
        manager = self._manager(sim)
        a, b = sim.network.node(0), sim.network.node(3)
        manager.exchange(sim, a, b)
        guests_a = set(a.poly.guests)
        manager.exchange(sim, a, b)
        assert set(a.poly.guests) == guests_a


class TestBackupCorners:
    def test_fewer_peers_than_k(self):
        """A 2-node network cannot host K=5 backups; the manager takes
        what exists without erroring."""
        rps, tman = StubRPS(), StubTMan(TORUS)
        sim, _, _ = make_sim(TORUS, grid_coords(2, 1), layers=[rps, tman])
        config = PolystyreneConfig(replication=5)
        poly = PolystyreneLayer(TORUS, config, rps, tman)
        for node in sim.network.alive_nodes():
            poly.init_node(sim, node)
        manager = BackupManager(config)
        node = sim.network.node(0)
        manager.step_node(sim, node, rps, tman)
        assert node.poly.backups == {1}

    def test_sole_survivor_keeps_running(self):
        rps, tman = StubRPS(), StubTMan(TORUS)
        sim, _, _ = make_sim(TORUS, grid_coords(2, 2), layers=[rps, tman])
        config = PolystyreneConfig(replication=2)
        poly = PolystyreneLayer(TORUS, config, rps, tman)
        for node in sim.network.alive_nodes():
            poly.init_node(sim, node)
        sim.network.fail([1, 2, 3], rnd=0)
        poly.step(sim)  # must not raise with nobody to talk to
        assert sim.network.node(0).poly.n_guests >= 1


class TestScenarioCorners:
    def test_tman_run_ignores_replication_semantics(self):
        from repro.experiments.scenario import ScenarioConfig, run_scenario

        config = ScenarioConfig(
            width=8,
            height=4,
            protocol="tman",
            replication=8,  # irrelevant for the baseline
            failure_round=5,
            reinjection_round=None,
            total_rounds=15,
            metrics=("storage",),
            seed=0,
        )
        result = run_scenario(config)
        assert max(result.series["storage"]) <= 1.0

    def test_snapshot_rounds_recorded_exactly(self):
        from repro.experiments.scenario import ScenarioConfig, run_scenario

        config = ScenarioConfig(
            width=8,
            height=4,
            failure_round=None,
            reinjection_round=None,
            total_rounds=10,
            snapshot_rounds=(0, 4, 9),
            metrics=("storage",),
            seed=0,
        )
        result = run_scenario(config)
        assert sorted(result.snapshots) == [0, 4, 9]
        assert all(len(snap) == 32 for snap in result.snapshots.values())

    def test_zero_failure_fraction_schedules_nothing(self):
        from repro.experiments.scenario import ScenarioConfig, run_scenario

        config = ScenarioConfig(
            width=8,
            height=4,
            failure_round=5,
            failure_fraction=0.0,
            reinjection_round=None,
            total_rounds=12,
            metrics=("homogeneity",),
            seed=0,
        )
        result = run_scenario(config)
        assert result.reliability is None
        assert result.reshaping_time is None
        assert result.n_alive[-1] == 32

    def test_failure_at_round_zero_runs_end_to_end(self):
        """A failure before any convergence is legal: the crash fires at
        the start of round 0 and the probe still samples reliability."""
        from repro.experiments.scenario import ScenarioConfig, run_scenario

        config = ScenarioConfig(
            width=8,
            height=4,
            failure_round=0,
            reinjection_round=None,
            total_rounds=10,
            metrics=("homogeneity",),
            seed=0,
        )
        result = run_scenario(config)
        assert result.reliability is not None
        assert result.n_alive[0] == 16  # half the torus gone in round 0


class TestScenarioValidation:
    """Explicit, early errors for configurations that used to crash
    rounds-deep inside the simulation (or silently do nothing)."""

    def _config(self, **overrides):
        from repro.experiments.scenario import ScenarioConfig

        base = dict(
            width=8,
            height=4,
            failure_round=5,
            reinjection_round=None,
            total_rounds=12,
            metrics=("homogeneity",),
            seed=0,
        )
        base.update(overrides)
        return ScenarioConfig(**base)

    def test_full_failure_fraction_is_rejected_up_front(self):
        with pytest.raises(
            ConfigurationError, match="would crash all 32 nodes"
        ):
            self._config(failure_fraction=1.0)

    def test_fraction_that_empties_the_torus_is_rejected(self):
        # 0.9 * 8 columns: the half-space cut at x < 7.2 swallows every
        # column, exactly like 1.0 — the count matters, not the literal.
        with pytest.raises(ConfigurationError, match="failure_fraction=0.9"):
            self._config(failure_fraction=0.9)

    def test_largest_surviving_fraction_is_accepted(self):
        from repro.experiments.scenario import run_scenario

        config = self._config(failure_fraction=0.8)  # one column survives
        assert config.failed_node_count() == 28
        result = run_scenario(config)
        assert result.n_alive[-1] >= 4

    def test_negative_failure_round_is_rejected(self):
        with pytest.raises(
            ConfigurationError, match="failure_round must be >= 0"
        ):
            self._config(failure_round=-3)

    def test_reinjection_after_the_end_is_rejected(self):
        with pytest.raises(ConfigurationError, match="never fires"):
            self._config(reinjection_round=50)

    def test_degenerate_torus_is_rejected(self):
        with pytest.raises(ConfigurationError, match="width >= 1"):
            self._config(width=0)
        with pytest.raises(ConfigurationError, match="height >= 1"):
            self._config(height=-2)

    def test_nonpositive_total_rounds_is_rejected(self):
        with pytest.raises(
            ConfigurationError, match="total_rounds must be >= 1"
        ):
            self._config(
                total_rounds=0, failure_round=None, reinjection_round=None
            )
