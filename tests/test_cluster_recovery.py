"""Failure recovery: dead workers lose their cells, not the run.

Covers the satellite checklist explicitly: a worker killed mid-cell
has its lease expire and the cell requeued; the retry budget is
honored; and the merged run after the crash equals the serial run's
digests.  Also: checkpoint gc must not delete prefixes referenced by a
live queue.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.experiments.scenario import ScenarioConfig
from repro.runtime.cluster import (
    Coordinator,
    Worker,
    diff_stores,
    merge_queue,
    open_queue,
)
from repro.runtime.forksweep import CheckpointCache
from repro.runtime.runner import ParallelRunner, grid_tasks
from repro.runtime.store import ResultStore


def small_config(**overrides) -> ScenarioConfig:
    base = dict(
        width=8,
        height=4,
        failure_round=5,
        reinjection_round=12,
        total_rounds=16,
        metrics=("homogeneity",),
        seed=3,
    )
    base.update(overrides)
    return ScenarioConfig(**base)


def ablation_grid():
    return grid_tasks(
        small_config(),
        {"failure_fraction": (0.25, 0.5), "reinjection_round": (12, None)},
    )


class TestLeaseRecovery:
    def test_dead_worker_cell_requeued_and_run_equals_serial(self, tmp_path):
        """A worker claims a cell and dies silently (no heartbeat, no
        completion).  After lease expiry a live worker re-claims it at
        attempt 2, the queue completes, and the merged store is
        digest-identical to the serial run."""
        tasks = ablation_grid()
        serial = ResultStore(tmp_path / "serial.jsonl")
        ParallelRunner(workers=1).run(tasks, store=serial, run_id="serial")

        queue = open_queue(tmp_path / "q")
        Coordinator(queue, workers=1).publish(tasks, lease_s=0.2)
        doomed = queue.claim("dead-worker")
        assert doomed is not None and doomed.attempt == 1
        time.sleep(0.3)  # lease expires, nobody heartbeats

        Worker(queue, worker_id="survivor", poll_s=0.02).run()
        assert queue.is_complete()
        reclaimed = [
            record
            for record in queue.cell_records()
            if record["task_id"] == doomed.task.task_id
        ]
        assert reclaimed and all(
            record["worker"] == "survivor" for record in reclaimed
        )

        merged = ResultStore(tmp_path / "merged.jsonl")
        report = merge_queue(queue, merged)
        assert not report.missing and report.errors == 0
        assert diff_stores(serial, merged, run_a="serial") == []

    def test_retry_budget_honored(self, tmp_path):
        """max_attempts claims, all abandoned -> the cell is retired as
        an error with the attempt history, and the queue completes."""
        tasks = ablation_grid()[:1]
        queue = open_queue(tmp_path / "q")
        Coordinator(queue, workers=1).publish(
            tasks, lease_s=0.05, max_attempts=3
        )
        for attempt in range(1, 4):
            lease = queue.claim(f"zombie-{attempt}")
            assert lease is not None and lease.attempt == attempt
            time.sleep(0.1)
        # Budget spent: nothing claimable, the cell retires as error.
        assert queue.claim("late") is None
        assert queue.is_complete()
        [record] = list(queue.cell_records())
        assert record["status"] == "error"
        assert "3 attempts" in record["error"]

    def test_sigkilled_worker_process_mid_cell(self, tmp_path):
        """A real worker *process* is SIGKILLed while it owns a lease;
        the cell is re-offered after expiry and the merged result still
        equals serial."""
        tasks = ablation_grid()
        serial = ResultStore(tmp_path / "serial.jsonl")
        ParallelRunner(workers=1).run(tasks, store=serial, run_id="serial")

        queue_path = tmp_path / "q"
        queue = open_queue(queue_path)
        Coordinator(queue, workers=1).publish(tasks, lease_s=0.5)

        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep * bool(
            env.get("PYTHONPATH")
        ) + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "worker",
                "--queue",
                str(queue_path),
                "--worker-id",
                "victim",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            # Wait until the victim holds at least one lease...
            deadline = time.time() + 30
            claims_dir = queue_path / "claims"
            while time.time() < deadline:
                if any(claims_dir.glob("*@*")):
                    break
                time.sleep(0.01)
            else:
                pytest.fail("worker never claimed a cell")
        finally:
            # ... and kill it dead, mid-cell.
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)

        assert not queue.is_complete()
        Worker(queue, worker_id="survivor", poll_s=0.05).run()
        assert queue.is_complete()

        merged = ResultStore(tmp_path / "merged.jsonl")
        report = merge_queue(queue, merged)
        assert not report.missing and report.errors == 0
        assert diff_stores(serial, merged, run_a="serial") == []

    def test_graceful_stop_finishes_current_cell(self, tmp_path):
        import threading

        tasks = ablation_grid()
        queue = open_queue(tmp_path / "q")
        Coordinator(queue, workers=1).publish(tasks)
        stop = threading.Event()
        stop.set()  # requested before the loop even starts
        stats = Worker(queue, worker_id="w", poll_s=0.02).run(stop=stop)
        assert stats.cells == 0
        assert not queue.is_complete()  # nothing lost, nothing leaked
        assert queue.status()["leased"] == 0


class TestGcProtection:
    def test_gc_spares_prefixes_referenced_by_live_queue(self, tmp_path):
        """`repro checkpoints gc` on a shared cache must not delete the
        fork points a live queue's unfinished cells still need."""
        tasks = ablation_grid()
        queue = open_queue(tmp_path / "q")
        Coordinator(queue, workers=1).publish(tasks, lease_s=60)
        queue.claim("busy-worker")  # live lease on a fork cell
        cache = CheckpointCache(queue.cache_root())
        assert len(cache.entries()) == 1

        protected = queue.referenced_prefixes()
        assert protected
        removed = cache.gc(protect=protected)
        assert removed == []
        assert len(cache.entries()) == 1

        # Drain the queue (releasing the busy lease first so the drain
        # does not wait out the full lease): nothing referenced
        # afterwards, gc may collect.
        queue.release_leases()
        Worker(queue, worker_id="w", poll_s=0.02).run()
        assert queue.referenced_prefixes() == set()
        assert len(cache.gc(protect=queue.referenced_prefixes())) == 1

    def test_gc_older_than_still_applies_outside_protection(self, tmp_path):
        cache = CheckpointCache(tmp_path / "cache")
        from repro.experiments.scenario import prefix_scenario, run_prefix
        from repro.runtime import checkpoint as ckpt

        config = small_config()
        sim = run_prefix(config)
        cache.publish(prefix_scenario(config), ckpt.snapshot(sim))
        [entry] = cache.entries()
        # Fresh entry, old-age filter: survives without any protection.
        assert cache.gc(older_than_s=3600.0) == []
        assert cache.gc(older_than_s=0.0) != []


class TestCliRequeueFlow:
    def test_requeue_releases_a_hung_lease(self, tmp_path):
        from repro.cli import main

        tasks = ablation_grid()[:2]
        queue_path = tmp_path / "q"
        queue = open_queue(queue_path)
        Coordinator(queue, workers=1).publish(tasks, lease_s=3600)
        queue.claim("hung")
        assert main(["queue", "requeue", str(queue_path)]) == 0
        lease = queue.claim("fresh")
        assert lease is not None  # claimable immediately, attempt bumped
        assert lease.attempt == 2
