"""Tests for the backup mechanism (Algorithm 1)."""

import pytest

from repro.core.backup import (
    BackupManager,
    required_replication,
    survival_probability,
)
from repro.core.config import PolystyreneConfig
from repro.core.protocol import PolystyreneLayer
from repro.spaces import FlatTorus

from .helpers import StubRPS, StubTMan, grid_coords, make_sim

TORUS = FlatTorus(8.0, 4.0)


def build(n=8, K=2, **config_kwargs):
    rps, tman = StubRPS(), StubTMan(TORUS)
    sim, factory, points = make_sim(
        TORUS, grid_coords(4, 2) if n == 8 else grid_coords(n, 1), layers=[rps, tman]
    )
    config = PolystyreneConfig(replication=K, **config_kwargs)
    poly = PolystyreneLayer(TORUS, config, rps, tman)
    for node in sim.network.alive_nodes():
        poly.init_node(sim, node)
    manager = BackupManager(config)
    return sim, manager, rps, tman


class TestAnalyticalModel:
    def test_paper_example(self):
        # ps = 0.99, pf = 0.5 requires K >= 6 (bound 5.64).
        assert required_replication(0.99, 0.5) == 6

    def test_survival_probabilities_table2(self):
        assert survival_probability(2, 0.5) == pytest.approx(0.875)
        assert survival_probability(4, 0.5) == pytest.approx(0.96875)
        assert survival_probability(8, 0.5) == pytest.approx(0.998046875)

    def test_k_zero(self):
        assert survival_probability(0, 0.5) == pytest.approx(0.5)

    def test_monotone_in_k(self):
        probs = [survival_probability(k, 0.5) for k in range(8)]
        assert probs == sorted(probs)

    def test_validation(self):
        with pytest.raises(ValueError):
            required_replication(1.0, 0.5)
        with pytest.raises(ValueError):
            required_replication(0.9, 0.0)
        with pytest.raises(ValueError):
            survival_probability(-1, 0.5)
        with pytest.raises(ValueError):
            survival_probability(2, 1.5)


class TestBackupRound:
    def test_establishes_k_backups(self):
        sim, manager, rps, tman = build(K=3)
        node = sim.network.node(0)
        manager.step_node(sim, node, rps, tman)
        assert len(node.poly.backups) == 3
        assert node.nid not in node.poly.backups

    def test_ghosts_installed_at_backups(self):
        sim, manager, rps, tman = build(K=2)
        node = sim.network.node(0)
        manager.step_node(sim, node, rps, tman)
        for backup_id in node.poly.backups:
            ghost = sim.network.node(backup_id).poly.ghosts[node.nid]
            assert set(ghost) == set(node.poly.guests)

    def test_failed_backup_replaced(self):
        sim, manager, rps, tman = build(K=2)
        node = sim.network.node(0)
        manager.step_node(sim, node, rps, tman)
        victim = min(node.poly.backups)
        sim.network.fail([victim], rnd=0)
        manager.step_node(sim, node, rps, tman)
        assert len(node.poly.backups) == 2
        assert victim not in node.poly.backups

    def test_k_zero_no_backups(self):
        sim, manager, rps, tman = build(K=0)
        node = sim.network.node(0)
        manager.step_node(sim, node, rps, tman)
        assert node.poly.backups == set()

    def test_charges_polystyrene_traffic(self):
        sim, manager, rps, tman = build(K=2)
        manager.step_node(sim, sim.network.node(0), rps, tman)
        assert sim.meter.round_cost("polystyrene") > 0


class TestIncrementalDeltas:
    def test_unchanged_guests_cost_nothing(self):
        sim, manager, rps, tman = build(K=2, incremental_backup=True)
        node = sim.network.node(0)
        manager.step_node(sim, node, rps, tman)
        cost_after_first = sim.meter.round_cost("polystyrene")
        manager.step_node(sim, node, rps, tman)
        assert sim.meter.round_cost("polystyrene") == cost_after_first

    def test_delta_applied_to_ghosts(self):
        sim, manager, rps, tman = build(K=1, incremental_backup=True)
        node = sim.network.node(0)
        manager.step_node(sim, node, rps, tman)
        # Node acquires a new guest point and drops nothing.
        extra = sim.network.node(3).initial_point
        node.poly.add_guests([extra])
        manager.step_node(sim, node, rps, tman)
        backup_id = next(iter(node.poly.backups))
        ghost = sim.network.node(backup_id).poly.ghosts[node.nid]
        assert extra.pid in ghost

    def test_removal_propagates(self):
        sim, manager, rps, tman = build(K=1, incremental_backup=True)
        node = sim.network.node(0)
        manager.step_node(sim, node, rps, tman)
        node.poly.set_guests([])
        manager.step_node(sim, node, rps, tman)
        backup_id = next(iter(node.poly.backups))
        ghost = sim.network.node(backup_id).poly.ghosts[node.nid]
        assert ghost == {}

    def test_incremental_cheaper_than_full(self):
        sim_inc, mgr_inc, rps_i, tman_i = build(K=2, incremental_backup=True)
        sim_full, mgr_full, rps_f, tman_f = build(K=2, incremental_backup=False)
        for sim, mgr, rps, tman in (
            (sim_inc, mgr_inc, rps_i, tman_i),
            (sim_full, mgr_full, rps_f, tman_f),
        ):
            node = sim.network.node(0)
            for _ in range(5):
                mgr.step_node(sim, node, rps, tman)
        assert sim_inc.meter.round_cost("polystyrene") < sim_full.meter.round_cost(
            "polystyrene"
        )


class TestPlacement:
    def test_neighbor_placement_prefers_closest(self):
        sim, manager, rps, tman = build(K=2, backup_placement="neighbors")
        node = sim.network.node(0)
        manager.step_node(sim, node, rps, tman)
        closest = set(tman.neighbors(sim, node, 2))
        assert node.poly.backups == closest

    def test_random_placement_uses_rps(self):
        sim, manager, rps, tman = build(K=2, backup_placement="random")
        node = sim.network.node(0)
        manager.step_node(sim, node, rps, tman)
        # StubRPS hands out the lowest non-self ids deterministically.
        assert node.poly.backups == {1, 2}
