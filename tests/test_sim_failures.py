"""Tests for failure injection."""

import pytest

from repro.sim.failures import (
    ChurnProcess,
    fail_nodes,
    half_space_failure,
    random_failure,
    region_failure,
    select_region,
)

from .helpers import grid_coords, make_sim


class TestSelectRegion:
    def test_predicate_on_initial_position(self, torus):
        sim, _, _ = make_sim(torus, grid_coords(4, 2))
        selected = select_region(sim, lambda c: c[0] < 2.0)
        # Columns x=0 and x=1, two rows each.
        assert len(selected) == 4

    def test_moved_node_still_matched_by_initial(self, torus):
        sim, _, _ = make_sim(torus, grid_coords(4, 2))
        sim.network.node(0).pos = (3.9, 0.0)  # node migrated away
        selected = select_region(sim, lambda c: c[0] < 1.0)
        assert 0 in selected

    def test_current_position_mode(self, torus):
        sim, _, _ = make_sim(torus, grid_coords(4, 2))
        sim.network.node(0).pos = (3.9, 0.0)
        selected = select_region(sim, lambda c: c[0] < 1.0, on_initial=False)
        assert 0 not in selected

    def test_pointless_node_matched_on_pos(self, torus):
        sim, _, _ = make_sim(torus, grid_coords(2, 2))
        fresh = sim.spawn_node((0.5, 0.5))
        selected = select_region(sim, lambda c: c[0] < 1.0)
        assert fresh.nid in selected


class TestHalfSpaceFailure:
    def test_kills_exactly_half(self, torus):
        sim, _, _ = make_sim(torus, grid_coords(8, 4))
        half_space_failure(0, 4.0)(sim)
        assert sim.network.n_alive == 16
        for node in sim.network.alive_nodes():
            assert node.initial_point.coord[0] >= 4.0

    def test_keep_upper_false(self, torus):
        sim, _, _ = make_sim(torus, grid_coords(8, 4))
        half_space_failure(0, 4.0, keep_upper=False)(sim)
        for node in sim.network.alive_nodes():
            assert node.initial_point.coord[0] < 4.0

    def test_axis_one(self, torus):
        sim, _, _ = make_sim(torus, grid_coords(4, 4))
        half_space_failure(1, 2.0)(sim)
        for node in sim.network.alive_nodes():
            assert node.initial_point.coord[1] >= 2.0


class TestRandomFailure:
    def test_fraction(self, torus):
        sim, _, _ = make_sim(torus, grid_coords(10, 10))
        random_failure(0.3)(sim)
        assert sim.network.n_alive == 70

    def test_zero_fraction(self, torus):
        sim, _, _ = make_sim(torus, grid_coords(4, 4))
        random_failure(0.0)(sim)
        assert sim.network.n_alive == 16

    def test_full_fraction(self, torus):
        sim, _, _ = make_sim(torus, grid_coords(4, 4))
        random_failure(1.0)(sim)
        assert sim.network.n_alive == 0

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            random_failure(1.5)

    def test_deterministic_per_seed(self, torus):
        sim_a, _, _ = make_sim(torus, grid_coords(6, 6), seed=9)
        sim_b, _, _ = make_sim(torus, grid_coords(6, 6), seed=9)
        random_failure(0.5)(sim_a)
        random_failure(0.5)(sim_b)
        assert sim_a.network.alive_ids() == sim_b.network.alive_ids()


class TestFailNodes:
    def test_explicit_set(self, torus):
        sim, _, _ = make_sim(torus, grid_coords(3, 3))
        fail_nodes([0, 5])(sim)
        assert not sim.network.is_alive(0)
        assert not sim.network.is_alive(5)
        assert sim.network.n_alive == 7

    def test_tolerates_already_dead(self, torus):
        sim, _, _ = make_sim(torus, grid_coords(2, 2))
        event = fail_nodes([1])
        event(sim)
        event(sim)  # second firing is a no-op
        assert sim.network.n_alive == 3


class TestChurn:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            ChurnProcess(1.0)
        with pytest.raises(ValueError):
            ChurnProcess(-0.1)

    def test_zero_rate_no_kills(self, torus):
        sim, _, _ = make_sim(torus, grid_coords(4, 4))
        assert ChurnProcess(0.0).apply(sim) == []

    def test_rate_kills_roughly_expected(self, torus):
        sim, _, _ = make_sim(torus, grid_coords(16, 16))
        victims = ChurnProcess(0.2).apply(sim)
        assert 20 <= len(victims) <= 85  # ~51 expected, loose bounds

    def test_never_kills_everyone(self, torus):
        sim, _, _ = make_sim(torus, grid_coords(2, 1))
        churn = ChurnProcess(0.99)
        for _ in range(50):
            churn.apply(sim)
            sim.round += 1
        assert sim.network.n_alive >= 1

    def test_schedule_window(self, torus):
        sim, _, _ = make_sim(torus, grid_coords(8, 8))
        ChurnProcess(0.1).schedule(sim, 1, 3)
        sim.run(5)
        assert sim.network.n_alive < 64
