"""Property-based checkpoint round-trips over every shape x space.

The phase-fork sweep machinery silently depends on one property: for
*any* deployment — not just the paper's torus grid — pausing a
simulation with ``snapshot``, restoring it, and running ``k`` more
rounds lands on exactly the ``state_digest`` of the uninterrupted run.
Hypothesis drives randomized seeds and split points across one shape
per metric-space preset (flat torus, Euclidean plane, 1-D ring,
annulus, random cloud) with the full production layer stack (peer
sampling + T-Man + Polystyrene) on top.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import PolystyreneConfig
from repro.core.points import PointFactory
from repro.core.protocol import PolystyreneLayer
from repro.gossip.rps import PeerSamplingLayer
from repro.gossip.tman import TManLayer
from repro.runtime import checkpoint
from repro.shapes import (
    AnnulusShape,
    DiskShape,
    LineShape,
    RandomCloud,
    RingShape,
    TorusGrid,
)
from repro.sim.engine import Simulation
from repro.sim.network import Network, PerfectFailureDetector

# One representative per space preset, small enough that a property
# run stays fast but large enough that gossip has real choices.
SHAPE_PRESETS = {
    "torus-grid": lambda: TorusGrid(6, 4),
    "ring": lambda: RingShape(24),
    "line": lambda: LineShape(24, end=(12.0, 0.0)),
    "disk": lambda: DiskShape(24, radius=3.0),
    "annulus": lambda: AnnulusShape(24, inner_radius=1.5, outer_radius=3.0),
    "random-cloud-torus": lambda: RandomCloud(
        24, bounds=((0.0, 6.0), (0.0, 4.0)), seed=11, torus=True
    ),
}

TOTAL_ROUNDS = 10


def build_shape_sim(shape, seed: int) -> Simulation:
    """The production layer stack over an arbitrary shape."""
    space = shape.space()
    points = PointFactory().create_many(shape.generate())
    network = Network(PerfectFailureDetector())
    for point in points:
        network.add_node(point.coord, point)
    rps = PeerSamplingLayer(view_size=8, shuffle_length=4)
    tman = TManLayer(space, rps, message_size=6, psi=3, bootstrap_size=5)
    poly = PolystyreneLayer(
        space, PolystyreneConfig(replication=2), rps, tman
    )
    sim = Simulation(
        space, network, layers=[rps, tman, poly], seed=seed
    )
    sim.init_all_nodes()
    return sim


@pytest.mark.parametrize("shape_name", sorted(SHAPE_PRESETS))
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    pause_round=st.integers(min_value=0, max_value=TOTAL_ROUNDS),
)
@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_restore_resumes_bit_identically(shape_name, seed, pause_round):
    """run N -> snapshot -> restore -> run M  ==  straight N+M run,
    for every shape preset, any seed, any split point."""
    shape = SHAPE_PRESETS[shape_name]()

    straight = build_shape_sim(shape, seed)
    straight.run(TOTAL_ROUNDS)

    interrupted = build_shape_sim(shape, seed)
    interrupted.run(pause_round)
    resumed = checkpoint.restore(checkpoint.snapshot(interrupted))
    resumed.run(TOTAL_ROUNDS - pause_round)

    assert checkpoint.state_digest(resumed) == checkpoint.state_digest(
        straight
    ), f"{shape_name}: fork at round {pause_round} drifted (seed {seed})"


@pytest.mark.parametrize("shape_name", sorted(SHAPE_PRESETS))
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(
    max_examples=3,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_one_snapshot_forks_identical_futures(shape_name, seed):
    """Two restores of one snapshot stay in lockstep — fork semantics
    hold in every space, not just on the paper's torus."""
    shape = SHAPE_PRESETS[shape_name]()
    sim = build_shape_sim(shape, seed)
    sim.run(4)
    ck = checkpoint.snapshot(sim)
    left, right = checkpoint.restore(ck), checkpoint.restore(ck)
    left.run(5)
    right.run(5)
    assert checkpoint.state_digest(left) == checkpoint.state_digest(right)
