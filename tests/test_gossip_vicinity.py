"""Tests for the Vicinity topology construction layer."""

import pytest

from repro.gossip.rps import PeerSamplingLayer
from repro.gossip.vicinity import VicinityLayer
from repro.metrics.proximity import proximity
from repro.sim.engine import Simulation
from repro.sim.network import Network
from repro.spaces import FlatTorus

from .helpers import grid_coords


def build(width=8, height=8, seed=0, **kwargs):
    space = FlatTorus(float(width), float(height))
    network = Network()
    for coord in grid_coords(width, height):
        network.add_node(coord)
    rps = PeerSamplingLayer(view_size=8, shuffle_length=4)
    params = dict(view_size=15, message_size=8, rps_candidates=3, bootstrap_size=5)
    params.update(kwargs)
    vicinity = VicinityLayer(space, rps, **params)
    sim = Simulation(space, network, [rps, vicinity], seed=seed)
    sim.init_all_nodes()
    return sim, vicinity


class TestValidation:
    def test_parameters(self):
        space = FlatTorus(4.0)
        rps = PeerSamplingLayer(view_size=4, shuffle_length=2)
        with pytest.raises(ValueError):
            VicinityLayer(space, rps, view_size=0)
        with pytest.raises(ValueError):
            VicinityLayer(space, rps, message_size=0)
        with pytest.raises(ValueError):
            VicinityLayer(space, rps, rps_candidates=-1)


class TestConvergence:
    def test_proximity_improves(self):
        sim, vicinity = build()
        start = proximity(sim.space, sim)
        sim.run(15)
        assert proximity(sim.space, sim) < start

    def test_converges_to_grid_neighbours(self):
        sim, vicinity = build()
        sim.run(25)
        assert proximity(sim.space, sim) < 1.3

    def test_views_bounded(self):
        sim, vicinity = build(view_size=10)
        sim.run(10)
        for node in sim.network.alive_nodes():
            assert len(node.tman_view) <= 10
            assert set(node.vicinity_age) == set(node.tman_view)

    def test_ages_grow_without_contact(self):
        sim, vicinity = build()
        sim.run(3)
        node = sim.network.alive_nodes()[0]
        assert any(age > 0 for age in node.vicinity_age.values())


class TestFailures:
    def test_dead_entries_purged(self):
        sim, vicinity = build()
        sim.run(5)
        victims = list(range(8))
        sim.network.fail(victims, rnd=sim.round)
        sim.run(2)
        for node in sim.network.alive_nodes():
            assert not (set(node.tman_view) & set(victims))

    def test_neighbors_interface_matches_tman(self):
        sim, vicinity = build()
        sim.run(10)
        node = sim.network.alive_nodes()[0]
        neigh = vicinity.neighbors(sim, node, 4)
        assert len(neigh) == 4
        assert all(sim.network.is_alive(nid) for nid in neigh)

    def test_charges_own_layer(self):
        sim, vicinity = build()
        sim.run(1)
        assert sim.meter.history[0].get("vicinity", 0) > 0


class TestPolystyreneOverVicinity:
    def test_scenario_with_vicinity_reshapes(self):
        from repro.experiments.scenario import ScenarioConfig, run_scenario

        config = ScenarioConfig(
            width=16,
            height=8,
            topology="vicinity",
            replication=4,
            failure_round=10,
            reinjection_round=None,
            total_rounds=45,
            seed=3,
            metrics=("homogeneity",),
        )
        result = run_scenario(config)
        assert result.reshaping_time is not None
        assert result.reliability > 0.9

    def test_invalid_topology_rejected(self):
        from repro.errors import ConfigurationError
        from repro.experiments.scenario import ScenarioConfig

        with pytest.raises(ConfigurationError):
            ScenarioConfig(topology="pastry")
