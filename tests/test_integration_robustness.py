"""Robustness integration tests beyond the paper's headline scenario:
steady churn, imperfect failure detection, repeated failures.
"""

import pytest

from repro.experiments.scenario import ScenarioConfig, build_simulation, run_scenario
from repro.metrics.homogeneity import homogeneity, surviving_fraction
from repro.sim.failures import ChurnProcess, half_space_failure


class TestChurn:
    def test_points_survive_steady_churn(self):
        config = ScenarioConfig(
            width=12,
            height=6,
            replication=4,
            failure_round=None,
            reinjection_round=None,
            total_rounds=30,
            seed=11,
            metrics=("homogeneity",),
        )
        sim, recorder, _, points = build_simulation(config)
        ChurnProcess(0.02).schedule(sim, 5, 25)
        sim.run(30)
        alive = sim.network.alive_nodes()
        assert sim.network.n_alive < 72  # churn actually killed nodes
        # Replication keeps most points alive through 2%/round churn.
        # Note: the paper's protocol has a one-round vulnerability
        # window for points in flight — a freshly migrated point whose
        # new holder dies before the next backup push is lost even
        # though stale copies existed a round earlier (Algorithm 1
        # pushes before Algorithm 3 migrates).  Continuous churn
        # exercises that window, so survival sits below the one-shot
        # 1-0.5^(K+1) bound; it must still stay high.
        assert surviving_fraction(points, alive) > 0.88

    def test_shape_tracked_under_churn(self):
        config = ScenarioConfig(
            width=12,
            height=6,
            replication=4,
            failure_round=None,
            reinjection_round=None,
            total_rounds=30,
            seed=3,
            metrics=("homogeneity",),
        )
        sim, recorder, _, points = build_simulation(config)
        ChurnProcess(0.02).schedule(sim, 5, 25)
        sim.run(30)
        final_hom = recorder.series["homogeneity"][-1]
        survivors = sim.network.n_alive
        h_ref = config.grid.reference_homogeneity(survivors)
        assert final_hom < 2.5 * h_ref


class TestDelayedDetection:
    def test_recovery_still_happens_with_delay(self):
        config = ScenarioConfig(
            width=12,
            height=6,
            replication=4,
            failure_round=8,
            reinjection_round=None,
            total_rounds=40,
            detector_delay=3,
            seed=5,
            metrics=("homogeneity",),
        )
        result = run_scenario(config)
        assert result.reshaping_time is not None

    def test_delay_slows_reshaping(self):
        times = {}
        for delay in (0, 4):
            config = ScenarioConfig(
                width=12,
                height=6,
                replication=4,
                failure_round=8,
                reinjection_round=None,
                total_rounds=48,
                detector_delay=delay,
                seed=5,
                metrics=("homogeneity",),
            )
            times[delay] = run_scenario(config).reshaping_time
        assert times[4] >= times[0]


class TestRepeatedFailures:
    def test_second_catastrophe_survivable(self):
        config = ScenarioConfig(
            width=16,
            height=8,
            replication=8,
            failure_round=8,
            failure_fraction=0.25,
            reinjection_round=None,
            total_rounds=60,
            seed=2,
            metrics=("homogeneity",),
        )
        sim, recorder, _, points = build_simulation(config)
        sim.schedule(8, half_space_failure(0, 4.0))
        sim.schedule(30, half_space_failure(1, 2.0))
        sim.run(60)
        alive = sim.network.alive_nodes()
        assert sim.network.n_alive > 0
        assert surviving_fraction(points, alive) > 0.9
        h_ref = config.grid.reference_homogeneity(sim.network.n_alive)
        assert recorder.series["homogeneity"][-1] < 2.0 * h_ref


class TestKZero:
    def test_no_replication_degrades_to_half_loss(self):
        config = ScenarioConfig(
            width=12,
            height=6,
            replication=0,
            failure_round=8,
            reinjection_round=None,
            total_rounds=30,
            seed=4,
            metrics=("homogeneity",),
        )
        result = run_scenario(config)
        # With K=0 exactly the failed half's points die.
        assert result.reliability == pytest.approx(0.5, abs=0.02)
