"""Tests for the message-cost meter."""

import pytest

from repro.sim.transport import MessageMeter


class TestCharging:
    def test_accumulates(self):
        meter = MessageMeter()
        meter.charge("tman", 10)
        meter.charge("tman", 5)
        assert meter.round_cost("tman") == 15

    def test_layers_separate(self):
        meter = MessageMeter()
        meter.charge("tman", 10)
        meter.charge("polystyrene", 3)
        assert meter.round_cost("tman") == 10
        assert meter.round_cost("polystyrene") == 3
        assert meter.round_cost() == 13

    def test_negative_rejected(self):
        meter = MessageMeter()
        with pytest.raises(ValueError):
            meter.charge("x", -1)

    def test_descriptor_units_match_paper(self):
        # A descriptor is ID + coordinates: 3 units in 2-D.
        meter = MessageMeter()
        meter.charge_descriptors("tman", count=20, coord_dim=2)
        assert meter.round_cost("tman") == 60

    def test_point_units_match_paper(self):
        # A bare 2-D point costs 2 units.
        meter = MessageMeter()
        meter.charge_points("poly", count=5, coord_dim=2)
        assert meter.round_cost("poly") == 10

    def test_id_units(self):
        meter = MessageMeter()
        meter.charge_ids("poly", 7)
        assert meter.round_cost("poly") == 7


class TestRounds:
    def test_end_round_snapshots_and_resets(self):
        meter = MessageMeter()
        meter.charge("a", 4)
        snap = meter.end_round()
        assert snap == {"a": 4}
        assert meter.round_cost() == 0

    def test_history_ordering(self):
        meter = MessageMeter()
        meter.charge("a", 1)
        meter.end_round()
        meter.charge("a", 2)
        meter.end_round()
        assert [h["a"] for h in meter.history] == [1, 2]

    def test_series_all_layers(self):
        meter = MessageMeter()
        meter.charge("a", 1)
        meter.charge("b", 2)
        meter.end_round()
        meter.end_round()
        assert meter.series() == [3, 0]

    def test_series_single_layer(self):
        meter = MessageMeter()
        meter.charge("a", 1)
        meter.charge("b", 2)
        meter.end_round()
        assert meter.series("b") == [2]

    def test_series_exclusion(self):
        meter = MessageMeter()
        meter.charge("rps", 100)
        meter.charge("tman", 10)
        meter.end_round()
        assert meter.series(exclude=("rps",)) == [10]
