"""Tests for gossip aggregation and decentralised size estimation."""

import pytest

from repro.gossip.aggregation import AggregationLayer, SizeEstimator
from repro.gossip.rps import PeerSamplingLayer
from repro.sim.engine import Simulation
from repro.sim.network import Network
from repro.spaces import FlatTorus

from .helpers import grid_coords


def build(n_side=8, layer_cls=AggregationLayer, seed=0, **kwargs):
    space = FlatTorus(float(n_side), float(n_side))
    network = Network()
    for coord in grid_coords(n_side, n_side):
        network.add_node(coord)
    rps = PeerSamplingLayer(view_size=8, shuffle_length=4)
    layer = layer_cls(rps, **kwargs)
    sim = Simulation(space, network, [rps, layer], seed=seed)
    sim.init_all_nodes()
    return sim, layer


def values(sim):
    return [n.agg_value for n in sim.network.alive_nodes()]


class TestAveraging:
    def test_mean_is_invariant(self):
        sim, layer = build()
        for i, node in enumerate(sim.network.alive_nodes()):
            layer.set_value(node, float(i))
        before = sum(values(sim)) / len(values(sim))
        sim.run(10)
        after = sum(values(sim)) / len(values(sim))
        assert after == pytest.approx(before, rel=1e-9)

    def test_variance_decays(self):
        sim, layer = build()
        for i, node in enumerate(sim.network.alive_nodes()):
            layer.set_value(node, float(i % 2) * 100.0)
        def spread():
            vals = values(sim)
            return max(vals) - min(vals)
        initial = spread()
        sim.run(12)
        assert spread() < initial / 50.0

    def test_charges_own_layer(self):
        sim, layer = build()
        sim.run(1)
        assert sim.meter.history[0].get("aggregation", 0) > 0


class TestSizeEstimation:
    def test_converges_to_network_size(self):
        sim, est = build(layer_cls=SizeEstimator, seed_node=0)
        sim.run(25)
        node = sim.network.alive_nodes()[5]
        assert est.estimate(node) == pytest.approx(64, rel=0.15)

    def test_all_nodes_agree_after_convergence(self):
        sim, est = build(layer_cls=SizeEstimator, seed_node=0)
        sim.run(30)
        estimates = [est.estimate(n) for n in sim.network.alive_nodes()]
        assert max(estimates) / min(estimates) < 1.3

    def test_zero_value_is_infinite_estimate(self):
        sim, est = build(layer_cls=SizeEstimator, seed_node=0)
        node = sim.network.alive_nodes()[1]
        assert est.estimate(node) == float("inf")

    def test_reseed_tracks_shrunken_network(self):
        sim, est = build(layer_cls=SizeEstimator, seed_node=0)
        sim.run(20)
        victims = [n for n in range(64) if n % 8 < 4]
        sim.network.fail(victims, rnd=sim.round)
        est.reseed(sim)
        sim.run(25)
        node = sim.network.alive_nodes()[3]
        assert est.estimate(node) == pytest.approx(32, rel=0.2)

    def test_adaptive_replication_sizing(self):
        """The extension the estimator enables: derive K locally from
        the estimated surviving fraction."""
        from repro.core.backup import required_replication

        sim, est = build(layer_cls=SizeEstimator, seed_node=0)
        sim.run(25)
        node = sim.network.alive_nodes()[0]
        n_before = est.estimate(node)
        # Operator expects up to half of the estimated network to fail
        # together and wants 99% point survival:
        k = required_replication(0.99, 0.5)
        assert k == 6
        assert n_before == pytest.approx(64, rel=0.2)
