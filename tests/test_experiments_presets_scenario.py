"""Tests for scale presets and scenario configuration."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.presets import PAPER, PRESETS, REDUCED, SMOKE, get_preset
from repro.experiments.scenario import ScenarioConfig, _reinjection_positions


class TestPresets:
    def test_registry_names(self):
        assert set(PRESETS) == {"smoke", "reduced", "paper"}

    def test_paper_matches_publication(self):
        assert PAPER.width == 80
        assert PAPER.height == 40
        assert PAPER.n_nodes == 3200
        assert PAPER.failure_round == 20
        assert PAPER.reinjection_round == 100
        assert PAPER.total_rounds == 200
        assert PAPER.repetitions == 25
        assert (320, 160) in PAPER.sweep_grids  # the 51,200-node torus

    def test_aspect_ratio_preserved(self):
        for preset in PRESETS.values():
            assert preset.width == 2 * preset.height

    def test_get_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert get_preset().name == "reduced"

    def test_get_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert get_preset().name == "smoke"

    def test_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert get_preset("paper").name == "paper"

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            get_preset("gigantic")


class TestScenarioConfig:
    def test_from_preset_binds_dimensions(self):
        config = ScenarioConfig.from_preset(SMOKE, replication=8)
        assert config.width == SMOKE.width
        assert config.total_rounds == SMOKE.total_rounds
        assert config.replication == 8

    def test_invalid_protocol(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(protocol="chord")

    def test_failure_after_end_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(failure_round=100, total_rounds=50)

    def test_reinjection_before_failure_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(failure_round=20, reinjection_round=10, total_rounds=50)

    def test_failure_cut_half(self):
        config = ScenarioConfig(width=32, height=16)
        assert config.failure_cut() == 16.0
        assert config.failed_node_count() == 16 * 16

    def test_no_failure(self):
        config = ScenarioConfig(failure_round=None, reinjection_round=None)
        assert config.failed_node_count() == 0

    def test_grid_matches_dimensions(self):
        config = ScenarioConfig(width=8, height=4)
        assert config.grid.size == 32
        assert config.n_nodes == 32


class TestReinjectionPositions:
    def test_count_and_offset(self):
        config = ScenarioConfig(width=8, height=4)
        positions = _reinjection_positions(config, 16)
        assert len(positions) == 16
        # Parallel grid: offset by half a step on both axes.
        assert all(x % 1.0 == 0.5 and y % 1.0 == 0.5 for x, y in positions)

    def test_full_count(self):
        config = ScenarioConfig(width=4, height=4)
        positions = _reinjection_positions(config, 16)
        assert len(set(positions)) == 16

    def test_count_capped_at_grid(self):
        config = ScenarioConfig(width=4, height=2)
        assert len(_reinjection_positions(config, 100)) == 8

    def test_zero(self):
        config = ScenarioConfig(width=4, height=2)
        assert _reinjection_positions(config, 0) == []

    def test_half_count_spreads_uniformly(self):
        config = ScenarioConfig(width=8, height=4)
        positions = _reinjection_positions(config, 16)
        xs = {p[0] for p in positions}
        # Every column of the torus must be covered.
        assert len(xs) == 8
