"""Property-based tests of the protocol's conservation invariants.

Random interleavings of migrations, failures, backups and recoveries
must never lose a data point *as long as some copy's holder stays
alive* — the library's namesake guarantee.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.backup import BackupManager
from repro.core.config import PolystyreneConfig
from repro.core.migration import MigrationManager
from repro.core.protocol import PolystyreneLayer
from repro.core.recovery import recover_node
from repro.core.split import make_split
from repro.spaces import FlatTorus

from .helpers import StubRPS, StubTMan, grid_coords, make_sim

TORUS = FlatTorus(8.0, 4.0)


def build(K=2, split="advanced"):
    rps, tman = StubRPS(), StubTMan(TORUS)
    sim, factory, points = make_sim(TORUS, grid_coords(4, 2), layers=[rps, tman])
    config = PolystyreneConfig(replication=K, split=split)
    poly = PolystyreneLayer(TORUS, config, rps, tman)
    for node in sim.network.alive_nodes():
        poly.init_node(sim, node)
    return sim, config, rps, tman, points


def held_guests(sim):
    held = set()
    for node in sim.network.alive_nodes():
        held.update(node.poly.guests)
    return held


def held_anywhere(sim):
    held = set(held_guests(sim))
    for node in sim.network.alive_nodes():
        for ghost in node.poly.ghosts.values():
            held.update(ghost)
    return held


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 7), st.integers(0, 7)),
        min_size=1,
        max_size=30,
    )
)
def test_migrations_conserve_points(pairs):
    """Any sequence of pairwise exchanges is loss- and dup-free."""
    sim, config, rps, tman, points = build()
    manager = MigrationManager(config, make_split("advanced"))
    for a, b in pairs:
        if a == b:
            continue
        manager.exchange(sim, sim.network.node(a), sim.network.node(b))
        # No duplicates: every pid held exactly once.
        seen = {}
        for node in sim.network.alive_nodes():
            for pid in node.poly.guests:
                seen[pid] = seen.get(pid, 0) + 1
        assert all(count == 1 for count in seen.values())
    assert held_guests(sim) == {p.pid for p in points}


@settings(max_examples=25, deadline=None)
@given(
    st.data(),
    st.integers(1, 3),
)
def test_random_failures_never_lose_backed_up_points(data, K):
    """After full replication, kill random subsets round by round and
    run recovery: every point with at least one surviving copy-holder
    must remain held somewhere."""
    sim, config, rps, tman, points = build(K=K)
    backup = BackupManager(config)
    for node in sim.network.alive_nodes():
        backup.step_node(sim, node, rps, tman)

    for _ in range(3):
        alive = sim.network.alive_ids()
        if len(alive) <= 1:
            break
        victims = data.draw(
            st.lists(st.sampled_from(alive), max_size=len(alive) - 1, unique=True)
        )
        before = held_anywhere(sim)
        sim.network.fail(victims, sim.round)
        survivors_hold = held_anywhere(sim)
        for node in sim.network.alive_nodes():
            recover_node(sim, node)
        after = held_guests(sim)
        # Everything that still had a copy on a survivor is now an
        # active guest again.
        assert survivors_hold <= after | set()
        # Recovery invents nothing.
        assert after <= before


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_full_round_interleaving_conserves_points(seed):
    """Whole protocol rounds (recovery+backup+migration+projection)
    never lose or duplicate points in a failure-free network."""
    rps, tman = StubRPS(), StubTMan(TORUS)
    sim, factory, points = make_sim(
        TORUS, grid_coords(4, 2), layers=[rps, tman], seed=seed
    )
    config = PolystyreneConfig(replication=2)
    poly = PolystyreneLayer(TORUS, config, rps, tman)
    for node in sim.network.alive_nodes():
        poly.init_node(sim, node)
    for _ in range(4):
        poly.step(sim)
        sim.round += 1
    seen = {}
    for node in sim.network.alive_nodes():
        for pid in node.poly.guests:
            seen[pid] = seen.get(pid, 0) + 1
    assert set(seen) == {p.pid for p in points}
    assert all(count == 1 for count in seen.values())
