"""CLI surface of the cluster subsystem: ``repro sweep --distributed``,
``repro worker``, ``repro queue status/requeue/merge``,
``repro results --diff``, ``repro checkpoints gc --queue``."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.runtime.cluster import open_queue
from repro.runtime.store import ResultStore

SWEEP_ARGS = ["--scale", "smoke", "--ks", "2", "--seeds", "2"]


class TestParser:
    def test_sweep_distributed_flags(self):
        args = build_parser().parse_args(
            [
                "sweep",
                "--distributed",
                "--queue",
                "q",
                "--no-join",
                "--lease",
                "45",
                "--max-attempts",
                "5",
            ]
        )
        assert args.distributed and args.queue == "q" and args.no_join
        assert args.lease == 45.0 and args.max_attempts == 5

    def test_worker_flags(self):
        args = build_parser().parse_args(
            ["worker", "--queue", "q", "--max-cells", "3", "--drain"]
        )
        assert args.queue == "q" and args.max_cells == 3 and args.drain

    def test_queue_actions(self):
        args = build_parser().parse_args(
            ["queue", "merge", "q", "--store", "out.jsonl"]
        )
        assert args.action == "merge" and args.queue == "q"
        args = build_parser().parse_args(
            ["queue", "requeue", "q", "--task", "a", "--task", "b", "--failed"]
        )
        assert args.task == ["a", "b"] and args.failed

    def test_checkpoints_gc_queue_flag(self):
        args = build_parser().parse_args(
            ["checkpoints", "gc", "--queue", "q1", "--queue", "q2"]
        )
        assert args.queue == ["q1", "q2"]

    def test_results_diff_flag(self):
        args = build_parser().parse_args(["results", "a.jsonl", "--diff", "b"])
        assert args.diff == "b"

    def test_run_queue_flag(self):
        assert build_parser().parse_args(
            ["run", "fig1", "--queue", "q"]
        ).queue == "q"


class TestDistributedSweepFlow:
    def test_publish_workers_merge_diff(self, tmp_path, monkeypatch, capsys):
        """The whole CLI lifecycle, as the CI smoke job runs it:
        publish --no-join, drain with two worker invocations, merge,
        and diff against a serial sweep of the same grid."""
        monkeypatch.chdir(tmp_path)
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        queue_path = str(tmp_path / "q")

        rc = main(
            ["sweep", *SWEEP_ARGS, "--distributed", "--queue", queue_path,
             "--no-join"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "published 2 cells" in out
        assert not open_queue(queue_path).is_complete()

        assert main(["queue", "status", queue_path]) == 0
        assert "2 pending" in capsys.readouterr().out

        # Two workers drain the queue (sequential here; the recovery
        # and exec tests cover true concurrency).
        for worker_id in ("w1", "w2"):
            rc = main(
                ["worker", "--queue", queue_path, "--worker-id", worker_id,
                 "--max-cells", "1", "--poll", "0.02"]
            )
            assert rc == 0
        assert open_queue(queue_path).is_complete()

        merged_path = str(tmp_path / "merged.jsonl")
        assert main(
            ["queue", "merge", queue_path, "--store", merged_path]
        ) == 0
        assert "merged 2 cells" in capsys.readouterr().out

        serial_path = str(tmp_path / "serial.jsonl")
        assert main(["sweep", *SWEEP_ARGS, "--store", serial_path]) == 0
        capsys.readouterr()
        assert main(["results", merged_path, "--diff", serial_path]) == 0
        assert "equivalent" in capsys.readouterr().out

    def test_distributed_join_inline(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        store_path = str(tmp_path / "dist.jsonl")
        rc = main(
            ["sweep", *SWEEP_ARGS, "--distributed",
             "--queue", str(tmp_path / "q"), "--workers", "1",
             "--store", store_path]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "distributed sweep over 2 cells" in out
        assert "merged 2 cells" in out
        store = ResultStore(store_path)
        assert len(store.cells(status="ok")) == 2

    def test_distributed_requires_queue(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["sweep", *SWEEP_ARGS, "--distributed"]) == 2
        assert "--queue" in capsys.readouterr().err

    def test_worker_drain_on_empty_queue_exits(self, tmp_path, capsys):
        rc = main(
            ["worker", "--queue", str(tmp_path / "q"), "--drain",
             "--poll", "0.01"]
        )
        assert rc == 0
        assert "0 ok" in capsys.readouterr().out

    def test_worker_restores_signal_handlers(self, tmp_path):
        """The graceful-drain handlers must not outlive the worker: a
        leaked SIGTERM handler is inherited by every process forked
        afterwards, which breaks multiprocessing.Pool.terminate() (the
        idle workers ignore the TERM and pool shutdown hangs)."""
        import signal

        before_term = signal.getsignal(signal.SIGTERM)
        before_int = signal.getsignal(signal.SIGINT)
        main(["worker", "--queue", str(tmp_path / "q"), "--drain",
              "--poll", "0.01"])
        assert signal.getsignal(signal.SIGTERM) is before_term
        assert signal.getsignal(signal.SIGINT) is before_int


class TestCheckpointGcProtection:
    def test_gc_queue_flag_spares_referenced_prefixes(self, tmp_path, capsys):
        from repro.experiments.scenario import ScenarioConfig
        from repro.runtime.cluster import Coordinator
        from repro.runtime.forksweep import CheckpointCache
        from repro.runtime.runner import grid_tasks

        config = ScenarioConfig(
            width=6, height=3, failure_round=4, reinjection_round=None,
            total_rounds=14, metrics=("homogeneity",),
        )
        queue_path = tmp_path / "q"
        queue = open_queue(queue_path)
        Coordinator(queue, workers=1).publish(
            grid_tasks(config, {"failure_fraction": (0.25, 0.5)})
        )
        cache_dir = str(queue.cache_root())
        assert len(CheckpointCache(cache_dir).entries()) == 1
        rc = main(
            ["checkpoints", "gc", "--dir", cache_dir, "--queue",
             str(queue_path)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "removed 0 checkpoint(s)" in out
        assert "protected 1 prefix" in out
        assert len(CheckpointCache(cache_dir).entries()) == 1


class TestQueueDiagnostics:
    def test_status_unpublished_queue(self, tmp_path, capsys):
        assert main(["queue", "status", str(tmp_path / "q")]) == 1
        assert "no published grid" in capsys.readouterr().out

    def test_merge_needs_store(self, tmp_path, capsys):
        assert main(["queue", "merge", str(tmp_path / "q")]) == 2
        assert "--store" in capsys.readouterr().err

    def test_merge_unpublished_queue_errors(self, tmp_path, capsys):
        rc = main(
            ["queue", "merge", str(tmp_path / "q"), "--store",
             str(tmp_path / "out.jsonl")]
        )
        assert rc == 1
        assert "no published grid" in capsys.readouterr().err

    def test_results_diff_detects_divergence(self, tmp_path, capsys):
        from repro.experiments.scenario import ScenarioConfig

        config = ScenarioConfig(
            width=6, height=3, failure_round=4, reinjection_round=None,
            total_rounds=14, metrics=("homogeneity",),
        )
        a = ResultStore(tmp_path / "a.jsonl")
        a.open_run(run_id="r")
        a.append_cell("r", "cell", config, status="ok")
        b = ResultStore(tmp_path / "b.jsonl")
        b.open_run(run_id="r")
        b.append_cell("r", "cell", config, status="error", error="boom")
        rc = main(
            ["results", str(a.path), "--diff", str(b.path)]
        )
        assert rc == 1
        assert "differ" in capsys.readouterr().out
