"""Tests for ASCII rendering, tables and CSV export."""

import csv

import pytest

from repro.viz.ascii import density_grid, occupancy_stats, render_density
from repro.viz.export import write_rows_csv, write_series_csv
from repro.viz.tables import format_table, sample_series


class TestDensityGrid:
    def test_counts_positions(self):
        grid = density_grid([(0.1, 0.1), (0.2, 0.2)], (1.0, 1.0), cols=2, rows=2)
        assert grid[0][0] == 2

    def test_wraps_out_of_cell(self):
        grid = density_grid([(1.1, 0.0)], (1.0, 1.0), cols=2, rows=2)
        assert grid[0][0] == 1

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            density_grid([], (1.0, 1.0), cols=0)

    def test_empty_positions(self):
        grid = density_grid([], (1.0, 1.0), cols=3, rows=3)
        assert all(all(c == 0 for c in row) for row in grid)


class TestRenderDensity:
    def test_contains_title_and_border(self):
        out = render_density([(0.5, 0.5)], (1.0, 1.0), cols=4, rows=2, title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("+")
        assert len(lines) == 1 + 2 + 2  # title + border + rows

    def test_empty_cells_blank(self):
        out = render_density([], (1.0, 1.0), cols=3, rows=1)
        assert "|   |" in out

    def test_dense_cell_marked(self):
        out = render_density([(0.5, 0.5)] * 10, (1.0, 1.0), cols=2, rows=1)
        assert "@" in out


class TestOccupancyStats:
    def test_uniform_coverage(self):
        positions = [(x + 0.5, y + 0.5) for x in range(4) for y in range(4)]
        stats = occupancy_stats(positions, (4.0, 4.0), cols=4, rows=4)
        assert stats["empty_fraction"] == 0.0
        assert stats["max_occupancy"] == 1

    def test_half_empty(self):
        positions = [(0.5, y + 0.5) for y in range(4)]
        stats = occupancy_stats(positions, (2.0, 4.0), cols=2, rows=4)
        assert stats["empty_fraction"] == pytest.approx(0.5)


class TestFormatTable:
    def test_alignment_and_header(self):
        out = format_table(["name", "v"], [["a", 1], ["bb", 2.5]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "-+-" in lines[1]
        assert len(lines) == 4

    def test_title(self):
        out = format_table(["x"], [[1]], title="My table")
        assert out.splitlines()[0] == "My table"

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        out = format_table(["x"], [[1.23456789]])
        assert "1.235" in out


class TestSampleSeries:
    def test_samples_every_n(self):
        out = sample_series([0.0, 1.0, 2.0, 3.0, 4.0], every=2)
        assert out == [(0, 0.0), (2, 2.0), (4, 4.0)]

    def test_includes_last(self):
        out = sample_series([0.0, 1.0, 2.0, 3.0], every=3)
        assert out[-1] == (3, 3.0)

    def test_invalid_every(self):
        with pytest.raises(ValueError):
            sample_series([1.0], every=0)


class TestExport:
    def test_write_series_csv(self, tmp_path):
        path = tmp_path / "out.csv"
        write_series_csv(str(path), {"a": [1.0, 2.0], "b": [3.0, 4.0]})
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["round", "a", "b"]
        assert rows[1] == ["0", "1.0", "3.0"]

    def test_write_series_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_series_csv(str(tmp_path / "x.csv"), {})

    def test_write_rows_csv(self, tmp_path):
        path = tmp_path / "rows.csv"
        write_rows_csv(str(path), ["k", "v"], [[1, 2], [3, 4]])
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert len(rows) == 3
