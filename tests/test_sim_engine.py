"""Tests for the cycle-driven simulation engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulation
from repro.sim.network import Network
from repro.spaces import Euclidean

from .helpers import NullLayer, make_sim


class CountingLayer:
    """Records every activation for ordering/coverage assertions."""

    def __init__(self, name):
        self.name = name
        self.steps = 0
        self.inited = []

    def init_node(self, sim, node):
        self.inited.append(node.nid)

    def step(self, sim):
        self.steps += 1


class TestConstruction:
    def test_duplicate_layer_names_rejected(self):
        net = Network()
        with pytest.raises(SimulationError):
            Simulation(Euclidean(2), net, [NullLayer("a"), NullLayer("a")])

    def test_init_all_nodes_covers_population(self, plane):
        layer = CountingLayer("count")
        sim, _, _ = make_sim(plane, [(0, 0), (1, 0), (2, 0)], layers=[layer])
        assert sorted(layer.inited) == [0, 1, 2]


class TestRounds:
    def test_step_advances_round(self, plane):
        sim, _, _ = make_sim(plane, [(0, 0)])
        assert sim.step() == 0
        assert sim.step() == 1
        assert sim.round == 2

    def test_run_n_rounds(self, plane):
        layer = CountingLayer("count")
        sim, _, _ = make_sim(plane, [(0, 0)], layers=[layer])
        sim.run(7)
        assert layer.steps == 7

    def test_run_negative_rejected(self, plane):
        sim, _, _ = make_sim(plane, [(0, 0)])
        with pytest.raises(ValueError):
            sim.run(-1)

    def test_meter_snapshot_per_round(self, plane):
        sim, _, _ = make_sim(plane, [(0, 0)])
        sim.meter.charge("x", 3)
        sim.step()
        assert sim.meter.history == [{"x": 3}]


class TestEvents:
    def test_event_fires_at_scheduled_round(self, plane):
        sim, _, _ = make_sim(plane, [(0, 0), (1, 0)])
        fired = []
        sim.schedule(2, lambda s: fired.append(s.round))
        sim.run(4)
        assert fired == [2]

    def test_events_fire_in_schedule_order(self, plane):
        sim, _, _ = make_sim(plane, [(0, 0)])
        order = []
        sim.schedule(1, lambda s: order.append("first"))
        sim.schedule(1, lambda s: order.append("second"))
        sim.run(2)
        assert order == ["first", "second"]

    def test_event_before_layers(self, plane):
        # An event killing a node at round r must be visible to layers
        # in round r (PeerSim semantics: events at round start).
        seen = []

        class Probe:
            name = "probe"

            def init_node(self, sim, node):
                pass

            def step(self, sim):
                seen.append(sim.network.n_alive)

        sim, _, _ = make_sim(plane, [(0, 0), (1, 0)], layers=[Probe()])
        sim.schedule(1, lambda s: s.network.fail([0], s.round))
        sim.run(2)
        assert seen == [2, 1]

    def test_past_event_rejected(self, plane):
        sim, _, _ = make_sim(plane, [(0, 0)])
        sim.run(3)
        with pytest.raises(SimulationError):
            sim.schedule(1, lambda s: None)


class TestSpawn:
    def test_spawn_initialises_all_layers(self, plane):
        layer = CountingLayer("count")
        sim, _, _ = make_sim(plane, [(0, 0)], layers=[layer])
        node = sim.spawn_node((5.0, 5.0))
        assert node.nid in layer.inited
        assert sim.network.is_alive(node.nid)

    def test_spawned_node_has_no_point(self, plane):
        sim, _, _ = make_sim(plane, [(0, 0)])
        node = sim.spawn_node((1.0, 1.0))
        assert node.initial_point is None


class TestDeterminism:
    def test_shuffled_alive_deterministic_per_seed(self, plane):
        coords = [(float(i), 0.0) for i in range(10)]
        sim_a, _, _ = make_sim(plane, coords, seed=5)
        sim_b, _, _ = make_sim(plane, coords, seed=5)
        assert sim_a.shuffled_alive("x") == sim_b.shuffled_alive("x")

    def test_shuffled_alive_varies_with_seed(self, plane):
        coords = [(float(i), 0.0) for i in range(10)]
        sim_a, _, _ = make_sim(plane, coords, seed=1)
        sim_b, _, _ = make_sim(plane, coords, seed=2)
        assert sim_a.shuffled_alive("x") != sim_b.shuffled_alive("x")

    def test_layer_rngs_independent(self, plane):
        sim, _, _ = make_sim(plane, [(0, 0)])
        assert sim.rng_for("a").random() != sim.rng_for("b").random()

    def test_observer_called_each_round(self, plane):
        rounds = []

        class Obs:
            def on_round_end(self, sim):
                rounds.append(sim.round)

        sim, _, _ = make_sim(plane, [(0, 0)])
        sim.observers.append(Obs())
        sim.run(3)
        assert rounds == [0, 1, 2]
