"""Result store: persistence, querying, and sweep resume."""

from __future__ import annotations

import json

import pytest

from repro.analysis.stats import mean_ci_over_cells
from repro.errors import StoreError
from repro.experiments.scenario import ScenarioConfig
from repro.runtime.runner import ParallelRunner, seed_sweep_tasks
from repro.runtime.store import ResultStore, config_dict, config_hash, git_revision
from repro.viz.tables import format_store_cells


def tiny_config(**overrides) -> ScenarioConfig:
    base = dict(
        width=6,
        height=3,
        failure_round=4,
        reinjection_round=None,
        total_rounds=14,
        metrics=("homogeneity",),
        seed=0,
    )
    base.update(overrides)
    return ScenarioConfig(**base)


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "results.jsonl")


class TestConfigIdentity:
    def test_config_dict_is_json_safe(self):
        blob = json.dumps(config_dict(tiny_config()))
        assert '"replication"' in blob

    def test_hash_stable_and_seed_sensitive(self):
        assert config_hash(tiny_config()) == config_hash(tiny_config())
        assert config_hash(tiny_config(seed=1)) != config_hash(
            tiny_config(seed=2)
        )

    def test_git_revision_known_in_this_repo(self):
        rev = git_revision()
        assert rev == "unknown" or len(rev) == 40


class TestReadBack:
    def test_sweep_readback(self, store):
        """A completed sweep reads back: run header, every cell, and
        the summary scalars the analysis layer aggregates."""
        tasks = seed_sweep_tasks(tiny_config(), [0, 1, 2])
        runner = ParallelRunner(workers=1)
        cells = runner.run(tasks, store=store, metadata={"purpose": "test"})
        assert all(cell.ok for cell in cells)

        run_id = store.latest_run_id()
        assert run_id is not None
        runs = store.runs()
        assert len(runs) == 1
        assert runs[0]["metadata"] == {"purpose": "test"}
        assert "git_rev" in runs[0]

        records = store.cells(run_id=run_id)
        assert {r["task_id"] for r in records} == {"seed-0", "seed-1", "seed-2"}
        for record in records:
            assert record["status"] == "ok"
            assert record["config"]["width"] == 6
            assert record["config_hash"] == config_hash(
                tiny_config(seed=record["seed"])
            )
            summary = record["summary"]
            assert 0.0 <= summary["reliability"] <= 1.0
            assert summary["rounds"] == 14
            assert "homogeneity" in summary["final"]

    def test_config_filters_and_where(self, store):
        run_id = store.open_run()
        for k in (2, 4, 8):
            store.append_cell(
                run_id, f"k{k}", tiny_config(replication=k), status="ok"
            )
        assert [r["task_id"] for r in store.cells(replication=4)] == ["k4"]
        picked = store.cells(where=lambda r: r["config"]["replication"] > 2)
        assert {r["task_id"] for r in picked} == {"k4", "k8"}

    def test_series_of_reads_summary_and_final_metrics(self, store):
        tasks = seed_sweep_tasks(tiny_config(), [0, 1])
        ParallelRunner(workers=1).run(tasks, store=store)
        reliabilities = store.series_of("reliability")
        assert len(reliabilities) == 2
        assert all(0.0 <= v <= 1.0 for v in reliabilities)
        finals = store.series_of("homogeneity")
        assert len(finals) == 2

    def test_mean_ci_over_cells_analysis_bridge(self, store):
        tasks = seed_sweep_tasks(tiny_config(), [0, 1, 2])
        ParallelRunner(workers=1).run(tasks, store=store)
        ci = mean_ci_over_cells(store.cells(status="ok"), "reliability")
        assert ci.n == 3
        assert 0.0 <= ci.mean <= 1.0
        with pytest.raises(ValueError):
            mean_ci_over_cells(store.cells(), "no_such_field")

    def test_format_store_cells_viz_bridge(self, store):
        tasks = seed_sweep_tasks(tiny_config(), [0])
        ParallelRunner(workers=1).run(tasks, store=store)
        text = format_store_cells(store.cells(), title="demo sweep")
        assert "demo sweep" in text
        assert "seed-0" in text
        assert "reliability" in text


class TestResume:
    def test_resume_skips_completed_cells(self, store):
        tasks = seed_sweep_tasks(tiny_config(), [0, 1, 2, 3])
        runner = ParallelRunner(workers=1)
        runner.run(tasks[:2], store=store, run_id="sweep-1")
        assert store.completed("sweep-1") == {"seed-0", "seed-1"}

        # Re-submitting the full grid under the same run id only runs
        # the two missing cells and appends them to the same run.
        remaining = runner.run(tasks, store=store, run_id="sweep-1")
        assert [cell.task_id for cell in remaining] == ["seed-2", "seed-3"]
        assert store.completed("sweep-1") == {
            "seed-0",
            "seed-1",
            "seed-2",
            "seed-3",
        }
        # Still exactly one run header.
        assert len(store.runs()) == 1

    def test_resume_reruns_cells_whose_config_changed(self, store):
        """Same task ids, different configuration (e.g. another scale):
        resume must re-run every cell, not silently skip by name."""
        runner = ParallelRunner(workers=1)
        small = seed_sweep_tasks(tiny_config(), [0, 1])
        runner.run(small, store=store, run_id="grid")
        assert len(store.cells(run_id="grid", status="ok")) == 2

        bigger = seed_sweep_tasks(tiny_config(width=8, height=4), [0, 1])
        assert [t.task_id for t in bigger] == [t.task_id for t in small]
        rerun = runner.run(bigger, store=store, run_id="grid")
        assert [cell.task_id for cell in rerun] == ["seed-0", "seed-1"]
        # Both configurations now live in the store under the run.
        assert len(store.cells(run_id="grid", status="ok")) == 4
        widths = {
            record["config"]["width"]
            for record in store.cells(run_id="grid", status="ok")
        }
        assert widths == {6, 8}

    def test_errored_cells_are_recorded_not_completed(self, store):
        run_id = store.open_run()
        store.append_cell(
            run_id,
            "boom",
            tiny_config(),
            status="error",
            error="Traceback ...",
        )
        assert store.completed(run_id) == set()
        [record] = store.cells(run_id=run_id, status="error")
        assert record["error"].startswith("Traceback")
        assert record["summary"] is None


class TestValidation:
    def test_bad_status_rejected(self, store):
        run_id = store.open_run()
        with pytest.raises(StoreError):
            store.append_cell(run_id, "x", tiny_config(), status="maybe")

    def test_corrupt_mid_file_line_reported_with_location(self, store):
        """Corruption *before* the tail cannot come from a torn append
        and still fails loudly."""
        run_id = store.open_run()
        with store.path.open("a") as fh:
            fh.write("{not json\n")
        store.append_cell(run_id, "ok-cell", tiny_config(), status="ok")
        with pytest.raises(StoreError, match="corrupt record"):
            list(store.records())

    def test_torn_trailing_line_skipped_with_warning(self, store):
        """A writer killed mid-append leaves a torn final line; reading
        skips it (with a warning) instead of poisoning the store."""
        run_id = store.open_run()
        store.append_cell(run_id, "ok-cell", tiny_config(), status="ok")
        with store.path.open("a") as fh:
            fh.write('{"kind": "cell", "task_id": "torn half-wr')
        with pytest.warns(UserWarning, match="torn trailing record"):
            records = list(store.records())
            # The resume skip-set still works on the intact prefix.
            assert store.completed(run_id) == {"ok-cell"}
        assert [r["kind"] for r in records] == ["run", "cell"]

    def test_missing_file_is_empty_not_error(self, store):
        assert list(store.records()) == []
        assert store.runs() == []
        assert store.latest_run_id() is None


class TestConcurrencySafety:
    def test_interleaved_writers_produce_whole_records(self, store):
        """Two handles appending to one file (cluster workers sharing a
        shard) interleave whole lines, never bytes."""
        a = ResultStore(store.path)
        b = ResultStore(store.path)
        run_id = "shared"
        a.open_run(run_id=run_id)
        for i in range(10):
            (a if i % 2 else b).append_cell(
                run_id, f"cell-{i}", tiny_config(seed=i), status="ok"
            )
        records = list(store.records(kind="cell"))
        assert len(records) == 10
        assert {r["task_id"] for r in records} == {
            f"cell-{i}" for i in range(10)
        }

    def test_config_round_trip(self):
        from repro.runtime.store import config_from_dict

        config = tiny_config(metrics=("homogeneity", "proximity"))
        assert config_from_dict(config_dict(config)) == config

    def test_summary_digest_ignores_volatile_fields(self, store):
        from repro.runtime.store import cell_record, summary_digest

        fast = cell_record(
            "r", "t", tiny_config(), status="ok", duration_s=0.1, worker="w1"
        )
        slow = cell_record(
            "other-run", "t", tiny_config(), status="ok", duration_s=9.9,
            worker="w2",
        )
        assert summary_digest(fast) == summary_digest(slow)
        errored = cell_record("r", "t", tiny_config(), status="error")
        assert summary_digest(errored) != summary_digest(fast)
