"""Golden ``state_digest`` regression tests for the *batch* engine.

Same contract as ``tests/test_golden_digests`` but for semantics
version 2 (:data:`repro.sim.batch.SEMANTICS_VERSION`): the batch
engine's trajectories are pinned so an unintended change to any batch
kernel fails loudly instead of silently invalidating cached batch-mode
fork checkpoints.  An *intended* batch semantic change must regenerate
these goldens **and bump** :data:`repro.sim.batch.SEMANTICS_VERSION`
(which retires every batch-engine entry of the fork-checkpoint cache —
the event engine's cache entries and goldens are untouched)::

    REPRO_UPDATE_GOLDEN=1 python -m pytest tests/test_golden_digests_batch.py
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict

import pytest

from repro.experiments.presets import SMOKE
from repro.experiments.scenario import ScenarioConfig, prepare_scenario
from repro.runtime.checkpoint import state_digest

GOLDEN_PATH = Path(__file__).parent / "golden" / "state_digests_batch.json"
UPDATE_ENV = "REPRO_UPDATE_GOLDEN"

GOLDEN_CASES = {
    "batch-mini-8x4-poly-K4-advanced": (
        ScenarioConfig(
            width=8,
            height=4,
            failure_round=5,
            reinjection_round=12,
            total_rounds=16,
            metrics=("homogeneity",),
            seed=3,
            engine="batch",
        ),
        (5, 16),
    ),
    "batch-smoke-poly-K4-advanced": (
        ScenarioConfig.from_preset(
            SMOKE, metrics=("homogeneity",), seed=0, engine="batch"
        ),
        (SMOKE.failure_round, SMOKE.total_rounds),
    ),
    "batch-smoke-tman-baseline": (
        ScenarioConfig.from_preset(
            SMOKE,
            protocol="tman",
            metrics=("homogeneity",),
            seed=0,
            engine="batch",
        ),
        (SMOKE.failure_round, SMOKE.total_rounds),
    ),
    "batch-smoke-vicinity-K4": (
        ScenarioConfig.from_preset(
            SMOKE,
            topology="vicinity",
            metrics=("homogeneity",),
            seed=0,
            engine="batch",
        ),
        (SMOKE.failure_round, SMOKE.total_rounds),
    ),
}


def compute_digests(name: str) -> Dict[str, str]:
    config, rounds = GOLDEN_CASES[name]
    sim, *_ = prepare_scenario(config)
    out: Dict[str, str] = {}
    for rnd in sorted(rounds):
        sim.run(rnd - sim.round)
        out[f"round-{rnd}"] = state_digest(sim)
    return out


def load_goldens() -> Dict[str, Dict[str, str]]:
    return json.loads(GOLDEN_PATH.read_text(encoding="utf8"))


def test_golden_file_covers_every_case():
    if os.environ.get(UPDATE_ENV):
        pytest.skip("regenerating goldens")
    goldens = load_goldens()
    assert sorted(goldens) == sorted(GOLDEN_CASES)


@pytest.mark.parametrize("name", sorted(GOLDEN_CASES))
def test_state_digest_matches_golden(name):
    actual = compute_digests(name)
    if os.environ.get(UPDATE_ENV):
        goldens = load_goldens() if GOLDEN_PATH.exists() else {}
        goldens[name] = actual
        GOLDEN_PATH.write_text(
            json.dumps(goldens, indent=2, sort_keys=True) + "\n",
            encoding="utf8",
        )
        pytest.skip(f"golden digests for {name!r} regenerated")
    expected = load_goldens()[name]
    if actual != expected:
        diff = "\n".join(
            f"  {rnd}:\n    expected {expected.get(rnd, '<missing>')}\n"
            f"    actual   {actual.get(rnd, '<missing>')}"
            for rnd in sorted(set(expected) | set(actual))
            if expected.get(rnd) != actual.get(rnd)
        )
        pytest.fail(
            f"batch simulation semantics changed for {name!r}:\n{diff}\n"
            "If this change is intentional, regenerate with "
            f"{UPDATE_ENV}=1 AND bump repro.sim.batch.SEMANTICS_VERSION "
            "(it keys the batch half of the fork-checkpoint cache; "
            "batch sweeps recorded before the change are no longer "
            "comparable)."
        )
