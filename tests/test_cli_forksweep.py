"""CLI surface of the phase-fork machinery: ``repro sweep --fork``,
``repro checkpoints ls/gc``, resume and cache-corruption flows."""

from __future__ import annotations

from pathlib import Path

from repro.cli import build_parser, main
from repro.runtime.forksweep import (
    CheckpointCache,
    clear_checkpoint_memo,
    default_cache_dir,
)
from repro.runtime.store import ResultStore


class TestParser:
    def test_sweep_fork_flags(self):
        parser = build_parser()
        assert parser.parse_args(["sweep"]).fork is False
        assert parser.parse_args(["sweep", "--fork"]).fork is True
        assert parser.parse_args(["sweep", "--no-fork"]).fork is False

    def test_sweep_ablation_axes(self):
        args = build_parser().parse_args(
            [
                "sweep",
                "--failure-fractions",
                "0.25,0.5",
                "--reinjection",
                "both",
                "--checkpoint-dir",
                "ckpts",
            ]
        )
        assert args.failure_fractions == [0.25, 0.5]
        assert args.reinjection == "both"
        assert args.checkpoint_dir == "ckpts"

    def test_checkpoints_subcommand(self):
        args = build_parser().parse_args(
            ["checkpoints", "gc", "--dir", "d", "--older-than", "7"]
        )
        assert args.action == "gc"
        assert args.older_than == 7.0

    def test_run_fork_flag(self):
        assert build_parser().parse_args(["run", "fig1", "--fork"]).fork

    def test_default_cache_dir_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKPOINT_DIR", "/tmp/elsewhere")
        assert default_cache_dir() == Path("/tmp/elsewhere")
        monkeypatch.delenv("REPRO_CHECKPOINT_DIR")
        assert default_cache_dir() == Path(".repro-checkpoints")


def _sweep_argv(tmp_path, *extra):
    return [
        "sweep",
        "--scale",
        "smoke",
        "--ks",
        "4",
        "--seeds",
        "1",
        "--reinjection",
        "off",
        "--failure-fractions",
        "0.25,0.5",
        "--workers",
        "1",
        "--fork",
        "--checkpoint-dir",
        str(tmp_path / "ckpts"),
        "--store",
        str(tmp_path / "cells.jsonl"),
        *extra,
    ]


class TestForkSweepFlow:
    def test_fork_sweep_populates_cache_and_store(self, tmp_path, capsys):
        assert main(_sweep_argv(tmp_path, "--run-id", "first")) == 0
        err = capsys.readouterr().err
        assert "prefix-" in err  # Phase-1 simulation reported as progress

        store = ResultStore(tmp_path / "cells.jsonl")
        records = store.cells(run_id="first", status="ok")
        assert len(records) == 2
        assert all(record["forked_from"] for record in records)
        cache = CheckpointCache(tmp_path / "ckpts")
        assert len(cache.entries()) == 1

        # Resuming the completed run finds nothing left to do.
        assert main(
            _sweep_argv(tmp_path, "--run-id", "first", "--resume-run")
        ) == 0
        out = capsys.readouterr().out
        assert "already in the store" in out

    def test_interrupted_fork_sweep_resumes(self, tmp_path, capsys):
        assert main(_sweep_argv(tmp_path, "--run-id", "part")) == 0
        capsys.readouterr()
        store_path = tmp_path / "cells.jsonl"
        # Drop the last cell record: the sweep now looks interrupted.
        lines = store_path.read_text().strip().splitlines()
        store_path.write_text("\n".join(lines[:-1]) + "\n")
        assert len(ResultStore(store_path).completed("part")) == 1

        assert main(
            _sweep_argv(tmp_path, "--run-id", "part", "--resume-run")
        ) == 0
        out = capsys.readouterr().out
        assert "sweep over 1 cells" in out  # only the missing cell re-ran
        assert len(ResultStore(store_path).completed("part")) == 2

    def test_truncated_checkpoint_recomputes_instead_of_crashing(
        self, tmp_path, capsys
    ):
        assert main(_sweep_argv(tmp_path, "--run-id", "first")) == 0
        capsys.readouterr()
        cache = CheckpointCache(tmp_path / "ckpts")
        ckpt_path = Path(cache.entries()[0]["path"])
        ckpt_path.write_bytes(ckpt_path.read_bytes()[:128])
        clear_checkpoint_memo()  # a real re-invocation is a fresh process

        assert main(_sweep_argv(tmp_path, "--run-id", "second")) == 0
        records = ResultStore(tmp_path / "cells.jsonl").cells(
            run_id="second", status="ok"
        )
        assert len(records) == 2
        # Cold fallbacks, recorded honestly as such.
        assert all(record["forked_from"] is None for record in records)
        first = ResultStore(tmp_path / "cells.jsonl").cells(
            run_id="first", status="ok"
        )
        # ... with summaries identical to the fork-mode run.
        assert [r["summary"] for r in records] == [
            r["summary"] for r in first
        ]


class TestCheckpointsCommand:
    def _populate(self, tmp_path):
        main(_sweep_argv(tmp_path))

    def test_ls_empty(self, tmp_path, capsys):
        assert main(["checkpoints", "ls", "--dir", str(tmp_path / "none")]) == 0
        assert "no checkpoints cached" in capsys.readouterr().out

    def test_ls_then_gc(self, tmp_path, capsys):
        self._populate(tmp_path)
        capsys.readouterr()
        ckpt_dir = str(tmp_path / "ckpts")

        assert main(["checkpoints", "ls", "--dir", ckpt_dir]) == 0
        out = capsys.readouterr().out
        assert "1 cached prefix(es)" in out
        assert "round" in out

        # Age-gated gc keeps the fresh entry ...
        assert main(
            ["checkpoints", "gc", "--dir", ckpt_dir, "--older-than", "7"]
        ) == 0
        assert "removed 0 checkpoint(s)" in capsys.readouterr().out
        # ... unconditional gc removes it.
        assert main(["checkpoints", "gc", "--dir", ckpt_dir]) == 0
        assert "removed 1 checkpoint(s)" in capsys.readouterr().out
        assert CheckpointCache(ckpt_dir).entries() == []


class TestRunFork:
    def test_run_forwards_fork_flag(self, capsys):
        # fig1 is a single simulation: it absorbs --fork (nothing to
        # share), which proves the CLI -> registry plumbing end to end.
        assert main(["run", "fig1", "--scale", "smoke", "--fork"]) == 0
        assert "Figure 1" in capsys.readouterr().out
