"""Checkpoint/restore: bit-identical pause, fork, and resume."""

from __future__ import annotations

import pytest

from repro.errors import CheckpointError
from repro.experiments.scenario import ScenarioConfig, prepare_scenario
from repro.runtime import checkpoint
from repro.sim.engine import Simulation

from .helpers import NullLayer, grid_coords, make_sim
from repro.spaces import Euclidean


def small_config(**overrides) -> ScenarioConfig:
    base = dict(
        width=8,
        height=4,
        failure_round=5,
        reinjection_round=12,
        total_rounds=22,
        metrics=("homogeneity",),
        seed=3,
    )
    base.update(overrides)
    return ScenarioConfig(**base)


def run_rounds(sim: Simulation, rounds: int) -> None:
    sim.run(rounds)


class TestRoundTrip:
    def test_snapshot_then_resume_equals_uninterrupted(self):
        """run N -> snapshot -> run M  ==  straight N+M run."""
        config = small_config()
        straight, *_ = prepare_scenario(config)
        straight.run(config.total_rounds)

        interrupted, *_ = prepare_scenario(config)
        interrupted.run(7)  # mid Phase 2, failure already fired
        ck = checkpoint.snapshot(interrupted)
        resumed = checkpoint.restore(ck)
        resumed.run(config.total_rounds - 7)

        assert checkpoint.state_digest(resumed) == checkpoint.state_digest(
            straight
        )

    def test_snapshot_before_pending_events_preserves_them(self):
        """A checkpoint taken before the failure round still crashes
        the right nodes at the right round after restore."""
        config = small_config()
        sim, *_ = prepare_scenario(config)
        sim.run(3)  # before the round-5 failure
        ck = checkpoint.snapshot(sim)

        resumed = checkpoint.restore(ck)
        assert resumed.network.n_alive == config.n_nodes
        resumed.run(4)  # crosses the failure
        assert resumed.network.n_alive < config.n_nodes

    def test_source_keeps_running_independently(self):
        config = small_config()
        sim, *_ = prepare_scenario(config)
        sim.run(3)
        ck = checkpoint.snapshot(sim)
        before = checkpoint.state_digest(sim)
        sim.run(5)
        # The checkpoint is frozen even though the source moved on.
        assert checkpoint.state_digest(checkpoint.restore(ck)) == before

    def test_fork_two_identical_futures(self):
        """One snapshot seeds two restores that evolve identically."""
        config = small_config()
        sim, *_ = prepare_scenario(config)
        sim.run(6)
        ck = checkpoint.snapshot(sim)
        left, right = checkpoint.restore(ck), checkpoint.restore(ck)
        left.run(10)
        right.run(10)
        assert checkpoint.state_digest(left) == checkpoint.state_digest(right)

    def test_fork_diverges_after_extra_event(self):
        """Forks are independent: perturbing one leaves the other on the
        original trajectory."""
        from repro.sim.failures import random_failure

        config = small_config()
        sim, *_ = prepare_scenario(config)
        sim.run(6)
        ck = checkpoint.snapshot(sim)
        plain, perturbed = checkpoint.restore(ck), checkpoint.restore(ck)
        perturbed.schedule(8, random_failure(0.2))
        plain.run(10)
        perturbed.run(10)
        assert checkpoint.state_digest(plain) != checkpoint.state_digest(
            perturbed
        )


class TestDisk:
    def test_save_load_roundtrip(self, tmp_path):
        config = small_config()
        sim, *_ = prepare_scenario(config)
        sim.run(4)
        path = tmp_path / "run.ckpt"
        checkpoint.save(checkpoint.snapshot(sim), path)
        loaded = checkpoint.load(path)
        assert loaded.round == 4
        assert loaded.seed == config.seed
        assert loaded.layer_names == ["rps", "tman", "polystyrene"]

        resumed = checkpoint.restore(loaded)
        resumed.run(config.total_rounds - 4)
        straight, *_ = prepare_scenario(config)
        straight.run(config.total_rounds)
        assert checkpoint.state_digest(resumed) == checkpoint.state_digest(
            straight
        )

    def test_load_rejects_non_checkpoint(self, tmp_path):
        path = tmp_path / "junk.ckpt"
        path.write_bytes(b"not a checkpoint")
        with pytest.raises(CheckpointError):
            checkpoint.load(path)

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError):
            checkpoint.load(tmp_path / "absent.ckpt")

    def test_save_reports_unpicklable_events(self, tmp_path):
        sim, _, _ = make_sim(Euclidean(dim=2), grid_coords(3, 3), [NullLayer()])
        box = []
        sim.schedule(2, lambda s: box.append(s.round))  # closure event
        ck = checkpoint.snapshot(sim)
        with pytest.raises(CheckpointError, match="closure"):
            checkpoint.save(ck, tmp_path / "bad.ckpt")

    def test_restore_rejects_foreign_format(self):
        config = small_config()
        sim, *_ = prepare_scenario(config)
        ck = checkpoint.snapshot(sim)
        ck.format = 99
        with pytest.raises(CheckpointError):
            checkpoint.restore(ck)


class TestScenarioSeam:
    def test_finish_scenario_after_disk_roundtrip_matches_run_scenario(
        self, tmp_path
    ):
        """The full pause/resume workflow: checkpoint *after* the
        failure fired (reliability already sampled), restore from disk,
        finish — the ScenarioResult equals an uninterrupted run's."""
        from repro.experiments.scenario import finish_scenario, run_scenario

        config = small_config()
        reference = run_scenario(config)

        sim, *_ = prepare_scenario(config)
        sim.run(8)  # failure at round 5 has fired; probe sample taken
        path = tmp_path / "mid.ckpt"
        checkpoint.save(checkpoint.snapshot(sim), path)

        restored = checkpoint.restore(checkpoint.load(path))
        result = finish_scenario(restored)
        assert result.reliability == reference.reliability
        assert result.reshaping_time == reference.reshaping_time
        assert result.series == reference.series
        assert result.n_alive == reference.n_alive
        assert result.snapshots.keys() == reference.snapshots.keys()

    def test_finish_scenario_requires_prepared_sim(self):
        from repro.errors import ConfigurationError
        from repro.experiments.scenario import build_simulation, finish_scenario

        sim, *_ = build_simulation(small_config())
        with pytest.raises(ConfigurationError, match="prepare_scenario"):
            finish_scenario(sim)


class TestDigest:
    def test_digest_stable_for_identical_runs(self):
        config = small_config()
        a, *_ = prepare_scenario(config)
        b, *_ = prepare_scenario(config)
        a.run(9)
        b.run(9)
        assert checkpoint.state_digest(a) == checkpoint.state_digest(b)

    def test_digest_differs_across_seeds(self):
        a, *_ = prepare_scenario(small_config(seed=1))
        b, *_ = prepare_scenario(small_config(seed=2))
        a.run(9)
        b.run(9)
        assert checkpoint.state_digest(a) != checkpoint.state_digest(b)

    def test_checkpoint_size_positive(self):
        config = small_config()
        sim, *_ = prepare_scenario(config)
        assert checkpoint.checkpoint_size(checkpoint.snapshot(sim)) > 0

    def test_digest_sees_pending_event_parameters(self):
        """Pending schedules differing only in event parameters (same
        rounds, same event classes) must not collide."""
        from repro.sim.failures import half_space_failure

        config = small_config(failure_round=None, reinjection_round=None)
        a, *_ = prepare_scenario(config)
        b, *_ = prepare_scenario(config)
        a.schedule(15, half_space_failure(0, 2.0))
        b.schedule(15, half_space_failure(0, 6.0))
        assert checkpoint.state_digest(a) != checkpoint.state_digest(b)

    def test_digest_sees_pending_event_types(self):
        from repro.sim.failures import random_failure
        from repro.sim.reinjection import reinjection

        config = small_config(failure_round=None, reinjection_round=None)
        a, *_ = prepare_scenario(config)
        b, *_ = prepare_scenario(config)
        a.schedule(15, random_failure(0.5))
        b.schedule(15, reinjection([(0.5, 0.5)]))
        assert checkpoint.state_digest(a) != checkpoint.state_digest(b)

    def test_save_creates_parent_directories(self, tmp_path):
        config = small_config()
        sim, *_ = prepare_scenario(config)
        path = tmp_path / "nested" / "dir" / "run.ckpt"
        checkpoint.save(checkpoint.snapshot(sim), path)
        assert checkpoint.load(path).round == 0


class TestLegacyFormatUpgrade:
    """Format-1 (pre-array) checkpoints still load and run identically.

    ``tests/fixtures/checkpoint_v1.ckpt`` was written by the per-node
    object layout (format 1) before the struct-of-arrays refactor;
    ``checkpoint_v1.json`` records the digests the original code
    computed for the saved state and for a 3-round continuation.
    """

    import json as _json
    from pathlib import Path as _Path

    FIXTURE_DIR = _Path(__file__).parent / "fixtures"

    def _load_meta(self):
        import json

        return json.loads(
            (self.FIXTURE_DIR / "checkpoint_v1.json").read_text(encoding="utf8")
        )

    def test_v1_fixture_loads_and_digest_matches(self):
        meta = self._load_meta()
        ck = checkpoint.load(self.FIXTURE_DIR / "checkpoint_v1.ckpt")
        assert ck.format == 1
        assert ck.round == meta["round"]
        assert ck.layer_names == meta["layers"]
        sim = checkpoint.restore(ck)
        # The upgraded simulation is array-backed ...
        assert sim.network.table.is_vector
        from repro.sim.arrays import ViewBuffer

        node = sim.network.alive_nodes()[0]
        assert isinstance(node.tman_view, ViewBuffer)
        assert isinstance(node.rps_view, dict)
        # ... and fingerprints exactly as the original code did.
        assert checkpoint.state_digest(sim) == meta["digest"]

    def test_v1_fixture_runs_identical_trajectory(self):
        meta = self._load_meta()
        sim = checkpoint.restore(
            checkpoint.load(self.FIXTURE_DIR / "checkpoint_v1.ckpt")
        )
        sim.run(3)
        assert checkpoint.state_digest(sim) == meta["digest_plus3"]

    def test_v1_resaves_as_current_format(self, tmp_path):
        ck = checkpoint.load(self.FIXTURE_DIR / "checkpoint_v1.ckpt")
        sim = checkpoint.restore(ck)
        fresh = checkpoint.snapshot(sim)
        assert fresh.format == checkpoint.CHECKPOINT_FORMAT
        path = checkpoint.save(fresh, tmp_path / "upgraded.ckpt")
        again = checkpoint.load(path)
        assert again.format == checkpoint.CHECKPOINT_FORMAT
        assert checkpoint.state_digest(checkpoint.restore(again)) == \
            checkpoint.state_digest(sim)

    def test_unknown_future_format_rejected(self, tmp_path):
        config = small_config()
        sim, *_ = prepare_scenario(config)
        ck = checkpoint.snapshot(sim)
        ck.format = 99
        path = checkpoint.save(ck, tmp_path / "future.ckpt")
        with pytest.raises(CheckpointError):
            checkpoint.load(path)
        with pytest.raises(CheckpointError):
            checkpoint.restore(ck)
