"""Tests for the flat torus space."""

import math

import numpy as np
import pytest

from repro.spaces import FlatTorus


class TestConstruction:
    def test_requires_periods(self):
        with pytest.raises(ValueError):
            FlatTorus()

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ValueError):
            FlatTorus(10.0, 0.0)

    def test_dim_matches_periods(self):
        assert FlatTorus(4, 5, 6).dim == 3

    def test_area(self):
        assert FlatTorus(80, 40).area == pytest.approx(3200.0)

    def test_max_distance(self):
        assert FlatTorus(8, 6).max_distance == pytest.approx(5.0)


class TestWrapAround:
    def test_direct_distance(self, torus):
        assert torus.distance((1, 1), (3, 1)) == pytest.approx(2.0)

    def test_wraps_x(self, torus):
        # 16-period axis: 15 -> 1 is distance 2 around the seam.
        assert torus.distance((15, 0), (1, 0)) == pytest.approx(2.0)

    def test_wraps_y(self, torus):
        assert torus.distance((0, 7.5), (0, 0.5)) == pytest.approx(1.0)

    def test_half_period_is_max_on_axis(self, torus):
        assert torus.distance((0, 0), (8, 0)) == pytest.approx(8.0)

    def test_never_exceeds_max_distance(self, torus):
        rng = np.random.default_rng(0)
        for _ in range(200):
            a = tuple(rng.uniform(0, p) for p in torus.periods)
            b = tuple(rng.uniform(0, p) for p in torus.periods)
            assert torus.distance(a, b) <= torus.max_distance + 1e-9

    def test_out_of_cell_coordinates(self, torus):
        # Coordinates outside the fundamental cell behave modularly.
        assert torus.distance((17, 0), (1, 0)) == pytest.approx(0.0)
        assert torus.distance((-1, 0), (15, 0)) == pytest.approx(0.0)

    def test_wrap_canonicalises(self, torus):
        assert torus.wrap((17.0, -1.0)) == pytest.approx((1.0, 7.0))


class TestVectorised:
    def test_matches_scalar(self, torus):
        rng = np.random.default_rng(1)
        origin = (15.5, 7.5)
        coords = [tuple(rng.uniform(0, p) for p in torus.periods) for _ in range(50)]
        vec = torus.distance_many(origin, coords)
        scalars = [torus.distance(origin, c) for c in coords]
        assert np.allclose(vec, scalars)

    def test_distance_sq(self, torus):
        assert torus.distance_sq((15, 7), (1, 1)) == pytest.approx(4.0 + 4.0)


class TestMetricAxioms:
    def test_triangle_inequality_sampled(self, torus):
        rng = np.random.default_rng(2)
        for _ in range(200):
            pts = [
                tuple(rng.uniform(0, p) for p in torus.periods) for _ in range(3)
            ]
            a, b, c = pts
            assert torus.distance(a, c) <= (
                torus.distance(a, b) + torus.distance(b, c) + 1e-9
            )
