"""Shared test utilities: stub layers and mini-simulation builders."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.points import PointFactory
from repro.sim.engine import Simulation
from repro.sim.network import Network, SimNode
from repro.spaces.base import Space
from repro.types import Coord


class NullLayer:
    """A layer that does nothing (placeholder in layer stacks)."""

    def __init__(self, name: str = "null") -> None:
        self.name = name

    def init_node(self, sim: Simulation, node: SimNode) -> None:
        return None

    def step(self, sim: Simulation) -> None:
        return None


class StubRPS:
    """Deterministic peer-sampling stand-in.

    ``sample`` returns the lowest alive node ids not excluded — fully
    predictable, which unit tests of backup/migration rely on.
    """

    name = "rps"

    def init_node(self, sim: Simulation, node: SimNode) -> None:
        node.rps_view = {}

    def step(self, sim: Simulation) -> None:
        return None

    def sample(self, sim, node, k=1, exclude=()):
        excluded = set(exclude) | {node.nid}
        picked = []
        for nid in sorted(sim.network.alive_ids()):
            if nid not in excluded:
                picked.append(nid)
            if len(picked) == k:
                break
        return picked


class StubTMan:
    """Topology stand-in: neighbours are the true k-closest alive nodes
    (an oracle T-Man that has already converged)."""

    name = "tman"

    def __init__(self, space: Space) -> None:
        self.space = space

    def init_node(self, sim: Simulation, node: SimNode) -> None:
        node.tman_view = {}

    def step(self, sim: Simulation) -> None:
        return None

    def neighbors(self, sim: Simulation, node: SimNode, k: int):
        others = [n for n in sim.network.alive_nodes() if n.nid != node.nid]
        if not others:
            return []
        dists = self.space.distance_many(node.pos, [n.pos for n in others])
        order = sorted(range(len(others)), key=lambda i: (dists[i], others[i].nid))
        return [others[i].nid for i in order[:k]]


def make_sim(
    space: Space,
    coords: Sequence[Coord],
    layers: Optional[List] = None,
    seed: int = 0,
    with_points: bool = True,
):
    """Build a Simulation over nodes placed at ``coords``.

    Returns ``(sim, factory, points)``; with ``with_points`` each node
    gets an initial data point at its coordinate.
    """
    factory = PointFactory()
    network = Network()
    points = []
    for coord in coords:
        point = factory.create(coord) if with_points else None
        if point is not None:
            points.append(point)
        network.add_node(tuple(coord), point)
    sim = Simulation(space, network, layers or [NullLayer()], seed=seed)
    sim.init_all_nodes()
    return sim, factory, points


def grid_coords(width: int, height: int, step: float = 1.0):
    return [
        (x * step, y * step) for x in range(width) for y in range(height)
    ]
