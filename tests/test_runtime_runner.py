"""Parallel runner: serial equivalence, crash isolation, grids."""

from __future__ import annotations

import pytest

from repro.errors import RunnerError
from repro.experiments.scenario import ScenarioConfig
from repro.experiments.sweep import run_seed_sweep
from repro.runtime.runner import (
    CellResult,
    ParallelRunner,
    SweepTask,
    grid_tasks,
    run_scenarios,
    seed_sweep_tasks,
)

WORKERS = 2


def tiny_config(**overrides) -> ScenarioConfig:
    base = dict(
        width=6,
        height=3,
        failure_round=4,
        reinjection_round=None,
        total_rounds=14,
        metrics=("homogeneity",),
        seed=0,
    )
    base.update(overrides)
    return ScenarioConfig(**base)


class ExplodingTask(SweepTask):
    """A task whose worker body always raises (crash-isolation probe)."""

    def run(self):
        raise RuntimeError("worker exploded on purpose")


class TestEquivalence:
    def test_parallel_matches_serial_per_cell(self):
        """--workers N must produce results identical (per-cell, same
        seeds) to the serial path — the PR's acceptance criterion."""
        configs = [tiny_config(seed=seed) for seed in range(4)]
        serial = run_scenarios(configs, workers=1)
        parallel = run_scenarios(configs, workers=4)
        for ours, theirs in zip(serial, parallel):
            assert ours.series == theirs.series
            assert ours.reliability == theirs.reliability
            assert ours.reshaping_time == theirs.reshaping_time
            assert ours.n_alive == theirs.n_alive

    def test_seed_sweep_parallel_matches_serial(self):
        config = tiny_config()
        seeds = [0, 1, 2]
        serial = run_seed_sweep(config, seeds, workers=1)
        parallel = run_seed_sweep(config, seeds, workers=WORKERS)
        assert serial.mean_series == parallel.mean_series
        assert serial.reshaping == parallel.reshaping
        assert serial.reliability == parallel.reliability

    def test_results_keep_input_order(self):
        configs = [tiny_config(seed=seed) for seed in (5, 1, 3)]
        results = run_scenarios(configs, workers=WORKERS)
        assert [r.config.seed for r in results] == [5, 1, 3]


class TestCrashIsolation:
    def test_worker_failure_records_errored_cell(self):
        """One exploding cell must not kill the sweep: the others
        complete and the failure is recorded with its traceback."""
        tasks = [
            SweepTask("good-0", tiny_config(seed=0)),
            ExplodingTask("bad", tiny_config(seed=1)),
            SweepTask("good-1", tiny_config(seed=2)),
        ]
        cells = ParallelRunner(workers=WORKERS).run(tasks)
        by_id = {cell.task_id: cell for cell in cells}
        assert by_id["good-0"].ok and by_id["good-1"].ok
        assert not by_id["bad"].ok
        assert "worker exploded on purpose" in by_id["bad"].error
        assert by_id["bad"].result is None

    def test_serial_path_isolates_crashes_too(self):
        tasks = [
            ExplodingTask("bad", tiny_config(seed=1)),
            SweepTask("good", tiny_config(seed=0)),
        ]
        cells = ParallelRunner(workers=1).run(tasks)
        assert [cell.ok for cell in cells] == [False, True]

    def test_run_scenarios_raises_on_failure(self, monkeypatch):
        import repro.runtime.runner as runner_mod

        def explode(config):
            raise RuntimeError("cell blew up")

        monkeypatch.setattr(runner_mod, "run_scenario", explode)
        with pytest.raises(RunnerError, match="cell blew up"):
            run_scenarios([tiny_config()], workers=1)


class TestProgressAndTasks:
    def test_progress_callback_sees_every_cell(self):
        seen = []

        def progress(done: int, total: int, cell: CellResult) -> None:
            seen.append((done, total, cell.task_id, cell.ok))

        configs = [tiny_config(seed=seed) for seed in range(3)]
        tasks = seed_sweep_tasks(tiny_config(), [0, 1, 2])
        ParallelRunner(workers=1, progress=progress).run(tasks)
        assert [done for done, *_ in seen] == [1, 2, 3]
        assert all(total == 3 for _, total, *_ in seen)
        assert len(configs) == 3

    def test_duplicate_task_ids_rejected(self):
        tasks = [
            SweepTask("same", tiny_config(seed=0)),
            SweepTask("same", tiny_config(seed=1)),
        ]
        with pytest.raises(RunnerError, match="duplicate"):
            ParallelRunner(workers=1).run(tasks)

    def test_grid_tasks_cartesian_product(self):
        tasks = grid_tasks(
            tiny_config(), {"replication": (2, 4), "seed": (0, 1, 2)}
        )
        assert len(tasks) == 6
        ids = {task.task_id for task in tasks}
        assert "replication=2/seed=0" in ids
        assert "replication=4/seed=2" in ids
        configs = {(task.config.replication, task.config.seed) for task in tasks}
        assert configs == {(k, s) for k in (2, 4) for s in (0, 1, 2)}

    def test_grid_tasks_empty_axes(self):
        tasks = grid_tasks(tiny_config(), {})
        assert len(tasks) == 1 and tasks[0].task_id == "base"

    def test_seed_sweep_tasks_replace_seed(self):
        tasks = seed_sweep_tasks(tiny_config(seed=99), [7, 8])
        assert [task.config.seed for task in tasks] == [7, 8]
        assert [task.task_id for task in tasks] == ["seed-7", "seed-8"]
