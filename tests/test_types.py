"""Tests for repro.types."""

import pytest

from repro.types import DataPoint, as_coord


class TestDataPoint:
    def test_identity_is_pid(self):
        a = DataPoint(1, (0.0, 0.0))
        b = DataPoint(1, (5.0, 5.0))
        assert a == b
        assert hash(a) == hash(b)

    def test_different_pids_differ(self):
        assert DataPoint(1, (0.0, 0.0)) != DataPoint(2, (0.0, 0.0))

    def test_not_equal_to_other_types(self):
        assert DataPoint(1, (0.0,)) != 1
        assert (DataPoint(1, (0.0,)) == "x") is False

    def test_coord_normalised_to_tuple(self):
        point = DataPoint(0, [1.0, 2.0])
        assert isinstance(point.coord, tuple)
        assert point.coord == (1.0, 2.0)

    def test_frozen(self):
        point = DataPoint(0, (1.0,))
        with pytest.raises(Exception):
            point.pid = 3

    def test_usable_in_sets(self):
        points = {DataPoint(1, (0.0,)), DataPoint(1, (9.0,)), DataPoint(2, (0.0,))}
        assert len(points) == 2


class TestAsCoord:
    def test_converts_ints(self):
        assert as_coord([1, 2]) == (1.0, 2.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            as_coord([])

    def test_passthrough_tuple(self):
        assert as_coord((0.5, 0.25)) == (0.5, 0.25)
