"""Retention policy: perpetual churn in bounded memory.

``ScenarioConfig.retention_rounds`` (→ ``Simulation.retention_rounds``)
prunes crashed nodes once they have been detector-visible for N rounds:
:meth:`Network.remove_node` recycles the table row, so a long-trickle
run with replacement joins holds peak-population state instead of
total-churn state.  Stale references to a pruned id must everywhere
resolve to "dead and long-detected", never crash or alias a live node.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.scenario import ScenarioConfig, prepare_scenario
from repro.runtime import checkpoint as ckpt
from repro.sim.reinjection import spawn_fresh_nodes
from repro.sim.rng import spawn


def trickle_config(engine: str, **overrides) -> ScenarioConfig:
    base = dict(
        width=8,
        height=4,
        failure_round=None,
        reinjection_round=None,
        total_rounds=10,
        seed=5,
        metrics=("homogeneity",),
        retention_rounds=4,
        engine=engine,
    )
    base.update(overrides)
    return ScenarioConfig(**base)


def run_long_trickle(engine: str, rounds: int = 120, kill_per_round: int = 1):
    """Kill ``kill_per_round`` random nodes per round and replace them
    with fresh joins — perpetual churn at constant population."""
    sim, *_ = prepare_scenario(trickle_config(engine))
    rng = spawn(99, "trickle-test")
    grid = trickle_config(engine).grid
    positions = grid.parallel(0.5).generate()
    for rnd in range(rounds):
        victims = rng.sample(sim.network.alive_ids(), kill_per_round)
        sim.network.fail(victims, sim.round)
        spawn_fresh_nodes(
            sim, [positions[rng.randrange(len(positions))] for _ in victims]
        )
        sim.step()
    return sim


class TestValidation:
    def test_retention_must_cover_detection_delay(self):
        with pytest.raises(ConfigurationError, match="retention_rounds"):
            ScenarioConfig(retention_rounds=3, detector_delay=4)

    def test_retention_with_margin_is_accepted(self):
        config = ScenarioConfig(retention_rounds=6, detector_delay=4)
        assert config.retention_rounds == 6


@pytest.mark.parametrize("engine", ["event", "batch"])
class TestBoundedMemory:
    def test_long_trickle_runs_in_bounded_state(self, engine):
        population = 32
        churn = 120  # total crashes ≈ 4x the population
        sim = run_long_trickle(engine, rounds=churn)
        # Peak population is constant, so with retention=4 the table
        # holds at most population + (retention+1) in-flight dead rows
        # (plus a small safety margin for the sweep lag).
        assert sim.network.n_alive == population
        assert sim.network.table.n_rows <= population + 8
        assert sim.network.n_total <= population + 8
        # Without retention the same run would hold every node ever
        # created: population + churn ids.
        assert sim.network._next_id >= population + churn

    def test_unbounded_without_retention(self, engine):
        sim, *_ = prepare_scenario(
            trickle_config(engine, retention_rounds=None)
        )
        rng = spawn(99, "trickle-test")
        grid = trickle_config(engine).grid
        positions = grid.parallel(0.5).generate()
        for _ in range(30):
            victims = rng.sample(sim.network.alive_ids(), 1)
            sim.network.fail(victims, sim.round)
            spawn_fresh_nodes(sim, [positions[0]])
            sim.step()
        assert sim.network.table.n_rows == 32 + 30  # grows with churn

    def test_trickle_keeps_most_points_alive(self, engine):
        """Replication keeps the vast majority of points alive through
        2x-population churn.  (Some loss is inherent to the protocol —
        a node that dies right after receiving a point via migration
        and before its next backup push takes the only copy with it —
        so zero loss is not the contract; retention must not make the
        loss *worse* than the un-pruned protocol's.)"""
        sim = run_long_trickle(engine, rounds=60)
        held = set()
        for node in sim.network.alive_nodes():
            state = getattr(node, "poly", None)
            if state is not None:
                held.update(state.guests)
        assert len(held) >= 24  # 32 points, ~2x-population churn

    def test_checkpoint_roundtrip_with_pruned_nodes(self, engine):
        sim = run_long_trickle(engine, rounds=40)
        digest = ckpt.state_digest(sim)
        restored = ckpt.restore(ckpt.snapshot(sim))
        assert ckpt.state_digest(restored) == digest
        restored.run(3)  # keeps running after the trip
