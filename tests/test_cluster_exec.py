"""End-to-end cluster execution: coordinator, workers, merge, and the
load-bearing guarantee — a distributed sweep's merged store is
identical, cell for cell, to the same grid run serially."""

from __future__ import annotations

import pytest

from repro.errors import ClusterError, RunnerError
from repro.experiments.scenario import ScenarioConfig
from repro.runtime.cluster import (
    Coordinator,
    Worker,
    collect_cells,
    diff_stores,
    distributed_scenarios,
    merge_queue,
    merged_records,
    open_queue,
    run_distributed_sweep,
)
from repro.runtime.dispatch import execute_scenarios
from repro.runtime.forksweep import CheckpointCache
from repro.runtime.runner import ParallelRunner, grid_tasks, run_scenarios
from repro.runtime.store import ResultStore, summary_digest


def small_config(**overrides) -> ScenarioConfig:
    base = dict(
        width=8,
        height=4,
        failure_round=5,
        reinjection_round=12,
        total_rounds=16,
        metrics=("homogeneity",),
        seed=3,
    )
    base.update(overrides)
    return ScenarioConfig(**base)


def ablation_grid():
    """Four cells sharing one pre-failure prefix (post-failure axes
    only) — the shape distributed fork-shipping is built for."""
    return grid_tasks(
        small_config(),
        {"failure_fraction": (0.25, 0.5), "reinjection_round": (12, None)},
    )


def serial_store(tmp_path, tasks, name="serial.jsonl"):
    store = ResultStore(tmp_path / name)
    ParallelRunner(workers=1).run(tasks, store=store, run_id="serial")
    return store


def drain_with(queue, *worker_ids, max_cells=None):
    stats = []
    for i, worker_id in enumerate(worker_ids):
        last = i == len(worker_ids) - 1
        worker = Worker(queue, worker_id=worker_id, poll_s=0.02)
        stats.append(
            worker.run(max_cells=None if last else max_cells, drain=last)
        )
    return stats


class TestCoordinator:
    def test_publish_plans_forks_and_ships_one_prefix(self, tmp_path):
        queue = open_queue(tmp_path / "q")
        Coordinator(queue, workers=1).publish(ablation_grid())
        specs = queue.tasks()
        assert {spec.kind for spec in specs} == {"fork"}
        assert len({spec.prefix_hash for spec in specs}) == 1
        assert all(spec.forked_digest for spec in specs)
        # Exactly one checkpoint was published into the shared cache.
        cache = CheckpointCache(queue.cache_root())
        [entry] = cache.entries()
        assert entry["state_digest"] == specs[0].forked_digest

    def test_unforkable_cells_published_cold(self, tmp_path):
        queue = open_queue(tmp_path / "q")
        tasks = grid_tasks(
            small_config(failure_round=None, reinjection_round=None),
            {"seed": (0, 1)},
        )
        Coordinator(queue, workers=1).publish(tasks)
        assert {spec.kind for spec in queue.tasks()} == {"cold"}

    def test_join_skips_prefix_recompute(self, tmp_path):
        queue = open_queue(tmp_path / "q")
        Coordinator(queue, workers=1).publish(ablation_grid(), run_id="r1")
        cache = CheckpointCache(queue.cache_root())
        cache.gc()  # joiner must not need (or rebuild) the cache
        manifest = Coordinator(queue, workers=1).publish(ablation_grid())
        assert manifest["run_id"] == "r1"
        assert cache.entries() == []  # publish was a pure join


class TestDistributedEqualsSerial:
    def test_two_workers_merge_identical_to_serial(self, tmp_path):
        """The acceptance bar: 2+ workers, one queue, merged run equals
        the serial run per cell (config hash + summary digest)."""
        tasks = ablation_grid()
        serial = serial_store(tmp_path, tasks)

        queue = open_queue(tmp_path / "q")
        Coordinator(queue, workers=1).publish(tasks, lease_s=60)
        stats = drain_with(queue, "w1", "w2", max_cells=2)
        assert sum(s.cells_ok for s in stats) == 4
        assert all(s.cells_ok > 0 for s in stats)  # both actually worked

        merged = ResultStore(tmp_path / "merged.jsonl")
        report = merge_queue(queue, merged)
        assert report.unique_cells == 4 and not report.missing
        assert diff_stores(serial, merged, run_a="serial") == []
        # Every distributed cell forked from the shipped checkpoint.
        assert all(
            record["forked_from"]
            for record in merged.cells(run_id=report.run_id)
        )

    def test_sqlite_queue_equivalent_too(self, tmp_path):
        tasks = ablation_grid()
        serial = serial_store(tmp_path, tasks)
        queue = open_queue(tmp_path / "q.sqlite")
        Coordinator(queue, workers=1).publish(tasks, lease_s=60)
        drain_with(queue, "w1", "w2", max_cells=2)
        merged = ResultStore(tmp_path / "merged.jsonl")
        merge_queue(queue, merged)
        assert diff_stores(serial, merged, run_a="serial") == []

    def test_merge_is_idempotent(self, tmp_path):
        tasks = ablation_grid()
        queue = open_queue(tmp_path / "q")
        Coordinator(queue, workers=1).publish(tasks)
        drain_with(queue, "w1")
        merged = ResultStore(tmp_path / "merged.jsonl")
        first = merge_queue(queue, merged)
        again = merge_queue(queue, merged)
        assert first.appended == 4
        assert again.appended == 0
        assert len(merged.cells(run_id=first.run_id)) == 4

    def test_duplicate_records_deduped_deterministically(self, tmp_path):
        """An expired-but-alive worker double-executes a cell: both
        records land in shards, the merge keeps exactly one, and the
        kept summary matches the serial run (determinism means the
        twins agree anyway)."""
        tasks = ablation_grid()
        serial = serial_store(tmp_path, tasks)
        queue = open_queue(tmp_path / "q")
        Coordinator(queue, workers=1).publish(tasks, lease_s=0.01)
        # Worker A claims and executes a cell whose lease has long
        # expired by the time it finishes; worker B re-executes it.
        drain_with(queue, "wa", "wb")
        raw = list(queue.cell_records())
        records = merged_records(queue)
        assert len(records) == 4
        assert len(raw) >= 4  # duplicates allowed, dedupe mandatory
        merged = ResultStore(tmp_path / "merged.jsonl")
        report = merge_queue(queue, merged)
        assert report.unique_cells == 4
        assert diff_stores(serial, merged, run_a="serial") == []


class TestRunDistributedSweep:
    def test_publish_only_then_external_drain(self, tmp_path):
        tasks = ablation_grid()
        queue = open_queue(tmp_path / "q")
        outcome = run_distributed_sweep(tasks, queue, workers=1, join=False)
        assert not outcome.joined and outcome.records == []
        assert not queue.is_complete()
        drain_with(queue, "external")
        assert queue.is_complete()

    def test_join_drains_and_merges(self, tmp_path):
        tasks = ablation_grid()
        store = ResultStore(tmp_path / "merged.jsonl")
        outcome = run_distributed_sweep(
            tasks, tmp_path / "q", workers=1, store=store, run_id="dist-run"
        )
        assert outcome.joined
        assert len(outcome.records) == 4
        assert outcome.merge is not None and not outcome.merge.missing
        assert store.completed("dist-run") == {t.task_id for t in tasks}

    def test_collect_cells_requires_drained_queue(self, tmp_path):
        tasks = ablation_grid()
        queue = open_queue(tmp_path / "q")
        run_distributed_sweep(tasks, queue, workers=1, join=False)
        with pytest.raises(ClusterError, match="no record"):
            collect_cells(queue, tasks)


class TestDistributedScenarios:
    def test_full_results_identical_to_serial(self, tmp_path):
        configs = [
            small_config(seed=seed, failure_fraction=fraction)
            for seed in (0, 1)
            for fraction in (0.25, 0.5)
        ]
        results = distributed_scenarios(configs, tmp_path / "q", workers=1)
        serial = run_scenarios(configs)
        for dist, cold in zip(results, serial):
            assert dist.series == cold.series
            assert dist.reliability == cold.reliability
            assert dist.reshaping_time == cold.reshaping_time

    def test_errored_cell_surfaces_as_runner_error(self, tmp_path, monkeypatch):
        # An un-runnable cell: sabotage the worker-side execution by
        # publishing a grid, then failing it via exhaustion (lease 0,
        # budget 0 is invalid — use a tiny budget and dead claims).
        configs = [small_config(seed=0)]
        queue = open_queue(tmp_path / "q")
        from repro.runtime.runner import scenario_tasks

        tasks = scenario_tasks(configs)
        Coordinator(queue, workers=1).publish(
            tasks, lease_s=0.01, max_attempts=1, payloads=True
        )
        queue.claim("zombie")
        import time as _time

        _time.sleep(0.05)
        drain_with(queue, "reaper")  # retires the cell as an error
        with pytest.raises(RunnerError, match="sweep cells failed"):
            from repro.runtime.cluster.coordinator import (
                collect_cells as collect,
            )
            from repro.runtime.runner import collect_scenario_results

            collect_scenario_results(collect(queue, tasks))


class TestDistributedScenariosGuards:
    def test_identical_twin_configs_both_get_results(self, tmp_path):
        """Two tasks with byte-identical configs dedupe to one merged
        record; both callers still get (the same) result back."""
        config = small_config(seed=0)
        results = distributed_scenarios([config, config], tmp_path / "q", workers=1)
        assert len(results) == 2
        assert results[0].series == results[1].series

    def test_joining_payload_less_queue_refused(self, tmp_path):
        """distributed_scenarios() joining a grid someone published
        without payloads must refuse, not hand back None results."""
        configs = [small_config(seed=0)]
        from repro.runtime.runner import scenario_tasks

        queue = open_queue(tmp_path / "q")
        run_distributed_sweep(
            scenario_tasks(configs), queue, workers=1, payloads=False
        )
        with pytest.raises(ClusterError, match="without result payloads"):
            distributed_scenarios(configs, queue, workers=1)


class TestDispatch:
    def test_execute_scenarios_modes_agree(self, tmp_path):
        configs = [small_config(seed=0), small_config(seed=1)]
        serial = execute_scenarios(configs)
        queued = execute_scenarios(
            configs, workers=1, queue=str(tmp_path / "q")
        )
        assert [r.reliability for r in serial] == [
            r.reliability for r in queued
        ]
        assert [r.series for r in serial] == [r.series for r in queued]
