"""Unit tests for the batch-synchronous engine (``repro.sim.batch``)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.scenario import ScenarioConfig, prepare_scenario, run_scenario
from repro.sim.batch import BatchPeerSampling, BatchSimulation
from repro.sim.batch.kernels import (
    cumcount,
    dedup_priority_truncate,
    dedup_rank_truncate,
    pairs_member,
    topk_smallest,
)
from repro.sim.batch.split import batch_split
from repro.sim.network import Network
from repro.spaces.euclidean import Euclidean
from repro.spaces.sets import JaccardSpace
from repro.spaces.torus import FlatTorus


def batch_config(**overrides) -> ScenarioConfig:
    base = dict(
        width=8,
        height=4,
        failure_round=5,
        reinjection_round=12,
        total_rounds=16,
        seed=3,
        engine="batch",
        metrics=("homogeneity",),
    )
    base.update(overrides)
    return ScenarioConfig(**base)


class TestKernels:
    def test_cumcount(self):
        keys = np.asarray([0, 0, 0, 2, 2, 5])
        assert cumcount(keys).tolist() == [0, 1, 2, 0, 1, 0]
        assert cumcount(np.asarray([], dtype=np.int64)).tolist() == []

    def test_pairs_member(self):
        got = pairs_member(
            np.asarray([0, 0, 1, 2]),
            np.asarray([7, 8, 7, 9]),
            np.asarray([0, 2]),
            np.asarray([7, 9]),
        )
        assert got.tolist() == [True, False, False, True]

    def test_topk_smallest(self):
        vals = np.asarray([[3.0, 1.0, 2.0], [np.inf, 5.0, 4.0]])
        pick = topk_smallest(vals, 2)
        assert sorted(vals[0][pick[0]].tolist()) == [1.0, 2.0]
        assert sorted(vals[1][pick[1]].tolist()) == [4.0, 5.0]

    def test_dedup_rank_truncate_keeps_freshest_and_ranks(self):
        space = Euclidean(1)
        # Receiver 0 at the origin; id 5 appears twice — the later
        # (fresher) coordinate must win; cap 2 keeps the closest two.
        recv = np.asarray([0, 0, 0, 0])
        ids = np.asarray([5, 7, 5, 9])
        coords = np.asarray([[10.0], [1.0], [0.5], [3.0]])
        origins = np.zeros((1, 1))

        def dist_of(kept):
            return space.distance_rows(origins[recv[kept]], coords[kept])

        sel, slot = dedup_rank_truncate(recv, ids, dist_of, 2)
        kept = {int(ids[s]): int(p) for s, p in zip(sel, slot)}
        assert kept == {5: 0, 7: 1}  # id 5 at its fresh coord 0.5

    def test_dedup_priority_truncate_cyclon_rule(self):
        # One receiver, cap 3: existing non-sent [1, 2], sent [3],
        # incoming [4, 2].  Expect 1, 2 kept (2's age is min'ed), 4
        # fills, 3 replaced.
        recv = np.asarray([0, 0, 0, 0, 0])
        ids = np.asarray([1, 2, 3, 4, 2])
        prio = np.asarray([0, 0, 2, 1, 1])
        order = np.asarray([0, 1, 0, 0, 1])
        ages = np.asarray([5, 9, 1, 0, 2])
        sel, slot, age = dedup_priority_truncate(recv, ids, prio, order, ages, 3)
        out = {int(ids[s]): int(a) for s, a in zip(sel, age)}
        assert out == {1: 5, 2: 2, 4: 0}

    def test_batch_split_partitions_every_variant(self):
        space = FlatTorus(8.0, 8.0)
        rng = np.random.default_rng(0)
        coords = rng.random((6, 5, 2)) * 8.0
        valid = np.ones((6, 5), dtype=bool)
        valid[0, 3:] = False
        pos_p = rng.random((6, 2)) * 8.0
        pos_q = rng.random((6, 2)) * 8.0
        for variant in ("basic", "pd", "md", "advanced"):
            side = batch_split(space, variant, coords, valid, pos_p, pos_q)
            assert side.shape == (6, 5)
            # a partition: every valid point lands on exactly one side
            assert side.dtype == bool

    def test_batch_split_matches_scalar_split(self):
        from repro.core.split import make_split
        from repro.types import DataPoint

        space = FlatTorus(16.0, 8.0)
        rng = np.random.default_rng(7)
        for variant in ("basic", "pd", "md", "advanced"):
            for trial in range(20):
                n = int(rng.integers(2, 9))
                coords = np.floor(rng.random((n, 2)) * [16, 8])
                points = [
                    DataPoint(i, tuple(float(c) for c in coords[i]))
                    for i in range(n)
                ]
                pos_p = tuple(float(c) for c in np.floor(rng.random(2) * [16, 8]))
                pos_q = tuple(float(c) for c in np.floor(rng.random(2) * [16, 8]))
                side_p, side_q = make_split(variant)(space, points, pos_p, pos_q)
                got = batch_split(
                    space,
                    variant,
                    coords[None, :, :],
                    np.ones((1, n), dtype=bool),
                    np.asarray([pos_p]),
                    np.asarray([pos_q]),
                )[0]
                want = {p.pid for p in side_p}
                assert {i for i in range(n) if got[i]} == want, (
                    variant,
                    trial,
                    points,
                    pos_p,
                    pos_q,
                )


class TestBatchSimulation:
    def test_rejects_object_coordinate_spaces(self):
        network = Network()
        with pytest.raises(ConfigurationError, match="vector space"):
            BatchSimulation(JaccardSpace(), network, layers=[])

    def test_full_scenario_runs_and_preserves_points(self):
        result = run_scenario(batch_config())
        # No point is ever lost outside the failure: reliability bounds
        # the homogeneity fallback population.
        assert result.reliability is not None
        assert 0.5 <= result.reliability <= 1.0
        assert len(result.n_alive) == 16
        assert result.n_alive[-1] > result.n_alive[5]  # reinjection landed

    def test_points_conserved_every_round(self):
        sim, recorder, _, points, _ = prepare_scenario(
            batch_config(failure_round=None, reinjection_round=None)
        )
        for _ in range(8):
            sim.step()
            held = set()
            for node in sim.network.alive_nodes():
                held.update(node.poly.guests)
            assert held == {p.pid for p in points}  # no loss, full cover

    def test_view_invariants_after_rounds(self):
        sim, *_ = prepare_scenario(batch_config())
        sim.run(10)
        topo = sim.layers[1]
        table = sim.network.table
        act = np.flatnonzero(table.alive_rows())
        ids = topo._ids[act]
        for i, row in enumerate(act):
            entries = [x for x in ids[i] if x >= 0]
            assert len(entries) == len(set(entries))  # no duplicates
            assert int(table._nid_of[row]) not in entries  # never self
        rps = sim.layers[0]
        rids = rps._ids[act]
        for i, row in enumerate(act):
            entries = [x for x in rids[i] if x >= 0]
            assert len(entries) == len(set(entries))
            assert int(table._nid_of[row]) not in entries

    def test_vicinity_topology_runs(self):
        result = run_scenario(batch_config(topology="vicinity"))
        assert result.final("homogeneity") < 1.0

    def test_tman_baseline_runs(self):
        result = run_scenario(batch_config(protocol="tman"))
        # Plain T-Man cannot recover the lost half of the shape.
        assert result.final("homogeneity") > 0.2

    def test_all_metrics_compute(self):
        from repro.metrics.collector import ALL_METRICS

        result = run_scenario(batch_config(metrics=ALL_METRICS))
        for name in ALL_METRICS:
            series = result.series[name]
            assert len(series) == 16
            assert all(np.isfinite(v) for v in series), name

    def test_batch_rps_sample_rows_excludes(self):
        sim, *_ = prepare_scenario(batch_config())
        sim.run(2)
        rps: BatchPeerSampling = sim.layers[0]
        table = sim.network.table
        rows = np.flatnonzero(table.alive_rows())[:5]
        exclude = table._nid_of[rows][:, None]  # exclude own id (trivially)
        got = rps.sample_rows(sim, rows, 3, exclude=exclude)
        for i, row in enumerate(rows):
            own = int(table._nid_of[row])
            picked = [int(x) for x in got[i] if x >= 0]
            assert own not in picked
            assert all(sim.network.is_alive(nid) for nid in picked)

    def test_retention_bounds_batch_table(self):
        result = run_scenario(batch_config(retention_rounds=3))
        assert result.n_alive[-1] > 0
