"""Tests for the assembled Polystyrene layer and the baseline adapter."""

import pytest

from repro.core.config import PolystyreneConfig
from repro.core.protocol import PolystyreneLayer, StaticHolderLayer
from repro.gossip.rps import PeerSamplingLayer
from repro.gossip.tman import TManLayer
from repro.metrics.homogeneity import homogeneity, surviving_fraction
from repro.sim.engine import Simulation
from repro.sim.network import Network
from repro.spaces import FlatTorus

from repro.core.points import PointFactory


def build_stack(width=8, height=4, K=2, seed=0, **config_kwargs):
    space = FlatTorus(float(width), float(height))
    factory = PointFactory()
    network = Network()
    points = []
    for x in range(width):
        for y in range(height):
            point = factory.create((float(x), float(y)))
            points.append(point)
            network.add_node(point.coord, point)
    rps = PeerSamplingLayer(view_size=8, shuffle_length=4)
    tman = TManLayer(space, rps, message_size=10, psi=5, view_cap=30, bootstrap_size=5)
    config = PolystyreneConfig(replication=K, **config_kwargs)
    poly = PolystyreneLayer(space, config, rps, tman)
    sim = Simulation(space, network, [rps, tman, poly], seed=seed)
    sim.init_all_nodes()
    return sim, poly, points, space


class TestInit:
    def test_node_starts_with_own_point(self):
        sim, poly, points, space = build_stack()
        node = sim.network.node(0)
        assert list(node.poly.guests.values()) == [points[0]]
        assert node.pos == points[0].coord

    def test_fresh_node_starts_empty(self):
        sim, poly, points, space = build_stack()
        fresh = sim.spawn_node((0.5, 0.5))
        assert fresh.poly.n_guests == 0
        assert fresh.pos == (0.5, 0.5)


class TestSteadyState:
    def test_backups_established_after_first_round(self):
        sim, poly, points, space = build_stack(K=3)
        sim.run(1)
        for node in sim.network.alive_nodes():
            assert len(node.poly.backups) == 3

    def test_storage_reaches_one_plus_k(self):
        sim, poly, points, space = build_stack(K=2)
        sim.run(3)
        total = sum(n.poly.storage_load for n in sim.network.alive_nodes())
        assert total / sim.network.n_alive == pytest.approx(3.0, abs=0.25)

    def test_no_point_lost_without_failures(self):
        sim, poly, points, space = build_stack()
        sim.run(10)
        held = set()
        for node in sim.network.alive_nodes():
            held.update(node.poly.guests)
        assert held == {p.pid for p in points}

    def test_homogeneity_stays_near_zero(self):
        sim, poly, points, space = build_stack()
        sim.run(10)
        assert homogeneity(space, points, sim.network.alive_nodes()) < 0.5


class TestFailureRecovery:
    def test_points_survive_half_failure(self):
        sim, poly, points, space = build_stack(K=4)
        sim.run(5)
        victims = [
            n.nid
            for n in sim.network.alive_nodes()
            if n.initial_point.coord[0] < 4.0
        ]
        sim.network.fail(victims, rnd=sim.round)
        sim.run(1)  # recovery fires
        held = set()
        for node in sim.network.alive_nodes():
            held.update(node.poly.guests)
        # K=4 gives ~97% survival; on 32 points that is >= 26 w.h.p.
        assert len(held) >= 26

    def test_survivors_reoccupy_failed_half(self):
        sim, poly, points, space = build_stack(K=4)
        sim.run(5)
        victims = [
            n.nid
            for n in sim.network.alive_nodes()
            if n.initial_point.coord[0] < 4.0
        ]
        sim.network.fail(victims, rnd=sim.round)
        sim.run(15)
        # Some survivors must now advertise positions in the dead half.
        relocated = sum(
            1 for n in sim.network.alive_nodes() if n.pos[0] < 4.0
        )
        assert relocated >= 3

    def test_homogeneity_recovers(self):
        sim, poly, points, space = build_stack(K=4)
        sim.run(5)
        victims = [
            n.nid
            for n in sim.network.alive_nodes()
            if n.initial_point.coord[0] < 4.0
        ]
        sim.network.fail(victims, rnd=sim.round)
        sim.run(1)
        spiked = homogeneity(space, points, sim.network.alive_nodes())
        sim.run(20)
        settled = homogeneity(space, points, sim.network.alive_nodes())
        assert settled < spiked

    def test_ghost_duplicates_deduplicated_over_time(self):
        sim, poly, points, space = build_stack(K=4)
        sim.run(5)
        victims = [
            n.nid
            for n in sim.network.alive_nodes()
            if n.initial_point.coord[0] < 4.0
        ]
        sim.network.fail(victims, rnd=sim.round)
        sim.run(1)
        def duplicate_count():
            seen = {}
            for node in sim.network.alive_nodes():
                for pid in node.poly.guests:
                    seen[pid] = seen.get(pid, 0) + 1
            return sum(c - 1 for c in seen.values() if c > 1)
        early = duplicate_count()
        sim.run(20)
        late = duplicate_count()
        assert late < early or early == 0


class TestStaticHolder:
    def test_keeps_position_and_point(self):
        space = FlatTorus(4.0, 4.0)
        factory = PointFactory()
        network = Network()
        point = factory.create((1.0, 1.0))
        network.add_node(point.coord, point)
        layer = StaticHolderLayer()
        sim = Simulation(space, network, [layer], seed=0)
        sim.init_all_nodes()
        sim.run(5)
        node = network.node(0)
        assert node.pos == (1.0, 1.0)
        assert list(node.poly.guests) == [point.pid]
        assert node.poly.n_ghosts == 0

    def test_reliability_without_replication(self):
        # Under the static baseline a failed node's point is simply lost.
        space = FlatTorus(4.0, 2.0)
        factory = PointFactory()
        network = Network()
        points = []
        for x in range(4):
            for y in range(2):
                point = factory.create((float(x), float(y)))
                points.append(point)
                network.add_node(point.coord, point)
        layer = StaticHolderLayer()
        sim = Simulation(space, network, [layer], seed=0)
        sim.init_all_nodes()
        network.fail([0, 1, 2, 3], rnd=0)
        assert surviving_fraction(points, network.alive_nodes()) == 0.5
