"""Tests for the homogeneity metric and reliability."""

import pytest

from repro.core.state import PolystyreneState
from repro.metrics.homogeneity import (
    holder_index,
    homogeneity,
    lost_points,
    surviving_fraction,
)
from repro.sim.network import SimNode
from repro.spaces import FlatTorus
from repro.types import DataPoint

TORUS = FlatTorus(8.0, 4.0)


def node_with(nid, pos, guest_points=(), ghosts=None):
    node = SimNode(nid, tuple(pos))
    node.poly = PolystyreneState(guest_points)
    if ghosts:
        node.poly.ghosts = ghosts
    return node


class TestHolderIndex:
    def test_maps_points_to_holders(self):
        p = DataPoint(0, (0.0, 0.0))
        a = node_with(0, (0.0, 0.0), [p])
        b = node_with(1, (1.0, 0.0), [p])
        index = holder_index([a, b])
        assert {n.nid for n in index[0]} == {0, 1}

    def test_skips_nodes_without_state(self):
        bare = SimNode(0, (0.0, 0.0))
        assert holder_index([bare]) == {}


class TestHomogeneity:
    def test_perfect_initial_assignment_is_zero(self):
        points = [DataPoint(i, (float(i), 0.0)) for i in range(4)]
        nodes = [node_with(i, (float(i), 0.0), [points[i]]) for i in range(4)]
        assert homogeneity(TORUS, points, nodes) == 0.0

    def test_held_point_measured_to_holder_position(self):
        point = DataPoint(0, (0.0, 0.0))
        holder = node_with(0, (2.0, 0.0), [point])
        assert homogeneity(TORUS, [point], [holder]) == pytest.approx(2.0)

    def test_multiple_holders_take_nearest(self):
        point = DataPoint(0, (0.0, 0.0))
        near = node_with(0, (1.0, 0.0), [point])
        far = node_with(1, (4.0, 0.0), [point])
        assert homogeneity(TORUS, [point], [near, far]) == pytest.approx(1.0)

    def test_lost_point_falls_back_to_all_nodes(self):
        lost = DataPoint(0, (0.0, 0.0))
        other = DataPoint(1, (3.0, 0.0))
        holder = node_with(0, (3.0, 0.0), [other])
        # ``lost`` has no holder: distance to the nearest node (3.0).
        assert homogeneity(TORUS, [lost], [holder]) == pytest.approx(3.0)

    def test_mean_over_points(self):
        p0 = DataPoint(0, (0.0, 0.0))
        p1 = DataPoint(1, (2.0, 0.0))
        holder = node_with(0, (0.0, 0.0), [p0, p1])
        assert homogeneity(TORUS, [p0, p1], [holder]) == pytest.approx(1.0)

    def test_empty_points(self):
        assert homogeneity(TORUS, [], [node_with(0, (0.0, 0.0))]) == 0.0

    def test_empty_network_raises(self):
        with pytest.raises(ValueError):
            homogeneity(TORUS, [DataPoint(0, (0.0, 0.0))], [])

    def test_uses_wraparound(self):
        point = DataPoint(0, (7.5, 0.0))
        holder = node_with(0, (0.5, 0.0), [point])
        assert homogeneity(TORUS, [point], [holder]) == pytest.approx(1.0)


class TestLostPoints:
    def test_identifies_unheld(self):
        held = DataPoint(0, (0.0, 0.0))
        unheld = DataPoint(1, (1.0, 0.0))
        node = node_with(0, (0.0, 0.0), [held])
        assert lost_points([held, unheld], [node]) == [unheld]


class TestSurvivingFraction:
    def test_all_held(self):
        points = [DataPoint(i, (float(i), 0.0)) for i in range(3)]
        nodes = [node_with(i, (float(i), 0.0), [points[i]]) for i in range(3)]
        assert surviving_fraction(points, nodes) == 1.0

    def test_ghost_copies_count(self):
        point = DataPoint(0, (0.0, 0.0))
        ghost_holder = node_with(0, (1.0, 0.0), [], ghosts={9: {0: point}})
        assert surviving_fraction([point], [ghost_holder]) == 1.0

    def test_lost_points_excluded(self):
        p0 = DataPoint(0, (0.0, 0.0))
        p1 = DataPoint(1, (1.0, 0.0))
        node = node_with(0, (0.0, 0.0), [p0])
        assert surviving_fraction([p0, p1], [node]) == 0.5

    def test_no_points(self):
        assert surviving_fraction([], [node_with(0, (0.0, 0.0))]) == 1.0
