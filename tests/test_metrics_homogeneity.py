"""Tests for the homogeneity metric and reliability."""

import pytest

from repro.core.state import PolystyreneState
from repro.metrics.homogeneity import (
    holder_index,
    homogeneity,
    lost_points,
    surviving_fraction,
)
from repro.sim.network import SimNode
from repro.spaces import FlatTorus
from repro.types import DataPoint

TORUS = FlatTorus(8.0, 4.0)


def node_with(nid, pos, guest_points=(), ghosts=None):
    node = SimNode(nid, tuple(pos))
    node.poly = PolystyreneState(guest_points)
    if ghosts:
        node.poly.ghosts = ghosts
    return node


class TestHolderIndex:
    def test_maps_points_to_holders(self):
        p = DataPoint(0, (0.0, 0.0))
        a = node_with(0, (0.0, 0.0), [p])
        b = node_with(1, (1.0, 0.0), [p])
        index = holder_index([a, b])
        assert {n.nid for n in index[0]} == {0, 1}

    def test_skips_nodes_without_state(self):
        bare = SimNode(0, (0.0, 0.0))
        assert holder_index([bare]) == {}


class TestHomogeneity:
    def test_perfect_initial_assignment_is_zero(self):
        points = [DataPoint(i, (float(i), 0.0)) for i in range(4)]
        nodes = [node_with(i, (float(i), 0.0), [points[i]]) for i in range(4)]
        assert homogeneity(TORUS, points, nodes) == 0.0

    def test_held_point_measured_to_holder_position(self):
        point = DataPoint(0, (0.0, 0.0))
        holder = node_with(0, (2.0, 0.0), [point])
        assert homogeneity(TORUS, [point], [holder]) == pytest.approx(2.0)

    def test_multiple_holders_take_nearest(self):
        point = DataPoint(0, (0.0, 0.0))
        near = node_with(0, (1.0, 0.0), [point])
        far = node_with(1, (4.0, 0.0), [point])
        assert homogeneity(TORUS, [point], [near, far]) == pytest.approx(1.0)

    def test_lost_point_falls_back_to_all_nodes(self):
        lost = DataPoint(0, (0.0, 0.0))
        other = DataPoint(1, (3.0, 0.0))
        holder = node_with(0, (3.0, 0.0), [other])
        # ``lost`` has no holder: distance to the nearest node (3.0).
        assert homogeneity(TORUS, [lost], [holder]) == pytest.approx(3.0)

    def test_mean_over_points(self):
        p0 = DataPoint(0, (0.0, 0.0))
        p1 = DataPoint(1, (2.0, 0.0))
        holder = node_with(0, (0.0, 0.0), [p0, p1])
        assert homogeneity(TORUS, [p0, p1], [holder]) == pytest.approx(1.0)

    def test_empty_points(self):
        assert homogeneity(TORUS, [], [node_with(0, (0.0, 0.0))]) == 0.0

    def test_empty_network_raises(self):
        with pytest.raises(ValueError):
            homogeneity(TORUS, [DataPoint(0, (0.0, 0.0))], [])

    def test_uses_wraparound(self):
        point = DataPoint(0, (7.5, 0.0))
        holder = node_with(0, (0.5, 0.0), [point])
        assert homogeneity(TORUS, [point], [holder]) == pytest.approx(1.0)


class TestLostPoints:
    def test_identifies_unheld(self):
        held = DataPoint(0, (0.0, 0.0))
        unheld = DataPoint(1, (1.0, 0.0))
        node = node_with(0, (0.0, 0.0), [held])
        assert lost_points([held, unheld], [node]) == [unheld]


class TestSurvivingFraction:
    def test_all_held(self):
        points = [DataPoint(i, (float(i), 0.0)) for i in range(3)]
        nodes = [node_with(i, (float(i), 0.0), [points[i]]) for i in range(3)]
        assert surviving_fraction(points, nodes) == 1.0

    def test_ghost_copies_count(self):
        point = DataPoint(0, (0.0, 0.0))
        ghost_holder = node_with(0, (1.0, 0.0), [], ghosts={9: {0: point}})
        assert surviving_fraction([point], [ghost_holder]) == 1.0

    def test_lost_points_excluded(self):
        p0 = DataPoint(0, (0.0, 0.0))
        p1 = DataPoint(1, (1.0, 0.0))
        node = node_with(0, (0.0, 0.0), [p0])
        assert surviving_fraction([p0, p1], [node]) == 0.5

    def test_no_points(self):
        assert surviving_fraction([], [node_with(0, (0.0, 0.0))]) == 1.0


class TestVectorisedEquivalence:
    """The row-wise batched homogeneity must be float-equal to the
    historical per-point scalar loop (hypothesis over random holder
    assignments covering the single-holder, multi-holder and lost
    cases)."""

    @staticmethod
    def scalar_reference(space, points, alive_nodes):
        import numpy as np

        holders = holder_index(alive_nodes)
        all_pos = [n.pos for n in alive_nodes]
        total = 0.0
        for point in points:
            holding = holders.get(point.pid)
            if holding:
                total += min(
                    space.distance(point.coord, n.pos) for n in holding
                )
            else:
                total += float(
                    np.min(space.distance_many(point.coord, all_pos))
                )
        return total / len(points)

    def test_matches_scalar_reference(self):
        from hypothesis import given, settings, strategies as st

        coord = st.tuples(
            st.floats(min_value=0, max_value=7.99, allow_nan=False),
            st.floats(min_value=0, max_value=3.99, allow_nan=False),
        )

        @given(data=st.data())
        @settings(max_examples=50, deadline=None)
        def run(data):
            n_nodes = data.draw(st.integers(min_value=1, max_value=8))
            n_points = data.draw(st.integers(min_value=1, max_value=10))
            nodes = [
                node_with(i, data.draw(coord)) for i in range(n_nodes)
            ]
            points = []
            for pid in range(n_points):
                point = DataPoint(pid, data.draw(coord))
                points.append(point)
                # 0 holders = lost, 1 = the batched fast path, 2+ = the
                # flat min-reduce path.
                n_holders = data.draw(st.integers(min_value=0, max_value=3))
                for node in data.draw(
                    st.permutations(nodes)
                )[: min(n_holders, n_nodes)]:
                    node.poly.guests[pid] = point
            got = homogeneity(TORUS, points, nodes)
            want = self.scalar_reference(TORUS, points, nodes)
            assert got == pytest.approx(want, rel=1e-12, abs=1e-12)

        run()

    def test_matches_scalar_reference_on_object_space(self):
        from repro.spaces import JaccardSpace

        space = JaccardSpace()

        def set_node(nid, pos):
            node = SimNode(nid, pos)
            node.poly = PolystyreneState()
            return node

        nodes = [
            set_node(0, frozenset({1, 2})),
            set_node(1, frozenset({2, 3})),
            set_node(2, frozenset({9})),
        ]
        points = [
            DataPoint(0, frozenset({1, 2})),
            DataPoint(1, frozenset({2, 3, 4})),
            DataPoint(2, frozenset({7})),
        ]
        nodes[0].poly.guests[0] = points[0]
        nodes[1].poly.guests[0] = points[0]  # multi-holder
        nodes[2].poly.guests[1] = points[1]  # single holder; point 2 lost
        got = homogeneity(space, points, nodes)
        want = self.scalar_reference(space, points, nodes)
        assert got == pytest.approx(want, rel=1e-12)
