"""Tests for the experiment registry and CLI plumbing."""

import pytest

from repro.cli import build_parser, main
from repro.errors import ExperimentNotFoundError
from repro.experiments.registry import (
    DESCRIPTIONS,
    experiment_names,
    run_experiment,
)


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        names = set(experiment_names())
        assert {
            "fig1",
            "fig6a",
            "fig6b",
            "fig7a",
            "fig7b",
            "fig8",
            "fig9",
            "table2",
            "fig10a",
            "fig10b",
        } <= names

    def test_descriptions_cover_all(self):
        assert set(DESCRIPTIONS) == set(experiment_names())

    def test_unknown_experiment(self):
        with pytest.raises(ExperimentNotFoundError):
            run_experiment("fig99")


class TestCLI:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig6a" in out
        assert "table2" in out

    def test_run_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "nonexistent"])

    def test_parser_accepts_scale_and_seed(self):
        args = build_parser().parse_args(
            ["run", "fig6a", "--scale", "smoke", "--seed", "3"]
        )
        assert args.experiment == "fig6a"
        assert args.scale == "smoke"
        assert args.seed == 3
