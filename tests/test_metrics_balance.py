"""Tests for the load-balance metrics."""

import numpy as np
import pytest

from repro.core.state import PolystyreneState
from repro.metrics.balance import gini, guest_counts, load_balance
from repro.sim.network import SimNode
from repro.types import DataPoint


def node_with_guests(nid, n):
    node = SimNode(nid, (0.0, 0.0))
    node.poly = PolystyreneState(
        [DataPoint(nid * 100 + i, (0.0, 0.0)) for i in range(n)]
    )
    return node


class TestGini:
    def test_equal_shares_zero(self):
        assert gini(np.array([3.0, 3.0, 3.0])) == pytest.approx(0.0)

    def test_all_on_one_node(self):
        value = gini(np.array([0.0, 0.0, 0.0, 12.0]))
        assert value == pytest.approx(0.75)

    def test_all_zero(self):
        assert gini(np.array([0.0, 0.0])) == 0.0

    def test_monotone_in_inequality(self):
        balanced = gini(np.array([2.0, 2.0, 2.0, 2.0]))
        skewed = gini(np.array([1.0, 1.0, 1.0, 5.0]))
        assert skewed > balanced

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gini(np.array([-1.0, 2.0]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            gini(np.array([]))


class TestLoadBalance:
    def test_uniform(self):
        nodes = [node_with_guests(i, 2) for i in range(4)]
        out = load_balance(nodes)
        assert out["max_over_mean"] == pytest.approx(1.0)
        assert out["gini"] == pytest.approx(0.0)

    def test_skewed(self):
        nodes = [node_with_guests(0, 7), node_with_guests(1, 1)]
        out = load_balance(nodes)
        assert out["max"] == 7
        assert out["mean"] == 4.0
        assert out["max_over_mean"] == pytest.approx(1.75)

    def test_empty_network_rejected(self):
        with pytest.raises(ValueError):
            load_balance([])

    def test_guest_counts_handles_missing_state(self):
        bare = SimNode(0, (0.0, 0.0))
        counts = guest_counts([bare, node_with_guests(1, 3)])
        assert list(counts) == [0.0, 3.0]


class TestBalanceAfterRepair:
    def test_migration_balances_load(self):
        """After a failure + repair, guest load must spread instead of
        piling onto the recovery nodes."""
        from repro.experiments.scenario import ScenarioConfig, build_simulation

        config = ScenarioConfig(
            width=12,
            height=6,
            replication=4,
            failure_round=8,
            reinjection_round=None,
            total_rounds=40,
            seed=1,
            metrics=("homogeneity",),
        )
        sim, _, _, _ = build_simulation(config)
        from repro.sim.failures import half_space_failure

        sim.schedule(8, half_space_failure(0, 6.0))
        sim.run(40)
        out = load_balance(sim.network.alive_nodes())
        # ~2 points per survivor on average; no node should hold an
        # order of magnitude more than the mean once converged.
        assert out["mean"] == pytest.approx(2.0, abs=0.4)
        assert out["max_over_mean"] < 4.0
        assert out["gini"] < 0.45
