"""The eval harness end to end: dataset integrity, the caching runner,
report/gate semantics, and the ``repro eval`` CLI.

Runner and report tests use synthetic pre-populated stores (no
simulations); the CLI class runs one real 3-seed smoke ensemble once
and then exercises caching, the gate, and the perturbed-gate contract
against the same store."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.eval.dataset import (
    DATASET_VERSION,
    STAT_FLOORS,
    case,
    case_by_id,
    claim_cases,
    equivalence_cases,
    expected_for,
    load_expected,
    save_expected,
    update_expected_requested,
)
from repro.eval.report import (
    build_report,
    format_report,
    gate_exit,
    load_report,
    score_run,
    write_report,
)
from repro.eval.runner import case_plan, run_cases
from repro.eval.scorers import SCORERS
from repro.runtime.store import ResultStore, config_hash

BAND_CASE = case_by_id("smoke/fig6-homogeneity")


# -- dataset -----------------------------------------------------------------


class TestDataset:
    def test_case_ids_unique_and_scorers_known(self):
        cases = claim_cases()
        ids = [c.case_id for c in cases]
        assert len(ids) == len(set(ids))
        assert all(c.scorer in SCORERS for c in cases)

    def test_every_preset_contributes_claims(self):
        for preset in ("smoke", "reduced", "paper"):
            ids = [c.case_id for c in claim_cases(preset)]
            assert any(i.startswith(f"{preset}/fig6") for i in ids)
            assert any(i.startswith(f"{preset}/table2") for i in ids)
            assert any(i.startswith(f"{preset}/fig10a") for i in ids)
            # equivalence cross-checks ride along at every preset
            assert any(i.startswith("equivalence/") for i in ids)

    def test_equivalence_cases_cover_roadmap_axes(self):
        by_id = {c.case_id: c for c in equivalence_cases()}
        assert by_id["equivalence/detector-delay"].overrides
        assert all(c.engine == "both" for c in by_id.values())
        ablated = {
            key: dict(by_id[f"equivalence/{key}"].overrides)
            for key in ("detector-delay", "backup-neighbors", "vicinity")
        }
        assert ablated["detector-delay"]["detector_delay"] == 3
        assert ablated["backup-neighbors"]["backup_placement"] == "neighbors"
        assert ablated["vicinity"]["topology"] == "vicinity"

    def test_configs_grid_shape(self):
        table2 = case_by_id("smoke/table2-reliability")
        grid = table2.configs("batch")
        assert len(grid) == len(table2.seeds) * len(table2.variants)
        assert {cfg.engine for _, cfg in grid} == {"batch"}
        assert {label for label, _ in grid} == {"K=2", "K=4", "K=8"}
        # distinct variants hash differently, seeds too
        assert len({config_hash(cfg) for _, cfg in grid}) == len(grid)

    def test_engines_resolution(self):
        assert BAND_CASE.engines("event") == ("event",)
        assert BAND_CASE.engines(None) == ("event", "batch")
        both = case_by_id("equivalence/base")
        assert both.engines("event") == ("event", "batch")

    def test_case_validation(self):
        with pytest.raises(ConfigurationError):
            case("x", "t", "r", "smoke", "band", seeds=[0], engine="sometimes")
        with pytest.raises(ConfigurationError):
            case("x", "t", "r", "galactic", "band", seeds=[0])
        with pytest.raises(ConfigurationError):
            case("x", "t", "r", "smoke", "band", seeds=[])
        with pytest.raises(ConfigurationError):
            case_by_id("smoke/figure-of-imagination")

    def test_shipped_expectations_cover_smoke_band_cases(self):
        expected = load_expected()
        assert expected["version"] == DATASET_VERSION
        for c in claim_cases("smoke", include_equivalence=False):
            if c.scorer != "band":
                continue
            entry = expected_for(c.case_id, expected)
            assert entry, f"no recorded expectation for {c.case_id}"
            for label in c.variant_labels:
                group = entry["groups"][label]
                for stat in c.param_dict["stats"]:
                    assert {"value", "tol"} <= set(group[stat])
                    assert group[stat]["tol"] > 0

    def test_expected_roundtrip_and_version_gate(self, tmp_path):
        path = tmp_path / "expected.json"
        save_expected(
            {"cases": {"x/y": {"groups": {"all": {"s": {"value": 1, "tol": 2}}}}}},
            path,
        )
        loaded = load_expected(path)
        assert loaded["version"] == DATASET_VERSION
        assert expected_for("x/y", loaded)["groups"]["all"]["s"]["tol"] == 2
        path.write_text(json.dumps({"version": DATASET_VERSION + 99, "cases": {}}))
        with pytest.raises(ConfigurationError, match="regenerate"):
            load_expected(path)
        assert load_expected(tmp_path / "absent.json") == {
            "version": DATASET_VERSION,
            "cases": {},
        }

    def test_update_expected_env_switch(self, monkeypatch):
        monkeypatch.delenv("REPRO_UPDATE_EXPECTED", raising=False)
        assert not update_expected_requested()
        monkeypatch.setenv("REPRO_UPDATE_EXPECTED", "0")
        assert not update_expected_requested()
        monkeypatch.setenv("REPRO_UPDATE_EXPECTED", "1")
        assert update_expected_requested()

    def test_stat_floors_cover_equivalence_stats(self):
        base = case_by_id("equivalence/base")
        assert set(base.param_dict["stats"]) == set(STAT_FLOORS)


# -- runner caching (synthetic store, no simulations) ------------------------


def synthetic_summary(mid=0.3, final=0.1):
    return {
        "reliability": 0.97,
        "reshaping_time": 12.0,
        "final": {"homogeneity": final, "proximity": 0.99},
        "probes": {"mid_recovery": {"homogeneity": mid}},
        "storage_peak": 4.0,
        "message_mean": 60.0,
    }


def populate(store, case_, engine):
    for label, cfg in case_.configs(engine):
        store.append_record(
            {
                "kind": "cell",
                "run_id": "seeded",
                "task_id": f"seed/{label}/{cfg.seed}",
                "status": "ok",
                "config": {},
                "config_hash": config_hash(cfg),
                "summary": synthetic_summary(),
            }
        )


class TestRunnerCaching:
    def test_case_plan_expansion(self):
        plan = case_plan([BAND_CASE, case_by_id("equivalence/base")], "event")
        engines = [eng for _, eng in plan]
        # "any" case honours the requested engine; "both" always runs both
        assert engines == ["event", "event", "batch"]
        assert len(case_plan([BAND_CASE], None)) == 2

    def test_fully_cached_run_executes_nothing(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        populate(store, BAND_CASE, "event")
        data = run_cases([BAND_CASE], store, engine="event")
        assert data.executed == 0
        assert data.cached == len(BAND_CASE.seeds)
        assert data.run_id is None  # nothing ran, no run header written
        cells = data.cells[(BAND_CASE.case_id, "event")]
        assert not cells.missing()

    def test_cached_cells_score_and_gate(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        populate(store, BAND_CASE, "event")
        data = run_cases([BAND_CASE], store, engine="event")
        expected = {
            "cases": {
                BAND_CASE.case_id: {
                    "groups": {
                        "all": {
                            "probes.mid_recovery.homogeneity": {
                                "value": 0.3, "tol": 0.05,
                            },
                            "final.homogeneity": {"value": 0.1, "tol": 0.05},
                        }
                    }
                }
            }
        }
        scores = score_run([BAND_CASE], data, expected)
        assert [s.status for s in scores] == ["pass"]
        report = build_report(scores, data, preset="smoke", engine="event")
        assert report["gate_ok"] and gate_exit(report) == 0
        assert report["counts"] == {"pass": 1, "fail": 0, "skipped": 0}

        # perturbed expectations flip the same cells to a diagnosed FAIL
        bad = score_run([BAND_CASE], data, expected, tolerance_scale=0.0)
        bad_report = build_report(bad, data, tolerance_scale=0.0)
        assert not bad_report["gate_ok"] and gate_exit(bad_report) == 1
        rendered = format_report(bad_report)
        assert "gate: FAILED" in rendered
        assert BAND_CASE.case_id in rendered

    def test_unscored_band_case_skips_not_fails(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        populate(store, BAND_CASE, "event")
        data = run_cases([BAND_CASE], store, engine="event")
        scores = score_run([BAND_CASE], data, expected={"cases": {}})
        assert [s.status for s in scores] == ["skipped"]
        report = build_report(scores, data)
        assert report["gate_ok"]  # SKIP is visible but does not fail CI

    def test_report_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        populate(store, BAND_CASE, "event")
        data = run_cases([BAND_CASE], store, engine="event")
        report = build_report(
            score_run([BAND_CASE], data, {"cases": {}}), data, preset="smoke"
        )
        path = write_report(report, tmp_path / "out" / "report.json")
        again = load_report(path)
        assert again["preset"] == "smoke"
        assert again["claims"][0]["case_id"] == BAND_CASE.case_id
        assert "cells executed" in format_report(again)


# -- CLI ---------------------------------------------------------------------


@pytest.fixture(scope="class")
def cli_store(tmp_path_factory):
    return tmp_path_factory.mktemp("eval-cli") / "store.jsonl"


@pytest.mark.eval
@pytest.mark.slow
class TestEvalCli:
    """One real batch-engine smoke ensemble, then everything else rides
    the content-hash cache (fig6-homogeneity and fig6-shape-recovery
    share identical configurations by construction)."""

    def test_list(self, capsys):
        assert main(["eval", "list", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "smoke/table2-reliability" in out
        assert "equivalence/base" in out

    def test_unknown_case_filter(self, capsys):
        assert (
            main(["eval", "run", "--scale", "smoke", "--case", "fig99"]) == 2
        )

    def test_update_and_gate_conflict(self, cli_store, capsys):
        code = main(
            ["eval", "run", "--scale", "smoke", "--gate", "--update-expected",
             "--store", str(cli_store)]
        )
        assert code == 2

    def test_gate_runs_and_passes(self, cli_store, capsys):
        code = main(
            ["eval", "run", "--scale", "smoke", "--engine", "batch",
             "--case", "fig6-shape-recovery", "--gate",
             "--store", str(cli_store)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "gate: OK" in out

    def test_rerun_is_fully_cached(self, cli_store, capsys):
        code = main(
            ["eval", "run", "--scale", "smoke", "--engine", "batch",
             "--case", "fig6-shape-recovery", "--gate",
             "--store", str(cli_store)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "(0 cells executed, 3 cached" in out

    def test_band_case_from_same_cache(self, cli_store, capsys, tmp_path):
        report_path = tmp_path / "report.json"
        code = main(
            ["eval", "run", "--scale", "smoke", "--engine", "batch",
             "--case", "fig6-homogeneity", "--gate",
             "--store", str(cli_store), "--report", str(report_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "(0 cells executed, 3 cached" in out
        report = load_report(report_path)
        assert report["gate_ok"] and report["counts"]["pass"] == 1
        # the saved report renders standalone, and --gate echoes its verdict
        assert main(["eval", "report", str(report_path), "--gate"]) == 0

    def test_perturbed_gate_fails_with_diagnosis(self, cli_store, capsys):
        code = main(
            ["eval", "run", "--scale", "smoke", "--engine", "batch",
             "--case", "fig6-homogeneity", "--gate", "--tolerance-scale", "0",
             "--store", str(cli_store)]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "gate: FAILED" in out
        assert "EXCEEDS band" in out
