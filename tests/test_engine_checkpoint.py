"""Checkpoint ↔ engine interactions.

Format-2 snapshots are engine-bearing: a checkpoint freezes whichever
engine produced it, restores bit-exactly into that engine, and
*converts* into the other engine on request (``restore(...,
engine=...)``) — network, protocol state, pending events and the meter
carry over; RNG substreams are re-derived at the switch.  The
fork-checkpoint cache keys on the configured engine's semantics
version, so the two backends can never cross-contaminate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CheckpointError
from repro.experiments.scenario import (
    ScenarioConfig,
    finish_scenario,
    prefix_scenario,
    prepare_scenario,
)
from repro.metrics.storage import average_storage
from repro.runtime import checkpoint as ckpt
from repro.runtime.forksweep import CheckpointCache
from repro.sim.batch import BatchSimulation
from repro.sim.engine import Simulation, semantics_version_for


def config(engine: str, **overrides) -> ScenarioConfig:
    base = dict(
        width=8,
        height=4,
        failure_round=5,
        reinjection_round=12,
        total_rounds=16,
        seed=3,
        metrics=("homogeneity",),
        engine=engine,
    )
    base.update(overrides)
    return ScenarioConfig(**base)


class TestBatchSnapshotDigestStability:
    def test_digest_is_deterministic_across_processes_of_state(self):
        sim_a, *_ = prepare_scenario(config("batch"))
        sim_b, *_ = prepare_scenario(config("batch"))
        sim_a.run(7)
        sim_b.run(7)
        assert ckpt.state_digest(sim_a) == ckpt.state_digest(sim_b)

    def test_digest_is_idempotent(self):
        sim, *_ = prepare_scenario(config("batch"))
        sim.run(4)
        first = ckpt.state_digest(sim)
        assert ckpt.state_digest(sim) == first  # sync_canonical is pure

    def test_snapshot_restore_continues_bit_identically(self):
        sim, *_ = prepare_scenario(config("batch"))
        sim.run(6)
        snap = ckpt.snapshot(sim)
        restored = ckpt.restore(snap)
        assert isinstance(restored, BatchSimulation)
        assert ckpt.state_digest(restored) == ckpt.state_digest(sim)
        restored.run(10)
        sim.run(10)
        assert ckpt.state_digest(restored) == ckpt.state_digest(sim)

    def test_save_load_roundtrip(self, tmp_path):
        sim, *_ = prepare_scenario(config("batch"))
        sim.run(6)
        digest = ckpt.state_digest(sim)
        path = ckpt.save(ckpt.snapshot(sim), tmp_path / "batch.ckpt")
        loaded = ckpt.load(path)
        assert loaded.format == ckpt.CHECKPOINT_FORMAT
        assert ckpt.state_digest(ckpt.restore(loaded)) == digest


class TestCrossEngineRestore:
    def test_event_snapshot_restores_into_batch(self):
        sim, *_ = prepare_scenario(config("event"))
        sim.run(4)
        storage_before = average_storage(sim.network.alive_nodes())
        snap = ckpt.snapshot(sim)
        batch = ckpt.restore(snap, engine="batch")
        assert isinstance(batch, BatchSimulation)
        assert batch.round == 4
        assert batch.network.n_alive == sim.network.n_alive
        # Protocol state carried verbatim.
        assert average_storage(batch.network.alive_nodes()) == storage_before
        # The scheduled failure/reinjection events carried over and the
        # continuation runs to completion under the batch engine.
        result = finish_scenario(batch)
        assert result.reliability is not None
        assert result.n_alive[-1] > 0

    def test_batch_snapshot_restores_into_event(self):
        sim, *_ = prepare_scenario(config("batch"))
        sim.run(4)
        snap = ckpt.snapshot(sim)
        event = ckpt.restore(snap, engine="event")
        assert type(event) is Simulation
        assert event.round == 4
        result = finish_scenario(event)
        assert result.reliability is not None

    def test_restore_same_engine_is_identity_conversion(self):
        sim, *_ = prepare_scenario(config("event"))
        sim.run(3)
        restored = ckpt.restore(ckpt.snapshot(sim), engine="event")
        assert ckpt.state_digest(restored) == ckpt.state_digest(sim)

    def test_unconvertible_stack_raises_clear_error(self):
        from tests.helpers import NullLayer, grid_coords, make_sim

        from repro.spaces.torus import FlatTorus

        sim, *_ = make_sim(FlatTorus(4.0, 4.0), grid_coords(4, 4))
        snap = ckpt.snapshot(sim)
        with pytest.raises(CheckpointError, match="layer stack"):
            ckpt.restore(snap, engine="batch")

    def test_unknown_engine_raises(self):
        sim, *_ = prepare_scenario(config("event"))
        with pytest.raises(CheckpointError, match="unknown execution engine"):
            ckpt.restore(ckpt.snapshot(sim), engine="turbo")


class TestEngineScopedCacheKeys:
    def test_batch_and_event_prefixes_never_share_a_key(self):
        event_prefix = prefix_scenario(config("event"))
        batch_prefix = prefix_scenario(config("batch"))
        assert CheckpointCache.key(event_prefix) != CheckpointCache.key(
            batch_prefix
        )

    def test_batch_semantics_bump_orphans_batch_entries_only(self, monkeypatch):
        event_prefix = prefix_scenario(config("event"))
        batch_prefix = prefix_scenario(config("batch"))
        event_key = CheckpointCache.key(event_prefix)
        batch_key = CheckpointCache.key(batch_prefix)
        monkeypatch.setattr("repro.sim.batch.engine.SEMANTICS_VERSION", 999)
        monkeypatch.setattr("repro.sim.batch.SEMANTICS_VERSION", 999)
        assert CheckpointCache.key(event_prefix) == event_key
        assert CheckpointCache.key(batch_prefix) != batch_key

    def test_semantics_versions_are_distinct(self):
        assert semantics_version_for("event") == 1
        assert semantics_version_for("batch") == 2
        with pytest.raises(ValueError):
            semantics_version_for("turbo")


class TestBatchForkSweep:
    def test_fork_equals_cold_for_batch_cells(self, tmp_path):
        from repro.runtime.forksweep import fork_scenarios

        configs = [
            config("batch", failure_fraction=f, reinjection_round=None, total_rounds=14)
            for f in (0.25, 0.5)
        ]
        forked = fork_scenarios(configs, workers=1, cache=CheckpointCache(tmp_path))
        from repro.experiments.scenario import run_scenario

        cold = [run_scenario(c) for c in configs]
        for a, b in zip(forked, cold):
            assert a.series["homogeneity"] == b.series["homogeneity"]
            assert a.reliability == b.reliability
            assert a.reshaping_time == b.reshaping_time

    def test_cache_meta_records_engine_and_semantics(self, tmp_path):
        import json

        from repro.experiments.scenario import run_prefix

        cfg = config("batch")
        prefix = prefix_scenario(cfg)
        cache = CheckpointCache(tmp_path)
        cache.store(prefix, ckpt.snapshot(run_prefix(cfg)))
        meta_path = next(tmp_path.glob("*.json"))
        meta = json.loads(meta_path.read_text())
        assert meta["engine"] == "batch"
        assert meta["semantics_version"] == semantics_version_for("batch")


class TestConversionSeedsBackupDirtySets:
    def test_pending_backup_delta_survives_event_to_batch(self):
        """A conversion taken mid-drift (guests changed after the last
        backup push) must re-push under the batch engine — the event
        engine would have repaired it through its unconditional scan."""
        sim, *_ = prepare_scenario(config("event", failure_round=None,
                                          reinjection_round=None))
        sim.run(3)
        # Force drift on one node: hand it an extra guest without
        # telling its backups.
        node = sim.network.alive_nodes()[0]
        donor = sim.network.alive_nodes()[1]
        pid, point = next(iter(donor.poly.guests.items()))
        node.poly.guests[pid] = point
        batch = ckpt.restore(ckpt.snapshot(sim), engine="batch")
        moved = batch.network.node(node.nid)
        assert moved.poly.backup_sent  # it does have recorded pushes
        batch.run(1)  # one batch round must push the delta
        for backup_id, sent in moved.poly.backup_sent.items():
            if batch.network.is_alive(backup_id):
                target = batch.network.node(backup_id).poly
                assert pid in target.ghosts.get(node.nid, {}), backup_id
