"""Per-round series telemetry and the memory ledger: schema stability,
round monotonicity per cell, ledger-vs-tracemalloc cross-checks, live
watch over a writing process, the mem gate, Prometheus export, the
JSON report, series-aware diffing, and the reservoir env knob."""

from __future__ import annotations

import importlib.util
import json
import os
import threading
import tracemalloc
from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro.cli import main as cli_main
from repro.experiments.scenario import ScenarioConfig
from repro.obs import log as obs_log
from repro.obs import mem as obs_mem
from repro.obs import metrics as obs_metrics
from repro.obs import report as obs_report
from repro.obs import series as obs_series
from repro.obs import trace as obs_trace
from repro.runtime.runner import ParallelRunner, SweepTask

WORKERS = 2

#: Top-level keys every series record must carry, and the full set a
#: record may carry — the schema-stability contract external tooling
#: (the CI parse checks, dashboards) relies on.
SERIES_REQUIRED = {"kind", "ctx", "round", "wall_s", "layers", "splits"}
SERIES_ALLOWED = SERIES_REQUIRED | {
    "messages",
    "nodes",
    "kernels",
    "exchanges",
    "mem",
    "probes",
}


@pytest.fixture(autouse=True)
def obs_clean():
    yield
    obs_metrics.set_enabled(False)
    obs_metrics.registry().reset()
    obs_log.set_level("off")
    obs_log.set_events_path(None)
    obs.profiling.set_active(False)
    obs._RUN_DIR = None
    obs_trace.set_enabled(False)
    obs_trace.set_spans_path(None)
    obs_trace._BUFFER.clear()
    obs_trace._CTX.set(None)
    obs_series.set_enabled(False)
    obs_series.set_series_path(None)
    obs_series._BUFFER.clear()
    obs_series.reset_cell()
    obs_series.set_probe_every(10)
    obs_mem.set_enabled(False)
    obs_mem.reset()
    obs_metrics.set_reservoir_cap(64)
    for var in (
        obs.ENV_LOG,
        obs.ENV_OBS_DIR,
        obs.ENV_OBS,
        obs.ENV_PROFILE,
        obs_trace.ENV_CTX,
        obs_series.ENV_SERIES_EVERY,
        obs_metrics.ENV_RESERVOIR,
    ):
        os.environ.pop(var, None)


def tiny_config(**overrides) -> ScenarioConfig:
    base = dict(
        width=6,
        height=3,
        failure_round=3,
        reinjection_round=None,
        total_rounds=8,
        metrics=("homogeneity",),
        seed=0,
    )
    base.update(overrides)
    return ScenarioConfig(**base)


def _run_cells(tmp_path, n=2, workers=1, **overrides):
    obs.configure(dir=tmp_path, export_env=(workers > 1))
    tasks = [
        SweepTask(task_id=f"cell-{s}", config=tiny_config(seed=s, **overrides))
        for s in range(n)
    ]
    ParallelRunner(workers=workers).run(tasks)
    return tmp_path


class TestSeriesSchema:
    @pytest.mark.parametrize("engine", ["event", "batch"])
    def test_one_record_per_round_with_stable_schema(self, tmp_path, engine):
        _run_cells(tmp_path, n=1, engine=engine)
        records = obs_series.load_series(tmp_path)
        assert len(records) == 8
        for rec in records:
            keys = set(rec)
            assert SERIES_REQUIRED <= keys
            assert keys <= SERIES_ALLOWED, keys - SERIES_ALLOWED
            assert rec["kind"] == "series"
            assert rec["ctx"]["task_id"] == "cell-0"
            assert rec["wall_s"] >= 0.0
            assert set(rec["layers"]) == {"rps", "tman", "polystyrene"}
            assert rec["nodes"]["live"] + rec["nodes"]["dead"] == 18

    def test_rounds_monotonic_per_cell_across_workers(self, tmp_path):
        _run_cells(tmp_path, n=3, workers=WORKERS)
        records = obs_series.load_series(tmp_path)
        cells = {r["ctx"]["task_id"] for r in records}
        assert cells == {"cell-0", "cell-1", "cell-2"}
        for cell in cells:
            rounds = [
                r["round"] for r in records if r["ctx"]["task_id"] == cell
            ]
            assert rounds == sorted(rounds)
            assert rounds == list(range(8))

    def test_batch_records_carry_kernels_exchanges_and_mem(self, tmp_path):
        _run_cells(tmp_path, n=1, engine="batch")
        records = obs_series.load_series(tmp_path)
        assert any("kernels" in r for r in records)
        assert any("exchanges" in r for r in records)
        with_mem = [r for r in records if "mem" in r]
        assert with_mem
        fam = with_mem[-1]["mem"]
        assert any(v["peak"] > 0 for v in fam.values())

    def test_probes_at_cadence(self, tmp_path):
        obs_series.set_probe_every(4)
        _run_cells(tmp_path, n=1)
        records = obs_series.load_series(tmp_path)
        probed = {r["round"] for r in records if "probes" in r}
        # Observer fires when sim.round % every == 0; round 0's probe is
        # staged before any record exists, so rounds 4 (and 0) carry it.
        assert 4 in probed
        rec = next(r for r in records if r["round"] == 4)
        assert {"homogeneity", "proximity", "holder_multiplicity"} <= set(
            rec["probes"]
        )

    def test_failure_round_shows_in_node_counts(self, tmp_path):
        _run_cells(tmp_path, n=1)
        records = obs_series.load_series(tmp_path)
        dead = {r["round"]: r["nodes"]["dead"] for r in records}
        assert dead[2] == 0
        assert dead[3] > 0  # the catastrophic failure at round 3

    def test_series_cli_table_and_filters(self, tmp_path, capsys):
        _run_cells(tmp_path, n=2, engine="batch")
        assert cli_main(["obs", "series", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "wall_s" in out and "2 cell(s)" in out
        assert any(ch in out for ch in obs_series.SPARK_CHARS)
        assert (
            cli_main(
                [
                    "obs", "series", str(tmp_path),
                    "--cell", "cell-1",
                    "--column", "nodes.live",
                    "--round-range", "2:5",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "nodes.live" in out
        assert "4 round record(s), rounds 2..5, 1 cell(s)" in out


class TestSeriesInvariance:
    @pytest.mark.parametrize("engine", ["event", "batch"])
    def test_digest_identical_with_series_and_ledger(self, tmp_path, engine):
        from repro.experiments.scenario import prepare_scenario
        from repro.runtime import checkpoint as ckpt

        def digest():
            sim, *_ = prepare_scenario(tiny_config(engine=engine))
            sim.run(8)
            return ckpt.state_digest(sim)

        plain = digest()
        obs.configure(dir=tmp_path, export_env=False)
        assert obs_series.ENABLED and obs_mem.ENABLED
        assert digest() == plain


class TestMemLedger:
    def test_node_table_growth_matches_nbytes_delta(self):
        from repro.sim.arrays import NodeTable

        obs_mem.set_enabled(True)
        obs_mem.reset()
        table = NodeTable()
        before = table.nbytes
        for i in range(500):
            table.add(i, (float(i), 0.0))
        snap = obs_mem.snapshot()
        tracked = snap["families"]["node_table"]["cur"]
        assert tracked == table.nbytes - before

    def test_ledger_scratch_within_tracemalloc_envelope(self):
        """The padded-kernel scratch accounting agrees with what the
        allocator actually hands out: for a synthetic dedup workload the
        ledger's tracked scratch bytes are a lower bound on (and within
        2x of) tracemalloc's peak for the call."""
        from repro.sim.batch import kernels

        rng = np.random.default_rng(0)
        n_recv, per, cap = 64, 120, 40
        total = n_recv * per
        recv = np.repeat(np.arange(n_recv, dtype=np.int64), per)
        ids = rng.integers(0, n_recv, total).astype(np.int64)
        ages = rng.integers(0, 50, total).astype(np.int64)
        dists = rng.random(total)
        obs_mem.set_enabled(True)
        obs_mem.reset()
        tracemalloc.start()
        try:
            kernels.dedup_rank_truncate_numpy(
                recv, ids, lambda kept: dists[kept], cap, ages
            )
            _, tm_peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        snap = obs_mem.snapshot()
        tracked = snap["families"]["kernel_pads"]["peak"]
        assert tracked > 0
        assert tracked <= tm_peak
        assert tm_peak < 4 * tracked + (1 << 20)

    def test_peak_round_attribution(self):
        obs_mem.set_enabled(True)
        obs_mem.reset()
        obs_mem.set_round(3)
        obs_mem.scratch("kernel_pads", "site.a", 1000)
        obs_mem.set_round(7)
        obs_mem.scratch("kernel_pads", "site.a", 5000)
        obs_mem.set_round(9)
        obs_mem.scratch("kernel_pads", "site.a", 200)
        snap = obs_mem.snapshot()
        assert snap["families"]["kernel_pads"]["peak"] == 5000
        assert snap["families"]["kernel_pads"]["peak_round"] == 7
        assert snap["sites"]["site.a"]["peak_round"] == 7
        assert snap["sites"]["site.a"]["events"] == 3

    def test_mem_json_merges_across_cells_and_cli_renders(
        self, tmp_path, capsys
    ):
        _run_cells(tmp_path, n=2, workers=WORKERS, engine="batch")
        doc = obs_mem.load_mem(tmp_path)
        assert doc["total"]["peak"] > 0
        assert "topology_pads" in doc["families"]
        assert any(
            s["family"] == "topology_pads" for s in doc["sites"].values()
        )
        assert doc["peak_rss_bytes"] >= 0
        assert cli_main(["obs", "mem", str(tmp_path), "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "peak tracked bytes" in out
        assert "tman.merge_pad" in out


def _load_perf_smoke():
    path = Path(__file__).parent.parent / "benchmarks" / "perf_smoke.py"
    spec = importlib.util.spec_from_file_location("perf_smoke", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


class TestMemGate:
    @pytest.fixture()
    def smoke(self, tmp_path, monkeypatch):
        mod = _load_perf_smoke()
        tiny = dict(mod.ENGINE_GATE_CELL)
        tiny.update(width=8, height=4, failure_round=3, total_rounds=8)
        monkeypatch.setattr(mod, "ENGINE_GATE_CELL", tiny)
        baseline = tmp_path / "baseline.json"
        baseline.write_text("{}")
        monkeypatch.setattr(mod, "BASELINE_PATH", baseline)
        return mod

    def test_record_then_pass(self, smoke, capsys):
        assert smoke.mem_gate(1.25, record=True) == 0
        recorded = json.loads(smoke.BASELINE_PATH.read_text())["mem_gate"]
        assert recorded["peak_tracked_bytes"] > 0
        assert recorded["families"]
        assert smoke.mem_gate(1.25, record=False) == 0
        assert "OK: tracked peak" in capsys.readouterr().out

    def test_fail_when_over_budget(self, smoke, capsys):
        assert smoke.mem_gate(1.25, record=True) == 0
        doc = json.loads(smoke.BASELINE_PATH.read_text())
        doc["mem_gate"]["peak_tracked_bytes"] //= 10
        smoke.BASELINE_PATH.write_text(json.dumps(doc))
        assert smoke.mem_gate(1.25, record=False) == 1
        assert "FAIL: tracked peak" in capsys.readouterr().out

    def test_fail_without_baseline(self, smoke, capsys):
        assert smoke.mem_gate(1.25, record=False) == 1
        assert "no mem_gate baseline" in capsys.readouterr().out

    def test_gate_leaves_obs_disabled(self, smoke):
        smoke.mem_gate(1.25, record=True)
        assert not obs_mem.ENABLED
        assert not obs_metrics.ENABLED
        assert obs_mem.is_empty()


class TestWatch:
    def test_follow_stream_over_live_series_writer(self, tmp_path):
        """`repro obs watch` semantics: a reader polling series.jsonl
        sees every record a concurrently flushing writer appends,
        including ones written after the reader started."""
        path = tmp_path / "obs" / "series.jsonl"
        obs_series.set_series_path(path)

        def write_round(rnd):
            obs_series._append_record(
                {
                    "kind": "series",
                    "ctx": {"task_id": "w"},
                    "round": rnd,
                    "wall_s": 0.001 * (rnd + 1),
                    "layers": {},
                    "splits": 0,
                }
            )
            obs_series.flush()

        write_round(0)
        seen = []
        done = threading.Event()

        def reader():
            polls = [0]

            def stop():
                polls[0] += 1
                return len(seen) >= 3 or polls[0] > 100

            for line in obs_report.follow_stream(
                tmp_path, stream="series", poll_s=0.01,
                stop=stop, from_start=True,
            ):
                seen.append(line)
            done.set()

        t = threading.Thread(target=reader)
        t.start()
        write_round(1)
        write_round(2)
        assert done.wait(timeout=10.0)
        t.join()
        assert len(seen) == 3
        assert seen[0].startswith("series round=0")
        assert "wall=1.0ms" in seen[0]
        assert seen[2].startswith("series round=2")

    def test_torn_trailing_line_is_buffered_not_lost(self, tmp_path):
        path = tmp_path / "obs" / "series.jsonl"
        path.parent.mkdir(parents=True)
        rec = json.dumps({"kind": "series", "round": 0, "wall_s": 0.5})
        path.write_text(rec + "\n" + rec[: len(rec) // 2])
        calls = [0]

        def stop():
            calls[0] += 1
            if calls[0] == 2:
                # The writer finishes the torn line between polls.
                with path.open("a") as fh:
                    fh.write(rec[len(rec) // 2 :] + "\n")
            return calls[0] > 4

        lines = list(
            obs_report.follow_stream(
                tmp_path, stream="series", poll_s=0.01,
                stop=stop, from_start=True,
            )
        )
        assert len(lines) == 2


class TestPrometheusExport:
    def test_exposition_format_lint(self, tmp_path):
        _run_cells(tmp_path, n=1, engine="batch")
        text = obs_report.format_prometheus(tmp_path)
        assert text.endswith("\n")
        lines = text.splitlines()
        assert lines
        typed = set()
        for line in lines:
            if line.startswith("# TYPE "):
                _, _, name, kind = line.split(" ")
                assert kind in ("counter", "gauge", "summary")
                assert name not in typed, f"duplicate TYPE for {name}"
                typed.add(name)
                continue
            assert not line.startswith("#")
            name_part, _, value = line.rpartition(" ")
            float(value)  # every sample value parses
            metric = name_part.split("{", 1)[0]
            assert metric.replace("_", "").isalnum()
            assert metric.startswith("repro_")
        # Counters carry the _total suffix convention.
        assert any(n.endswith("_total") for n in typed)
        # Summaries expose quantile + _count + _sum series.
        assert any('quantile="0.5"' in line for line in lines)
        sample_names = {
            line.rpartition(" ")[0].split("{", 1)[0]
            for line in lines
            if not line.startswith("#")
        }
        assert any(n.endswith("_count") for n in sample_names)
        assert any(n.endswith("_sum") for n in sample_names)

    def test_export_cli_writes_prom_file_and_stdout(self, tmp_path, capsys):
        _run_cells(tmp_path, n=1)
        assert (
            cli_main(
                ["obs", "export", str(tmp_path), "--format", "prometheus"]
            )
            == 0
        )
        capsys.readouterr()
        prom = tmp_path / "obs" / "metrics.prom"
        assert prom.is_file()
        assert "# TYPE repro_rounds_total counter" in prom.read_text()
        assert (
            cli_main(
                [
                    "obs", "export", str(tmp_path),
                    "--format", "prometheus", "--out", "-",
                ]
            )
            == 0
        )
        assert "repro_rounds_total 8" in capsys.readouterr().out


class TestReportJson:
    def test_report_format_json(self, tmp_path, capsys):
        _run_cells(tmp_path, n=2)
        assert (
            cli_main(["obs", "report", str(tmp_path), "--format", "json"])
            == 0
        )
        doc = json.loads(capsys.readouterr().out)
        assert doc["kind"] == "report"
        assert doc["records"] == 2
        assert doc["counters"]["rounds"] == 16
        assert "round.wall" in doc["hists"]
        assert doc["hists"]["round.wall"]["count"] == 16


class TestSeriesDiff:
    def test_series_round_wall_diffed_when_both_have_series(self, tmp_path):
        _run_cells(tmp_path / "a", n=1)
        obs._RUN_DIR = None
        _run_cells(tmp_path / "b", n=1)
        diff = obs_report.diff_runs(tmp_path / "a", tmp_path / "b")
        names = {r["name"] for r in diff["rows"]}
        assert "series.round_wall" in names
        assert diff["notes"] == []
        row = next(
            r for r in diff["rows"] if r["name"] == "series.round_wall"
        )
        assert row["count_a"] == row["count_b"] == 8

    def test_one_sided_series_is_informational(self, tmp_path):
        _run_cells(tmp_path / "a", n=1)
        obs._RUN_DIR = None
        _run_cells(tmp_path / "b", n=1)
        (
            obs_series.resolve_series_path(tmp_path / "b")
        ).unlink()
        diff = obs_report.diff_runs(tmp_path / "a", tmp_path / "b")
        names = {r["name"] for r in diff["rows"]}
        assert "series.round_wall" not in names
        assert len(diff["notes"]) == 1
        assert "only in the baseline run" in diff["notes"][0]
        rendered = obs_report.format_diff(diff)
        assert "note:" in rendered

    def test_scaled_copy_regresses_series_wall(self, tmp_path):
        _run_cells(tmp_path / "a", n=1)
        obs_report.write_scaled_copy(tmp_path / "a", tmp_path / "slow", 8.0)
        diff = obs_report.diff_runs(
            tmp_path / "a", tmp_path / "slow", min_total_s=0.0
        )
        reg = {r["name"] for r in diff["regressions"]}
        assert "series.round_wall" in reg


class TestReservoirEnvKnob:
    def test_default_and_valid(self):
        assert obs_metrics._reservoir_cap_from_env({}) == 64
        assert obs_metrics._reservoir_cap_from_env(
            {"REPRO_OBS_RESERVOIR": "128"}
        ) == 128

    @pytest.mark.parametrize("raw", ["0", "-3", "many", "1.5"])
    def test_invalid_values_raise_with_clear_message(self, raw):
        with pytest.raises(ValueError) as err:
            obs_metrics._reservoir_cap_from_env({"REPRO_OBS_RESERVOIR": raw})
        assert "REPRO_OBS_RESERVOIR" in str(err.value)
        assert repr(raw) in str(err.value)

    def test_cap_applies_to_new_observations(self):
        obs_metrics.set_reservoir_cap(8)
        h = obs_metrics.Histogram()
        for i in range(100):
            h.observe(float(i))
        assert len(h.res) <= 8
        assert h.count == 100

    def test_set_reservoir_cap_validates(self):
        with pytest.raises(ValueError):
            obs_metrics.set_reservoir_cap(0)

    def test_series_every_env_validation(self):
        assert obs_series._probe_every_from_env({}) == 10
        assert (
            obs_series._probe_every_from_env(
                {"REPRO_OBS_SERIES_EVERY": "25"}
            )
            == 25
        )
        for raw in ("0", "x"):
            with pytest.raises(ValueError) as err:
                obs_series._probe_every_from_env(
                    {"REPRO_OBS_SERIES_EVERY": raw}
                )
            assert "REPRO_OBS_SERIES_EVERY" in str(err.value)
