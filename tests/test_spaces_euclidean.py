"""Tests for the Euclidean space."""

import math

import numpy as np
import pytest

from repro.errors import SpaceMismatchError
from repro.spaces import Euclidean


class TestDistance:
    def test_pythagoras(self, plane):
        assert plane.distance((0, 0), (3, 4)) == pytest.approx(5.0)

    def test_identity(self, plane):
        assert plane.distance((1.5, 2.5), (1.5, 2.5)) == 0.0

    def test_symmetry(self, plane):
        a, b = (1.0, 2.0), (-3.0, 0.5)
        assert plane.distance(a, b) == pytest.approx(plane.distance(b, a))

    def test_distance_sq_consistent(self, plane):
        a, b = (1.0, 2.0), (4.0, 6.0)
        assert plane.distance_sq(a, b) == pytest.approx(plane.distance(a, b) ** 2)

    def test_higher_dimension(self):
        space = Euclidean(dim=4)
        assert space.distance((0, 0, 0, 0), (1, 1, 1, 1)) == pytest.approx(2.0)

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            Euclidean(dim=0)


class TestDistanceMany:
    def test_matches_scalar(self, plane):
        origin = (0.5, -1.0)
        coords = [(0, 0), (1, 1), (-2, 3), (0.5, -1.0)]
        vec = plane.distance_many(origin, coords)
        scalars = [plane.distance(origin, c) for c in coords]
        assert np.allclose(vec, scalars)

    def test_empty_ok(self, plane):
        out = plane.distance_many((0, 0), [])
        assert len(out) == 0


class TestHelpers:
    def test_nearest(self, plane):
        coords = [(10, 10), (1, 1), (5, 5)]
        assert plane.nearest((0, 0), coords) == 1

    def test_nearest_empty_raises(self, plane):
        with pytest.raises(ValueError):
            plane.nearest((0, 0), [])

    def test_k_nearest_order(self, plane):
        coords = [(3, 0), (1, 0), (2, 0), (4, 0)]
        assert plane.k_nearest((0, 0), coords, 2) == [1, 2]

    def test_k_nearest_k_exceeds(self, plane):
        coords = [(1, 0), (2, 0)]
        assert plane.k_nearest((0, 0), coords, 10) == [0, 1]

    def test_k_nearest_zero(self, plane):
        assert plane.k_nearest((0, 0), [(1, 0)], 0) == []

    def test_mean_distance(self, plane):
        assert plane.mean_distance((0, 0), [(1, 0), (3, 0)]) == pytest.approx(2.0)

    def test_mean_distance_empty(self, plane):
        assert plane.mean_distance((0, 0), []) == 0.0

    def test_centroid(self, plane):
        assert plane.centroid([(0, 0), (2, 0), (1, 3)]) == pytest.approx((1.0, 1.0))

    def test_centroid_empty_raises(self, plane):
        with pytest.raises(ValueError):
            plane.centroid([])

    def test_check_coord_wrong_dim(self, plane):
        with pytest.raises(SpaceMismatchError):
            plane.check_coord((1.0, 2.0, 3.0))

    def test_check_coord_ok(self, plane):
        assert plane.check_coord((1.0, 2.0)) == (1.0, 2.0)
