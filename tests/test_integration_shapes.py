"""Shape-generality integration tests.

The paper's protocol is shape-agnostic: the target shape is just the set
of initial data points.  These tests assemble the stack by hand (no
ScenarioConfig, which is torus-specific) on a ring and on a Euclidean
disk, and check that the shape survives a catastrophic failure.
"""

import pytest

from repro.core.config import PolystyreneConfig
from repro.core.points import PointFactory
from repro.core.protocol import PolystyreneLayer
from repro.gossip.rps import PeerSamplingLayer
from repro.gossip.tman import TManLayer
from repro.metrics.homogeneity import homogeneity, surviving_fraction
from repro.shapes import DiskShape, RingShape
from repro.sim.engine import Simulation
from repro.sim.network import Network


def build_stack(shape, space, K=4, seed=0):
    factory = PointFactory()
    network = Network()
    points = factory.create_many(shape.generate())
    for point in points:
        network.add_node(point.coord, point)
    rps = PeerSamplingLayer(view_size=10, shuffle_length=5)
    tman = TManLayer(space, rps, message_size=10, psi=5, view_cap=30, bootstrap_size=5)
    poly = PolystyreneLayer(space, PolystyreneConfig(replication=K), rps, tman)
    sim = Simulation(space, network, [rps, tman, poly], seed=seed)
    sim.init_all_nodes()
    return sim, points


class TestRingDeployment:
    def test_ring_arc_failure_reshapes(self):
        shape = RingShape(96)  # circumference 96, unit spacing
        space = shape.space()
        sim, points = build_stack(shape, space, K=4, seed=1)
        sim.run(8)
        # Kill a contiguous arc: a third of the ring.
        victims = [
            n.nid
            for n in sim.network.alive_nodes()
            if n.initial_point.coord[0] < 32.0
        ]
        sim.network.fail(victims, rnd=sim.round)
        sim.run(25)
        alive = sim.network.alive_nodes()
        assert surviving_fraction(points, alive) > 0.9
        h_ref = shape.reference_homogeneity(sim.network.n_alive)
        assert homogeneity(space, points, alive) < 2.0 * h_ref

    def test_survivors_spread_over_dead_arc(self):
        shape = RingShape(96)
        space = shape.space()
        sim, points = build_stack(shape, space, K=4, seed=2)
        sim.run(8)
        victims = [
            n.nid
            for n in sim.network.alive_nodes()
            if n.initial_point.coord[0] < 32.0
        ]
        sim.network.fail(victims, rnd=sim.round)
        sim.run(25)
        relocated = sum(
            1 for n in sim.network.alive_nodes() if n.pos[0] < 32.0
        )
        assert relocated >= 5


class TestEuclideanDisk:
    def test_disk_half_failure_reshapes(self):
        shape = DiskShape(100, radius=8.0, center=(8.0, 8.0))
        space = shape.space()
        sim, points = build_stack(shape, space, K=4, seed=3)
        sim.run(8)
        victims = [
            n.nid
            for n in sim.network.alive_nodes()
            if n.initial_point.coord[0] < 8.0
        ]
        sim.network.fail(victims, rnd=sim.round)
        sim.run(25)
        alive = sim.network.alive_nodes()
        assert surviving_fraction(points, alive) > 0.85
        # Survivors must re-cover the left half of the disk.
        relocated = sum(1 for n in alive if n.pos[0] < 8.0)
        assert relocated >= 5

    def test_centroid_projection_ablation_works_in_euclidean(self):
        shape = DiskShape(64, radius=6.0, center=(6.0, 6.0))
        space = shape.space()
        factory = PointFactory()
        network = Network()
        points = factory.create_many(shape.generate())
        for point in points:
            network.add_node(point.coord, point)
        rps = PeerSamplingLayer(view_size=10, shuffle_length=5)
        tman = TManLayer(space, rps, message_size=10, psi=5, view_cap=30)
        config = PolystyreneConfig(replication=4, projection="centroid")
        poly = PolystyreneLayer(space, config, rps, tman)
        sim = Simulation(space, network, [rps, tman, poly], seed=4)
        sim.init_all_nodes()
        sim.run(10)
        assert homogeneity(space, points, sim.network.alive_nodes()) < 1.5
