"""Tests for the distance-ranking helpers."""

from repro.gossip.ranking import closest_entries, rank_entries, truncate_closest
from repro.spaces import Euclidean, FlatTorus

PLANE = Euclidean(2)


class TestRankEntries:
    def test_orders_by_distance(self):
        entries = {1: (5.0, 0.0), 2: (1.0, 0.0), 3: (3.0, 0.0)}
        assert rank_entries(PLANE, (0.0, 0.0), entries) == [2, 3, 1]

    def test_limit(self):
        entries = {i: (float(i), 0.0) for i in range(1, 6)}
        assert rank_entries(PLANE, (0.0, 0.0), entries, limit=2) == [1, 2]

    def test_empty(self):
        assert rank_entries(PLANE, (0.0, 0.0), {}) == []

    def test_tie_broken_by_id(self):
        entries = {7: (1.0, 0.0), 3: (-1.0, 0.0)}
        assert rank_entries(PLANE, (0.0, 0.0), entries) == [3, 7]

    def test_torus_wraparound_ranking(self):
        torus = FlatTorus(10.0, 10.0)
        entries = {1: (9.5, 0.0), 2: (3.0, 0.0)}
        # 9.5 is only 0.5 away across the seam.
        assert rank_entries(torus, (0.0, 0.0), entries) == [1, 2]


class TestClosestEntries:
    def test_returns_mapping(self):
        entries = {1: (5.0, 0.0), 2: (1.0, 0.0), 3: (3.0, 0.0)}
        out = closest_entries(PLANE, (0.0, 0.0), entries, 2)
        assert out == {2: (1.0, 0.0), 3: (3.0, 0.0)}

    def test_k_larger_than_entries(self):
        entries = {1: (1.0, 0.0)}
        assert closest_entries(PLANE, (0.0, 0.0), entries, 5) == entries


class TestTruncateClosest:
    def test_within_cap_unchanged(self):
        entries = {1: (1.0, 0.0), 2: (2.0, 0.0)}
        assert truncate_closest(PLANE, (0.0, 0.0), entries, 5) is entries

    def test_truncates_to_cap(self):
        entries = {i: (float(i), 0.0) for i in range(1, 10)}
        out = truncate_closest(PLANE, (0.0, 0.0), entries, 3)
        assert sorted(out) == [1, 2, 3]
