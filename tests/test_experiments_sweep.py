"""Tests for multi-seed sweeps and remaining experiment plumbing."""

import pytest

from repro.experiments.scenario import ScenarioConfig
from repro.experiments.suite import clear_cache, run_comparison
from repro.experiments.sweep import run_seed_sweep
from repro.experiments.presets import SMOKE


def small_config(**overrides):
    base = dict(
        width=12,
        height=6,
        replication=2,
        failure_round=6,
        reinjection_round=None,
        total_rounds=25,
        metrics=("homogeneity",),
    )
    base.update(overrides)
    return ScenarioConfig(**base)


class TestSeedSweep:
    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            run_seed_sweep(small_config(), [])

    def test_aggregates_all_runs(self):
        sweep = run_seed_sweep(small_config(), seeds=[1, 2, 3])
        assert len(sweep.runs) == 3
        assert sweep.seeds == [1, 2, 3]
        assert len(sweep.mean_series["homogeneity"]) == 25

    def test_reshaping_and_reliability_cis(self):
        sweep = run_seed_sweep(small_config(), seeds=[1, 2, 3])
        assert sweep.reliability is not None
        assert 70.0 / 100 < sweep.reliability.mean <= 1.0
        assert sweep.reshaping is not None
        assert sweep.reshaping.n + sweep.non_converged == 3

    def test_no_failure_means_no_scalars(self):
        sweep = run_seed_sweep(
            small_config(failure_round=None), seeds=[1, 2]
        )
        assert sweep.reliability is None
        assert sweep.reshaping is None
        assert sweep.non_converged == 0

    def test_mean_series_is_roundwise_mean(self):
        sweep = run_seed_sweep(small_config(), seeds=[4, 5])
        rnd = 10
        manual = (
            sweep.runs[0].series["homogeneity"][rnd]
            + sweep.runs[1].series["homogeneity"][rnd]
        ) / 2
        assert sweep.mean_series["homogeneity"][rnd] == pytest.approx(manual)

    def test_seed_variation_changes_runs(self):
        sweep = run_seed_sweep(small_config(), seeds=[1, 2])
        assert (
            sweep.runs[0].series["homogeneity"]
            != sweep.runs[1].series["homogeneity"]
        )


class TestSuiteCacheControl:
    def test_clear_cache_forces_rerun(self):
        first = run_comparison(SMOKE, ks=(2,), include_tman=False, seed=99)
        again = run_comparison(SMOKE, ks=(2,), include_tman=False, seed=99)
        assert again["Polystyrene_K2"] is first["Polystyrene_K2"]
        clear_cache()
        fresh = run_comparison(SMOKE, ks=(2,), include_tman=False, seed=99)
        assert fresh["Polystyrene_K2"] is not first["Polystyrene_K2"]
        # Determinism: the re-run reproduces the cached numbers exactly.
        assert (
            fresh["Polystyrene_K2"].series["homogeneity"]
            == first["Polystyrene_K2"].series["homogeneity"]
        )

    def test_no_cache_flag(self):
        a = run_comparison(
            SMOKE, ks=(2,), include_tman=False, seed=98, use_cache=False
        )
        b = run_comparison(
            SMOKE, ks=(2,), include_tman=False, seed=98, use_cache=False
        )
        assert a["Polystyrene_K2"] is not b["Polystyrene_K2"]
