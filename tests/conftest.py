"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.experiments.presets import SMOKE
from repro.experiments.suite import run_comparison
from repro.spaces import Euclidean, FlatTorus, Ring


def pytest_collection_modifyitems(config, items):
    """Auto-apply the ``tier1`` marker to every test that isn't
    explicitly ``slow`` or ``eval``, so the marker taxonomy in
    pytest.ini is complete without annotating hundreds of tests and a
    plain ``pytest`` invocation remains the tier-1 command."""
    for item in items:
        if not any(item.get_closest_marker(m) for m in ("slow", "eval")):
            item.add_marker(pytest.mark.tier1)


@pytest.fixture
def plane():
    return Euclidean(dim=2)


@pytest.fixture
def torus():
    return FlatTorus(16.0, 8.0)


@pytest.fixture
def unit_ring():
    return Ring(1.0)


@pytest.fixture(scope="session")
def smoke_suite():
    """The full three-phase scenario at smoke scale, all four
    configurations (Polystyrene K∈{2,4,8} + T-Man), run once per test
    session and shared by every integration test."""
    return run_comparison(SMOKE, seed=7)
