"""Work-queue primitives: publish/join, atomic claims, leases, retries.

Parametrized over both backends (shared directory, SQLite file) — the
protocol is identical; only the medium differs.
"""

from __future__ import annotations

import time

import pytest

from repro.errors import ClusterError
from repro.experiments.scenario import ScenarioConfig
from repro.runtime.cluster import (
    DirWorkQueue,
    SqliteWorkQueue,
    TaskSpec,
    open_queue,
)
from repro.runtime.runner import grid_tasks
from repro.runtime.store import config_hash


def tiny_config(**overrides) -> ScenarioConfig:
    base = dict(
        width=6,
        height=3,
        failure_round=4,
        reinjection_round=None,
        total_rounds=14,
        metrics=("homogeneity",),
        seed=0,
    )
    base.update(overrides)
    return ScenarioConfig(**base)


def specs(n=3, **overrides):
    return [
        TaskSpec(task_id=f"k={k}/seed=0", config=tiny_config(replication=k))
        for k in range(2, 2 + n)
    ]


@pytest.fixture(params=["dir", "sqlite"])
def queue(request, tmp_path):
    if request.param == "dir":
        return open_queue(tmp_path / "queue")
    return open_queue(tmp_path / "queue.sqlite")


class TestOpenQueue:
    def test_suffix_selects_backend(self, tmp_path):
        assert isinstance(open_queue(tmp_path / "q"), DirWorkQueue)
        assert isinstance(open_queue(tmp_path / "q.db"), SqliteWorkQueue)
        assert isinstance(open_queue(tmp_path / "q.sqlite"), SqliteWorkQueue)

    def test_open_queue_passes_through_instances(self, tmp_path):
        q = open_queue(tmp_path / "q")
        assert open_queue(q) is q


class TestPublish:
    def test_publish_and_read_back(self, queue):
        manifest = queue.publish(specs(), run_id="run-1", lease_s=30)
        assert manifest["run_id"] == "run-1"
        assert manifest["n_tasks"] == 3
        tasks = queue.tasks()
        assert [t.task_id for t in tasks] == sorted(
            s.task_id for s in specs()
        )
        assert all(t.config == s.config for t, s in zip(tasks, specs()))

    def test_publish_is_idempotent_join(self, queue):
        first = queue.publish(specs(), run_id="run-1")
        second = queue.publish(specs(), run_id="ignored-other-id")
        assert second["run_id"] == first["run_id"]
        assert len(queue.tasks()) == 3

    def test_publish_different_grid_rejected(self, queue):
        queue.publish(specs())
        other = [
            TaskSpec(task_id="k=2/seed=0", config=tiny_config(seed=9))
        ]
        with pytest.raises(ClusterError, match="different grid"):
            queue.publish(other)

    def test_empty_and_duplicate_grids_rejected(self, queue):
        with pytest.raises(ClusterError, match="empty"):
            queue.publish([])
        dupe = specs(1) * 2
        with pytest.raises(ClusterError, match="duplicate"):
            queue.publish(dupe)

    def test_task_ids_with_slashes_round_trip(self, queue):
        grid = grid_tasks(
            tiny_config(), {"replication": (2, 4), "seed": (0, 1)}
        )
        queue.publish(
            [TaskSpec(task_id=t.task_id, config=t.config) for t in grid]
        )
        assert {t.task_id for t in queue.tasks()} == {
            t.task_id for t in grid
        }


class TestClaims:
    def test_each_cell_claimed_exactly_once(self, queue):
        queue.publish(specs(), lease_s=60)
        seen = []
        for worker in ("w1", "w2", "w1", "w2"):
            lease = queue.claim(worker)
            if lease is not None:
                seen.append(lease.task.task_id)
        assert sorted(seen) == sorted(s.task_id for s in specs())
        assert queue.claim("w3") is None  # everything leased

    def test_unpublished_queue_has_nothing(self, queue):
        assert queue.claim("w") is None
        assert not queue.has_claimable()
        assert not queue.is_complete()

    def test_expired_lease_reoffered_with_attempt_bump(self, queue):
        queue.publish(specs(1), lease_s=0.1)
        first = queue.claim("dying")
        assert first.attempt == 1
        assert queue.claim("next") is None  # lease still live
        time.sleep(0.2)
        second = queue.claim("next")
        assert second is not None
        assert second.task.task_id == first.task.task_id
        assert second.attempt == 2

    def test_heartbeat_keeps_lease_alive(self, queue):
        queue.publish(specs(1), lease_s=0.3)
        lease = queue.claim("slow")
        deadline = time.time() + 0.7
        while time.time() < deadline:
            assert queue.heartbeat(lease)
            time.sleep(0.05)
        # Well past the original expiry, the cell is still owned.
        assert queue.claim("thief") is None

    def test_exhausted_cell_retired_as_error(self, queue):
        queue.publish(specs(1), lease_s=0.05, max_attempts=2)
        for i in range(2):
            lease = queue.claim(f"zombie-{i}")
            assert lease is not None and lease.attempt == i + 1
            time.sleep(0.1)
        assert queue.claim("after") is None  # budget spent -> retired
        assert queue.is_complete()
        [record] = list(queue.cell_records())
        assert record["status"] == "error"
        assert "lease expired" in record["error"]
        assert record["config_hash"] == config_hash(specs(1)[0].config)


class TestCompleteAndStatus:
    def test_complete_records_and_finishes(self, queue):
        queue.publish(specs(2), run_id="run-1")
        from repro.runtime.store import cell_record

        while (lease := queue.claim("w")) is not None:
            record = cell_record(
                "run-1",
                lease.task.task_id,
                lease.task.config,
                status="ok",
                worker="w",
            )
            assert queue.complete(lease, record)
        assert queue.is_complete()
        assert len(list(queue.cell_records())) == 2
        status = queue.status()
        assert status["done"] == status["ok"] == status["total"] == 2
        assert status["complete"]

    def test_status_shows_live_leases_and_workers(self, queue):
        queue.publish(specs(2), lease_s=60)
        queue.claim("w1")
        queue.register_worker("w1", {"cells_ok": 0, "cells_error": 0})
        status = queue.status()
        assert status["leased"] == 1
        assert status["pending"] == 1
        [lease] = status["leases"].values()
        assert lease["worker"] == "w1"
        assert "w1" in status["workers"]

    def test_payload_round_trip(self, queue):
        spec = TaskSpec(
            task_id="p", config=tiny_config(), payload=True
        )
        queue.publish([spec], run_id="run-1")
        from repro.runtime.store import cell_record

        lease = queue.claim("w")
        record = cell_record(
            "run-1", "p", lease.task.config, status="ok", worker="w"
        )
        queue.complete(lease, record, payload=b"result-bytes")
        assert queue.load_payload("p") == b"result-bytes"
        assert queue.load_payload("missing") is None


class TestRequeue:
    def test_release_leases_makes_cells_claimable_now(self, queue):
        queue.publish(specs(2), lease_s=3600)
        queue.claim("hung-worker")
        assert queue.release_leases() >= 1
        # Without waiting an hour, the cell is claimable again.
        claimed = {queue.claim("w").task.task_id, queue.claim("w").task.task_id}
        assert claimed == {s.task_id for s in specs(2)}

    def test_reset_failed_cells(self, queue):
        queue.publish(specs(1), lease_s=0.05, max_attempts=1)
        queue.claim("zombie")
        time.sleep(0.1)
        assert queue.claim("reaper") is None  # retires the cell
        assert queue.is_complete()
        reset = queue.reset(failed_only=True)
        assert reset == [specs(1)[0].task_id]
        assert not queue.is_complete()
        lease = queue.claim("fresh")
        assert lease is not None and lease.attempt == 1

    def test_reset_specific_task(self, queue):
        queue.publish(specs(2), run_id="run-1")
        from repro.runtime.store import cell_record

        lease = queue.claim("w")
        done_id = lease.task.task_id
        queue.complete(
            lease,
            cell_record("run-1", done_id, lease.task.config, status="ok"),
        )
        assert queue.reset(task_ids=[done_id]) == [done_id]
        assert done_id not in queue.done_ids()


class TestCrossProcessVisibility:
    def test_reset_from_another_handle_is_seen_by_live_worker(self, queue):
        """A long-lived worker must notice a reset performed through a
        *different* queue handle (another process running `repro queue
        requeue`) — no stale done-cache may hide the requeued cell."""
        queue.publish(specs(1), run_id="run-1")
        from repro.runtime.store import cell_record

        lease = queue.claim("w")
        task_id = lease.task.task_id
        queue.complete(
            lease, cell_record("run-1", task_id, lease.task.config, status="ok")
        )
        assert queue.claim("w") is None  # this handle saw it done
        other = open_queue(queue.path)  # the operator's process
        assert other.reset(task_ids=[task_id]) == [task_id]
        release = queue.claim("w")  # the original handle, again
        assert release is not None and release.task.task_id == task_id

    def test_foreign_task_files_are_invisible(self, tmp_path):
        """Task files left behind by a publisher that lost the manifest
        race must not be claimed, completed, or counted."""
        queue = open_queue(tmp_path / "q")
        queue.publish(specs(2), run_id="run-1")
        foreign = TaskSpec(task_id="foreign", config=tiny_config(seed=99))
        (tmp_path / "q" / "tasks" / "foreign.json").write_text(
            __import__("json").dumps(foreign.to_dict())
        )
        assert {t.task_id for t in queue.tasks()} == {
            s.task_id for s in specs(2)
        }
        from repro.runtime.store import cell_record

        claimed = set()
        while (lease := queue.claim("w")) is not None:
            claimed.add(lease.task.task_id)
            queue.complete(
                lease,
                cell_record(
                    "run-1", lease.task.task_id, lease.task.config, status="ok"
                ),
            )
        assert "foreign" not in claimed
        assert queue.is_complete()


class TestReferencedPrefixes:
    def test_unfinished_fork_cells_pin_their_prefixes(self, queue):
        fork = TaskSpec(
            task_id="f",
            config=tiny_config(),
            kind="fork",
            prefix_hash="abc123",
            forked_digest="d" * 16,
        )
        cold = TaskSpec(task_id="c", config=tiny_config(seed=1))
        queue.publish([fork, cold], run_id="run-1")
        assert queue.referenced_prefixes() == {"abc123"}
        # Finish the fork cell: nothing is pinned any more.
        from repro.runtime.store import cell_record

        while (lease := queue.claim("w")) is not None:
            queue.complete(
                lease,
                cell_record(
                    "run-1", lease.task.task_id, lease.task.config, status="ok"
                ),
            )
        assert queue.referenced_prefixes() == set()
