"""Tests for the shape samplers."""

import math

import pytest

from repro.shapes import (
    AnnulusShape,
    DiskShape,
    LineShape,
    RandomCloud,
    RingShape,
    TorusGrid,
)


class TestTorusGrid:
    def test_size(self):
        assert TorusGrid(8, 4).size == 32

    def test_generate_count(self):
        assert len(TorusGrid(8, 4).generate()) == 32

    def test_unit_spacing(self):
        grid = TorusGrid(4, 4)
        points = set(grid.generate())
        assert (0.0, 0.0) in points
        assert (3.0, 3.0) in points

    def test_step_scales(self):
        grid = TorusGrid(4, 2, step=2.0)
        assert grid.periods == (8.0, 4.0)
        assert (6.0, 2.0) in set(grid.generate())

    def test_area(self):
        assert TorusGrid(80, 40).area == pytest.approx(3200.0)

    def test_space_periods(self):
        assert TorusGrid(8, 4).space().periods == (8.0, 4.0)

    def test_reference_homogeneity_paper_values(self):
        grid = TorusGrid(80, 40)
        assert grid.reference_homogeneity() == pytest.approx(0.5)
        assert grid.reference_homogeneity(1600) == pytest.approx(
            math.sqrt(2) / 2
        )

    def test_parallel_offset(self):
        parallel = TorusGrid(8, 4).parallel(0.5)
        assert (0.5, 0.5) in set(parallel.generate())

    def test_parallel_same_size(self):
        assert TorusGrid(8, 4).parallel().size == 32

    def test_offset_wraps(self):
        grid = TorusGrid(4, 4, offset=(3.5, 0.0))
        xs = {p[0] for p in grid.generate()}
        assert all(0 <= x < 4 for x in xs)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            TorusGrid(0, 4)
        with pytest.raises(ValueError):
            TorusGrid(4, 4, step=0)

    def test_all_points_distinct(self):
        points = TorusGrid(10, 6).generate()
        assert len(set(points)) == len(points)


class TestRingShape:
    def test_even_spacing(self):
        ring = RingShape(4, circumference=8.0)
        assert ring.generate() == [(0.0,), (2.0,), (4.0,), (6.0,)]

    def test_default_circumference_unit_spacing(self):
        ring = RingShape(10)
        pts = ring.generate()
        assert pts[1][0] - pts[0][0] == pytest.approx(1.0)

    def test_reference_homogeneity_1d(self):
        ring = RingShape(10, circumference=10.0)
        assert ring.reference_homogeneity() == pytest.approx(0.5)
        assert ring.reference_homogeneity(5) == pytest.approx(1.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            RingShape(0)


class TestLineShape:
    def test_endpoints(self):
        line = LineShape(3, (0, 0), (2, 0))
        assert line.generate() == [(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]

    def test_single_point(self):
        assert LineShape(1, (1, 1), (2, 2)).generate() == [(1.0, 1.0)]

    def test_length(self):
        assert LineShape(5, (0, 0), (3, 4)).length == pytest.approx(5.0)

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            LineShape(3, (1, 1), (1, 1))


class TestDiskShapes:
    def test_disk_within_radius(self):
        disk = DiskShape(100, radius=2.0, center=(1.0, -1.0))
        for x, y in disk.generate():
            assert math.hypot(x - 1.0, y + 1.0) <= 2.0 + 1e-9

    def test_disk_area(self):
        assert DiskShape(10, radius=1.0).area == pytest.approx(math.pi)

    def test_disk_covers_center_region(self):
        disk = DiskShape(200, radius=1.0)
        assert any(math.hypot(x, y) < 0.2 for x, y in disk.generate())

    def test_annulus_within_band(self):
        ann = AnnulusShape(100, inner_radius=1.0, outer_radius=2.0)
        for x, y in ann.generate():
            r = math.hypot(x, y)
            assert 1.0 - 1e-9 <= r <= 2.0 + 1e-9

    def test_annulus_validation(self):
        with pytest.raises(ValueError):
            AnnulusShape(10, inner_radius=2.0, outer_radius=1.0)

    def test_disk_validation(self):
        with pytest.raises(ValueError):
            DiskShape(0)
        with pytest.raises(ValueError):
            DiskShape(5, radius=-1)


class TestRandomCloud:
    def test_deterministic(self):
        a = RandomCloud(20, seed=3).generate()
        b = RandomCloud(20, seed=3).generate()
        assert a == b

    def test_seed_changes_points(self):
        assert RandomCloud(20, seed=1).generate() != RandomCloud(20, seed=2).generate()

    def test_within_bounds(self):
        cloud = RandomCloud(50, bounds=((2.0, 3.0), (-1.0, 0.0)), seed=0)
        for x, y in cloud.generate():
            assert 2.0 <= x <= 3.0
            assert -1.0 <= y <= 0.0

    def test_torus_space(self):
        cloud = RandomCloud(5, bounds=((0.0, 4.0), (0.0, 2.0)), torus=True)
        assert cloud.space().periods == (4.0, 2.0)

    def test_area(self):
        cloud = RandomCloud(5, bounds=((0.0, 4.0), (0.0, 2.0)))
        assert cloud.area == pytest.approx(8.0)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            RandomCloud(5, bounds=((1.0, 1.0),))
