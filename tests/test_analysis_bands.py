"""Property tests for the confidence-band math in
:mod:`repro.analysis.bands` — the single statistical rule shared by the
cross-engine equivalence suite and the claims gate."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.bands import (
    Band,
    combined_se,
    ensemble_mean,
    equivalence_band,
    expected_value_and_tolerance,
    se_from_spread,
    standard_error,
    value_band,
)

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
ensembles = st.lists(finite, min_size=1, max_size=12)
spreads = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)


# -- standard error ----------------------------------------------------------


@given(spreads, st.integers(min_value=1, max_value=10_000))
def test_se_monotone_decreasing_in_n(sd, n):
    """More seeds never widen the band: se(n+1) <= se(n)."""
    assert se_from_spread(sd, n + 1) <= se_from_spread(sd, n)


@given(spreads, st.integers(min_value=1, max_value=10_000))
def test_se_formula(sd, n):
    assert se_from_spread(sd, n) == pytest.approx(sd / math.sqrt(n))


def test_se_rejects_empty_ensemble_size():
    with pytest.raises(ValueError):
        se_from_spread(1.0, 0)


@given(finite)
def test_degenerate_single_seed_has_zero_se(value):
    """A one-seed ensemble carries no spread information: its standard
    error is 0.0 (not NaN), so the caller's floor is the whole band."""
    assert standard_error([value]) == 0.0
    assert standard_error([]) == 0.0


@given(st.lists(finite, min_size=2, max_size=12))
def test_se_nonnegative_and_finite(values):
    se = standard_error(values)
    assert se >= 0.0
    assert math.isfinite(se)


@given(st.lists(finite, min_size=2, max_size=12), finite)
def test_se_shift_invariant(values, shift):
    """Adding a constant to every seed's value does not change spread."""
    shifted = [v + shift for v in values]
    assert standard_error(shifted) == pytest.approx(
        standard_error(values), rel=1e-6, abs=1e-6
    )


# -- combined SE and equivalence bands ---------------------------------------


@given(ensembles, ensembles)
def test_combined_se_symmetric(a, b):
    assert combined_se(a, b) == pytest.approx(combined_se(b, a))


@given(ensembles, ensembles)
def test_combined_se_at_least_each_side(a, b):
    """sqrt(se_a² + se_b²) dominates either component."""
    combined = combined_se(a, b)
    assert combined >= standard_error(a) - 1e-12
    assert combined >= standard_error(b) - 1e-12


@settings(max_examples=50)
@given(
    ensembles,
    ensembles,
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
)
def test_equivalence_band_symmetric(a, b, z, floor):
    """The engines' roles are interchangeable: band(a, b) == band(b, a)."""
    ab = equivalence_band(a, b, z=z, floor=floor)
    ba = equivalence_band(b, a, z=z, floor=floor)
    assert ab.gap == pytest.approx(ba.gap)
    assert ab.limit == pytest.approx(ba.limit)
    assert ab.within == ba.within


@given(ensembles, st.floats(min_value=0.0, max_value=10.0, allow_nan=False))
def test_identical_ensembles_always_within(values, floor):
    band = equivalence_band(values, list(values), floor=floor)
    assert band.gap == 0.0
    assert band.within


@given(finite, finite, st.floats(min_value=0.0, max_value=10.0, allow_nan=False))
def test_single_seed_band_is_floor_only(a, b, floor):
    """Two degenerate ensembles: the combined SE is zero, so the floor
    is the entire limit and the verdict is a plain |a - b| <= floor."""
    band = equivalence_band([a], [b], floor=floor)
    assert band.limit == pytest.approx(floor)
    assert band.within == (abs(a - b) <= band.limit)


@given(
    st.lists(finite, min_size=2, max_size=12),
    st.lists(finite, min_size=2, max_size=12),
    st.floats(min_value=0.1, max_value=1e3, allow_nan=False),
)
def test_band_scale_equivariant(a, b, scale):
    """Rescaling both ensembles rescales gap and (floorless) limit by
    the same factor, so the verdict is unit-independent."""
    plain = equivalence_band(a, b)
    scaled = equivalence_band([v * scale for v in a], [v * scale for v in b])
    assert scaled.gap == pytest.approx(plain.gap * scale, rel=1e-6, abs=1e-6)
    assert scaled.limit == pytest.approx(
        plain.limit * scale, rel=1e-6, abs=1e-6
    )


def test_band_margin_and_describe():
    ok = Band(gap=0.5, limit=1.0, z=3.0, floor=0.1)
    assert ok.within and ok.margin == pytest.approx(0.5)
    assert "within" in ok.describe()
    blown = Band(gap=2.0, limit=1.0, z=3.0, floor=0.1)
    assert not blown.within and blown.margin == pytest.approx(-1.0)
    assert "EXCEEDS" in blown.describe()


def test_ensemble_mean_rejects_empty():
    with pytest.raises(ValueError):
        ensemble_mean([])


# -- value bands (recorded expectations) -------------------------------------


@given(ensembles, finite, st.floats(min_value=0.0, max_value=100.0, allow_nan=False))
def test_value_band_is_tolerance_limited(values, expected, tol):
    band = value_band(values, expected, tol)
    assert band.limit == pytest.approx(tol)
    assert band.gap == pytest.approx(abs(ensemble_mean(values) - expected))


@given(ensembles)
def test_zero_tolerance_only_passes_exact(values):
    """A zero-width tolerance passes only a bit-exact mean — the
    perturbed-gate contract (``--tolerance-scale 0`` must fail)."""
    mean = ensemble_mean(values)
    assert value_band(values, mean, 0.0).within
    assert not value_band(values, mean + 1.0, 0.0).within


# -- expectation generation --------------------------------------------------


@given(st.lists(ensembles, min_size=1, max_size=4))
def test_generated_expectation_admits_generators(pools):
    """The recorded (value, tol) must let every generating ensemble's
    mean pass its own band — update-expected immediately followed by a
    gate on the same cells is green by construction."""
    value, tol = expected_value_and_tolerance(pools)
    for pool in pools:
        # Rounding the stored value can cost at most 0.5 ulp at the
        # stored precision; the ceil'd tolerance absorbs all but that.
        assert abs(ensemble_mean(pool) - value) <= tol + 5e-5


@given(ensembles, st.floats(min_value=0.0, max_value=10.0, allow_nan=False))
def test_generated_tolerance_respects_floor(pool, floor):
    _, tol = expected_value_and_tolerance([pool], floor=floor)
    assert tol >= floor - 1e-9


@given(finite)
def test_single_seed_expectation_is_floor_only(value):
    """Degenerate single-seed generator: no spread, so the tolerance is
    exactly the floor (rounded up at the stored precision)."""
    got, tol = expected_value_and_tolerance([[value]], floor=0.25)
    assert got == pytest.approx(value, abs=5e-5)
    assert tol == pytest.approx(0.25, abs=1e-4)


def test_expectation_rejects_no_ensembles():
    with pytest.raises(ValueError):
        expected_value_and_tolerance([])
    with pytest.raises(ValueError):
        expected_value_and_tolerance([[]])
