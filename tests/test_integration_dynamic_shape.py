"""Integration tests for evolving target shapes (paper Sec. III-A,
footnote 1: the shape "could keep evolving as the algorithm executes").
"""

from repro.core.config import PolystyreneConfig
from repro.core.points import PointFactory
from repro.core.protocol import PolystyreneLayer
from repro.gossip import PeerSamplingLayer, TManLayer
from repro.metrics import homogeneity, load_balance
from repro.sim import Network, Simulation
from repro.spaces import FlatTorus


def build(width=12, height=6, seed=0):
    space = FlatTorus(float(width), float(height))
    factory = PointFactory()
    network = Network()
    rps = PeerSamplingLayer(view_size=8, shuffle_length=4)
    tman = TManLayer(space, rps, message_size=8, psi=4, view_cap=25)
    poly = PolystyreneLayer(space, PolystyreneConfig(replication=3), rps, tman)
    sim = Simulation(space, network, [rps, tman, poly], seed=seed)
    return sim, space, factory


class TestShapeGrowth:
    def test_new_nodes_with_new_points_extend_the_shape(self):
        sim, space, factory = build()
        left = [(float(x), float(y)) for x in range(6) for y in range(6)]
        right = [(float(x), float(y)) for x in range(6, 12) for y in range(6)]
        for point in factory.create_many(left):
            sim.network.add_node(point.coord, point)
        sim.init_all_nodes()
        sim.run(8)
        for coord in right:
            sim.spawn_node(coord, factory.create(coord))
        sim.run(15)
        alive = sim.network.alive_nodes()
        hom = homogeneity(space, factory.all_points, alive)
        assert hom < 1.0  # full (grown) shape is covered

    def test_injected_hotspot_spreads_out(self):
        sim, space, factory = build()
        base = [(float(x), float(y)) for x in range(12) for y in range(6)]
        for point in factory.create_many(base):
            sim.network.add_node(point.coord, point)
        sim.init_all_nodes()
        sim.run(5)
        # Dump 24 new points onto a single node.
        host = sim.network.alive_nodes()[0]
        extra = factory.create_many(
            [(float(x) + 0.5, 2.5) for x in range(12)]
            + [(float(x) + 0.5, 4.5) for x in range(12)]
        )
        host.poly.add_guests(extra)
        spike = load_balance(sim.network.alive_nodes())["max_over_mean"]
        sim.run(15)
        settled = load_balance(sim.network.alive_nodes())["max_over_mean"]
        assert settled < spike / 2  # migration flattened the hotspot
        hom = homogeneity(space, factory.all_points, sim.network.alive_nodes())
        assert hom < 1.0

    def test_injected_points_replicated(self):
        sim, space, factory = build()
        base = [(float(x), float(y)) for x in range(6) for y in range(6)]
        for point in factory.create_many(base):
            sim.network.add_node(point.coord, point)
        sim.init_all_nodes()
        sim.run(3)
        host = sim.network.alive_nodes()[0]
        new_point = factory.create((3.5, 3.5))
        host.poly.add_guests([new_point])
        sim.run(3)
        # The new point now exists as a ghost copy somewhere.
        ghost_copies = sum(
            1
            for node in sim.network.alive_nodes()
            for ghost in node.poly.ghosts.values()
            if new_point.pid in ghost
        )
        assert ghost_copies >= 1
