"""Tests for the SPLIT functions (Algorithms 4 and 5)."""

import pytest

from repro.core.split import (
    make_split,
    split_advanced,
    split_basic,
    split_md,
    split_pd,
)
from repro.errors import ConfigurationError
from repro.spaces import Euclidean, FlatTorus
from repro.types import DataPoint

PLANE = Euclidean(2)
ALL_SPLITS = (split_basic, split_pd, split_md, split_advanced)


def pts(*coords):
    return [DataPoint(i, tuple(c)) for i, c in enumerate(coords)]


class TestBasic:
    def test_assigns_to_closest(self):
        points = pts((0.0, 0.0), (10.0, 0.0))
        left, right = split_basic(PLANE, points, (0.0, 0.0), (10.0, 0.0))
        assert [p.coord for p in left] == [(0.0, 0.0)]
        assert [p.coord for p in right] == [(10.0, 0.0)]

    def test_tie_goes_to_q(self):
        points = pts((5.0, 0.0))
        left, right = split_basic(PLANE, points, (0.0, 0.0), (10.0, 0.0))
        assert left == []
        assert len(right) == 1

    def test_paper_fig5_status_quo(self):
        # Fig. 5a: basic split leaves the sub-optimal partition alone.
        # p holds {a,b,c} around pos c; q holds {d,e,f} around pos e;
        # every point is already closest to its current holder.
        a, b, c = (0.0, 2.0), (4.0, 1.0), (4.0, 2.0)
        d, e, f = (0.0, -2.0), (4.0, -1.5), (4.5, -2.0)
        points = pts(a, b, c, d, e, f)
        left, right = split_basic(PLANE, points, c, e)
        assert {p.coord for p in left} == {a, b, c}
        assert {p.coord for p in right} == {d, e, f}


class TestAdvanced:
    def test_paper_fig5_improvement(self):
        # Fig. 5b: the diameter here is (a, f)-ish across the two
        # clusters; PD should regroup the two far-left points together.
        a, b, c = (0.0, 2.0), (4.0, 1.0), (4.0, 2.0)
        d, e, f = (0.0, -2.0), (4.0, -1.5), (4.5, -2.0)
        points = pts(a, b, c, d, e, f)
        left, right = split_advanced(PLANE, points, c, e)
        groups = [frozenset(p.coord for p in left), frozenset(p.coord for p in right)]
        # The far-left pair {a, d} ends up in the same group, unlike
        # with the basic split (where a stays with p and d with q).
        assert any({a, d} <= group for group in groups)

    def test_md_assignment_minimises_displacement(self):
        # Two tight clusters; node positions sit on opposite clusters.
        cluster_a = [(0.0, 0.0), (0.2, 0.0), (0.4, 0.0)]
        cluster_b = [(10.0, 0.0), (10.2, 0.0), (10.4, 0.0)]
        points = pts(*(cluster_a + cluster_b))
        left, right = split_advanced(PLANE, points, (10.1, 0.0), (0.1, 0.0))
        # p.pos is at cluster B, so p must receive cluster B.
        assert all(p.coord[0] > 5 for p in left)
        assert all(p.coord[0] < 5 for p in right)

    def test_degenerate_identical_points(self):
        points = pts((1.0, 1.0), (1.0, 1.0), (1.0, 1.0))
        left, right = split_advanced(PLANE, points, (0.0, 0.0), (2.0, 2.0))
        assert len(left) + len(right) == 3

    def test_single_point_falls_back(self):
        points = pts((1.0, 0.0))
        left, right = split_advanced(PLANE, points, (0.0, 0.0), (9.0, 0.0))
        assert len(left) == 1 and right == []


class TestPD:
    def test_partitions_along_diameter(self):
        points = pts((0.0, 0.0), (1.0, 0.0), (9.0, 0.0), (10.0, 0.0))
        left, right = split_pd(PLANE, points, (5.0, 1.0), (5.0, -1.0))
        sides = {frozenset(p.pid for p in left), frozenset(p.pid for p in right)}
        assert frozenset({0, 1}) in sides
        assert frozenset({2, 3}) in sides


class TestMD:
    def test_swaps_when_beneficial(self):
        points = pts((0.0, 0.0), (10.0, 0.0))
        # Positions crossed: p sits near the right point, q near left.
        left, right = split_md(PLANE, points, (9.0, 0.0), (1.0, 0.0))
        assert [p.coord for p in left] == [(10.0, 0.0)]
        assert [p.coord for p in right] == [(0.0, 0.0)]


class TestInvariantsAllSplits:
    @pytest.mark.parametrize("split", ALL_SPLITS, ids=lambda f: f.__name__)
    def test_partition_complete_and_disjoint(self, split):
        points = pts(
            (0.0, 0.0), (1.0, 2.0), (5.0, 5.0), (3.0, 1.0), (9.0, 9.0), (2.0, 8.0)
        )
        left, right = split(PLANE, points, (0.0, 0.0), (9.0, 9.0))
        assert {p.pid for p in left} | {p.pid for p in right} == {
            p.pid for p in points
        }
        assert not ({p.pid for p in left} & {p.pid for p in right})

    @pytest.mark.parametrize("split", ALL_SPLITS, ids=lambda f: f.__name__)
    def test_empty_input(self, split):
        assert split(PLANE, [], (0.0, 0.0), (1.0, 1.0)) == ([], [])

    @pytest.mark.parametrize("split", ALL_SPLITS, ids=lambda f: f.__name__)
    def test_torus_space(self, split):
        torus = FlatTorus(16.0, 8.0)
        points = pts((15.0, 0.0), (1.0, 0.0), (8.0, 4.0), (7.0, 4.0))
        left, right = split(torus, points, (0.0, 0.0), (8.0, 4.0))
        assert len(left) + len(right) == 4


class TestFactory:
    def test_lookup(self):
        assert make_split("basic") is split_basic
        assert make_split("pd") is split_pd
        assert make_split("md") is split_md
        assert make_split("advanced") is split_advanced

    def test_unknown(self):
        with pytest.raises(ConfigurationError):
            make_split("quantum")
