"""Sanity checks on the package's public surface."""

import repro


class TestExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_core_entry_points(self):
        assert callable(repro.run_scenario)
        assert callable(repro.run_experiment)
        assert callable(repro.required_replication)

    def test_error_hierarchy(self):
        from repro.errors import (
            ConfigurationError,
            DeadNodeError,
            EmptySelectionError,
            ExperimentNotFoundError,
            ReproError,
            SimulationError,
            SpaceMismatchError,
            UnknownNodeError,
        )

        for exc in (
            ConfigurationError,
            EmptySelectionError,
            ExperimentNotFoundError,
            SimulationError,
            SpaceMismatchError,
        ):
            assert issubclass(exc, ReproError)
        assert issubclass(UnknownNodeError, SimulationError)
        assert issubclass(DeadNodeError, SimulationError)

    def test_subpackage_alls_resolve(self):
        import repro.analysis
        import repro.core
        import repro.experiments
        import repro.gossip
        import repro.metrics
        import repro.shapes
        import repro.sim
        import repro.spaces
        import repro.viz

        for module in (
            repro.analysis,
            repro.core,
            repro.experiments,
            repro.gossip,
            repro.metrics,
            repro.shapes,
            repro.sim,
            repro.spaces,
            repro.viz,
        ):
            for name in module.__all__:
                assert hasattr(module, name), (module.__name__, name)

    def test_every_public_item_documented(self):
        import inspect

        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"{name} lacks a docstring"
