"""Unit tests for the struct-of-arrays containers (repro.sim.arrays)."""

from __future__ import annotations

import copy
import pickle
import random

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.arrays import OBJECT_DIM, NodeTable, ViewBuffer
from repro.sim.network import Network


class TestNodeTable:
    def test_vector_layout_from_first_coord(self):
        table = NodeTable()
        row = table.add(0, (1.0, 2.0))
        assert table.is_vector
        assert table.dim == 2
        assert table.pos(row) == (1.0, 2.0)
        assert np.array_equal(table.coords_rows()[row], [1.0, 2.0])

    def test_object_layout_for_set_coords(self):
        table = NodeTable()
        coord = frozenset({"a", "b"})
        row = table.add(0, coord)
        assert not table.is_vector
        assert table.dim == OBJECT_DIM
        assert table.pos(row) is coord
        assert table.coords_rows() is None
        assert table.gather(np.array([0])) == [coord]

    def test_pos_returns_canonical_tuple_object(self):
        table = NodeTable()
        coord = (3.0, 4.0)
        row = table.add(7, coord)
        assert table.pos(row) is coord
        newer = (5.0, 6.0)
        table.set_coord(row, newer)
        assert table.pos(row) is newer

    def test_alive_mask_and_gather(self):
        table = NodeTable()
        for nid in range(6):
            table.add(nid, (float(nid), 0.0))
        table.mark_dead(table.row(2), rnd=5)
        table.mark_dead(table.row(4), rnd=5)
        ids = np.array([0, 2, 3, 4, 5])
        assert table.alive_mask(ids).tolist() == [True, False, True, False, True]
        gathered = table.gather(np.array([3, 0]))
        assert gathered.tolist() == [[3.0, 0.0], [0.0, 0.0]]

    def test_release_requires_dead_node(self):
        table = NodeTable()
        table.add(0, (0.0, 0.0))
        with pytest.raises(SimulationError):
            table.release(0)

    def test_free_list_reuse(self):
        table = NodeTable()
        for nid in range(4):
            table.add(nid, (float(nid), 0.0))
        table.mark_dead(table.row(1), rnd=3)
        freed = table.release(1)
        assert freed in table.free_rows
        # The next node added reuses the freed row; the table does not
        # grow.
        rows_before = table.n_rows
        row = table.add(99, (9.0, 9.0))
        assert row == freed
        assert table.n_rows == rows_before
        assert table.pos(table.row(99)) == (9.0, 9.0)
        assert table.alive_mask(np.array([99])).tolist() == [True]

    def test_duplicate_id_rejected(self):
        table = NodeTable()
        table.add(0, (0.0, 0.0))
        with pytest.raises(SimulationError):
            table.add(0, (1.0, 1.0))
        # The failed add must not have leaked a row or free-list slot.
        assert table.n_rows == 1
        assert table.free_rows == []

    def test_released_ids_report_dead_not_aliased(self):
        """A view that still references a pruned id must see it as dead
        — never alias whichever node reuses (or neighbours) the row."""
        table = NodeTable()
        for nid in range(3):
            table.add(nid, (float(nid), 0.0))
        table.mark_dead(table.row(1), rnd=2)
        table.release(1)
        table.add(3, (9.0, 9.0))  # reuses row of 1, and is alive
        mask = table.alive_mask(np.array([0, 1, 2, 3]))
        assert mask.tolist() == [True, False, True, True]

    def test_growth_preserves_state(self):
        table = NodeTable()
        coords = [(float(i), float(i % 7)) for i in range(200)]
        for nid, coord in enumerate(coords):
            table.add(nid, coord)
        ids = np.arange(200)
        assert table.alive_mask(ids).all()
        assert table.gather(ids).tolist() == [list(c) for c in coords]


class TestNetworkRemoveNode:
    def test_remove_node_recycles_row_for_reinjection(self):
        network = Network()
        for i in range(5):
            network.add_node((float(i), 0.0))
        network.fail([2], rnd=1)
        network.remove_node(2)
        assert 2 not in network.nodes
        assert network.dead_ids() == []
        assert network.death_round(2) is None
        # A fresh (reinjected) node reuses the released row.
        fresh = network.add_node((9.0, 9.0))
        assert fresh.nid == 5
        assert network.table.n_rows == 5
        assert network.node(5).pos == (9.0, 9.0)

    def test_remove_alive_node_refused(self):
        network = Network()
        network.add_node((0.0, 0.0))
        with pytest.raises(Exception):
            network.remove_node(0)


def _apply(model, buf, op, key, coord):
    """Apply one mutation to both the dict model and the buffer."""
    if op == "set":
        model[key] = coord
        buf[key] = coord
    elif op == "del" and key in model:
        del model[key]
        del buf[key]
    elif op == "merge":
        incoming = {key: coord, key + 1: coord}
        for nid, c in incoming.items():
            model[nid] = c
        buf.merge_coords(incoming, own=-1, detected=frozenset())
    elif op == "keep":
        keep = sorted(model)[: max(1, len(model) // 2)]
        for nid in list(model):
            if nid not in keep:
                del model[nid]
        # keep insertion-order semantics of the dict rebuild
        reordered = {nid: model[nid] for nid in keep}
        model.clear()
        model.update(reordered)
        buf.keep_ranked(keep)


class TestViewBuffer:
    def test_mapping_protocol_matches_dict(self):
        entries = [(3, (1.0, 2.0)), (1, (0.0, 0.0)), (7, (5.0, 5.0))]
        buf = ViewBuffer(2, entries)
        ref = dict(entries)
        assert dict(buf) == ref
        assert list(buf) == list(ref)
        assert len(buf) == 3 and 3 in buf and 4 not in buf
        assert buf[7] == (5.0, 5.0)
        assert buf.get(4, "x") == "x"
        assert sorted(buf.items()) == sorted(ref.items())

    def test_randomised_mutations_match_dict_semantics(self):
        rng = random.Random(42)
        model: dict = {}
        buf = ViewBuffer(2)
        for step in range(300):
            op = rng.choice(["set", "set", "merge", "del", "keep"])
            key = rng.randrange(30)
            coord = (float(rng.randrange(10)), float(rng.randrange(10)))
            _apply(model, buf, op, key, coord)
            assert list(buf) == list(model), f"order diverged at step {step}"
            assert dict(buf) == model
            ids, coords = buf.arrays()
            assert ids.tolist() == list(model)
            if len(model):
                assert coords.tolist() == [list(c) for c in model.values()]

    def test_arrays_cache_invalidation(self):
        buf = ViewBuffer(2, [(1, (0.0, 0.0)), (2, (1.0, 1.0))])
        ids1, coords1 = buf.arrays()
        # No mutation: identical objects returned.
        ids2, coords2 = buf.arrays()
        assert ids1 is ids2 and coords1 is coords2
        buf[3] = (2.0, 2.0)
        ids3, _ = buf.arrays()
        assert ids3.tolist() == [1, 2, 3]

    def test_set_ranked_installs_clean_arrays(self):
        buf = ViewBuffer(2, [(i, (float(i), 0.0)) for i in range(5)])
        ids, coords = buf.arrays()
        order = np.array([3, 1, 0])
        pos = (0.0, 0.0)
        buf.set_ranked(ids[order], coords[order], ranked_for=pos)
        assert list(buf) == [3, 1, 0]
        assert buf.ranked_pos is pos
        ids2, coords2 = buf.arrays()
        assert ids2.tolist() == [3, 1, 0]
        assert coords2.tolist() == [[3.0, 0.0], [1.0, 0.0], [0.0, 0.0]]
        # Order-preserving eviction keeps the ranked marker ...
        buf.evict_ids([1])
        assert buf.ranked_pos is pos
        assert list(buf) == [3, 0]
        # ... but any merge clears it.
        buf.merge_coords({9: (9.0, 9.0)}, own=-1, detected=frozenset())
        assert buf.ranked_pos is None

    def test_object_coords_mode(self):
        a, b = frozenset({"x"}), frozenset({"y", "z"})
        buf = ViewBuffer(OBJECT_DIM, [(1, a), (2, b)])
        ids, coords = buf.arrays()
        assert ids.tolist() == [1, 2]
        assert coords == [a, b]
        assert buf[2] is b

    def test_evict(self):
        buf = ViewBuffer(2, [(i, (float(i), 0.0)) for i in range(6)])
        buf.evict(frozenset({1, 4}))
        assert list(buf) == [0, 2, 3, 5]

    def test_pickle_and_deepcopy_roundtrip(self):
        buf = ViewBuffer(2, [(1, (0.5, 0.25)), (9, (3.0, 4.0))])
        for clone in (pickle.loads(pickle.dumps(buf)), copy.deepcopy(buf)):
            assert dict(clone) == dict(buf)
            assert list(clone) == list(buf)
            ids, coords = clone.arrays()
            assert ids.tolist() == [1, 9]
            assert coords.tolist() == [[0.5, 0.25], [3.0, 4.0]]

    def test_empty_buffer(self):
        buf = ViewBuffer(2)
        assert not buf and len(buf) == 0
        ids, coords = buf.arrays()
        assert len(ids) == 0 and coords.shape == (0, 2)
