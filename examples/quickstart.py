#!/usr/bin/env python
"""Quickstart: run the paper's headline experiment in ~30 lines.

Builds a logical torus of nodes, lets T-Man + Polystyrene converge,
crashes one half of the torus at once, reinjects fresh nodes later, and
prints the homogeneity timeline — the protocol's "shape that never
dies" in action.

Run:  python examples/quickstart.py
"""

from repro import ScenarioConfig, run_scenario

config = ScenarioConfig(
    width=24,            # 24 x 12 torus = 288 nodes, unit grid step
    height=12,
    replication=4,       # K: ghost copies per guest set
    split="advanced",    # the paper's PD+MD SPLIT heuristic
    failure_round=15,    # half the torus crashes here
    reinjection_round=60,  # fresh (point-less) nodes arrive here
    total_rounds=100,
    seed=42,
)

result = run_scenario(config)

print(f"torus: {config.width}x{config.height} = {config.n_nodes} nodes")
print(f"reference homogeneity after failure: {result.h_ref_after_failure:.3f}")
print(
    f"reliability (points surviving the crash): {result.reliability:.1%} "
    f"(model: {1 - 0.5 ** (config.replication + 1):.1%})"
)
print(f"reshaping time: {result.reshaping_time} rounds")
print()
print("round  homogeneity  proximity  points/node")
hom = result.series["homogeneity"]
prox = result.series["proximity"]
storage = result.series["storage"]
for rnd in list(range(0, config.total_rounds, 10)) + [config.total_rounds - 1]:
    marker = ""
    if rnd == config.failure_round:
        marker = "  <- half the torus crashed"
    elif rnd == config.reinjection_round:
        marker = "  <- fresh nodes reinjected"
    print(
        f"{rnd:5d}  {hom[rnd]:11.3f}  {prox[rnd]:9.3f}  {storage[rnd]:11.2f}"
        f"{marker}"
    )
