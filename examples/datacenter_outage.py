#!/usr/bin/env python
"""Datacenter outage scenario — the paper's motivating use case.

A key-value overlay maps a 2-D keyspace (a torus) onto VMs.  For data
locality, contiguous key regions are hosted in the same datacenter
(placement correlated with the physical infrastructure — Sec. I).  One
datacenter then suffers a power failure: every VM hosting the left half
of the keyspace disappears at the same instant.

With plain T-Man the keyspace coverage is permanently lost.  With
Polystyrene the surviving VMs migrate over the orphaned key regions
within a few rounds, and when the operator provisions replacement VMs
(with empty disks!) the key responsibility rebalances automatically.

Run:  python examples/datacenter_outage.py
"""

from repro import ScenarioConfig, run_scenario
from repro.viz.ascii import render_density

WIDTH, HEIGHT = 32, 16
FAILURE, REINJECT, TOTAL = 15, 60, 100
SNAPSHOTS = (FAILURE - 1, FAILURE + 2, FAILURE + 10, TOTAL - 1)


def run(protocol):
    config = ScenarioConfig(
        width=WIDTH,
        height=HEIGHT,
        protocol=protocol,
        replication=4,
        failure_round=FAILURE,
        reinjection_round=REINJECT,
        total_rounds=TOTAL,
        snapshot_rounds=SNAPSHOTS,
        seed=7,
    )
    return config, run_scenario(config)


def describe(tag, config, result):
    hom = result.series["homogeneity"]
    print(f"--- {tag} ---")
    if result.reliability is not None:
        print(f"keys surviving the outage: {result.reliability:.1%}")
    reshaped = (
        f"{result.reshaping_time} rounds"
        if result.reshaping_time is not None
        else "never"
    )
    print(f"keyspace coverage restored in: {reshaped}")
    print(f"final homogeneity: {hom[-1]:.3f}")
    periods = config.grid.periods
    for rnd, label in (
        (FAILURE + 2, "2 rounds after the outage"),
        (TOTAL - 1, "after replacement VMs joined"),
    ):
        print(render_density(result.snapshots[rnd], periods,
                             cols=WIDTH // 2, rows=HEIGHT // 2,
                             title=f"{tag}: {label}"))
    print()


def main():
    print(__doc__)
    for protocol, tag in (("tman", "T-Man alone"), ("polystyrene", "Polystyrene K=4")):
        config, result = run(protocol)
        describe(tag, config, result)


if __name__ == "__main__":
    main()
