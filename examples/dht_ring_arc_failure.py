#!/usr/bin/env python
"""Chord-style DHT ring losing a contiguous arc of its key space.

DHT rings (Chord, Pastry) assign contiguous key arcs to nodes.  When
placement is geography-correlated — e.g. all European replicas own
adjacent arcs — a regional outage removes a *contiguous* stretch of the
ring.  This example deploys Polystyrene on a 1-D ring space, kills a
third of the ring in one event, and tracks how key coverage (homogeneity
over the original key points) recovers.

It also demonstrates assembling the stack by hand for a non-torus
space, which is what a real integration would do.

Run:  python examples/dht_ring_arc_failure.py
"""

from repro import PolystyreneConfig, PolystyreneLayer
from repro.core.points import PointFactory
from repro.gossip import PeerSamplingLayer, TManLayer
from repro.metrics import homogeneity, surviving_fraction
from repro.shapes import RingShape
from repro.sim import Network, Simulation

N_NODES = 120
ARC_FRACTION = 1 / 3
FAILURE_ROUND = 10
TOTAL_ROUNDS = 50


def main():
    print(__doc__)
    shape = RingShape(N_NODES)  # circumference 120, unit key spacing
    space = shape.space()

    factory = PointFactory()
    network = Network()
    keys = factory.create_many(shape.generate())
    for key in keys:
        network.add_node(key.coord, key)

    rps = PeerSamplingLayer(view_size=12, shuffle_length=6)
    tman = TManLayer(space, rps, message_size=12, psi=5, view_cap=40)
    poly = PolystyreneLayer(space, PolystyreneConfig(replication=4), rps, tman)
    sim = Simulation(space, network, [rps, tman, poly], seed=13)
    sim.init_all_nodes()

    cut = shape.circumference * ARC_FRACTION
    sim.schedule(
        FAILURE_ROUND,
        lambda s: s.network.fail(
            [
                n.nid
                for n in s.network.alive_nodes()
                if n.initial_point.coord[0] < cut
            ],
            s.round,
        ),
    )

    print("round  alive  key-coverage-gap  keys-surviving")
    for rnd in range(TOTAL_ROUNDS):
        sim.step()
        if rnd % 5 == 0 or rnd in (FAILURE_ROUND, FAILURE_ROUND + 1):
            alive = sim.network.alive_nodes()
            gap = homogeneity(space, keys, alive)
            surv = surviving_fraction(keys, alive)
            print(
                f"{rnd:5d}  {sim.network.n_alive:5d}  {gap:16.3f}  {surv:14.1%}"
            )

    alive = sim.network.alive_nodes()
    h_ref = shape.reference_homogeneity(sim.network.n_alive)
    final_gap = homogeneity(space, keys, alive)
    relocated = sum(1 for n in alive if n.pos[0] < cut)
    print()
    print(f"reference homogeneity for {sim.network.n_alive} nodes: {h_ref:.3f}")
    print(f"final key-coverage gap: {final_gap:.3f}")
    print(f"survivors now serving the dead arc: {relocated}")
    assert final_gap < 3 * h_ref, "ring did not reshape"


if __name__ == "__main__":
    main()
