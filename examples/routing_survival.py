#!/usr/bin/env python
"""Routing survival: the application-level payoff of shape preservation.

The paper's introduction argues that losing the overlay's shape hurts
routing.  This example quantifies it: greedy geographic routing over
the overlay, delivering messages to the *original* key positions,
before the failure, right after it, and after Polystyrene's repair —
contrasted with the T-Man baseline where the hole never heals.

Run:  python examples/routing_survival.py
"""

import random

from repro import ScenarioConfig
from repro.experiments.scenario import build_simulation
from repro.routing import evaluate_routing, point_targets
from repro.sim.failures import half_space_failure
from repro.viz.tables import format_table

WIDTH, HEIGHT = 24, 12
FAILURE = 12


def probe(sim, points, seed):
    quality = evaluate_routing(
        sim,
        sim.space,
        point_targets(points),
        n_routes=150,
        tolerance=1.0,
        rng=random.Random(seed),
    )
    return quality


def run(protocol):
    config = ScenarioConfig(
        width=WIDTH,
        height=HEIGHT,
        protocol=protocol,
        replication=4,
        failure_round=FAILURE,
        reinjection_round=None,
        total_rounds=60,
        seed=3,
        metrics=("homogeneity",),
    )
    sim, _, _, points = build_simulation(config)
    sim.schedule(FAILURE, half_space_failure(0, config.failure_cut()))
    checkpoints = {}
    sim.run(FAILURE)  # converged, pre-failure
    checkpoints["converged"] = probe(sim, points, 1)
    sim.run(2)  # right after the crash
    checkpoints["failure + 2 rounds"] = probe(sim, points, 2)
    sim.run(48)  # fully repaired (or not)
    checkpoints["failure + 50 rounds"] = probe(sim, points, 3)
    return checkpoints


def main():
    print(__doc__)
    rows = []
    for protocol in ("tman", "polystyrene"):
        for moment, quality in run(protocol).items():
            rows.append(
                [
                    protocol,
                    moment,
                    f"{quality.delivery_rate:.1%}",
                    f"{quality.local_minimum_rate:.1%}",
                ]
            )
    print(
        format_table(
            ["protocol", "moment", "delivered", "stuck"],
            rows,
            title="Greedy routing to the original keys (tolerance = 1 grid step)",
        )
    )


if __name__ == "__main__":
    main()
