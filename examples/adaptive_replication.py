#!/usr/bin/env python
"""Adaptive replication: sizing K from a decentralised estimate.

The paper fixes K offline from an assumed failure fraction
(Sec. III-D: K >= log(1-ps)/log(pf) - 1, e.g. K=6 for 99% survival at
pf=0.5).  A real deployment doesn't know its size or failure exposure
a priori — but gossip *aggregation* [Jelasity et al., the paper's ref
24] estimates both, fully decentralised.

This example runs the paper's size-estimation building block next to
Polystyrene: a push-pull averaging layer lets every node estimate N
locally; an operator policy ("survive the loss of any one of our D
datacenters hosting 1/D of the nodes, with probability ps") then turns
the estimate into a per-node choice of K via required_replication.

Run:  python examples/adaptive_replication.py
"""

from repro import required_replication, survival_probability
from repro.gossip import PeerSamplingLayer, SizeEstimator
from repro.sim import Network, Simulation
from repro.spaces import FlatTorus
from repro.viz.tables import format_table

N_SIDE = 16  # 256 nodes
DATACENTERS = (2, 4, 8)
TARGET_SURVIVAL = 0.99


def main():
    print(__doc__)
    space = FlatTorus(float(N_SIDE), float(N_SIDE))
    network = Network()
    for x in range(N_SIDE):
        for y in range(N_SIDE):
            network.add_node((float(x), float(y)))
    rps = PeerSamplingLayer(view_size=10, shuffle_length=5)
    estimator = SizeEstimator(rps, seed_node=0)
    sim = Simulation(space, network, [rps, estimator], seed=9)
    sim.init_all_nodes()
    sim.run(30)

    probe = sim.network.alive_nodes()[17]
    n_est = estimator.estimate(probe)
    print(f"true network size: {sim.network.n_alive}")
    print(f"node {probe.nid}'s decentralised estimate: {n_est:.1f}")

    rows = []
    for d in DATACENTERS:
        pf = 1.0 / d
        k = required_replication(TARGET_SURVIVAL, pf)
        rows.append(
            [
                d,
                f"{pf:.2f}",
                k,
                f"{survival_probability(k, pf):.2%}",
                f"{n_est / d:.0f}",
            ]
        )
    print()
    print(
        format_table(
            [
                "#datacenters",
                "pf (one DC lost)",
                "K required",
                "survival with that K",
                "est. nodes per DC",
            ],
            rows,
            title=f"K sized locally for {TARGET_SURVIVAL:.0%} point survival",
        )
    )
    print(
        "\nEach node derives these numbers from its own gossip state — "
        "no coordinator, matching the paper's decentralisation story."
    )


if __name__ == "__main__":
    main()
