#!/usr/bin/env python
"""Evolving target shape — the paper's future-work scenario.

The paper assumes a static shape "for ease of exposition", noting that
"it could, however, keep evolving as the algorithm executes"
(Sec. III-A, footnote 1).  This example exercises that: a service that
starts as a half torus and later doubles its keyspace.  The expansion
arrives in two forms at once:

* new nodes join carrying data points of the new region (growth);
* a burst of extra data points is injected into *existing* nodes
  (hotspot), and migration spreads them out.

Homogeneity is always measured over the full, final shape, so you can
watch the system converge to the shape as it grows.

Run:  python examples/growing_shape.py
"""

from repro import PolystyreneConfig, PolystyreneLayer
from repro.core.points import PointFactory
from repro.gossip import PeerSamplingLayer, TManLayer
from repro.metrics import homogeneity, load_balance
from repro.shapes import TorusGrid
from repro.sim import Network, Simulation
from repro.spaces import FlatTorus

WIDTH, HEIGHT = 24, 12
GROW_ROUND, INJECT_ROUND, TOTAL = 12, 24, 60


def main():
    print(__doc__)
    space = FlatTorus(float(WIDTH), float(HEIGHT))
    factory = PointFactory()
    network = Network()

    full_grid = TorusGrid(WIDTH, HEIGHT).generate()
    left = [c for c in full_grid if c[0] < WIDTH / 2]
    right = [c for c in full_grid if c[0] >= WIDTH / 2]
    right_nodes, right_injected = right[: len(right) // 2], right[len(right) // 2 :]

    # Phase 0: only the left half of the shape exists.
    initial_points = factory.create_many(left)
    for point in initial_points:
        network.add_node(point.coord, point)

    rps = PeerSamplingLayer(view_size=10, shuffle_length=5)
    tman = TManLayer(space, rps, message_size=12, psi=5, view_cap=40)
    poly = PolystyreneLayer(space, PolystyreneConfig(replication=4), rps, tman)
    sim = Simulation(space, network, [rps, tman, poly], seed=17)
    sim.init_all_nodes()

    # Phase 1: half of the new region arrives as fresh nodes that each
    # carry one new data point.
    def grow(s):
        for coord in right_nodes:
            s.spawn_node(coord, factory.create(coord))

    sim.schedule(GROW_ROUND, grow)

    # Phase 2: the rest of the new region is injected as extra data
    # points into a handful of existing nodes (a hotspot), and the
    # migration step spreads it out.
    def inject(s):
        hosts = s.network.alive_nodes()[:4]
        for i, coord in enumerate(right_injected):
            hosts[i % len(hosts)].poly.add_guests([factory.create(coord)])

    sim.schedule(INJECT_ROUND, inject)

    print("round  points  hom(full shape)  max/mean load")
    for rnd in range(TOTAL):
        sim.step()
        if rnd % 6 == 0 or rnd in (GROW_ROUND, INJECT_ROUND, TOTAL - 1):
            alive = sim.network.alive_nodes()
            hom = homogeneity(space, factory.all_points, alive)
            balance = load_balance(alive)
            print(
                f"{rnd:5d}  {len(factory):6d}  {hom:15.3f}  "
                f"{balance['max_over_mean']:12.2f}"
            )

    alive = sim.network.alive_nodes()
    final = homogeneity(space, factory.all_points, alive)
    grid = TorusGrid(WIDTH, HEIGHT)
    h_ref = grid.reference_homogeneity(sim.network.n_alive)
    print(f"\nfinal homogeneity over the grown shape: {final:.3f} "
          f"(reference: {h_ref:.3f})")
    assert final < 3 * h_ref, "shape growth did not converge"


if __name__ == "__main__":
    main()
