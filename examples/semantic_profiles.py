#!/usr/bin/env python
"""Polystyrene over a *semantic* space: user-interest profiles.

Gossip topology construction is also used to cluster users by profile
similarity (Gossple, WhatsUp — see the paper's Sec. II).  Positions are
then sets of interests, compared with the Jaccard distance, and there
is no meaningful "mean profile" — exactly why Polystyrene projects with
a medoid instead of a centroid.

Here profiles come in four interest communities.  All members of one
community run in the same datacenter and crash together; their profile
points survive as ghosts on random peers and migrate back together, so
the community's region of the semantic space remains represented.

Run:  python examples/semantic_profiles.py
"""

from collections import Counter

from repro import JaccardSpace, PolystyreneConfig, PolystyreneLayer
from repro.core.points import PointFactory
from repro.gossip import PeerSamplingLayer, TManLayer
from repro.metrics import surviving_fraction
from repro.sim import Network, Simulation

COMMUNITIES = {
    "cinema": ["film", "cinema", "actors", "festival", "critique"],
    "cycling": ["bikes", "tour", "climbing", "gear", "race"],
    "cooking": ["recipes", "baking", "spices", "wine", "knives"],
    "gaming": ["rpg", "esports", "speedrun", "retro", "mods"],
}
MEMBERS_PER_COMMUNITY = 20
FAILED_COMMUNITY = "cinema"
FAILURE_ROUND = 8
TOTAL_ROUNDS = 30


def make_profiles():
    """Each member shares most of its community's interests plus a
    personal twist, so communities form tight Jaccard clusters."""
    profiles = []
    for name, interests in COMMUNITIES.items():
        for i in range(MEMBERS_PER_COMMUNITY):
            personal = {f"{name}-extra-{i % 5}"}
            profile = frozenset(interests[: 3 + i % 3]) | personal
            profiles.append((name, profile))
    return profiles


def community_of(profile):
    scores = {
        name: len(profile & set(interests))
        for name, interests in COMMUNITIES.items()
    }
    return max(scores, key=scores.get)


def main():
    print(__doc__)
    space = JaccardSpace()
    profiles = make_profiles()

    factory = PointFactory()
    network = Network()
    points = []
    failed_nodes = []
    for name, profile in profiles:
        point = factory.create(profile)
        points.append(point)
        node = network.add_node(profile, point)
        if name == FAILED_COMMUNITY:
            failed_nodes.append(node.nid)

    rps = PeerSamplingLayer(view_size=10, shuffle_length=5)
    tman = TManLayer(space, rps, message_size=8, psi=4, view_cap=25)
    poly = PolystyreneLayer(space, PolystyreneConfig(replication=4), rps, tman)
    sim = Simulation(space, network, [rps, tman, poly], seed=21)
    sim.init_all_nodes()

    sim.schedule(
        FAILURE_ROUND, lambda s: s.network.fail(list(failed_nodes), s.round)
    )
    sim.run(TOTAL_ROUNDS)

    alive = sim.network.alive_nodes()
    survival = surviving_fraction(points, alive)
    print(f"datacenter of community {FAILED_COMMUNITY!r} crashed at "
          f"round {FAILURE_ROUND}: {len(failed_nodes)} nodes lost")
    print(f"profile points surviving: {survival:.1%}")

    # Which communities do surviving nodes now *represent* (via their
    # guest profiles)?
    represented = Counter()
    for node in alive:
        for point in node.poly.guest_points():
            represented[community_of(point.coord)] += 1
    print("guest profiles per community after repair:")
    for name in COMMUNITIES:
        print(f"  {name:8s} {represented[name]:3d}")

    assert survival > 0.9, "profiles were lost"
    assert represented[FAILED_COMMUNITY] > 0, (
        "the failed community vanished from the semantic space"
    )
    print("\nthe failed community's region of the semantic space is "
          "still represented by surviving nodes.")


if __name__ == "__main__":
    main()
