#!/usr/bin/env python
"""Ablation study: how much do the SPLIT heuristics matter?

Reproduces the spirit of the paper's Fig. 10b at laptop scale: run the
catastrophic-failure scenario with each SPLIT function and compare
reshaping times.  The paper reports that the diameter heuristic (PD)
alone more than halves the reshaping time versus the basic k-means
split at 51,200 nodes, and PD+MD ("advanced") is ~2.9x faster.

Run:  python examples/split_function_study.py
"""

from repro import ScenarioConfig, run_scenario
from repro.viz.tables import format_table

GRIDS = ((16, 8), (24, 12), (32, 16))
SPLITS = ("basic", "md", "pd", "advanced")
SEEDS = (1, 2)


def reshaping(width, height, split):
    times = []
    for seed in SEEDS:
        config = ScenarioConfig(
            width=width,
            height=height,
            replication=4,
            split=split,
            failure_round=15,
            reinjection_round=None,
            total_rounds=70,
            seed=seed,
            metrics=("homogeneity",),
        )
        result = run_scenario(config)
        times.append(
            result.reshaping_time
            if result.reshaping_time is not None
            else float("inf")
        )
    return sum(times) / len(times)


def main():
    print(__doc__)
    rows = []
    for width, height in GRIDS:
        row = [width * height]
        for split in SPLITS:
            row.append(reshaping(width, height, split))
        rows.append(row)
    print(
        format_table(
            ["#nodes", *(f"split_{s}" for s in SPLITS)],
            rows,
            title="Mean reshaping time (rounds) after losing half the torus",
        )
    )
    print(
        "\nExpect: basic degrades fastest with size; advanced (PD+MD) "
        "stays lowest, as in the paper's Fig. 10b."
    )


if __name__ == "__main__":
    main()
