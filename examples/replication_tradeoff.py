#!/usr/bin/env python
"""The replication trade-off: reliability vs reshaping speed vs memory.

Sweeps the replication factor K and reports, for each value:
  * measured reliability under a half-network catastrophic failure,
    next to the analytical model 1 - 0.5^(K+1) (paper Sec. III-D);
  * reshaping time (higher K leaves more redundant copies to
    de-duplicate, so repair slows down — paper Table II);
  * steady-state memory (1 + K points per node).

Useful for sizing K against a target survival probability — the paper's
example: 99% survival under a 50% failure needs K >= 6.

Run:  python examples/replication_tradeoff.py
"""

from repro import ScenarioConfig, required_replication, run_scenario, survival_probability
from repro.viz.tables import format_table

KS = (1, 2, 4, 6, 8)


def main():
    print(__doc__)
    rows = []
    for k in KS:
        config = ScenarioConfig(
            width=24,
            height=12,
            replication=k,
            failure_round=15,
            reinjection_round=None,
            total_rounds=70,
            seed=5,
            metrics=("homogeneity", "storage"),
        )
        result = run_scenario(config)
        steady_storage = result.series["storage"][config.failure_round - 1]
        rows.append(
            [
                k,
                f"{result.reliability:.1%}",
                f"{survival_probability(k, 0.5):.1%}",
                result.reshaping_time
                if result.reshaping_time is not None
                else "never",
                f"{steady_storage:.2f}",
            ]
        )
    print(
        format_table(
            [
                "K",
                "measured reliability",
                "model 1-0.5^(K+1)",
                "reshaping (rounds)",
                "points/node (steady)",
            ],
            rows,
            title="Replication factor trade-off (half-torus failure)",
        )
    )
    print(
        f"\nK needed for 99% survival at 50% failures: "
        f"{required_replication(0.99, 0.5)} (paper: 6)"
    )


if __name__ == "__main__":
    main()
