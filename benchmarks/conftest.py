"""Shared benchmark infrastructure.

Each benchmark regenerates one table/figure of the paper: it times the
underlying simulation(s) via pytest-benchmark, asserts the paper's
qualitative claim on the produced data, and emits the same rows/series
the paper reports — to the terminal (bypassing capture, so they land in
``bench_output.txt``), to ``benchmarks/results/<id>.txt`` (human
readable), and to ``benchmarks/results/<id>.json`` (machine readable:
the report text plus the structured cells/series when the benchmark
passes them).

At the end of a benchmark session a ``BENCH_core.json`` summary is
written at the repository root: one entry per emitted experiment plus
the pytest-benchmark wall-clock stats per benchmark — the file that
seeds and extends the project's performance trajectory (compare against
``benchmarks/baseline_core.json``, the recorded pre-array-core seed
numbers).

Scale is controlled by ``REPRO_SCALE`` (smoke / reduced / paper);
benchmarks default to the *reduced* preset, which preserves the shape
of every result at a laptop-friendly runtime.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import platform
import time

import pytest

from repro.experiments.presets import get_preset
from repro.sim.engine import semantics_version_for

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Execution engine benchmarks run under — ``REPRO_ENGINE=batch``
#: switches the whole benchmark session to the batch engine (recorded
#: in every results JSON and in BENCH_core.json, so numbers from the
#: two engines are never conflated).
ENGINE_ENV = "REPRO_ENGINE"


def session_engine() -> str:
    return os.environ.get(ENGINE_ENV, "event")
REPO_ROOT = pathlib.Path(__file__).parent.parent
SUMMARY_PATH = REPO_ROOT / "BENCH_core.json"


def _jsonable(value):
    """Best-effort conversion of benchmark payloads to JSON types."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {k: _jsonable(v) for k, v in dataclasses.asdict(value).items()}
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "tolist"):
        return value.tolist()
    return str(value)


@pytest.fixture(scope="session")
def preset():
    return get_preset()


@pytest.fixture(scope="session")
def engine():
    """Engine override for benchmarks that thread it through
    (``None`` means the configs' own engine, i.e. the event default)."""
    chosen = session_engine()
    return None if chosen == "event" else chosen


@pytest.fixture(scope="session")
def workers():
    """Worker-process count for the sweep benchmarks.

    ``REPRO_WORKERS`` overrides (parsed by the runtime's own
    :func:`default_workers`); otherwise cap at 4 so benchmark timings
    stay comparable across machines.  Cell results are identical at
    any worker count — only wall-clock changes.
    """
    from repro.runtime.runner import default_workers

    if os.environ.get("REPRO_WORKERS"):
        return default_workers()
    return min(4, default_workers())


@pytest.fixture(scope="session")
def emit(request, preset):
    """Archive a benchmark's report (text + JSON) and print it through
    the capture manager so it is visible in piped output."""
    capture = request.config.pluginmanager.getplugin("capturemanager")
    RESULTS_DIR.mkdir(exist_ok=True)
    emitted = _session_emitted(request.config)

    def _emit(experiment_id: str, text: str, data=None, engine=None) -> None:
        (RESULTS_DIR / f"{experiment_id}.txt").write_text(text + "\n")
        # ``engine`` overrides the session engine; benchmarks that mix
        # engines in one record pass "mixed" (no single semantics
        # version applies — their data carries per-cell engines).
        used_engine = engine or session_engine()
        entry = {
            "id": experiment_id,
            "scale": preset.name,
            "engine": used_engine,
            "semantics_version": (
                semantics_version_for(used_engine)
                if used_engine in ("event", "batch")
                else None
            ),
            "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "report": text,
            "data": _jsonable(data) if data is not None else None,
        }
        (RESULTS_DIR / f"{experiment_id}.json").write_text(
            json.dumps(entry, indent=2, sort_keys=True) + "\n"
        )
        emitted[experiment_id] = entry
        banner = f"\n===== {experiment_id} =====\n{text}\n"
        if capture is not None:
            with capture.global_and_fixture_disabled():
                print(banner)
        else:  # pragma: no cover - capture always present under pytest
            print(banner)

    return _emit


def _session_emitted(config) -> dict:
    if not hasattr(config, "_repro_emitted"):
        config._repro_emitted = {}
    return config._repro_emitted


def _benchmark_timings(session) -> list:
    """Wall-clock stats per benchmark from the pytest-benchmark plugin
    (empty when the plugin is missing or no benchmark ran)."""
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None:
        return []
    out = []
    for bench in getattr(bench_session, "benchmarks", []):
        stats = getattr(bench, "stats", None)
        if stats is None:
            continue
        # pytest-benchmark nests the numbers one level deeper on some
        # versions (Metadata.stats.stats); reach whichever holds them.
        inner = getattr(stats, "stats", stats)
        out.append(
            {
                "name": bench.name,
                "mean_s": getattr(inner, "mean", None),
                "min_s": getattr(inner, "min", None),
                "max_s": getattr(inner, "max", None),
                "rounds": getattr(inner, "rounds", None),
                "extra_info": _jsonable(getattr(bench, "extra_info", {})),
            }
        )
    return out


def _timings_metrics_record(timings: list) -> dict:
    """The benchmark timings as one obs metrics record: ``bench.<name>``
    histograms in the same snapshot schema the instrumented runtime
    flushes, so ``repro obs report BENCH_core.json`` renders the
    Benchmarks section next to any run's per-phase breakdown."""
    from repro.obs.metrics import metrics_record

    hists = {}
    for row in timings:
        rounds = int(row.get("rounds") or 0)
        mean = row.get("mean_s")
        if rounds <= 0 or mean is None:
            continue
        lo = row.get("min_s")
        hi = row.get("max_s")
        hists[f"bench.{row['name']}"] = {
            "count": rounds,
            "sum": mean * rounds,
            "min": mean if lo is None else lo,
            "max": mean if hi is None else hi,
            "mean": mean,
        }
    return metrics_record(
        ctx={
            "source": "benchmarks",
            "scale": get_preset().name,
            "engine": session_engine(),
        },
        snapshot={"counters": {}, "gauges": {}, "hists": hists},
    )


def pytest_sessionfinish(session, exitstatus):
    """Write the machine-readable BENCH_core.json summary."""
    emitted = _session_emitted(session.config)
    if not emitted:
        return
    summary = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "scale": get_preset().name,
        "engine": session_engine(),
        "semantics_version": semantics_version_for(session_engine()),
        "environment": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpus": os.cpu_count(),
        },
        "experiments": {
            eid: {k: v for k, v in entry.items() if k != "report"}
            for eid, entry in sorted(emitted.items())
        },
        "timings": _benchmark_timings(session),
        "baseline": "benchmarks/baseline_core.json",
    }
    if summary["timings"]:
        summary["metrics"] = _timings_metrics_record(summary["timings"])
    try:
        import numpy

        summary["environment"]["numpy"] = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dependency
        pass
    SUMMARY_PATH.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
