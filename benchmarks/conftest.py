"""Shared benchmark infrastructure.

Each benchmark regenerates one table/figure of the paper: it times the
underlying simulation(s) via pytest-benchmark, asserts the paper's
qualitative claim on the produced data, and emits the same rows/series
the paper reports — both to the terminal (bypassing capture, so they
land in ``bench_output.txt``) and to ``benchmarks/results/<id>.txt``.

Scale is controlled by ``REPRO_SCALE`` (smoke / reduced / paper);
benchmarks default to the *reduced* preset, which preserves the shape
of every result at a laptop-friendly runtime.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments.presets import get_preset

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def preset():
    return get_preset()


@pytest.fixture(scope="session")
def workers():
    """Worker-process count for the sweep benchmarks.

    ``REPRO_WORKERS`` overrides (parsed by the runtime's own
    :func:`default_workers`); otherwise cap at 4 so benchmark timings
    stay comparable across machines.  Cell results are identical at
    any worker count — only wall-clock changes.
    """
    from repro.runtime.runner import default_workers

    if os.environ.get("REPRO_WORKERS"):
        return default_workers()
    return min(4, default_workers())


@pytest.fixture(scope="session")
def emit(request):
    """Print a report through the capture manager (so it is visible in
    piped output) and archive it under benchmarks/results/."""
    capture = request.config.pluginmanager.getplugin("capturemanager")
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(experiment_id: str, text: str) -> None:
        (RESULTS_DIR / f"{experiment_id}.txt").write_text(text + "\n")
        banner = f"\n===== {experiment_id} =====\n{text}\n"
        if capture is not None:
            with capture.global_and_fixture_disabled():
                print(banner)
        else:  # pragma: no cover - capture always present under pytest
            print(banner)

    return _emit
