"""Figure 6a — global homogeneity over the three-phase scenario.

Times one full Polystyrene run (K=4, the paper's middle setting); the
figure itself is rendered from the shared suite (all K values + the
T-Man baseline), which is cached across the benchmark session.
"""

from repro.experiments import fig6
from repro.experiments.scenario import ScenarioConfig, run_scenario
from repro.experiments.suite import scenario_name


def test_fig6a_homogeneity(benchmark, preset, emit):
    config = ScenarioConfig.from_preset(
        preset, protocol="polystyrene", replication=4, seed=0
    )
    benchmark.pedantic(run_scenario, args=(config,), rounds=1, iterations=1)

    figure = fig6.run_fig6(preset, seed=0)
    emit("fig6a", figure.report_homogeneity, data={"h_ref_after_failure": figure.h_ref_after_failure, "series": {k: v.series.get("homogeneity") for k, v in figure.results.items()}})

    results = figure.results
    tman = results[scenario_name("tman")]
    fr = preset.failure_round
    rr = preset.reinjection_round
    for k in (2, 4, 8):
        poly = results[scenario_name("polystyrene", k)]
        # Re-converges under the reference homogeneity shortly after
        # losing half the torus (paper: <10 rounds for all K at 3,200
        # nodes; higher K de-duplicates more copies and is slower).
        assert poly.reshaping_time is not None
        assert poly.reshaping_time <= 20
        # After reinjection, homogeneity returns near zero while T-Man
        # stays stuck at the parallel-grid offset (paper: 0.035 vs 0.35).
        assert poly.final("homogeneity") < tman.final("homogeneity") / 2
    # T-Man never recovers the shape on its own.
    assert tman.reshaping_time is None
    assert tman.series["homogeneity"][rr - 1] > 1.5 * tman.h_ref_after_failure
    benchmark.extra_info["reshaping_K4"] = results[
        scenario_name("polystyrene", 4)
    ].reshaping_time
