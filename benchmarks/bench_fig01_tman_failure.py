"""Figure 1 — T-Man alone loses the torus after a catastrophic failure.

Times the baseline scenario (convergence + half-torus crash, no
Polystyrene) and regenerates the paper's motivating snapshots.
"""

from repro.experiments import fig1


def test_fig1_tman_catastrophic_failure(benchmark, preset, emit):
    result = benchmark.pedantic(
        fig1.run_fig1, args=(preset,), kwargs={"seed": 0}, rounds=1, iterations=1
    )
    emit("fig1", result.report, data={"homogeneity_converged": result.homogeneity_converged, "homogeneity_after_failure": result.homogeneity_after_failure, "empty_fraction_converged": result.empty_fraction_converged, "empty_fraction_after_failure": result.empty_fraction_after_failure})
    # The paper's claim: the converged torus is uniform, and after the
    # failure the shape is lost for good (homogeneity stays high, half
    # the shape is empty).
    assert result.homogeneity_converged < 0.5
    assert result.homogeneity_after_failure > 4 * max(
        result.homogeneity_converged, 0.1
    )
    assert result.empty_fraction_after_failure > 0.35
    benchmark.extra_info["homogeneity_after_failure"] = (
        result.homogeneity_after_failure
    )
