"""Figure 10a — reshaping time vs network size (K ∈ {2,4,8}).

The paper reports near-logarithmic growth, reaching 14.08 rounds at
51,200 nodes with K=8.  The sweep sizes come from the active preset;
REPRO_SCALE=paper sweeps up to the full 320×160 torus.  The grid runs
through the parallel runtime (REPRO_WORKERS processes), which is what
makes the paper-scale sweep tractable.
"""

import math

from repro.experiments import fig10


def test_fig10a_scalability(benchmark, preset, emit, workers, engine):
    result = benchmark.pedantic(
        fig10.run_fig10a,
        args=(preset,),
        kwargs={
            "repetitions": 1,
            "base_seed": 0,
            "workers": workers,
            "engine": engine,
        },
        rounds=1,
        iterations=1,
    )
    emit("fig10a", result.report, data={"cells": result.cells})

    # Growth must be sub-linear (consistent with the paper's
    # near-logarithmic curve): quadrupling the network must not double
    # the reshaping time, and everything converges.
    by_k = {}
    for cell in result.cells:
        assert not math.isnan(cell.reshaping.mean), cell
        assert cell.non_converged == 0
        by_k.setdefault(cell.label, []).append((cell.n_nodes, cell.reshaping.mean))
    for label, series in by_k.items():
        series.sort()
        smallest_n, smallest_t = series[0]
        largest_n, largest_t = series[-1]
        assert largest_n >= 4 * smallest_n  # the sweep really spans sizes
        size_ratio = largest_n / smallest_n
        # Clearly sub-linear growth: K=2/K=4 track the paper's
        # near-logarithmic curve; K=8 grows faster (more redundant
        # copies to de-duplicate) but still far below linear.
        time_ratio = largest_t / max(smallest_t, 2.0)
        assert time_ratio <= 0.75 * size_ratio, (label, series)
        assert largest_t <= 40.0, (label, series)
