"""Figure 7b — communication cost per node per round.

T-Man position updates dominate the budget (93.6% at K=8 in the
paper); Polystyrene adds only migration traffic and incremental backup
deltas on top.
"""

import pytest

from repro.experiments import fig7
from repro.experiments.scenario import ScenarioConfig, run_scenario
from repro.experiments.suite import scenario_name


def test_fig7b_message_cost(benchmark, preset, emit):
    config = ScenarioConfig.from_preset(
        preset, protocol="polystyrene", replication=2, seed=0
    )
    benchmark.pedantic(run_scenario, args=(config,), rounds=1, iterations=1)

    figure = fig7.run_fig7(preset, seed=0)
    emit("fig7b", figure.report_messages, data={"tman_share": figure.tman_share, "series": {k: v.series.get("message_cost") for k, v in figure.results.items()}})

    fr = preset.failure_round
    tman = figure.results[scenario_name("tman")]
    tman_steady = tman.series["message_cost"][fr - 1]
    for k in (2, 4, 8):
        poly = figure.results[scenario_name("polystyrene", k)]
        # T-Man's own traffic dominates even with Polystyrene on top.
        assert figure.tman_share[scenario_name("polystyrene", k)] > 0.55
        # Steady-state total cost stays within a small factor of the
        # baseline (paper: "almost no additional cost").
        assert poly.series["message_cost"][fr - 1] < 2.5 * tman_steady
    # The baseline's cost is K-independent and flat across phases.
    assert tman.series["message_cost"][-1] == pytest.approx(
        tman_steady, rel=0.25
    )
