"""Distributed sweeps — wall-clock scaling over cluster workers.

A reduced Fig. 10b-style ablation grid (K = 4, SPLIT ∈ {basic,
advanced} × failure fractions × seeds) is drained through a shared
work queue by 1, 2, and 4 local worker processes.  The benchmark
asserts the two claims the cluster subsystem makes:

* the merged run is **identical per cell** (config hash + summary
  digest) to the same grid run serially;
* the queue actually scales: > 1.5x wall-clock at 4 workers vs 1 at
  the reduced scale and above on a machine with >= 4 CPUs (at smoke
  scale, or on fewer cores, process startup dominates the 128-node
  cells and only a sanity floor of 1.0x is required).

Fork-mode prefix sharing is deliberately *off* here so the measured
speedup is pure queue/worker scaling, not checkpoint reuse
(``bench_forksweep`` measures that separately).
"""

import os
import time

from repro.experiments.scenario import ScenarioConfig
from repro.runtime.cluster import diff_stores, open_queue, run_distributed_sweep
from repro.runtime.runner import ParallelRunner, grid_tasks
from repro.runtime.store import ResultStore
from repro.viz.tables import format_table

SPLITS = ("basic", "advanced")
FRACTIONS = (0.25, 0.5)
SEEDS = (0, 1)
WORKER_COUNTS = (1, 2, 4)


def _ablation_tasks(preset):
    fr = preset.failure_round
    tasks = []
    for split in SPLITS:
        base = ScenarioConfig(
            width=preset.width,
            height=preset.height,
            replication=4,
            split=split,
            failure_round=fr,
            reinjection_round=None,
            total_rounds=fr + 21,
            metrics=("homogeneity",),
        )
        tasks.extend(
            grid_tasks(base, {"failure_fraction": FRACTIONS, "seed": SEEDS})
        )
    return [
        type(task)(
            task_id=f"split={task.config.split}/{task.task_id}",
            config=task.config,
        )
        for task in tasks
    ]


def _timed_distributed(tasks, queue_path, store, workers):
    t0 = time.perf_counter()
    run_distributed_sweep(
        tasks,
        open_queue(queue_path),
        workers=workers,
        store=store,
        lease_s=600.0,
        fork=False,
        poll_s=0.05,
    )
    return time.perf_counter() - t0


def test_cluster_worker_scaling(benchmark, preset, emit, tmp_path):
    tasks = _ablation_tasks(preset)
    assert len(tasks) == len(SPLITS) * len(FRACTIONS) * len(SEEDS)

    serial = ResultStore(tmp_path / "serial.jsonl")
    t0 = time.perf_counter()
    cells = ParallelRunner(workers=1).run(tasks, store=serial, run_id="serial")
    serial_s = time.perf_counter() - t0
    assert all(cell.ok for cell in cells)

    wall = {}
    stores = {}
    for workers in WORKER_COUNTS:
        stores[workers] = ResultStore(tmp_path / f"dist-{workers}.jsonl")
        if workers == max(WORKER_COUNTS):
            benchmark.pedantic(
                _timed_distributed,
                args=(
                    tasks,
                    tmp_path / f"queue-{workers}",
                    stores[workers],
                    workers,
                ),
                rounds=1,
                iterations=1,
            )
            wall[workers] = benchmark.stats.stats.total
        else:
            wall[workers] = _timed_distributed(
                tasks, tmp_path / f"queue-{workers}", stores[workers], workers
            )

    # Correctness first: every worker count merges to the serial run.
    for workers in WORKER_COUNTS:
        diffs = diff_stores(serial, stores[workers], run_a="serial")
        assert diffs == [], (workers, diffs)

    speedup = wall[1] / wall[4] if wall[4] else float("inf")
    cpus = os.cpu_count() or 1
    # >1.5x is only physically possible with >=4 cores and cells heavy
    # enough to dwarf process startup (reduced scale and up); below
    # that the assertion degrades to "queue overhead does not blow up
    # wall-clock" (4 contending workers on 1 core measure ~0.9x).
    floor = 1.5 if (preset.n_nodes >= 512 and cpus >= 4) else 0.75
    rows = [["serial (in-process)", f"{serial_s:.2f}", "-"]]
    rows += [
        [f"{workers} worker(s)", f"{wall[workers]:.2f}",
         f"{wall[1] / wall[workers]:.2f}x"]
        for workers in WORKER_COUNTS
    ]
    emit(
        "cluster",
        format_table(
            ["mode", "wall-clock (s)", "vs 1 worker"],
            rows,
            title=(
                f"Distributed sweep scaling ({preset.name} scale, "
                f"{len(tasks)} cells, {cpus} CPUs): "
                f"{speedup:.2f}x at 4 workers"
            ),
        ),
        data={"rows": rows, "wall_s": wall, "serial_s": serial_s},
    )
    benchmark.extra_info["serial_s"] = round(serial_s, 3)
    benchmark.extra_info["speedup_4w"] = round(speedup, 3)
    assert speedup >= floor, (
        f"4 workers only {speedup:.2f}x faster than 1 (floor {floor}x); "
        f"walls={ {w: round(s, 2) for w, s in wall.items()} }"
    )
