"""Micro-benchmarks of the protocol's hot paths.

Not a paper artifact — these time the primitives everything else is
built from (torus distances, medoids, diameters, SPLIT functions, one
T-Man gossip cycle, one full protocol round) so performance regressions
are visible independently of the macro experiments.
"""

import numpy as np
import pytest

from repro.core.split import split_advanced, split_basic
from repro.experiments.scenario import ScenarioConfig, build_simulation
from repro.runtime import checkpoint
from repro.spaces import FlatTorus, diameter, medoid
from repro.types import DataPoint

TORUS = FlatTorus(80.0, 40.0)
RNG = np.random.default_rng(0)
COORDS_120 = [
    (float(x), float(y))
    for x, y in zip(RNG.uniform(0, 80, 120), RNG.uniform(0, 40, 120))
]
POINTS_20 = [DataPoint(i, c) for i, c in enumerate(COORDS_120[:20])]


def test_torus_distance_many(benchmark):
    out = benchmark(TORUS.distance_many, (40.0, 20.0), COORDS_120)
    assert len(out) == 120


def test_medoid_20_points(benchmark):
    result = benchmark(medoid, TORUS, COORDS_120[:20])
    assert result in COORDS_120[:20]


def test_diameter_20_points(benchmark):
    i, j = benchmark(diameter, TORUS, COORDS_120[:20])
    assert i != j


def test_split_basic_20_points(benchmark):
    left, right = benchmark(
        split_basic, TORUS, POINTS_20, (10.0, 10.0), (60.0, 30.0)
    )
    assert len(left) + len(right) == 20


def test_split_advanced_20_points(benchmark):
    left, right = benchmark(
        split_advanced, TORUS, POINTS_20, (10.0, 10.0), (60.0, 30.0)
    )
    assert len(left) + len(right) == 20


@pytest.fixture(scope="module")
def small_sim():
    config = ScenarioConfig(
        width=16,
        height=8,
        failure_round=None,
        reinjection_round=None,
        total_rounds=10_000,  # never reached; stepped manually
        metrics=("storage",),
        seed=0,
    )
    sim, _, _, _ = build_simulation(config)
    sim.run(5)  # warm views
    return sim


def test_full_protocol_round_128_nodes(benchmark, small_sim):
    benchmark(small_sim.step)


def test_checkpoint_snapshot_128_nodes(benchmark, small_sim):
    """Snapshot overhead for a warm 128-node simulation — the cost of
    pausing/forking a run, tracked so future PRs see regressions."""
    ck = benchmark(checkpoint.snapshot, small_sim)
    assert ck.round == small_sim.round
    benchmark.extra_info["checkpoint_bytes"] = checkpoint.checkpoint_size(ck)


def test_checkpoint_restore_128_nodes(benchmark, small_sim):
    ck = checkpoint.snapshot(small_sim)
    restored = benchmark(checkpoint.restore, ck)
    assert checkpoint.state_digest(restored) == checkpoint.state_digest(
        small_sim
    )


def test_checkpoint_save_load_roundtrip_128_nodes(benchmark, small_sim, tmp_path):
    """Disk round trip (pickle + fsync-free write + read back)."""
    ck = checkpoint.snapshot(small_sim)
    path = tmp_path / "bench.ckpt"

    def roundtrip():
        checkpoint.save(ck, path)
        return checkpoint.load(path)

    loaded = benchmark(roundtrip)
    assert loaded.round == ck.round
