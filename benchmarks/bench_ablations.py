"""Design-choice ablations called out in DESIGN.md (beyond the paper).

* backup placement: random (paper) vs localized neighbours — random
  must survive a *spatially correlated* failure far better;
* incremental vs full backup pushes — the delta optimisation must cut
  Polystyrene's own traffic share;
* failure-detection delay — recovery still works, just later.
"""

from repro.experiments.scenario import ScenarioConfig, run_scenario
from repro.metrics.messages import layer_share
from repro.viz.tables import format_table


def _short_config(preset, **overrides):
    base = dict(
        width=max(preset.width // 2, 8),
        height=max(preset.height // 2, 4),
        replication=4,
        failure_round=12,
        reinjection_round=None,
        total_rounds=45,
        metrics=("homogeneity",),
        seed=0,
    )
    base.update(overrides)
    return ScenarioConfig(**base)


def test_ablation_backup_placement(benchmark, preset, emit):
    def run_both():
        out = {}
        for placement in ("random", "neighbors"):
            config = _short_config(preset, backup_placement=placement)
            out[placement] = run_scenario(config)
        return out

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = [
        [name, f"{res.reliability:.1%}", res.reshaping_time or "never"]
        for name, res in results.items()
    ]
    emit(
        "ablation_backup_placement",
        format_table(
            ["placement", "reliability", "reshaping (rounds)"],
            rows,
            title=(
                "Backup placement under a spatially-correlated failure "
                "(paper Sec. III-D: random placement is the right call)"
            ),
        ),
        data={"rows": rows},
    )
    # Neighbour placement stores copies in the blast radius: reliability
    # collapses toward the unreplicated 50%.
    assert results["random"].reliability > results["neighbors"].reliability + 0.1


def test_ablation_incremental_backup(benchmark, preset, emit):
    def run_both():
        out = {}
        for incremental in (True, False):
            config = _short_config(
                preset,
                incremental_backup=incremental,
                metrics=("homogeneity", "message_cost"),
            )
            out[incremental] = run_scenario(config)
        return out

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    shares = {
        mode: 1.0 - layer_share(res.message_history, "tman")
        for mode, res in results.items()
    }
    rows = [
        [
            "incremental" if mode else "full copies",
            f"{share:.1%}",
            results[mode].reshaping_time or "never",
        ]
        for mode, share in shares.items()
    ]
    emit(
        "ablation_incremental_backup",
        format_table(
            ["backup mode", "Polystyrene traffic share", "reshaping"],
            rows,
            title="Incremental deltas vs full backup copies",
        ),
        data={"rows": rows},
    )
    assert shares[True] < shares[False]
    assert results[True].reshaping_time == results[False].reshaping_time


def test_ablation_detector_delay(benchmark, preset, emit):
    def run_sweep():
        out = {}
        for delay in (0, 2, 5):
            config = _short_config(preset, detector_delay=delay)
            out[delay] = run_scenario(config)
        return out

    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = [
        [delay, res.reshaping_time or "never", f"{res.reliability:.1%}"]
        for delay, res in results.items()
    ]
    emit(
        "ablation_detector_delay",
        format_table(
            ["FD delay (rounds)", "reshaping", "reliability"],
            rows,
            title="Imperfect failure detection (heartbeat latency)",
        ),
        data={"rows": rows},
    )
    assert all(res.reshaping_time is not None for res in results.values())
    assert results[5].reshaping_time >= results[0].reshaping_time
