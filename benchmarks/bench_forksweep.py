"""Phase-fork sweeps — fork-vs-cold wall-clock on a split ablation.

A Fig. 10b-style ablation (K = 4, SPLIT ∈ {basic, advanced}) crossed
with post-failure axes (failure fraction × observation window): every
cell of one split shares its Phase-1 convergence, so fork mode
simulates each prefix once, checkpoints it, and runs only the
continuations.  The benchmark asserts the two guarantees the
optimisation rests on:

* per-cell results are **byte-identical** between fork and cold mode;
* the fork sweep is >= 1.5x faster wall-clock at the reduced scale and
  above (at ``smoke`` scale the 128-node simulations are so cheap that
  checkpoint restore overhead dominates, so only >= 1.1x is required
  there).

Both modes run serially (``workers=1``): the speedup measured here is
algorithmic — Phase-1 rounds not simulated — not pool scheduling.
"""

import time

from repro.experiments.scenario import ScenarioConfig
from repro.runtime.forksweep import CheckpointCache, plan_fork_sweep, run_fork_sweep
from repro.runtime.runner import ParallelRunner, grid_tasks
from repro.runtime.store import summarize_result
from repro.viz.tables import format_table

SPLITS = ("basic", "advanced")
FRACTIONS = (0.25, 0.5, 0.75)


def _ablation_tasks(preset):
    fr = preset.failure_round
    tasks = []
    for split in SPLITS:
        base = ScenarioConfig(
            width=preset.width,
            height=preset.height,
            replication=4,
            split=split,
            failure_round=fr,
            reinjection_round=None,
            total_rounds=fr + 11,
            metrics=("homogeneity",),
            seed=0,
        )
        tasks.extend(
            grid_tasks(
                base,
                {
                    "failure_fraction": FRACTIONS,
                    "total_rounds": (fr + 11, fr + 21),
                },
            )
        )
    # grid_tasks ids do not mention the split; qualify them.
    return [
        type(task)(task_id=f"split={task.config.split}/{task.task_id}", config=task.config)
        for task in tasks
    ]


def test_fork_vs_cold_split_ablation(benchmark, preset, emit, tmp_path):
    tasks = _ablation_tasks(preset)
    plan = plan_fork_sweep(tasks)
    assert len(tasks) >= 8
    assert len(plan.groups) == len(SPLITS)  # one shared prefix per split

    t0 = time.perf_counter()
    cold = ParallelRunner(workers=1).run(tasks)
    cold_s = time.perf_counter() - t0

    cache = CheckpointCache(tmp_path / "checkpoints")
    forked = benchmark.pedantic(
        run_fork_sweep,
        args=(tasks,),
        kwargs={"workers": 1, "cache": cache},
        rounds=1,
        iterations=1,
    )
    fork_s = benchmark.stats.stats.total

    for cold_cell, fork_cell in zip(cold, forked):
        assert cold_cell.ok and fork_cell.ok, (cold_cell.error, fork_cell.error)
        assert fork_cell.forked_from is not None, fork_cell.task_id
        # Byte-identical: every series value, not just the summary.
        assert cold_cell.result.series == fork_cell.result.series
        assert cold_cell.result.n_alive == fork_cell.result.n_alive
        assert summarize_result(cold_cell.result) == summarize_result(
            fork_cell.result
        )

    speedup = cold_s / fork_s if fork_s else float("inf")
    floor = 1.5 if preset.n_nodes >= 512 else 1.1
    rows = [
        ["cold", f"{cold_s:.2f}", len(tasks), "-"],
        [
            "fork",
            f"{fork_s:.2f}",
            len(tasks),
            f"{len(plan.groups)} prefixes, {plan.rounds_saved} rounds saved",
        ],
    ]
    emit(
        "forksweep",
        format_table(
            ["mode", "wall-clock (s)", "cells", "sharing"],
            rows,
            title=(
                f"Fork-vs-cold split ablation ({preset.name} scale, "
                f"K=4, splits={'/'.join(SPLITS)}): {speedup:.2f}x"
            ),
        ),
        data={"rows": rows, "speedup": speedup},
    )
    benchmark.extra_info["cold_s"] = round(cold_s, 3)
    benchmark.extra_info["speedup"] = round(speedup, 3)
    assert speedup >= floor, (
        f"fork mode only {speedup:.2f}x faster than cold (floor {floor}x); "
        f"cold={cold_s:.2f}s fork={fork_s:.2f}s"
    )
