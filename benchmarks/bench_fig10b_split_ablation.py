"""Figure 10b — impact of the SPLIT function on reshaping time (K=4).

The paper: at 51,200 nodes the PD heuristic alone is ~2.8× faster than
SPLIT_BASIC, PD+MD ~2.9×.  At any scale the ordering must hold at the
largest swept size: advanced ≤ basic, and basic degrades fastest.
"""

import math

from repro.experiments import fig10


def test_fig10b_split_functions(benchmark, preset, emit, workers):
    result = benchmark.pedantic(
        fig10.run_fig10b,
        args=(preset,),
        kwargs={"repetitions": 1, "base_seed": 0, "workers": workers},
        rounds=1,
        iterations=1,
    )
    emit("fig10b", result.report, data={"cells": result.cells})

    largest = max(cell.n_nodes for cell in result.cells)
    at_largest = {
        cell.label: cell.reshaping.mean
        for cell in result.cells
        if cell.n_nodes == largest
    }
    advanced = at_largest["split=advanced"]
    basic = at_largest["split=basic"]
    assert not math.isnan(advanced)
    # Advanced must not be slower than basic at the largest size; at
    # paper scale the gap approaches 2.9x.
    assert advanced <= basic + 0.5, at_largest
    benchmark.extra_info["basic_over_advanced"] = (
        basic / advanced if advanced else float("nan")
    )
