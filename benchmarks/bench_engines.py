"""Batch engine vs event engine on the largest reduced Fig. 10a cell.

The batch-synchronous engine (``ScenarioConfig.engine="batch"``,
semantics version 2) exists to push past the event engine's per-node
Python floor.  This benchmark runs the ISSUE's reference workload — the
largest reduced Fig. 10a cell (48×24 torus, SPLIT_ADVANCED, failure at
round 20, 81 rounds, single process) — under both engines at K ∈ {4, 8}
and asserts:

* the batch engine is at least 4x faster on every cell (the
  receiver-bucketed kernels put the recorded trajectory near 7x on the
  1-CPU container; 4x is the regression floor for noisy shared
  runners — the sharper 6x K=4 gate lives in
  ``perf_smoke.py --engine-gate``);
* both engines converge (finite reshaping time) and agree on
  reliability to within a few points — the cheap single-seed sanity
  slice of the full equivalence suite in
  ``tests/test_engine_equivalence.py``.

An extra untimed K=4 batch run with the obs metrics enabled snapshots
the per-kernel wall-time histograms (``kernel.*``) into the emitted
record, so BENCH_core.json carries the kernel-level perf trajectory
alongside the engine walls.
"""

from __future__ import annotations

import time

from repro.experiments.scenario import ScenarioConfig, run_scenario
from repro.obs import metrics as obs_metrics

#: Regression floor asserted here; the measured numbers land in
#: benchmarks/results/engines.json and BENCH_core.json.
MIN_SPEEDUP = 4.0

CELL = dict(
    width=48,
    height=24,
    protocol="polystyrene",
    split="advanced",
    seed=0,
    failure_round=20,
    reinjection_round=None,
    total_rounds=81,
    metrics=("homogeneity",),
)


def _run(engine: str, replication: int):
    config = ScenarioConfig(engine=engine, replication=replication, **CELL)
    t0 = time.perf_counter()
    result = run_scenario(config)
    return time.perf_counter() - t0, result


def _kernel_histograms(replication: int = 4):
    """Per-kernel wall-time histograms of one batch cell: an untimed
    extra run with the metrics registry switched on (the timed runs
    above stay uninstrumented), filtered to the ``kernel.*`` timers."""
    registry = obs_metrics.registry()
    saved = registry.snapshot()
    registry.reset()
    obs_metrics.set_enabled(True)
    try:
        _run("batch", replication)
        snap = registry.snapshot()
    finally:
        obs_metrics.set_enabled(False)
        registry.reset()
        registry.merge_snapshot(saved)
    return {
        # Drop the raw reservoir ("res"): the summary stats are what
        # the perf trajectory tracks, and BENCH_core.json stays small.
        name: {k: v for k, v in hist.items() if k != "res"}
        for name, hist in snap["hists"].items()
        if name.startswith("kernel.")
    }


def test_batch_vs_event_largest_fig10a_cell(benchmark, emit):
    rows = []
    cells = {}

    def run_all():
        for k in (4, 8):
            batch_s, batch = _run("batch", k)
            event_s, event = _run("event", k)
            cells[k] = {
                "event_wall_s": round(event_s, 3),
                "batch_wall_s": round(batch_s, 3),
                "speedup": round(event_s / batch_s, 2),
                "event_reshaping": event.reshaping_time,
                "batch_reshaping": batch.reshaping_time,
                "event_reliability": event.reliability,
                "batch_reliability": batch.reliability,
            }
            rows.append((k, cells[k]))
        return cells

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    kernel_hists = _kernel_histograms()

    lines = [
        "Engine comparison — largest reduced fig10a cell "
        "(48x24, SPLIT_ADVANCED, failure@20, 81 rounds, 1 process)"
    ]
    for k, cell in rows:
        lines.append(
            f"  K={k}: event {cell['event_wall_s']:.2f}s, batch "
            f"{cell['batch_wall_s']:.2f}s -> {cell['speedup']:.2f}x "
            f"(reshaping {cell['event_reshaping']} vs "
            f"{cell['batch_reshaping']}, reliability "
            f"{cell['event_reliability']:.3f} vs "
            f"{cell['batch_reliability']:.3f})"
        )
    if kernel_hists:
        lines.append("  per-kernel wall (K=4 batch cell, obs-enabled run):")
        for name in sorted(kernel_hists):
            h = kernel_hists[name]
            lines.append(
                f"    {name}: {h['count']:.0f} calls, "
                f"sum {h['sum']:.3f}s, p95 {h['p95'] * 1e3:.2f}ms"
            )
    report = "\n".join(lines)
    emit(
        "engines",
        report,
        data={
            "cells": cells,
            "min_speedup": MIN_SPEEDUP,
            "kernel_hists": kernel_hists,
        },
        engine="mixed",
    )

    for k, cell in rows:
        assert cell["speedup"] >= MIN_SPEEDUP, (k, cell)
        assert cell["event_reshaping"] is not None, (k, cell)
        assert cell["batch_reshaping"] is not None, (k, cell)
        assert abs(cell["event_reliability"] - cell["batch_reliability"]) < 0.05
