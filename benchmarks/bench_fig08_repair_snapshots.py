"""Figure 8 — snapshots of the repair (K=4): started vs completed.

Two rounds after losing half the torus the survivors have begun
flowing over the hole; eight rounds after, the torus is re-covered.
"""

from repro.experiments import fig89


def test_fig8_repair_snapshots(benchmark, preset, emit):
    result = benchmark.pedantic(
        fig89.run_fig89, args=(preset,), kwargs={"seed": 0}, rounds=1, iterations=1
    )
    emit("fig8", result.report)
    # Both snapshots show the survivors covering the whole torus again
    # — a T-Man run leaves ~half the cells empty instead (see fig9's
    # tman snapshot for the contrast).  Cell counts at small presets
    # are noisy, so we assert coverage, not monotonicity.
    assert result.empty_fraction_repair_started < 0.3
    assert result.empty_fraction_repair_done < 0.25
