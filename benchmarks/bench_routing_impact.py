"""Routing impact of shape loss (paper Sec. I's motivation, quantified).

Not a numbered figure in the paper, but the claim behind all of them:
"Losing the shape of the topology might affect system performance,
e.g. routing".  Routes greedy messages to the original data points
after the catastrophic failure, with and without Polystyrene.
"""

import random

from repro.experiments.scenario import ScenarioConfig, build_simulation
from repro.routing import evaluate_routing, point_targets
from repro.sim.failures import half_space_failure
from repro.viz.tables import format_table


def _run(preset, protocol):
    config = ScenarioConfig(
        width=max(preset.width // 2, 16),
        height=max(preset.height // 2, 8),
        protocol=protocol,
        replication=4,
        failure_round=12,
        reinjection_round=None,
        total_rounds=42,
        seed=0,
        metrics=("homogeneity",),
    )
    sim, _, _, points = build_simulation(config)
    sim.schedule(12, half_space_failure(0, config.failure_cut()))
    sim.run(42)
    return sim, points


def test_routing_after_catastrophe(benchmark, preset, emit):
    def run_both():
        out = {}
        for protocol in ("tman", "polystyrene"):
            sim, points = _run(preset, protocol)
            out[protocol] = evaluate_routing(
                sim,
                sim.space,
                point_targets(points),
                n_routes=200,
                tolerance=1.0,
                rng=random.Random(1),
            )
        return out

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = [
        [
            name,
            f"{q.delivery_rate:.1%}",
            f"{q.local_minimum_rate:.1%}",
            f"{q.mean_hops_delivered:.1f}",
        ]
        for name, q in results.items()
    ]
    emit(
        "routing_impact",
        format_table(
            ["protocol", "delivery rate", "stuck (local minimum)", "hops"],
            rows,
            title=(
                "Greedy routing to the original data points after losing "
                "half the torus"
            ),
        ),
        data={"rows": rows},
    )
    assert results["polystyrene"].delivery_rate > 0.9
    assert (
        results["polystyrene"].delivery_rate
        > results["tman"].delivery_rate + 0.15
    )
