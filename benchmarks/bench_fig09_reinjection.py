"""Figure 9 — snapshots after reinjection: T-Man vs Polystyrene.

T-Man's fresh nodes sit on their parallel grid while its survivors
crowd the old half; Polystyrene redistributes everyone uniformly.
"""

from repro.experiments import fig89


def test_fig9_reinjection_snapshots(benchmark, preset, emit):
    result = benchmark.pedantic(
        fig89.run_fig89, args=(preset,), kwargs={"seed": 0}, rounds=1, iterations=1
    )
    emit("fig9", result.report)
    # Polystyrene's coverage after reinjection is at least as uniform
    # as T-Man's, and essentially hole-free.
    assert result.empty_fraction_poly_reinjected <= (
        result.empty_fraction_tman_reinjected + 0.05
    )
    assert result.empty_fraction_poly_reinjected < 0.15
