"""Figure 6b — proximity of neighbourhoods over the scenario.

Polystyrene must keep near-optimal neighbourhoods while reshaping
(paper: 1.50 vs T-Man's 1.005 after the failure; on par after
reinjection).
"""

from repro.experiments import fig6
from repro.experiments.scenario import ScenarioConfig, run_scenario
from repro.experiments.suite import scenario_name


def test_fig6b_proximity(benchmark, preset, emit):
    config = ScenarioConfig.from_preset(
        preset, protocol="tman", seed=0
    )
    benchmark.pedantic(run_scenario, args=(config,), rounds=1, iterations=1)

    figure = fig6.run_fig6(preset, seed=0)
    emit("fig6b", figure.report_proximity, data={"series": {k: v.series.get("proximity") for k, v in figure.results.items()}})

    results = figure.results
    tman = results[scenario_name("tman")]
    fr = preset.failure_round
    for k in (2, 4, 8):
        poly = results[scenario_name("polystyrene", k)]
        # During the failure phase Polystyrene's neighbourhoods stay
        # within a small factor of the optimum (grid step = 1).
        assert poly.series["proximity"][fr + 10] < 3.0
        # After reinjection both configurations are on par.
        assert poly.final("proximity") < tman.final("proximity") * 1.5 + 0.5
    assert tman.series["proximity"][fr - 1] < 1.5  # baseline converged
