"""Figure 7a — memory overhead: average stored points per node.

Steady state stores 1+K points per node; losing half the nodes roughly
doubles that, with a transient spike from eager re-replication that
migration de-duplicates.
"""

import pytest

from repro.experiments import fig7
from repro.experiments.scenario import ScenarioConfig, run_scenario
from repro.experiments.suite import scenario_name


def test_fig7a_memory_overhead(benchmark, preset, emit):
    config = ScenarioConfig.from_preset(
        preset, protocol="polystyrene", replication=8, seed=0
    )
    benchmark.pedantic(run_scenario, args=(config,), rounds=1, iterations=1)

    figure = fig7.run_fig7(preset, seed=0)
    emit("fig7a", figure.report_memory, data={"series": {k: v.series.get("storage") for k, v in figure.results.items()}})

    fr = preset.failure_round
    rr = preset.reinjection_round
    for k in (2, 4, 8):
        poly = figure.results[scenario_name("polystyrene", k)]
        storage = poly.series["storage"]
        # Steady state ~= 1+K (paper Fig. 7a).
        assert storage[fr - 1] == pytest.approx(1 + k, rel=0.2)
        # Roughly doubled after the failure (half the hosts remain).
        assert 1.3 * (1 + k) < storage[rr - 1] < 3.2 * (1 + k)
    tman = figure.results[scenario_name("tman")]
    assert max(tman.series["storage"]) <= 1.0
