"""Performance smoke gate for the array simulation core.

Runs one reduced Fig. 10a-style cell single-process and compares its
wall-clock against the recorded pre-array-core (seed) baseline in
``benchmarks/baseline_core.json``.  Because CI machines differ from the
machine the baseline was recorded on, both sides are normalised by a
fixed calibration workload (small-array NumPy kernels + Python loop —
the same op mix the simulator spends its time in) measured on the same
host at the same moment.

The gate fails when the array core is *slower than* ``--threshold``
times the normalised seed baseline (default 2.0 — a regression guard:
whatever else changes, the core must never fall to twice the seed's
wall-clock; the recorded measurements in the baseline file put it well
below 1x).

A second gate covers the execution engines: ``--engine-gate`` runs the
largest reduced Fig. 10a cell under both the event engine and the batch
engine (``ScenarioConfig.engine="batch"``, semantics version 2) in this
same process and fails unless batch is at least ``--engine-threshold``
times faster (default 6.0; the recorded trajectory in
``baseline_core.json`` puts it near 7x on the 1-CPU container).

A third gate covers the hot merge kernel itself: ``--kernel-gate``
micro-benchmarks ``dedup_rank_truncate`` — the receiver-bucketed
implementation against the retained global-sort reference — at the
(receivers, view) shapes of the reduced and paper presets, verifies the
outputs match exactly, and fails unless the bucketed kernel is at least
``--kernel-threshold`` times faster at every shape.

Usage::

    python benchmarks/perf_smoke.py            # gate (exit 1 on fail)
    python benchmarks/perf_smoke.py --record   # re-record current side
    python benchmarks/perf_smoke.py --engine batch   # gate cell, batch engine
    python benchmarks/perf_smoke.py --engine-gate    # batch >= 6x event
    python benchmarks/perf_smoke.py --kernel-gate    # bucketed >= 2x sort
    python benchmarks/perf_smoke.py --obs-gate       # disabled obs <= 2%
    python benchmarks/perf_smoke.py --mem-gate       # tracked peak vs baseline
    python benchmarks/perf_smoke.py --mem-gate --record   # re-record peak
    python benchmarks/perf_smoke.py --mem-profile-paper --record  # 51k nodes
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

BASELINE_PATH = Path(__file__).parent / "baseline_core.json"

#: The gate cell: a reduced Fig. 10a cell (half the reduced preset's
#: largest torus), heavy enough to exercise every layer, light enough
#: for CI.
CELL = dict(
    width=24,
    height=12,
    protocol="polystyrene",
    replication=4,
    split="advanced",
    seed=0,
    failure_round=10,
    reinjection_round=None,
    total_rounds=30,
    metrics=("homogeneity",),
)


def calibrate(repeats: int = 40) -> float:
    """Seconds for a fixed machine-speed probe (deterministic)."""
    rng = np.random.default_rng(0)
    batch = rng.random((100, 2)) * 10.0
    periods = np.array([48.0, 24.0])
    acc = 0.0
    t0 = time.perf_counter()
    for _ in range(repeats):
        for i in range(200):
            diff = np.abs(batch - batch[i % 100]) % periods
            diff = np.minimum(diff, periods - diff)
            d2 = np.einsum("ij,ij->i", diff, diff)
            order = np.lexsort((np.arange(100), d2))
            acc += float(d2[order[0]])
        # A dash of pure-Python dict work, mirroring the gossip merges.
        view = {}
        for i in range(2000):
            view[i % 97] = (float(i), float(i % 7))
        acc += len(view)
    elapsed = time.perf_counter() - t0
    assert acc >= 0.0
    return elapsed


#: The engine-gate cell: the largest reduced Fig. 10a cell (48x24,
#: K=4, SPLIT_ADVANCED) — the workload the ISSUE's batch-engine target
#: is recorded against in BENCH_core.json/baseline_core.json.
ENGINE_GATE_CELL = dict(
    width=48,
    height=24,
    protocol="polystyrene",
    replication=4,
    split="advanced",
    seed=0,
    failure_round=20,
    reinjection_round=None,
    total_rounds=81,
    metrics=("homogeneity",),
)


def run_cell(engine: str = "event", cell: dict = CELL) -> float:
    from repro.experiments.scenario import ScenarioConfig, prepare_scenario

    config = ScenarioConfig(engine=engine, **cell)
    sim, *_ = prepare_scenario(config)
    t0 = time.perf_counter()
    sim.run(cell["total_rounds"])
    return time.perf_counter() - t0


def engine_gate(threshold: float) -> int:
    """Fail unless the batch engine beats the event engine by at least
    ``threshold`` x on the largest reduced Fig. 10a cell."""
    batch = run_cell("batch", ENGINE_GATE_CELL)
    event = run_cell("event", ENGINE_GATE_CELL)
    speedup = event / batch
    print(
        f"engine gate (48x24 K=4, 81 rounds): event {event:.2f}s, "
        f"batch {batch:.2f}s -> {speedup:.2f}x (threshold {threshold:.1f}x)"
    )
    if speedup < threshold:
        print(
            f"FAIL: batch engine is only {speedup:.2f}x the event engine "
            f"(gate requires >= {threshold:.1f}x)"
        )
        return 1
    print(f"OK: batch engine {speedup:.2f}x faster than event")
    return 0


#: (receivers, entries-per-receiver, cap) shapes for --kernel-gate:
#: receivers from the preset torus grids (the largest reduced sweep
#: grid — the engine-gate cell — and the paper preset's main grid),
#: ~140 incoming entries per receiver (the instrumented median of the
#: T-Man merge at the gate cell) ranked down to the view cap.
KERNEL_GATE_SHAPES = (
    ("reduced 48x24", 48 * 24, 140, 100),
    ("paper 80x40", 80 * 40, 140, 100),
)


def kernel_gate(threshold: float, repeats: int = 5) -> int:
    """Fail unless the receiver-bucketed ``dedup_rank_truncate`` beats
    the retained global-sort reference by at least ``threshold`` x at
    every preset shape (min-of-``repeats`` per side; outputs are also
    checked for exact equality, so the speed claim cannot drift apart
    from the equivalence claim)."""
    from repro.sim.batch import kernels

    def best_of(fn, *args):
        best, out = float("inf"), None
        for _ in range(repeats):
            t0 = time.perf_counter()
            out = fn(*args)
            best = min(best, time.perf_counter() - t0)
        return best, out

    failed = False
    for label, n_recv, per, cap in KERNEL_GATE_SHAPES:
        rng = np.random.default_rng(0)
        total = n_recv * per
        recv = np.repeat(np.arange(n_recv, dtype=np.int64), per)
        ids = rng.integers(0, n_recv, total).astype(np.int64)
        ages = rng.integers(0, 50, total).astype(np.int64)
        dists = rng.random(total)

        def dist_of(kept, dists=dists):
            return dists[kept]

        t_ref, out_ref = best_of(
            kernels.dedup_rank_truncate_reference, recv, ids, dist_of, cap, ages
        )
        t_new, out_new = best_of(
            kernels.dedup_rank_truncate_numpy, recv, ids, dist_of, cap, ages
        )
        if not all(np.array_equal(a, b) for a, b in zip(out_ref, out_new)):
            print(f"FAIL: {label}: bucketed kernel output differs from reference")
            failed = True
            continue
        speedup = t_ref / t_new
        print(
            f"kernel gate {label} (R={total}, cap={cap}): "
            f"sort {t_ref * 1e3:.2f}ms, bucketed {t_new * 1e3:.2f}ms -> "
            f"{speedup:.2f}x (threshold {threshold:.1f}x)"
        )
        if speedup < threshold:
            print(
                f"FAIL: {label}: bucketed dedup_rank_truncate is only "
                f"{speedup:.2f}x the sort-based reference "
                f"(gate requires >= {threshold:.1f}x)"
            )
            failed = True
    if failed:
        return 1
    print(f"OK: bucketed dedup_rank_truncate >= {threshold:.1f}x at every shape")
    return 0


def _unwrap_timed() -> list:
    """Swap every ``@timed``-wrapped kernel back to its undecorated
    original (module attributes and the split-dispatch registry) and
    return an undo list of ``(container, name, wrapped)``."""
    import repro.core.split as core_split
    import repro.sim.batch.kernels as batch_kernels
    import repro.sim.batch.split as batch_split_mod

    containers = [
        vars(core_split),
        vars(batch_kernels),
        vars(batch_split_mod),
        core_split._SPLITS,
    ]
    undo = []
    for container in containers:
        for name, value in list(container.items()):
            if callable(value) and hasattr(value, "__obs_timed__"):
                undo.append((container, name, value))
                container[name] = value.__wrapped__
    return undo


def _vanilla_step(self):
    """Replica of the pre-instrumentation ``Simulation.step`` body — the
    uninstrumented baseline the obs gate compares against."""
    for event in self._events.pop(self.round, []):
        event(self)
    for layer in self.layers:
        layer.step(self)
    completed = self.round
    self.meter.end_round()
    for observer in self.observers:
        observer.on_round_end(self)
    if self.retention_rounds is not None:
        self.network.prune_dead(completed - self.retention_rounds)
    self.round += 1
    return completed


def obs_gate(threshold: float, repeats: int = 5) -> int:
    """Fail when the *disabled* observability path costs more than
    ``threshold`` (fractional) over an uninstrumented build.

    Interleaved min-of-N with alternating order: each repeat runs the
    gate cell once with the kernels unwrapped and ``Simulation.step``
    swapped for the vanilla replica and once with the instrumentation
    in place (but disabled, as it ships), flipping which goes first so
    neither side systematically benefits from running second in the
    warm process; the minima are compared so one background hiccup
    cannot fail the gate.  The per-exchange counter calls stay on both
    sides (they cannot be unwrapped without rewriting the callers);
    they are one global-check function call per exchange.

    The instrumented side carries *both* disabled fast paths: the
    metrics checks and the span-tracing checks (``obs.trace.ENABLED``
    in ``Simulation.step``, per layer, and inside every ``@timed``
    kernel wrapper), so this single budget covers the whole
    observability surface.
    """
    from repro.obs import metrics as obs_metrics
    from repro.obs import trace as obs_trace
    from repro.sim.engine import Simulation

    assert not obs_metrics.ENABLED, "obs gate requires metrics disabled"
    assert not obs_trace.ENABLED, "obs gate requires tracing disabled"
    instrumented_step = Simulation.step

    def run_vanilla() -> float:
        undo = _unwrap_timed()
        Simulation.step = _vanilla_step
        try:
            return run_cell()
        finally:
            Simulation.step = instrumented_step
            for container, name, value in undo:
                container[name] = value

    vanilla, instrumented = [], []
    for i in range(repeats):
        if i % 2 == 0:
            vanilla.append(run_vanilla())
            instrumented.append(run_cell())
        else:
            instrumented.append(run_cell())
            vanilla.append(run_vanilla())
    base, inst = min(vanilla), min(instrumented)
    overhead = inst / base - 1.0
    print(
        f"obs gate (disabled-path overhead): vanilla {base:.3f}s, "
        f"instrumented {inst:.3f}s -> {overhead * 100:+.2f}% "
        f"(threshold {threshold * 100:.0f}%)"
    )
    if overhead > threshold:
        print(
            f"FAIL: disabled observability costs {overhead * 100:.2f}% "
            f"(gate allows {threshold * 100:.0f}%)"
        )
        return 1
    print(f"OK: disabled observability within {threshold * 100:.0f}%")
    return 0


def _run_with_ledger(cell: dict) -> dict:
    """Run one batch cell with the memory ledger (and metrics, which
    drive its round stamps) enabled, and return the ledger snapshot."""
    from repro.obs import mem as obs_mem
    from repro.obs import metrics as obs_metrics

    was_metrics = obs_metrics.ENABLED
    obs_metrics.set_enabled(True)
    obs_mem.reset()
    obs_mem.set_enabled(True)
    try:
        wall = run_cell("batch", cell)
        snap = obs_mem.snapshot()
    finally:
        obs_mem.set_enabled(False)
        obs_mem.reset()
        obs_metrics.set_enabled(was_metrics)
        obs_metrics.registry().reset()
    snap["wall_s"] = wall
    return snap


def _fmt_mb(n: float) -> str:
    return f"{n / 1e6:.1f}MB"


def mem_gate(threshold: float, record: bool) -> int:
    """Gate the batch engine's tracked peak bytes on the reduced
    fig10a gate cell against the recorded baseline (``--record``
    re-records it).  Catches allocation regressions — a kernel that
    starts padding quadratically, a view table that stops reusing its
    arrays — that wall-clock gates miss on small cells."""
    snap = _run_with_ledger(ENGINE_GATE_CELL)
    peak = snap["total"]["peak"]
    families = {
        name: fam["peak"] for name, fam in sorted(snap["families"].items())
    }
    by_peak = ", ".join(
        f"{name} {_fmt_mb(peak_b)}"
        for name, peak_b in sorted(
            families.items(), key=lambda kv: kv[1], reverse=True
        )
    )
    print(
        f"mem gate (48x24 K=4, 81 rounds, batch): tracked peak "
        f"{_fmt_mb(peak)} at round {snap['total']['peak_round']} "
        f"(RSS peak {_fmt_mb(snap['peak_rss_bytes'])})"
    )
    print(f"  per family: {by_peak}")
    baseline = json.loads(BASELINE_PATH.read_text(encoding="utf8"))
    if record:
        baseline["mem_gate"] = {
            "cell": "48x24 torus, polystyrene K=4 advanced, failure@20, "
            "81 rounds, batch engine",
            "peak_tracked_bytes": peak,
            "peak_round": snap["total"]["peak_round"],
            "peak_rss_bytes": snap["peak_rss_bytes"],
            "families": families,
        }
        BASELINE_PATH.write_text(
            json.dumps(baseline, indent=2, sort_keys=True) + "\n"
        )
        print(f"recorded to {BASELINE_PATH}")
        return 0
    recorded = baseline.get("mem_gate")
    if not recorded:
        print(
            "FAIL: no mem_gate baseline recorded "
            "(run --mem-gate --record first)"
        )
        return 1
    allowed = recorded["peak_tracked_bytes"] * threshold
    ratio = peak / recorded["peak_tracked_bytes"]
    print(
        f"  baseline {_fmt_mb(recorded['peak_tracked_bytes'])} -> "
        f"ratio {ratio:.3f} (threshold {threshold:.2f}x)"
    )
    if peak > allowed:
        print(
            f"FAIL: tracked peak {_fmt_mb(peak)} exceeds "
            f"{threshold:.2f}x the recorded baseline "
            f"{_fmt_mb(recorded['peak_tracked_bytes'])}"
        )
        return 1
    print(f"OK: tracked peak within {threshold:.2f}x of baseline")
    return 0


#: The paper-scale memory-profile cell: the paper preset's 51,200-node
#: torus (Fig. 10a's largest grid).  Memory peaks early — the view
#: tables and pad buffers reach steady-state shape within the bootstrap
#: plus a few repair rounds — so 30 rounds suffice for the profile
#: without paying for the full 140-round trajectory.  Domain metrics
#: are off: this cell profiles bytes, not convergence.
PAPER_MEM_CELL = dict(
    width=320,
    height=160,
    protocol="polystyrene",
    replication=4,
    split="advanced",
    seed=0,
    failure_round=10,
    reinjection_round=None,
    total_rounds=30,
    metrics=(),
)


def mem_profile_paper(record: bool) -> int:
    """Run the 51k-node paper preset once under the batch engine with
    the ledger on and report (optionally record) the per-family peak
    bytes — the paper-scale memory profile ROADMAP item 1 asks for."""
    snap = _run_with_ledger(PAPER_MEM_CELL)
    peak = snap["total"]["peak"]
    print(
        f"paper memory profile (320x160 = 51200 nodes, 30 rounds, batch): "
        f"wall {snap['wall_s']:.1f}s, tracked peak {_fmt_mb(peak)} at round "
        f"{snap['total']['peak_round']}, RSS peak {_fmt_mb(snap['peak_rss_bytes'])}"
    )
    for name, fam in sorted(
        snap["families"].items(), key=lambda kv: kv[1]["peak"], reverse=True
    ):
        print(
            f"  {name:<16} peak {_fmt_mb(fam['peak']):>10} "
            f"at round {fam['peak_round']}"
        )
    top_sites = sorted(
        snap["sites"].items(), key=lambda kv: kv[1]["peak"], reverse=True
    )[:8]
    for name, site in top_sites:
        print(
            f"    {name:<34} {_fmt_mb(site['peak']):>10} "
            f"({site['family']}, round {site['peak_round']})"
        )
    if record:
        baseline = json.loads(BASELINE_PATH.read_text(encoding="utf8"))
        baseline["paper_memory_profile"] = {
            "cell": "320x160 torus (51200 nodes), polystyrene K=4 advanced, "
            "failure@10, 30 rounds, batch engine",
            "wall_s": round(snap["wall_s"], 3),
            "peak_tracked_bytes": peak,
            "peak_round": snap["total"]["peak_round"],
            "peak_rss_bytes": snap["peak_rss_bytes"],
            "families": {
                name: fam["peak"]
                for name, fam in sorted(snap["families"].items())
            },
            "top_sites": {
                name: {
                    "family": site["family"],
                    "peak_bytes": site["peak"],
                    "peak_round": site["peak_round"],
                }
                for name, site in top_sites
            },
        }
        BASELINE_PATH.write_text(
            json.dumps(baseline, indent=2, sort_keys=True) + "\n"
        )
        print(f"recorded to {BASELINE_PATH}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--threshold",
        type=float,
        default=2.0,
        help="max allowed (normalised cell time) / (normalised seed "
        "baseline); 2.0 fails only when the core is slower than twice "
        "the seed (regression guard)",
    )
    parser.add_argument(
        "--record",
        action="store_true",
        help="record the current measurement as 'array_core' in the "
        "baseline file instead of gating",
    )
    parser.add_argument(
        "--engine",
        choices=("event", "batch"),
        default="event",
        help="execution engine for the gate cell (default: event)",
    )
    parser.add_argument(
        "--engine-gate",
        action="store_true",
        help="instead of the seed-baseline gate, run the largest "
        "reduced fig10a cell under both engines and fail if batch is "
        "not >= --engine-threshold times faster than event",
    )
    parser.add_argument(
        "--engine-threshold",
        type=float,
        default=6.0,
        help="min batch-over-event speedup for --engine-gate (default 6.0)",
    )
    parser.add_argument(
        "--kernel-gate",
        action="store_true",
        help="micro-benchmark the receiver-bucketed dedup_rank_truncate "
        "against the retained global-sort reference at the reduced and "
        "paper preset shapes and fail if it is not >= --kernel-threshold "
        "times faster (outputs are also checked for exact equality)",
    )
    parser.add_argument(
        "--kernel-threshold",
        type=float,
        default=2.0,
        help="min bucketed-over-sort speedup for --kernel-gate "
        "(default 2.0)",
    )
    parser.add_argument(
        "--obs-gate",
        action="store_true",
        help="gate the observability instrumentation's disabled-path "
        "overhead: interleaved min-of-3 of the gate cell, vanilla "
        "(unwrapped kernels + pre-instrumentation step) vs shipped "
        "(instrumented but disabled)",
    )
    parser.add_argument(
        "--obs-threshold",
        type=float,
        default=0.02,
        help="max fractional disabled-path overhead for --obs-gate "
        "(default 0.02 = 2%%)",
    )
    parser.add_argument(
        "--mem-gate",
        action="store_true",
        help="gate the batch engine's ledger-tracked peak bytes on the "
        "largest reduced fig10a cell against the recorded baseline "
        "(with --record: re-record the baseline)",
    )
    parser.add_argument(
        "--mem-threshold",
        type=float,
        default=1.25,
        help="max allowed (tracked peak) / (recorded peak) for "
        "--mem-gate (default 1.25)",
    )
    parser.add_argument(
        "--mem-profile-paper",
        action="store_true",
        help="run the 51k-node paper preset (320x160) once under the "
        "batch engine with the memory ledger on and print the "
        "per-family/per-site peak-byte profile (with --record: save it "
        "as 'paper_memory_profile' in the baseline file)",
    )
    args = parser.parse_args(argv)

    if args.engine_gate:
        return engine_gate(args.engine_threshold)
    if args.kernel_gate:
        return kernel_gate(args.kernel_threshold)
    if args.obs_gate:
        return obs_gate(args.obs_threshold)
    if args.mem_gate:
        return mem_gate(args.mem_threshold, args.record)
    if args.mem_profile_paper:
        return mem_profile_paper(args.record)

    baseline = json.loads(BASELINE_PATH.read_text(encoding="utf8"))
    calib = calibrate()
    wall = run_cell(args.engine)
    norm = wall / calib
    seed = baseline["gate_cell"]["seed"]
    seed_norm = seed["wall_s"] / seed["calib_s"]
    ratio = norm / seed_norm
    print(
        f"cell wall {wall:.2f}s, calibration {calib:.2f}s, "
        f"normalised {norm:.3f} (seed baseline {seed_norm:.3f}, "
        f"ratio {ratio:.3f}, threshold {args.threshold})"
    )
    if args.record:
        key = "array_core" if args.engine == "event" else "batch_engine"
        baseline["gate_cell"][key] = {
            "wall_s": round(wall, 3),
            "calib_s": round(calib, 3),
        }
        BASELINE_PATH.write_text(
            json.dumps(baseline, indent=2, sort_keys=True) + "\n"
        )
        print(f"recorded to {BASELINE_PATH}")
        return 0
    if ratio > args.threshold:
        print(
            f"FAIL: array core runs at {ratio:.2f}x the seed baseline "
            f"wall-clock (gate allows at most {args.threshold:.1f}x)"
        )
        return 1
    print(
        f"OK: array core runs at {ratio:.2f}x the seed baseline "
        f"wall-clock ({1 / ratio:.2f}x speedup vs recorded seed)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
