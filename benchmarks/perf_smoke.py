"""Performance smoke gate for the array simulation core.

Runs one reduced Fig. 10a-style cell single-process and compares its
wall-clock against the recorded pre-array-core (seed) baseline in
``benchmarks/baseline_core.json``.  Because CI machines differ from the
machine the baseline was recorded on, both sides are normalised by a
fixed calibration workload (small-array NumPy kernels + Python loop —
the same op mix the simulator spends its time in) measured on the same
host at the same moment.

The gate fails when the array core is *slower than* ``--threshold``
times the normalised seed baseline (default 2.0 — a regression guard:
whatever else changes, the core must never fall to twice the seed's
wall-clock; the recorded measurements in the baseline file put it well
below 1x).

Usage::

    python benchmarks/perf_smoke.py            # gate (exit 1 on fail)
    python benchmarks/perf_smoke.py --record   # re-record current side
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

BASELINE_PATH = Path(__file__).parent / "baseline_core.json"

#: The gate cell: a reduced Fig. 10a cell (half the reduced preset's
#: largest torus), heavy enough to exercise every layer, light enough
#: for CI.
CELL = dict(
    width=24,
    height=12,
    protocol="polystyrene",
    replication=4,
    split="advanced",
    seed=0,
    failure_round=10,
    reinjection_round=None,
    total_rounds=30,
    metrics=("homogeneity",),
)


def calibrate(repeats: int = 40) -> float:
    """Seconds for a fixed machine-speed probe (deterministic)."""
    rng = np.random.default_rng(0)
    batch = rng.random((100, 2)) * 10.0
    periods = np.array([48.0, 24.0])
    acc = 0.0
    t0 = time.perf_counter()
    for _ in range(repeats):
        for i in range(200):
            diff = np.abs(batch - batch[i % 100]) % periods
            diff = np.minimum(diff, periods - diff)
            d2 = np.einsum("ij,ij->i", diff, diff)
            order = np.lexsort((np.arange(100), d2))
            acc += float(d2[order[0]])
        # A dash of pure-Python dict work, mirroring the gossip merges.
        view = {}
        for i in range(2000):
            view[i % 97] = (float(i), float(i % 7))
        acc += len(view)
    elapsed = time.perf_counter() - t0
    assert acc >= 0.0
    return elapsed


def run_cell() -> float:
    from repro.experiments.scenario import ScenarioConfig, prepare_scenario

    config = ScenarioConfig(**CELL)
    sim, *_ = prepare_scenario(config)
    t0 = time.perf_counter()
    sim.run(CELL["total_rounds"])
    return time.perf_counter() - t0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--threshold",
        type=float,
        default=2.0,
        help="max allowed (normalised cell time) / (normalised seed "
        "baseline); 2.0 fails only when the core is slower than twice "
        "the seed (regression guard)",
    )
    parser.add_argument(
        "--record",
        action="store_true",
        help="record the current measurement as 'array_core' in the "
        "baseline file instead of gating",
    )
    args = parser.parse_args(argv)

    baseline = json.loads(BASELINE_PATH.read_text(encoding="utf8"))
    calib = calibrate()
    wall = run_cell()
    norm = wall / calib
    seed = baseline["gate_cell"]["seed"]
    seed_norm = seed["wall_s"] / seed["calib_s"]
    ratio = norm / seed_norm
    print(
        f"cell wall {wall:.2f}s, calibration {calib:.2f}s, "
        f"normalised {norm:.3f} (seed baseline {seed_norm:.3f}, "
        f"ratio {ratio:.3f}, threshold {args.threshold})"
    )
    if args.record:
        baseline["gate_cell"]["array_core"] = {
            "wall_s": round(wall, 3),
            "calib_s": round(calib, 3),
        }
        BASELINE_PATH.write_text(
            json.dumps(baseline, indent=2, sort_keys=True) + "\n"
        )
        print(f"recorded to {BASELINE_PATH}")
        return 0
    if ratio > args.threshold:
        print(
            f"FAIL: array core runs at {ratio:.2f}x the seed baseline "
            f"wall-clock (gate allows at most {args.threshold:.1f}x)"
        )
        return 1
    print(
        f"OK: array core runs at {ratio:.2f}x the seed baseline "
        f"wall-clock ({1 / ratio:.2f}x speedup vs recorded seed)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
