"""Table II — reshaping time and reliability vs K (mean ± 95% CI).

Paper values (80×40 torus, 25 runs): K=2 → 5.00 rounds / 87.73%;
K=4 → 6.96 / 96.88%; K=8 → 9.08 / 99.80%.  Reliability must track the
analytical model 1−0.5^(K+1); reshaping must be fast and slow down
with K (deduplication cost).
"""

from repro.experiments import table2


def test_table2_reshaping_and_reliability(benchmark, preset, emit, workers):
    repetitions = min(preset.repetitions, 5)
    result = benchmark.pedantic(
        table2.run_table2,
        args=(preset,),
        kwargs={"repetitions": repetitions, "base_seed": 0, "workers": workers},
        rounds=1,
        iterations=1,
    )
    emit("table2", result.report, data={"rows": result.rows})

    rows = {row.replication: row for row in result.rows}
    for k, row in rows.items():
        # Reliability within a few points of the analytical model.
        assert abs(row.reliability.mean - row.expected_reliability) < 6.0
        assert row.non_converged == 0
        assert row.reshaping.mean <= 20
        benchmark.extra_info[f"reshaping_K{k}"] = row.reshaping.mean
    # Ordering: more copies -> better reliability, slower reshaping.
    assert rows[2].reliability.mean < rows[8].reliability.mean
    assert rows[2].reshaping.mean <= rows[8].reshaping.mean + 0.5
