"""Exception hierarchy for the Polystyrene reproduction.

Every error raised on purpose by this library derives from
:class:`ReproError`, so downstream users can catch one type.  Programming
errors (wrong argument types, impossible states) still surface as the
standard built-ins (``TypeError``, ``ValueError``) where that is the more
idiomatic signal.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class SpaceMismatchError(ReproError):
    """Coordinates with the wrong dimensionality for a metric space."""


class EmptySelectionError(ReproError):
    """An operation that needs at least one element got none.

    Raised e.g. when asking for the medoid of an empty point set, or for
    a gossip partner when no alive candidate exists.
    """


class SimulationError(ReproError):
    """The simulation was driven into an invalid state."""


class UnknownNodeError(SimulationError):
    """A node id was used that the network has never seen."""


class DeadNodeError(SimulationError):
    """An operation targeted a node that has crashed (crash-stop model)."""


class ConfigurationError(ReproError):
    """An experiment or protocol was configured inconsistently."""


class ExperimentNotFoundError(ReproError):
    """The experiment registry has no entry under the requested name."""


class CheckpointError(ReproError):
    """A simulation checkpoint could not be taken, saved, or restored."""


class RunnerError(ReproError):
    """A parallel sweep failed (a strict run hit an errored cell)."""


class StoreError(ReproError):
    """The persistent result store was used inconsistently."""


class ClusterError(ReproError):
    """A distributed-sweep queue was used inconsistently (mismatched
    grid published to an existing queue, merge of an unpublished queue,
    a stale lease acted on after losing it)."""
