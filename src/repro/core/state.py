"""Per-node Polystyrene state (Table I of the paper).

Each node keeps:

* ``guests`` — the data points it is the *primary holder* of;
* ``pos`` is stored on the :class:`~repro.sim.network.SimNode` itself
  (it is the value the topology layer reads);
* ``ghosts`` — deactivated point copies replicated to this node, keyed
  by their origin node (``p.ghosts[q]`` is the state q pushed to p);
* ``backups`` — the nodes this node has replicated its own guests to.

``backup_sent`` additionally remembers the exact point-id set last
pushed to each backup node, enabling the incremental-delta optimisation
the paper suggests after Algorithm 1.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set

from ..types import DataPoint, NodeId, PointId


class PolystyreneState:
    """The four local variables of Table I, plus delta bookkeeping.

    ``_proj_points``/``_proj_pos`` memoise the projection of the current
    guest set (see :mod:`repro.core.projection`): the projection is a
    pure function of the ordered guest points, and in a converged system
    most rounds leave most guest sets untouched, so the per-round
    re-projection pass is usually a cache hit instead of a medoid
    computation.  The cache never changes results — it is keyed on the
    identical ordered point objects.
    """

    __slots__ = ("guests", "ghosts", "backups", "backup_sent", "_proj_points", "_proj_pos")

    def __init__(self, initial_guests: Iterable[DataPoint] = ()) -> None:
        self.guests: Dict[PointId, DataPoint] = {
            point.pid: point for point in initial_guests
        }
        self.ghosts: Dict[NodeId, Dict[PointId, DataPoint]] = {}
        self.backups: Set[NodeId] = set()
        self.backup_sent: Dict[NodeId, FrozenSet[PointId]] = {}
        self._proj_points: list = []
        self._proj_pos = None

    # -- guests ------------------------------------------------------------

    def guest_points(self) -> List[DataPoint]:
        return list(self.guests.values())

    def add_guests(self, points: Iterable[DataPoint]) -> None:
        for point in points:
            self.guests[point.pid] = point

    def set_guests(self, points: Iterable[DataPoint]) -> None:
        self.guests = {point.pid: point for point in points}

    @property
    def n_guests(self) -> int:
        return len(self.guests)

    # -- ghosts ------------------------------------------------------------

    @property
    def n_ghosts(self) -> int:
        return sum(len(points) for points in self.ghosts.values())

    @property
    def storage_load(self) -> int:
        """Total stored data points (guests + ghosts) — the memory
        metric of Fig. 7a."""
        return self.n_guests + self.n_ghosts

    def ghost_origins(self) -> List[NodeId]:
        """Nodes that have replicated state to this node
        (``keys(p.ghosts)`` in the paper's notation)."""
        return list(self.ghosts.keys())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PolystyreneState(guests={self.n_guests}, ghosts={self.n_ghosts}, "
            f"backups={len(self.backups)})"
        )
