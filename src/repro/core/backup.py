"""Backup: replicating guest points as ghosts on K other nodes.

Algorithm 1 of the paper.  Each node keeps its guest set copied on
``K`` backup nodes; when a backup node fails it is replaced with a new
random one, and every round the node (re)pushes its guests to all its
backups.  The push is incremental when enabled: only the delta against
the last transmitted point-id set travels, "thus reducing traffic once
the system has converged".

Backup placement is random by default ("we spread copies as randomly as
possible in the system", via the peer-sampling layer) — the right
choice against *spatially correlated* failures.  The ``"neighbors"``
placement implements the localized alternative the paper discusses
(copies a few hops away percolate back faster after small failures, but
die together in a regional blackout); the ablation benchmark contrasts
the two.
"""

from __future__ import annotations

import math
from typing import List

from ..sim.engine import Simulation
from ..sim.network import SimNode
from .config import PolystyreneConfig


def required_replication(ps: float, pf: float) -> int:
    """Minimum K so an individual point survives with probability
    ``ps`` when a fraction ``pf`` of nodes fails simultaneously and
    independently of the copies' placement (Sec. III-D):

        1 - pf^(K+1) > ps   ⇒   K > log(1-ps)/log(pf) - 1

    Example from the paper: ps=0.99, pf=0.5 ⇒ K ≥ 6 (bound 5.64).
    """
    if not 0.0 < ps < 1.0:
        raise ValueError("ps must be in (0, 1)")
    if not 0.0 < pf < 1.0:
        raise ValueError("pf must be in (0, 1)")
    bound = math.log(1.0 - ps) / math.log(pf) - 1.0
    return max(0, math.ceil(bound))


def survival_probability(K: int, pf: float) -> float:
    """Probability a point survives: at least one of primary + K copies
    lives through an independent failure of fraction ``pf``."""
    if K < 0:
        raise ValueError("K cannot be negative")
    if not 0.0 <= pf <= 1.0:
        raise ValueError("pf must be in [0, 1]")
    return 1.0 - pf ** (K + 1)


class BackupManager:
    """Executes Algorithm 1 for one node per round."""

    def __init__(self, config: PolystyreneConfig, layer_name: str = "polystyrene") -> None:
        self.config = config
        self.layer_name = layer_name

    # -- backup-node selection --------------------------------------------

    def _pick_new_backups(
        self, sim: Simulation, node: SimNode, count: int, rps, tman
    ) -> List[int]:
        state = node.poly
        exclude = tuple(state.backups) + (node.nid,)
        if self.config.backup_placement == "neighbors" and tman is not None:
            # Localized placement: prefer the closest topology neighbours.
            candidates = [
                nid
                for nid in tman.neighbors(sim, node, count + len(state.backups))
                if nid not in state.backups
            ]
            picked = candidates[:count]
            if len(picked) < count:
                picked += rps.sample(
                    sim, node, count - len(picked), exclude=exclude + tuple(picked)
                )
            return picked
        # Random placement through the peer-sampling service (line 2).
        return rps.sample(sim, node, count, exclude=exclude)

    # -- one round of Algorithm 1 -------------------------------------------

    def step_node(self, sim: Simulation, node: SimNode, rps, tman=None) -> None:
        state = node.poly
        coord_dim = sim.space.dim if sim.space.dim is not None else 1
        # Line 1: drop failed backup nodes (one cached detector set for
        # the whole scan; ids pruned by the retention policy count as
        # long-detected).
        gone = sim.departed()
        for failed in [b for b in state.backups if gone(b)]:
            state.backups.discard(failed)
            state.backup_sent.pop(failed, None)
        # Line 2: top back up to K backup nodes.
        missing = self.config.replication - len(state.backups)
        if missing > 0:
            for nid in self._pick_new_backups(sim, node, missing, rps, tman):
                state.backups.add(nid)
        # Lines 3-4: push guests to every backup.
        guest_pids = frozenset(state.guests)
        for backup_id in state.backups:
            if not sim.network.is_alive(backup_id):
                continue
            target = sim.network.node(backup_id).poly
            previous = state.backup_sent.get(backup_id)
            if self.config.incremental_backup and previous is not None:
                added = guest_pids - previous
                removed = previous - guest_pids
                if not added and not removed:
                    continue  # nothing changed: no message at all
                ghost = target.ghosts.setdefault(node.nid, {})
                for pid in added:
                    ghost[pid] = state.guests[pid]
                for pid in removed:
                    ghost.pop(pid, None)
                # Delta message: new points travel with coordinates,
                # removals as bare ids, plus the sender id.
                sim.meter.charge_points(self.layer_name, len(added), coord_dim)
                sim.meter.charge_ids(self.layer_name, len(removed) + 1)
            else:
                target.ghosts[node.nid] = dict(state.guests)
                sim.meter.charge_points(self.layer_name, len(guest_pids), coord_dim)
                sim.meter.charge_ids(self.layer_name, 1)
            state.backup_sent[backup_id] = guest_pids
