"""Data-point creation and bookkeeping."""

from __future__ import annotations

from typing import Dict, Iterable, List

from ..types import Coord, DataPoint, PointId


class PointFactory:
    """Mints :class:`DataPoint` instances with unique sequential ids.

    Keeping a registry of every point ever created lets the metrics
    evaluate homogeneity over the *original* shape even for points whose
    every copy has been destroyed (the paper's ĝuests⁻¹ fallback).
    """

    def __init__(self) -> None:
        self._next_pid: PointId = 0
        self._points: Dict[PointId, DataPoint] = {}

    def create(self, coord: Coord) -> DataPoint:
        point = DataPoint(self._next_pid, coord)
        self._points[point.pid] = point
        self._next_pid += 1
        return point

    def create_many(self, coords: Iterable[Coord]) -> List[DataPoint]:
        return [self.create(c) for c in coords]

    def get(self, pid: PointId) -> DataPoint:
        return self._points[pid]

    @property
    def all_points(self) -> List[DataPoint]:
        """Every point ever minted, in creation order."""
        return list(self._points.values())

    def __len__(self) -> int:
        return len(self._points)
