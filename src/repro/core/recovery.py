"""Recovery: reactivating ghosts of failed origins (Algorithm 2).

When node p detects that a node q whose state was replicated to it has
failed, p moves q's ghost points into its own guest set and forgets the
ghost entry.  All K backup holders of q do this, so right after a
failure the same points are temporarily *multiply* held — the storage
spike of Fig. 7a — until migration's set-union exchanges de-duplicate
them (copies share point ids).
"""

from __future__ import annotations

from typing import List

from ..sim.engine import Simulation
from ..sim.network import SimNode
from ..types import NodeId


def recover_node(sim: Simulation, node: SimNode) -> List[NodeId]:
    """Run Algorithm 2 on one node; returns the origins recovered."""
    state = node.poly
    ghosts = state.ghosts
    if not ghosts:
        return []
    # Under the retention policy a long-dead origin may already be
    # pruned from the network entirely; its ghosts still reactivate.
    gone = sim.departed()
    recovered: List[NodeId] = []
    for origin in [q for q in ghosts if gone(q)]:
        state.add_guests(ghosts[origin].values())  # line 2
        del ghosts[origin]  # line 3
        recovered.append(origin)
    return recovered
