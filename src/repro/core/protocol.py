"""The Polystyrene layer: glue for the four mechanisms.

Executes on top of a topology construction layer (T-Man here), per
round and per node (Fig. 4):

1.  *Projection* feeds the node's position to T-Man — implemented by
    rewriting ``node.pos``, which the T-Man layer reads next round and
    which migration partners see immediately.
2.  *Backup* keeps K replicas of the guest set alive (Algorithm 1).
3.  *Recovery* reactivates ghosts of failed origins (Algorithm 2).
4.  *Migration* re-partitions points pairwise (Algorithm 3 + SPLIT).

The in-round execution order follows the paper's prose (Sec. III-B):
recovery first (reactivated points must be re-replicated the same
round — the "eager backup" that causes the Fig. 7a storage spike),
then backup, then migration, then a projection pass so every node
advertises a position consistent with its final guest set.
"""

from __future__ import annotations


from ..gossip.rps import PeerSamplingLayer
from ..gossip.tman import TManLayer
from ..sim.engine import Simulation
from ..sim.network import SimNode
from ..spaces.base import Space
from .backup import BackupManager
from .config import PolystyreneConfig
from .migration import MigrationManager
from .projection import make_projection
from .recovery import recover_node
from .split import make_split
from .state import PolystyreneState


class PolystyreneLayer:
    """The paper's contribution, as a pluggable simulation layer."""

    name = "polystyrene"

    def __init__(
        self,
        space: Space,
        config: PolystyreneConfig,
        rps: PeerSamplingLayer,
        tman: "TManLayer",
    ) -> None:
        # ``tman`` may be any topology construction layer exposing
        # ``neighbors(sim, node, k)`` — T-Man in the paper's evaluation,
        # Vicinity as the alternative (Polystyrene is an add-on over
        # *any* such protocol, Sec. II-C).
        self.space = space
        self.config = config
        self.rps = rps
        self.tman = tman
        self.projection = make_projection(config.projection)
        self.split = make_split(config.split)
        self.backup_manager = BackupManager(config, self.name)
        self.migration_manager = MigrationManager(
            config, self.split, self.name
        )

    # -- per-node state ----------------------------------------------------

    def init_node(self, sim: Simulation, node: SimNode) -> None:
        initial = [node.initial_point] if node.initial_point is not None else []
        node.poly = PolystyreneState(initial)
        if initial:
            node.pos = initial[0].coord

    # -- one protocol round --------------------------------------------------

    def step(self, sim: Simulation) -> None:
        network = sim.network
        # Step 3 — recovery of ghosts whose origin failed.
        for nid in sim.shuffled_alive(self.name):
            if network.is_alive(nid):
                recover_node(sim, network.node(nid))
        # Step 2 — backup repair + (incremental) pushes.
        for nid in sim.shuffled_alive(self.name):
            if network.is_alive(nid):
                self.backup_manager.step_node(
                    sim, network.node(nid), self.rps, self.tman
                )
        # Step 4 — pairwise migration; both participants re-project
        # immediately so later exchanges this round see fresh positions.
        for _ in range(self.config.migrations_per_round):
            for nid in sim.shuffled_alive(self.name):
                if not network.is_alive(nid):
                    continue
                node = network.node(nid)
                partner_id = self.migration_manager.select_partner(
                    sim, node, self.rps, self.tman
                )
                if partner_id is None:
                    continue
                partner = network.node(partner_id)
                self.migration_manager.exchange(sim, node, partner)
                node.pos = self.projection(self.space, node.poly, node.pos)
                partner.pos = self.projection(self.space, partner.poly, partner.pos)
        # Step 1 — final projection pass (covers nodes whose guests
        # changed through recovery only).
        for node in network.alive_nodes():
            node.pos = self.projection(self.space, node.poly, node.pos)


class StaticHolderLayer:
    """Baseline adapter for T-Man-alone runs.

    Gives every node the same state shape Polystyrene would (a guest
    set holding its own original point, no ghosts, no backups) but
    never migrates, replicates or re-projects anything.  This is the
    paper's "T-Man" configuration: the metrics treat "a node's position
    [as] the single data point contained by this node" (Sec. IV-A).
    """

    name = "static-holder"

    def init_node(self, sim: Simulation, node: SimNode) -> None:
        initial = [node.initial_point] if node.initial_point is not None else []
        node.poly = PolystyreneState(initial)

    def step(self, sim: Simulation) -> None:
        return None
