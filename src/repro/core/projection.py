"""Projection: summarising a guest set into one advertised position.

Step 1 of the protocol (Sec. III-C).  The position handed to the
topology construction layer "should reflect the membership of the guest
data points held by the node".  The paper uses the *medoid* — the guest
point minimising the sum of squared distances to the other guests —
because centroids need division, which is ill defined in modular spaces.

A node whose guest set is empty (a freshly reinjected node, or a node
that gave all its points away) keeps its previous position: it still
needs *some* coordinate to participate in T-Man and to attract points
through migration.
"""

from __future__ import annotations


from ..errors import ConfigurationError
from ..spaces.base import Space
from ..spaces.euclidean import Euclidean
from ..spaces.medoid import medoid
from ..types import Coord
from .state import PolystyreneState


def _cache_hit(state: PolystyreneState, points) -> bool:
    """Whether the memoised projection is for exactly these points.

    Compared by object identity in order: points are immutable and
    migration/recovery shuffle the *same* objects around, so an
    identical ordered list means an identical projection input — the
    cache can never change a result, only skip recomputing it.
    """
    cached = getattr(state, "_proj_points", None)
    if cached is None or len(cached) != len(points):
        return False
    for a, b in zip(cached, points):
        if a is not b:
            return False
    return True


def project_medoid(
    space: Space, state: PolystyreneState, current_pos: Coord
) -> Coord:
    """The paper's projection: the medoid of the guest points."""
    points = state.guest_points()
    if not points:
        return current_pos
    if _cache_hit(state, points):
        return state._proj_pos
    pos = medoid(space, [p.coord for p in points])
    state._proj_points = points
    state._proj_pos = pos
    return pos


def project_centroid(
    space: Space, state: PolystyreneState, current_pos: Coord
) -> Coord:
    """Ablation projection: the arithmetic mean of the guests.

    Only valid in vector spaces with well-defined division; used to
    quantify what the medoid costs/buys in the Euclidean setting.
    """
    if not isinstance(space, Euclidean):
        raise ConfigurationError(
            "centroid projection requires a Euclidean space; "
            f"got {type(space).__name__}"
        )
    points = state.guest_points()
    if not points:
        return current_pos
    if _cache_hit(state, points):
        return state._proj_pos
    pos = space.centroid([p.coord for p in points])
    state._proj_points = points
    state._proj_pos = pos
    return pos


_PROJECTIONS = {
    "medoid": project_medoid,
    "centroid": project_centroid,
}


def make_projection(name: str):
    """Look up a projection function by configuration name."""
    try:
        return _PROJECTIONS[name]
    except KeyError:
        raise ConfigurationError(f"unknown projection {name!r}") from None
