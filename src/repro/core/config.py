"""Configuration of the Polystyrene layer.

Every mechanism of the protocol is independently configurable — the
paper's conclusion calls out this modularity explicitly ("Any of its
four components can be configured independently").  The defaults are
the paper's evaluation settings.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError

SPLIT_CHOICES = ("basic", "pd", "md", "advanced")
PROJECTION_CHOICES = ("medoid", "centroid")
BACKUP_PLACEMENT_CHOICES = ("random", "neighbors")


@dataclass
class PolystyreneConfig:
    """Tunable knobs of the Polystyrene layer.

    Attributes:
        replication: ``K``, the number of backup copies per guest set.
            The paper evaluates K ∈ {2, 4, 8} (87.5% / 96.9% / 99.8%
            survival under a half-network failure).
        psi: size of the closest-neighbour candidate set the migration
            step draws its partner from (plus one RPS peer); ψ = 5 in
            the paper.
        split: which SPLIT function migration uses — ``"basic"``
            (closest-position k-means step), ``"pd"`` (diameter
            partition only), ``"md"`` (closest-position partition with
            displacement-minimising assignment), or ``"advanced"``
            (PD + MD, the paper's Algorithm 5).
        projection: how a node summarises its guests into one position —
            ``"medoid"`` (the paper's choice, valid in any metric
            space) or ``"centroid"`` (vector spaces only; ablation).
        backup_placement: ``"random"`` spreads copies uniformly (the
            paper's choice against spatially-correlated failures) or
            ``"neighbors"`` keeps copies topologically close (the
            localized alternative discussed in Sec. III-D).
        incremental_backup: send only guest-set deltas to known backup
            nodes instead of full copies (the optimisation suggested
            after Algorithm 1).
        migrations_per_round: how many pairwise exchanges each node
            initiates per round (1 in the paper).
    """

    replication: int = 4
    psi: int = 5
    split: str = "advanced"
    projection: str = "medoid"
    backup_placement: str = "random"
    incremental_backup: bool = True
    migrations_per_round: int = 1

    def __post_init__(self) -> None:
        if self.replication < 0:
            raise ConfigurationError("replication (K) cannot be negative")
        if self.psi < 1:
            raise ConfigurationError("psi must be >= 1")
        if self.split not in SPLIT_CHOICES:
            raise ConfigurationError(
                f"split must be one of {SPLIT_CHOICES}, got {self.split!r}"
            )
        if self.projection not in PROJECTION_CHOICES:
            raise ConfigurationError(
                f"projection must be one of {PROJECTION_CHOICES}, "
                f"got {self.projection!r}"
            )
        if self.backup_placement not in BACKUP_PLACEMENT_CHOICES:
            raise ConfigurationError(
                f"backup_placement must be one of {BACKUP_PLACEMENT_CHOICES}, "
                f"got {self.backup_placement!r}"
            )
        if self.migrations_per_round < 0:
            raise ConfigurationError("migrations_per_round cannot be negative")
