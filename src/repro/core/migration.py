"""Migration: pairwise data-point exchange (Algorithm 3).

Each round, each node p picks a partner q among its ψ closest T-Man
neighbours plus one random peer from RPS, pools both guest sets, and
re-partitions the pool with the configured SPLIT function.  This is the
decentralised k-means step that lets surviving nodes flow back over the
emptied region of the shape — and, because the pool is a set union
keyed on point ids, it simultaneously de-duplicates the redundant
copies created by recovery.

Message accounting (paper units — 1 id = 1 coordinate = 1 unit):
q first ships its whole guest set to p (the *pull*, one coordinate
tuple per point); after the split, p ships back q's new guests (the
*push*), minus the points q already held, which travel as bare ids.
Each direction carries one sender id.
"""

from __future__ import annotations

from typing import List, Optional

from ..obs import metrics as obs_metrics
from ..sim.engine import Simulation
from ..sim.network import SimNode
from ..types import DataPoint, NodeId
from .config import PolystyreneConfig
from .split import SplitFunction


class MigrationManager:
    """Executes Algorithm 3 for one initiating node."""

    def __init__(
        self,
        config: PolystyreneConfig,
        split: SplitFunction,
        layer_name: str = "polystyrene",
    ) -> None:
        self.config = config
        self.split = split
        self.layer_name = layer_name

    def select_partner(
        self, sim: Simulation, node: SimNode, rps, tman
    ) -> Optional[NodeId]:
        """Lines 1-3: ψ closest T-Man neighbours plus one RPS peer."""
        rng = sim.rng_for(self.layer_name)
        candidates = tman.neighbors(sim, node, self.config.psi)
        candidates += rps.sample(
            sim, node, 1, exclude=tuple(candidates) + (node.nid,)
        )
        candidates = [c for c in candidates if sim.network.is_alive(c)]
        if not candidates:
            return None
        return rng.choice(candidates)

    def exchange(self, sim: Simulation, node: SimNode, partner: SimNode) -> None:
        """Lines 4-7: pull-push exchange and split."""
        state_p = node.poly
        state_q = partner.poly
        coord_dim = sim.space.dim if sim.space.dim is not None else 1
        # Line 4 (pull): q ships its guests to p.
        sim.meter.charge_points(self.layer_name, len(state_q.guests), coord_dim)
        sim.meter.charge_ids(self.layer_name, 1)
        pool: dict = dict(state_q.guests)
        pool.update(state_p.guests)  # union keyed on pid de-duplicates
        all_points: List[DataPoint] = list(pool.values())
        # Line 5: SPLIT.
        points_p, points_q = self.split(sim.space, all_points, node.pos, partner.pos)
        # Lines 6-7: install the new partition.
        old_q_pids = set(state_q.guests)
        state_p.set_guests(points_p)
        state_q.set_guests(points_q)
        # Push: only points q did not already hold travel with
        # coordinates; retained points are confirmed by bare id.
        new_to_q = sum(1 for point in points_q if point.pid not in old_q_pids)
        kept_by_q = len(points_q) - new_to_q
        sim.meter.charge_points(self.layer_name, new_to_q, coord_dim)
        sim.meter.charge_ids(self.layer_name, kept_by_q + 1)
        obs_metrics.count("exchanges.migration")

    def step_node(self, sim: Simulation, node: SimNode, rps, tman) -> bool:
        """One full migration attempt; returns whether an exchange ran."""
        partner_id = self.select_partner(sim, node, rps, tman)
        if partner_id is None:
            return False
        self.exchange(sim, node, sim.network.node(partner_id))
        return True
