"""Polystyrene — the paper's primary contribution.

Four decoupled mechanisms over passive *data points*: projection
(medoid of the guests), backup (K ghost replicas), recovery (ghost
reactivation on failure) and migration (pairwise SPLIT exchanges), glued
into one simulation layer by :class:`PolystyreneLayer`.
"""

from .backup import BackupManager, required_replication, survival_probability
from .config import PolystyreneConfig
from .migration import MigrationManager
from .points import PointFactory
from .projection import make_projection, project_centroid, project_medoid
from .protocol import PolystyreneLayer, StaticHolderLayer
from .recovery import recover_node
from .split import (
    make_split,
    split_advanced,
    split_basic,
    split_md,
    split_pd,
)
from .state import PolystyreneState

__all__ = [
    "PolystyreneConfig",
    "PolystyreneLayer",
    "StaticHolderLayer",
    "PolystyreneState",
    "PointFactory",
    "BackupManager",
    "MigrationManager",
    "required_replication",
    "survival_probability",
    "recover_node",
    "project_medoid",
    "project_centroid",
    "make_projection",
    "split_basic",
    "split_pd",
    "split_md",
    "split_advanced",
    "make_split",
]
