"""SPLIT functions: repartitioning data points between two nodes.

The migration step (Sec. III-F) pools the guest sets of two interacting
nodes and re-divides them with a SPLIT function.  The paper defines:

* ``SPLIT_BASIC`` (Algorithm 4) — each point goes to the closer of the
  two node positions; a single distributed k-means step.  Can stall in
  locally-stable but globally poor configurations (Fig. 5a).
* ``SPLIT_ADVANCED`` (Algorithm 5) — two heuristics:
  **PD** partitions the pooled points along one of their *diameters*
  (the farthest pair ``(u, v)``: each point joins the closer endpoint);
  **MD** then assigns the two clusters to the two nodes so as to
  minimise total node displacement (comparing medoid-to-position
  distances both ways).

For the Fig. 10b ablation we also expose each heuristic alone:
``SPLIT_PD`` (diameter partition, fixed assignment) and ``SPLIT_MD``
(closest-position partition, displacement-minimising assignment).

All variants return a true partition of the input (disjoint, complete)
— a property-based test enforces this for every variant in every space.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..obs.metrics import timed
from ..spaces.base import Space
from ..spaces.diameter import diameter
from ..spaces.medoid import medoid
from ..types import Coord, DataPoint

SplitResult = Tuple[List[DataPoint], List[DataPoint]]
SplitFunction = Callable[[Space, Sequence[DataPoint], Coord, Coord], SplitResult]


def _partition_by_anchors(
    space: Space,
    points: Sequence[DataPoint],
    anchor_a: Coord,
    anchor_b: Coord,
    batch=None,
) -> SplitResult:
    """Assign each point to the strictly-closer anchor, ties to the
    second — the shared kernel of Algorithms 4 and 5, run as two
    batched squared-distance blocks over the pooled coordinates instead
    of two scalar distance calls per point (squares compare exactly as
    the distances do)."""
    if batch is None:
        batch = space.pack_batch([p.coord for p in points])
    side_a, side_b, _, _ = _partition_with_batches(
        space, points, anchor_a, anchor_b, batch
    )
    return side_a, side_b


def _partition_with_batches(space, points, anchor_a, anchor_b, batch):
    """`_partition_by_anchors` that also returns the two sides' packed
    coordinate rows (sliced from the shared batch), so downstream medoid
    calls skip re-packing."""
    closer_a = space.rank_sq_block(anchor_a, batch) < space.rank_sq_block(
        anchor_b, batch
    )
    side_a: List[DataPoint] = []
    side_b: List[DataPoint] = []
    for point, to_a in zip(points, closer_a):
        (side_a if to_a else side_b).append(point)
    if isinstance(batch, np.ndarray):
        return side_a, side_b, batch[closer_a], batch[~closer_a]
    return side_a, side_b, None, None


@timed("kernel.split.basic")
def split_basic(
    space: Space,
    points: Sequence[DataPoint],
    pos_p: Coord,
    pos_q: Coord,
) -> SplitResult:
    """Algorithm 4: each point joins the strictly-closer node position;
    ties go to q (the paper uses ``<`` for p and ``<=`` for q)."""
    if not points:
        return [], []
    return _partition_by_anchors(space, points, pos_p, pos_q)


def _partition_along_diameter(
    space: Space, points: Sequence[DataPoint]
) -> Tuple[List[DataPoint], List[DataPoint]]:
    """PD heuristic: split the points by which diameter endpoint they
    are closer to (ties to the second endpoint, as in Algorithm 5).

    The pooled coordinates are packed once and shared by the diameter
    search and the endpoint partition (array rows serve as the anchor
    origins — zero further conversion)."""
    coords = [p.coord for p in points]
    batch = space.pack_batch(coords)
    i, j = diameter(space, coords, batch=batch)
    if isinstance(batch, np.ndarray):
        u, v = batch[i], batch[j]
    else:
        u, v = coords[i], coords[j]
    return _partition_by_anchors(space, points, u, v, batch=batch)


def _assign_min_displacement(
    space: Space,
    cluster_a: List[DataPoint],
    cluster_b: List[DataPoint],
    pos_p: Coord,
    pos_q: Coord,
    batch_a=None,
    batch_b=None,
) -> SplitResult:
    """MD heuristic: give each node the cluster whose medoid it is
    closer to, minimising the total displacement of p and q."""
    if not cluster_a or not cluster_b:
        # One side empty: nothing to choose; hand the non-empty side to
        # whichever node is closer to its medoid.
        full = cluster_a or cluster_b
        m = medoid(space, [p.coord for p in full])
        if space.distance(m, pos_p) <= space.distance(m, pos_q):
            return (full, [])
        return ([], full)
    m_a = medoid(space, [p.coord for p in cluster_a], batch=batch_a)
    m_b = medoid(space, [p.coord for p in cluster_b], batch=batch_b)
    delta_ab = space.distance(m_a, pos_p) + space.distance(m_b, pos_q)
    delta_ba = space.distance(m_b, pos_p) + space.distance(m_a, pos_q)
    if delta_ab < delta_ba:
        return (cluster_a, cluster_b)
    return (cluster_b, cluster_a)


@timed("kernel.split.advanced")
def split_advanced(
    space: Space,
    points: Sequence[DataPoint],
    pos_p: Coord,
    pos_q: Coord,
) -> SplitResult:
    """Algorithm 5: PD partition + MD assignment.

    The pooled coordinates are packed exactly once; the diameter
    search, the endpoint partition and both cluster medoids all read
    rows of that one batch."""
    if len(points) < 2:
        return split_basic(space, points, pos_p, pos_q)
    coords = [p.coord for p in points]
    batch = space.pack_batch(coords)
    i, j = diameter(space, coords, batch=batch)
    if isinstance(batch, np.ndarray):
        u, v = batch[i], batch[j]
    else:
        u, v = coords[i], coords[j]
    cluster_u, cluster_v, batch_u, batch_v = _partition_with_batches(
        space, points, u, v, batch
    )
    if not cluster_u or not cluster_v:
        # Degenerate (all points identical): fall back to the basic rule.
        return split_basic(space, points, pos_p, pos_q)
    return _assign_min_displacement(
        space, cluster_u, cluster_v, pos_p, pos_q, batch_u, batch_v
    )


@timed("kernel.split.pd")
def split_pd(
    space: Space,
    points: Sequence[DataPoint],
    pos_p: Coord,
    pos_q: Coord,
) -> SplitResult:
    """PD alone: diameter partition with a fixed (endpoint-order)
    assignment — isolates the partitioning heuristic (Fig. 10b)."""
    if len(points) < 2:
        return split_basic(space, points, pos_p, pos_q)
    cluster_u, cluster_v = _partition_along_diameter(space, points)
    if not cluster_u or not cluster_v:
        return split_basic(space, points, pos_p, pos_q)
    return (cluster_u, cluster_v)


@timed("kernel.split.md")
def split_md(
    space: Space,
    points: Sequence[DataPoint],
    pos_p: Coord,
    pos_q: Coord,
) -> SplitResult:
    """MD alone: the basic closest-position partition, but with the
    displacement-minimising cluster-to-node assignment (Fig. 10b)."""
    cluster_p, cluster_q = split_basic(space, points, pos_p, pos_q)
    if not cluster_p or not cluster_q:
        return (cluster_p, cluster_q)
    return _assign_min_displacement(space, cluster_p, cluster_q, pos_p, pos_q)


_SPLITS = {
    "basic": split_basic,
    "pd": split_pd,
    "md": split_md,
    "advanced": split_advanced,
}


def make_split(name: str) -> SplitFunction:
    """Look up a SPLIT function by configuration name."""
    try:
        return _SPLITS[name]
    except KeyError:
        raise ConfigurationError(f"unknown split function {name!r}") from None
