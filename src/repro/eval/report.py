"""Per-claim reports and the CI gate over scored claim cases.

:func:`score_run` turns an :class:`~repro.eval.runner.EvalRunData` into
:class:`ClaimScore` verdicts; :func:`build_report` packages them — with
run provenance (git revision, cache hits, wall clock) and the run's
observability snapshot (the same counters/histograms schema
``repro obs report`` aggregates) — into a machine-readable dict written
as JSON; :func:`format_report` renders the human table; and
:func:`gate_exit` is the CI contract: 0 only when no claim failed.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from ..obs import metrics as obs_metrics
from ..runtime.store import git_revision
from ..viz.tables import format_table
from .dataset import (
    DATASET_VERSION,
    ClaimCase,
    expected_for,
    load_expected,
)
from .runner import EvalRunData
from .scorers import FAIL, PASS, SKIP, ClaimScore, score_case

REPORT_FORMAT = 1


def score_run(
    cases: Sequence[ClaimCase],
    data: EvalRunData,
    expected: Optional[Dict[str, Any]] = None,
    tolerance_scale: float = 1.0,
) -> List[ClaimScore]:
    """Score every case against the cells the run left in the store."""
    if expected is None:
        expected = load_expected()
    scores: List[ClaimScore] = []
    for case in cases:
        cells_by_engine = {
            eng: cells
            for (case_id, eng), cells in data.cells.items()
            if case_id == case.case_id
        }
        if not cells_by_engine:
            continue
        scores.extend(
            score_case(
                case,
                cells_by_engine,
                expected_for(case.case_id, expected),
                tolerance_scale,
            )
        )
    return scores


def build_report(
    scores: Sequence[ClaimScore],
    data: EvalRunData,
    preset: Optional[str] = None,
    engine: Optional[str] = None,
    tolerance_scale: float = 1.0,
) -> Dict[str, Any]:
    """The machine-readable eval report (what ``--report`` writes)."""
    counts = {
        PASS: sum(1 for s in scores if s.status == PASS),
        FAIL: sum(1 for s in scores if s.status == FAIL),
        SKIP: sum(1 for s in scores if s.status == SKIP),
    }
    report: Dict[str, Any] = {
        "format": REPORT_FORMAT,
        "dataset_version": DATASET_VERSION,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "git_rev": git_revision(),
        "preset": preset,
        "engine": engine or "both",
        "tolerance_scale": tolerance_scale,
        "gate_ok": counts[FAIL] == 0 and not data.run_errors,
        "counts": counts,
        "run": {
            "run_id": data.run_id,
            "cells_executed": data.executed,
            "cells_cached": data.cached,
            "duration_s": round(data.duration_s, 3),
            "errors": list(data.run_errors),
        },
        "claims": [score.to_dict() for score in scores],
    }
    # The run's metrics snapshot rides along in the repro.obs schema
    # (counters/gauges/histograms), so `repro obs report` tooling and
    # the eval report agree on what timings mean.
    snapshot = obs_metrics.registry().snapshot()
    if snapshot:
        report["metrics"] = snapshot
    return report


def write_report(report: Dict[str, Any], path: Union[str, Path]) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf8") as fh:
        json.dump(report, fh, sort_keys=True, indent=1)
        fh.write("\n")
    return path


def load_report(path: Union[str, Path]) -> Dict[str, Any]:
    with Path(path).open("r", encoding="utf8") as fh:
        return json.load(fh)


def format_report(report: Dict[str, Any]) -> str:
    """Human rendering: one row per claim verdict, then diagnoses."""
    rows = []
    for claim in report["claims"]:
        worst = ""
        margins = [
            d["margin"] for d in claim.get("details", []) if "margin" in d
        ]
        if margins:
            worst = f"{min(margins):+.4f}"
        rows.append(
            [
                claim["case_id"],
                claim["engine"],
                claim["paper_ref"],
                claim["scorer"],
                claim["status"].upper(),
                worst,
            ]
        )
    counts = report["counts"]
    run = report["run"]
    title = (
        f"claims gate — {counts['pass']} pass, {counts['fail']} fail, "
        f"{counts['skipped']} skipped "
        f"({run['cells_executed']} cells executed, "
        f"{run['cells_cached']} cached, {run['duration_s']:.1f}s)"
    )
    lines = [
        format_table(
            ["claim", "engine", "paper", "scorer", "status", "margin"],
            rows,
            title=title,
        )
    ]
    for claim in report["claims"]:
        if claim["status"] != PASS and claim["diagnosis"]:
            lines.append(
                f"{claim['status'].upper()} {claim['case_id']} "
                f"[{claim['engine']}]: {claim['diagnosis']}"
            )
    for error in run.get("errors", []):
        lines.append(f"EXECUTION ERROR: {error}")
    lines.append("gate: OK" if report["gate_ok"] else "gate: FAILED")
    return "\n".join(lines)


def gate_exit(report: Dict[str, Any]) -> int:
    """CI contract: 0 iff no claim failed and execution was clean."""
    return 0 if report.get("gate_ok") else 1
