"""Execute claim cases and persist their cells — cached by content hash.

The runner is deliberately thin: it expands the requested cases into
scenario configurations, drops every configuration whose exact content
hash already has an ``ok`` cell in the result store (*unchanged cases
are free on re-run*), executes the rest through
:func:`repro.runtime.dispatch.execute_scenarios` — so the serial, pool,
fork-checkpoint, and distributed backends all work unchanged — and
appends the fresh cells to the store.  Scoring never touches this
module's simulations: it reads the store
(:func:`repro.eval.scorers.group_cells`), which is what makes a gate
failure attributable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ReproError
from ..experiments.scenario import ScenarioConfig
from ..obs import log as obs_log
from ..obs import metrics as obs_metrics
from ..runtime.dispatch import execute_scenarios
from ..runtime.store import ResultStore, cell_record, config_hash
from .dataset import ClaimCase
from .scorers import CaseCells, group_cells

LogFn = Callable[[str], None]


@dataclass
class EvalRunData:
    """Everything one eval execution produced, ready for scoring."""

    run_id: Optional[str]
    #: (case_id, engine) -> the case's cells under that engine.
    cells: Dict[Tuple[str, str], CaseCells] = field(default_factory=dict)
    executed: int = 0
    cached: int = 0
    errored: int = 0
    duration_s: float = 0.0
    #: Execution-level failures (a backend raising), per engine.
    run_errors: List[str] = field(default_factory=list)

    @property
    def engines_of(self) -> Dict[str, List[str]]:
        out: Dict[str, List[str]] = {}
        for case_id, engine in self.cells:
            out.setdefault(case_id, []).append(engine)
        return out


def case_plan(
    cases: Sequence[ClaimCase], engine: Optional[str] = None
) -> List[Tuple[ClaimCase, str]]:
    """Expand cases into (case, engine) scoring units for a gate
    invocation (``engine``: ``"event"``/``"batch"``/None = both)."""
    plan: List[Tuple[ClaimCase, str]] = []
    for case in cases:
        for eng in case.engines(engine):
            plan.append((case, eng))
    return plan


def _store_index(store: ResultStore) -> Dict[str, Dict[str, Any]]:
    """config_hash -> ok cell record, across every run in the store.
    Later records win (a re-run after a code change supersedes)."""
    index: Dict[str, Dict[str, Any]] = {}
    for record in store.records(kind="cell"):
        if record.get("status") == "ok" and record.get("config_hash"):
            index[record["config_hash"]] = record
    return index


def run_cases(
    cases: Sequence[ClaimCase],
    store: ResultStore,
    engine: Optional[str] = None,
    workers: int = 1,
    fork: bool = False,
    queue: Optional[str] = None,
    metadata: Optional[Dict[str, Any]] = None,
    log: Optional[LogFn] = None,
) -> EvalRunData:
    """Run every configuration the cases need (skipping content-hash
    cache hits) and return the per-case stored cells.

    All execution flows through one :func:`execute_scenarios` call per
    engine, so ``workers``/``fork``/``queue`` select the same backends
    a sweep would use.  A backend failure is recorded on
    :attr:`EvalRunData.run_errors` and scoring proceeds on whatever
    cells exist — the affected claims fail with a *missing cells*
    diagnosis instead of the gate crashing.
    """
    started = time.perf_counter()
    say = log or (lambda message: None)
    plan = case_plan(cases, engine)
    index = _store_index(store)

    # One deduped work list per engine: cases share configurations
    # (Table II's K=4 column *is* the Fig. 6 scenario), and a config
    # already in the store is a cache hit.
    todo: Dict[str, Dict[str, ScenarioConfig]] = {}
    cached = 0
    for case, eng in plan:
        for _, config in case.configs(eng):
            chash = config_hash(config)
            if chash in index:
                cached += 1
            else:
                todo.setdefault(eng, {})[chash] = config
    data = EvalRunData(run_id=None, cached=cached)

    run_id: Optional[str] = None
    for eng in sorted(todo):
        configs = list(todo[eng].values())
        say(
            f"engine {eng}: executing {len(configs)} uncached "
            f"configuration(s)"
        )
        obs_log.info("eval.execute", engine=eng, n_configs=len(configs))
        try:
            with obs_metrics.timer("eval.execute"):
                results = execute_scenarios(
                    configs, workers=workers, fork=fork, queue=queue
                )
        except ReproError as exc:
            data.run_errors.append(f"engine {eng}: {exc}")
            obs_log.error("eval.execute_failed", engine=eng, error=str(exc))
            say(f"engine {eng}: execution failed: {exc}")
            continue
        if run_id is None and results:
            run_id = store.open_run(
                metadata=dict(metadata or {}, kind="eval")
            )
        for config, result in zip(configs, results):
            chash = config_hash(config)
            record = cell_record(
                run_id,
                f"eval/{chash[:12]}",
                config,
                status="ok",
                result=result,
            )
            store.append_record(record)
            index[chash] = record
            data.executed += 1
        obs_metrics.count("eval.cells_executed", len(results))

    data.run_id = run_id
    # Hand each (case, engine) its stored cells, content-addressed.
    for case, eng in plan:
        records = [
            index[config_hash(config)]
            for _, config in case.configs(eng)
            if config_hash(config) in index
        ]
        data.cells[(case.case_id, eng)] = group_cells(case, eng, records)
    data.duration_s = time.perf_counter() - started
    obs_metrics.observe("eval.run.wall", data.duration_s)
    return data


def ensembles_for_update(
    data: EvalRunData, case: ClaimCase, stat: str, label: str
) -> List[List[float]]:
    """The generating ensembles (one per engine that ran) used to
    derive a recorded expectation for ``stat`` in variant ``label``."""
    out: List[List[float]] = []
    for (case_id, _eng), cells in sorted(data.cells.items()):
        if case_id != case.case_id:
            continue
        values = cells.values(stat, label)
        if values:
            out.append(values)
    return out
