"""``repro.eval`` — the declarative paper-conformance harness.

Paper claims live as data (:mod:`repro.eval.dataset`), execute through
the runtime's scenario front door with content-hash result caching
(:mod:`repro.eval.runner`), are judged by independent scorers reading
*stored* cells (:mod:`repro.eval.scorers`), and surface as a
per-claim pass/fail report plus a CI gate (:mod:`repro.eval.report`,
``repro eval run --gate``).  See README "Claims gate".
"""

from .dataset import (
    DATASET_VERSION,
    ClaimCase,
    case_by_id,
    claim_cases,
    equivalence_cases,
    expected_for,
    load_expected,
    save_expected,
)
from .report import (
    build_report,
    format_report,
    gate_exit,
    load_report,
    score_run,
    write_report,
)
from .runner import EvalRunData, case_plan, run_cases
from .scorers import SCORERS, CaseCells, ClaimScore, extract_stat, group_cells, score_case

__all__ = [
    "DATASET_VERSION",
    "ClaimCase",
    "claim_cases",
    "equivalence_cases",
    "case_by_id",
    "load_expected",
    "save_expected",
    "expected_for",
    "EvalRunData",
    "case_plan",
    "run_cases",
    "SCORERS",
    "CaseCells",
    "ClaimScore",
    "extract_stat",
    "group_cells",
    "score_case",
    "score_run",
    "build_report",
    "write_report",
    "load_report",
    "format_report",
    "gate_exit",
]
