"""Independent claim scorers: stored cells in, pass/fail verdicts out.

Every scorer consumes **result-store cell records** (the dicts
:func:`repro.runtime.store.cell_record` writes) — never live
simulations — so a gate failure is attributable to a scorer judging
recorded data, not to a simulation that ran differently this time.
Each is a pure function registered in :data:`SCORERS` and unit-tested
against hand-built synthetic stores (``tests/test_eval_scorers.py``).

Four scorer families cover the dataset:

* ``band`` — ensemble mean vs a recorded expectation with a tolerance
  band (per variant group), via :func:`repro.analysis.bands.value_band`;
* ``threshold`` — the paper's qualitative bounds (``final homogeneity
  <= 0.2``), no recorded numbers needed;
* ``improvement`` — comparative claims (the repair progresses between
  two probe rounds);
* ``equivalence`` — cross-engine ensembles agree within ``z`` combined
  standard errors plus a floor
  (:func:`repro.analysis.bands.equivalence_band`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..analysis.bands import Band, ensemble_mean, equivalence_band, value_band
from ..errors import ConfigurationError
from .dataset import ClaimCase

PASS, FAIL, SKIP = "pass", "fail", "skipped"


@dataclass
class ClaimScore:
    """The verdict on one claim under one engine (or engine pair)."""

    case_id: str
    title: str
    paper_ref: str
    engine: str
    scorer: str
    status: str  # pass | fail | skipped
    #: One dict per judged statistic: stat path, variant group, the
    #: observed/expected numbers, the band, and a per-stat verdict.
    details: List[Dict[str, Any]] = field(default_factory=list)
    #: Human diagnosis of *why* the claim failed (empty on pass).
    diagnosis: str = ""

    @property
    def passed(self) -> bool:
        return self.status == PASS

    def to_dict(self) -> Dict[str, Any]:
        return {
            "case_id": self.case_id,
            "title": self.title,
            "paper_ref": self.paper_ref,
            "engine": self.engine,
            "scorer": self.scorer,
            "status": self.status,
            "details": self.details,
            "diagnosis": self.diagnosis,
        }


def extract_stat(record: Dict[str, Any], stat: str) -> Optional[float]:
    """Pull one statistic out of a stored cell record by dotted path
    rooted at the cell summary: ``"reliability"``,
    ``"final.homogeneity"``, ``"probes.mid_recovery.homogeneity"``.
    Returns None when any path segment is absent (missing probe,
    non-converged reshaping time, errored cell)."""
    node: Any = record.get("summary")
    for part in stat.split("."):
        if not isinstance(node, dict):
            return None
        node = node.get(part)
    if node is None:
        return None
    return float(node)


@dataclass(frozen=True)
class CaseCells:
    """The runner's hand-off to a scorer: the stored cells of one case
    under one engine, grouped by variant label, plus how many cells the
    grid *should* have produced (so missing cells are visible)."""

    engine: str
    #: variant label -> cell records (only ``status == "ok"`` cells).
    groups: Dict[str, List[Dict[str, Any]]]
    #: variant label -> number of configs the case defines there.
    expected_counts: Dict[str, int]

    def values(self, stat: str, label: str) -> List[float]:
        return [
            value
            for record in self.groups.get(label, [])
            if (value := extract_stat(record, stat)) is not None
        ]

    def missing(self) -> Dict[str, int]:
        """variant label -> how many cells short of the grid it is."""
        out: Dict[str, int] = {}
        for label, want in self.expected_counts.items():
            have = len(self.groups.get(label, []))
            if have < want:
                out[label] = want - have
        return out


def _band_detail(
    stat: str, label: str, band: Band, observed: float, expected: float
) -> Dict[str, Any]:
    return {
        "stat": stat,
        "group": label,
        "observed": round(observed, 6),
        "expected": round(expected, 6),
        "gap": round(band.gap, 6),
        "limit": round(band.limit, 6),
        "margin": round(band.margin, 6),
        "ok": band.within,
    }


def _missing_score(case: ClaimCase, cells: CaseCells) -> Optional[ClaimScore]:
    missing = cells.missing()
    if not missing:
        return None
    gaps = ", ".join(
        f"{label}: {count} cell(s) short" for label, count in sorted(missing.items())
    )
    return ClaimScore(
        case_id=case.case_id,
        title=case.title,
        paper_ref=case.paper_ref,
        engine=cells.engine,
        scorer=case.scorer,
        status=FAIL,
        diagnosis=(
            f"incomplete ensemble — {gaps}; the simulation grid did not "
            "produce every cell (errored or absent), so the claim cannot "
            "be judged"
        ),
    )


def score_band(
    case: ClaimCase,
    cells: CaseCells,
    expected: Optional[Dict[str, Any]],
    tolerance_scale: float = 1.0,
) -> ClaimScore:
    """Ensemble means vs recorded expectations, per stat × variant."""
    short = _missing_score(case, cells)
    if short is not None:
        return short
    params = case.param_dict
    stats: Dict[str, float] = params["stats"]
    require_converged = bool(params.get("require_converged"))
    groups = (expected or {}).get("groups") or {}
    details: List[Dict[str, Any]] = []
    failures: List[str] = []
    unscored: List[str] = []
    for label in case.variant_labels:
        for stat in sorted(stats):
            values = cells.values(stat, label)
            want = cells.expected_counts.get(label, 0)
            if require_converged and len(values) < want:
                failures.append(
                    f"{stat}[{label}]: only {len(values)}/{want} cells "
                    "converged (value is None on the rest)"
                )
                continue
            if not values:
                unscored.append(f"{stat}[{label}]: no values in stored cells")
                continue
            entry = (groups.get(label) or {}).get(stat)
            if entry is None:
                unscored.append(
                    f"{stat}[{label}]: no recorded expectation "
                    "(run --update-expected at this preset)"
                )
                continue
            band = value_band(
                values, entry["value"], entry["tol"] * tolerance_scale
            )
            details.append(
                _band_detail(stat, label, band, ensemble_mean(values), entry["value"])
            )
            if not band.within:
                failures.append(
                    f"{stat}[{label}]: observed mean "
                    f"{ensemble_mean(values):.4f} vs expected "
                    f"{entry['value']:.4f} — {band.describe()}"
                )
    if failures:
        status, diagnosis = FAIL, "; ".join(failures)
    elif details:
        status, diagnosis = PASS, ""
    else:
        status, diagnosis = SKIP, "; ".join(unscored) or "nothing to score"
    if status == PASS and unscored:
        diagnosis = "partially scored — " + "; ".join(unscored)
    return ClaimScore(
        case_id=case.case_id,
        title=case.title,
        paper_ref=case.paper_ref,
        engine=cells.engine,
        scorer="band",
        status=status,
        details=details,
        diagnosis=diagnosis,
    )


def score_threshold(
    case: ClaimCase,
    cells: CaseCells,
    expected: Optional[Dict[str, Any]] = None,
    tolerance_scale: float = 1.0,
) -> ClaimScore:
    """Qualitative paper bounds: the ensemble mean of ``stat`` must
    respect ``min``/``max``.  Needs no recorded expectation (and is
    therefore immune to ``tolerance_scale``)."""
    short = _missing_score(case, cells)
    if short is not None:
        return short
    params = case.param_dict
    stat = params["stat"]
    details: List[Dict[str, Any]] = []
    failures: List[str] = []
    for label in case.variant_labels:
        values = cells.values(stat, label)
        if not values:
            failures.append(f"{stat}[{label}]: no values in stored cells")
            continue
        observed = ensemble_mean(values)
        ok = True
        bound_text = []
        if "max" in params:
            ok = ok and observed <= params["max"]
            bound_text.append(f"<= {params['max']:g}")
        if "min" in params:
            ok = ok and observed >= params["min"]
            bound_text.append(f">= {params['min']:g}")
        details.append(
            {
                "stat": stat,
                "group": label,
                "observed": round(observed, 6),
                "bound": " and ".join(bound_text),
                "ok": ok,
            }
        )
        if not ok:
            failures.append(
                f"{stat}[{label}]: observed mean {observed:.4f} violates "
                f"{' and '.join(bound_text)}"
            )
    return ClaimScore(
        case_id=case.case_id,
        title=case.title,
        paper_ref=case.paper_ref,
        engine=cells.engine,
        scorer="threshold",
        status=FAIL if failures else PASS,
        details=details,
        diagnosis="; ".join(failures),
    )


def score_improvement(
    case: ClaimCase,
    cells: CaseCells,
    expected: Optional[Dict[str, Any]] = None,
    tolerance_scale: float = 1.0,
) -> ClaimScore:
    """Comparative claims: the ``worse`` statistic's ensemble mean must
    exceed the ``better`` one's by at least ``min_gain`` (homogeneity
    and proximity are lower-is-better, so repair progress means the
    earlier probe is the larger number)."""
    short = _missing_score(case, cells)
    if short is not None:
        return short
    params = case.param_dict
    worse, better = params["worse"], params["better"]
    min_gain = float(params.get("min_gain", 0.0))
    details: List[Dict[str, Any]] = []
    failures: List[str] = []
    for label in case.variant_labels:
        worse_values = cells.values(worse, label)
        better_values = cells.values(better, label)
        if not worse_values or not better_values:
            failures.append(
                f"[{label}]: missing probe values ({worse}: "
                f"{len(worse_values)}, {better}: {len(better_values)})"
            )
            continue
        gain = ensemble_mean(worse_values) - ensemble_mean(better_values)
        ok = gain >= min_gain
        details.append(
            {
                "stat": f"{worse} -> {better}",
                "group": label,
                "observed": round(gain, 6),
                "min_gain": min_gain,
                "ok": ok,
            }
        )
        if not ok:
            failures.append(
                f"[{label}]: {worse} -> {better} improved by only "
                f"{gain:.4f} (< {min_gain:g})"
            )
    return ClaimScore(
        case_id=case.case_id,
        title=case.title,
        paper_ref=case.paper_ref,
        engine=cells.engine,
        scorer="improvement",
        status=FAIL if failures else PASS,
        details=details,
        diagnosis="; ".join(failures),
    )


def score_equivalence(
    case: ClaimCase,
    cells_by_engine: Dict[str, CaseCells],
    expected: Optional[Dict[str, Any]] = None,
    tolerance_scale: float = 1.0,
) -> ClaimScore:
    """Cross-engine ensembles agree within ``z`` combined standard
    errors plus the per-stat floor.  Unlike the other scorers this one
    receives *both* engines' cells."""
    params = case.param_dict
    stats: Dict[str, float] = params["stats"]
    z = float(params.get("z", 3.0))
    for engine in ("event", "batch"):
        cells = cells_by_engine.get(engine)
        if cells is None:
            return ClaimScore(
                case_id=case.case_id,
                title=case.title,
                paper_ref=case.paper_ref,
                engine="both",
                scorer="equivalence",
                status=FAIL,
                diagnosis=f"no cells for the {engine} engine",
            )
        short = _missing_score(case, cells)
        if short is not None:
            short.engine = "both"
            return short
    event, batch = cells_by_engine["event"], cells_by_engine["batch"]
    details: List[Dict[str, Any]] = []
    failures: List[str] = []
    for label in case.variant_labels:
        for stat in sorted(stats):
            ev = event.values(stat, label)
            bv = batch.values(stat, label)
            want = event.expected_counts.get(label, 0)
            if len(ev) < want or len(bv) < want:
                failures.append(
                    f"{stat}[{label}]: non-finite/missing values "
                    f"(event {len(ev)}/{want}, batch {len(bv)}/{want})"
                )
                continue
            band = equivalence_band(
                ev, bv, z=z, floor=stats[stat] * tolerance_scale
            )
            details.append(
                _band_detail(stat, label, band, ensemble_mean(bv), ensemble_mean(ev))
            )
            if not band.within:
                failures.append(
                    f"{stat}[{label}]: batch mean {ensemble_mean(bv):.4f} "
                    f"vs event mean {ensemble_mean(ev):.4f} — "
                    f"{band.describe()}"
                )
    return ClaimScore(
        case_id=case.case_id,
        title=case.title,
        paper_ref=case.paper_ref,
        engine="both",
        scorer="equivalence",
        status=FAIL if failures else PASS,
        details=details,
        diagnosis="; ".join(failures),
    )


SCORERS: Dict[str, Callable[..., ClaimScore]] = {
    "band": score_band,
    "threshold": score_threshold,
    "improvement": score_improvement,
    "equivalence": score_equivalence,
}


def score_case(
    case: ClaimCase,
    cells_by_engine: Dict[str, CaseCells],
    expected: Optional[Dict[str, Any]] = None,
    tolerance_scale: float = 1.0,
) -> List[ClaimScore]:
    """Score one case from its stored cells: one verdict per engine it
    ran under (``"any"`` cases), or one cross-engine verdict
    (``"both"`` cases)."""
    try:
        scorer = SCORERS[case.scorer]
    except KeyError:
        raise ConfigurationError(
            f"case {case.case_id} names unknown scorer {case.scorer!r}; "
            f"available: {sorted(SCORERS)}"
        ) from None
    if case.engine == "both":
        return [
            score_equivalence(
                case, cells_by_engine, expected, tolerance_scale
            )
        ]
    return [
        scorer(case, cells, expected, tolerance_scale)
        for engine, cells in sorted(cells_by_engine.items())
    ]


def group_cells(
    case: ClaimCase,
    engine: str,
    records: Sequence[Dict[str, Any]],
) -> CaseCells:
    """Organise stored cell records into the scorer hand-off shape.

    ``records`` are matched to variant groups by configuration hash
    (the runner indexes the store the same way), so the grouping is
    content-addressed — a record is only counted for the variant whose
    exact configuration produced it.
    """
    from ..runtime.store import config_hash

    by_hash: Dict[str, Dict[str, Any]] = {}
    for record in records:
        if record.get("status") == "ok":
            by_hash[record.get("config_hash", "")] = record
    groups: Dict[str, List[Dict[str, Any]]] = {}
    counts: Dict[str, int] = {}
    for label, config in case.configs(engine):
        counts[label] = counts.get(label, 0) + 1
        record = by_hash.get(config_hash(config))
        if record is not None:
            groups.setdefault(label, []).append(record)
    return CaseCells(engine=engine, groups=groups, expected_counts=counts)
