"""repro — a full reproduction of *Polystyrene: the Decentralized Data
Shape That Never Dies* (Bouget, Kermarrec, Kervadec, Taïani — ICDCS
2014).

Polystyrene is an add-on layer over gossip-based topology construction
(T-Man here) that decouples nodes from their positions: positions are
passive *data points* that get replicated, recovered and migrated, so
the overlay's shape survives catastrophic correlated failures that wipe
out a whole region of the topology.

Quick start::

    from repro import ScenarioConfig, run_scenario

    config = ScenarioConfig(width=16, height=8, replication=4,
                            failure_round=10, reinjection_round=40,
                            total_rounds=70)
    result = run_scenario(config)
    print(result.reshaping_time, result.reliability)

The package is organised as:

* :mod:`repro.spaces` — metric spaces (torus, Euclidean, ring, Jaccard)
  plus medoid/diameter utilities;
* :mod:`repro.shapes` — target shape samplers;
* :mod:`repro.sim` — the cycle-driven simulator (PeerSim substitute);
* :mod:`repro.gossip` — peer sampling (Cyclon) and T-Man;
* :mod:`repro.core` — the Polystyrene layer itself;
* :mod:`repro.metrics` — the paper's evaluation metrics;
* :mod:`repro.experiments` — one module per table/figure;
* :mod:`repro.runtime` — parallel sweep execution, simulation
  checkpoint/restore, persistent result store, churn schedules;
* :mod:`repro.analysis`, :mod:`repro.viz` — statistics and text output.
"""

from .core import (
    PolystyreneConfig,
    PolystyreneLayer,
    StaticHolderLayer,
    PointFactory,
    required_replication,
    survival_probability,
)
from .errors import ReproError
from .experiments import (
    ScalePreset,
    ScenarioConfig,
    ScenarioResult,
    get_preset,
    run_comparison,
    run_experiment,
    run_scenario,
)
from .gossip import PeerSamplingLayer, TManLayer
from .metrics import (
    MetricsRecorder,
    homogeneity,
    proximity,
    reference_homogeneity,
    reshaping_time,
    surviving_fraction,
)
from .routing import RouteResult, RoutingQuality, evaluate_routing, greedy_route
from .runtime import (
    ChurnSchedule,
    ParallelRunner,
    ResultStore,
    SimulationCheckpoint,
    SweepTask,
    restore,
    run_scenarios,
    snapshot,
)
from .shapes import AnnulusShape, DiskShape, LineShape, RingShape, Shape, TorusGrid
from .sim import Network, Simulation
from .spaces import Euclidean, FlatTorus, JaccardSpace, Ring, Space
from .types import Coord, DataPoint, NodeId, PointId

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "PolystyreneConfig",
    "PolystyreneLayer",
    "StaticHolderLayer",
    "PointFactory",
    "required_replication",
    "survival_probability",
    # experiments
    "ScenarioConfig",
    "ScenarioResult",
    "ScalePreset",
    "get_preset",
    "run_scenario",
    "run_comparison",
    "run_experiment",
    # substrates
    "PeerSamplingLayer",
    "TManLayer",
    "Network",
    "Simulation",
    # spaces & shapes
    "Space",
    "Euclidean",
    "FlatTorus",
    "Ring",
    "JaccardSpace",
    "Shape",
    "TorusGrid",
    "RingShape",
    "LineShape",
    "DiskShape",
    "AnnulusShape",
    # routing
    "greedy_route",
    "RouteResult",
    "evaluate_routing",
    "RoutingQuality",
    # runtime
    "ParallelRunner",
    "SweepTask",
    "ResultStore",
    "SimulationCheckpoint",
    "snapshot",
    "restore",
    "run_scenarios",
    "ChurnSchedule",
    # metrics
    "MetricsRecorder",
    "homogeneity",
    "proximity",
    "reference_homogeneity",
    "reshaping_time",
    "surviving_fraction",
    # types & errors
    "Coord",
    "DataPoint",
    "NodeId",
    "PointId",
    "ReproError",
]
