"""Parallel execution of experiment grids over worker processes.

Every figure and table of the paper is a grid of *independent*
simulations (seeds × shapes × failure fractions × split functions), so
the sweep is embarrassingly parallel.  :class:`ParallelRunner` fans a
list of :class:`SweepTask` across a ``multiprocessing`` pool with:

* **determinism** — each cell's result depends only on its
  configuration (every task carries its own seed), so ``workers=8``
  produces results identical per-cell to the serial path;
* **crash isolation** — an exception inside a worker records an
  ``error`` cell (with traceback) instead of killing the sweep;
* **progress reporting** — an optional callback fires in the parent as
  cells complete;
* **persistence & resume** — given a :class:`~repro.runtime.store.ResultStore`,
  finished cells are appended as they arrive and cells already recorded
  ``ok`` under the resumed run id are skipped, so an interrupted sweep
  continues where it left off.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, field, replace
from itertools import product
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from .. import obs
from ..errors import RunnerError
from ..experiments.scenario import ScenarioConfig, ScenarioResult, run_scenario
from ..obs import log as obs_log
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from .store import ResultStore

ProgressFn = Callable[[int, int, "CellResult"], None]


@dataclass(frozen=True)
class SweepTask:
    """One grid cell: a unique id plus the scenario configuration."""

    task_id: str
    config: ScenarioConfig

    def run(self) -> ScenarioResult:
        return run_scenario(self.config)


@dataclass
class CellResult:
    """Outcome of one task, successful or not."""

    task_id: str
    status: str  # "ok" | "error"
    result: Optional[ScenarioResult]
    error: Optional[str]
    seed: int
    duration_s: float
    config: ScenarioConfig = field(repr=False, default=None)
    #: State digest of the prefix checkpoint this cell continued from
    #: (fork-mode sweeps), ``None`` for a cold run.
    forked_from: Optional[str] = None
    #: Per-cell metrics snapshot (counters/gauges/histograms recorded
    #: while this cell executed), ``None`` when observability is off.
    metrics: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def _execute_task(task: SweepTask) -> CellResult:
    """Run one task, converting any exception into an errored cell.

    Module-level (not a method) so it pickles cleanly into workers.
    This is also the per-cell observability scope: it runs *in the
    executing process* (pool child, cluster worker, or the parent when
    serial), so the metrics registry is reset here, everything the cell
    records is snapshotted here, and the snapshot both rides back on
    the :class:`CellResult` and is flushed to the run's
    ``obs/metrics.jsonl``.
    """
    start = time.perf_counter()
    if obs_trace.ENABLED:
        # The cell span carries the identity the analysis surfaces key
        # on; the worker id (bound by the cluster drain loop) makes it
        # a lane in the critical-path / Perfetto views.
        attrs: Dict[str, Any] = {"task_id": task.task_id, "seed": task.config.seed}
        worker = obs_log.context().get("worker")
        if worker is not None:
            attrs["worker"] = worker
        cell_span = obs_trace.span("cell", **attrs)
    else:
        cell_span = obs_trace.NULL_SPAN
    with obs.reset_for_cell(task_id=task.task_id, seed=task.config.seed), cell_span:
        try:
            result = task.run()
        except Exception:
            duration = time.perf_counter() - start
            obs_metrics.observe("cell.wall", duration)
            obs_log.error("cell.error", duration_s=round(duration, 3))
            cell = CellResult(
                task_id=task.task_id,
                status="error",
                result=None,
                error=traceback.format_exc(),
                seed=task.config.seed,
                duration_s=duration,
                config=task.config,
                metrics=obs.flush_cell_metrics({"status": "error"}),
            )
        else:
            duration = time.perf_counter() - start
            obs_metrics.observe("cell.wall", duration)
            obs_log.debug("cell.done", duration_s=round(duration, 3))
            cell = CellResult(
                task_id=task.task_id,
                status="ok",
                result=result,
                error=None,
                seed=task.config.seed,
                duration_s=duration,
                config=task.config,
                # Fork-mode tasks record which checkpoint they actually
                # used (None after a cold fallback); set during run() in
                # this same worker process, so it survives the trip back
                # to the parent.
                forked_from=getattr(task, "forked_from", None),
                metrics=obs.flush_cell_metrics({"status": "ok"}),
            )
    # The cell span itself closes above, after the in-cell flush; drain
    # it here so pool children (which exit without atexit handlers)
    # never lose their last spans.
    obs_trace.flush()
    return cell


def default_workers() -> int:
    """Worker count from ``REPRO_WORKERS`` or the CPU count."""
    env = os.environ.get("REPRO_WORKERS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1


class ParallelRunner:
    """Executes sweep tasks across processes (or serially in-process).

    ``workers <= 1`` runs every task in the calling process through the
    *same* code path, which is what the parallel/serial equivalence
    guarantee rests on.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        progress: Optional[ProgressFn] = None,
        mp_context: Optional[str] = None,
    ) -> None:
        self.workers = default_workers() if workers is None else max(1, int(workers))
        self.progress = progress
        self._mp_context = mp_context

    # -- execution -------------------------------------------------------

    def run(
        self,
        tasks: Sequence[SweepTask],
        store: Optional[ResultStore] = None,
        run_id: Optional[str] = None,
        metadata: Optional[Dict[str, Any]] = None,
    ) -> List[CellResult]:
        """Run all tasks; returns cells in the order tasks were given.

        With a store, a run header is appended (unless ``run_id`` names
        an existing run to resume) and each finished cell is persisted
        as it completes.  Cells already stored ``ok`` under ``run_id``
        are skipped and *not* re-returned.
        """
        tasks = list(tasks)
        ids = [task.task_id for task in tasks]
        if len(set(ids)) != len(ids):
            dupes = sorted({tid for tid in ids if ids.count(tid) > 1})
            raise RunnerError(f"duplicate task ids in sweep: {dupes}")

        if store is not None:
            if run_id is not None and store.has_run(run_id):
                # Skip only cells whose exact configuration already ran:
                # a task id alone ("replication=2/seed=0") recurs across
                # scales/splits, so matching on it would silently drop
                # cells when the grid parameters changed.
                tasks = store.pending_tasks(run_id, tasks)
            else:
                run_id = store.open_run(run_id=run_id, metadata=metadata)

        total = len(tasks)
        by_id: Dict[str, CellResult] = {}
        done_count = 0

        def record(cell: CellResult) -> None:
            nonlocal done_count
            done_count += 1
            by_id[cell.task_id] = cell
            if store is not None:
                store.append_cell(
                    run_id,
                    cell.task_id,
                    cell.config,
                    status=cell.status,
                    result=cell.result,
                    error=cell.error,
                    duration_s=cell.duration_s,
                    forked_from=cell.forked_from,
                    metrics=cell.metrics,
                )
            if self.progress is not None:
                self.progress(done_count, total, cell)

        sweep_attrs: Dict[str, Any] = {"n_tasks": total, "workers": self.workers}
        if run_id is not None:
            sweep_attrs["run_id"] = run_id
        with obs_trace.span("sweep", **sweep_attrs):
            if self.workers <= 1 or len(tasks) <= 1:
                for task in tasks:
                    record(_execute_task(task))
            else:
                # Children must parent their spans under this sweep:
                # fork-mode pool workers inherit the context variable,
                # spawn-mode workers adopt the token exported here
                # (obs.configure_from_env at import).  Flush first so a
                # forked child never inherits unwritten parent spans.
                obs_trace.flush()
                prev_token = os.environ.get(obs_trace.ENV_CTX)
                token = obs_trace.context_token()
                if token is not None:
                    os.environ[obs_trace.ENV_CTX] = token
                try:
                    ctx = multiprocessing.get_context(self._mp_context)
                    with ctx.Pool(min(self.workers, len(tasks))) as pool:
                        for cell in pool.imap_unordered(_execute_task, tasks):
                            record(cell)
                finally:
                    if token is not None:
                        if prev_token is None:
                            os.environ.pop(obs_trace.ENV_CTX, None)
                        else:
                            os.environ[obs_trace.ENV_CTX] = prev_token
        obs_trace.flush()
        return [by_id[task.task_id] for task in tasks]


def scenario_tasks(configs: Sequence[ScenarioConfig]) -> List[SweepTask]:
    """One positionally-named task per plain scenario config."""
    return [
        SweepTask(task_id=f"cell-{i:04d}", config=config)
        for i, config in enumerate(configs)
    ]


def collect_scenario_results(
    cells: Sequence[CellResult],
) -> List[ScenarioResult]:
    """Results in cell order, any errored cell re-raised as
    :class:`~repro.errors.RunnerError` (shared by the cold and
    fork-mode strict fan-outs)."""
    failed = [cell for cell in cells if not cell.ok]
    if failed:
        first = failed[0]
        raise RunnerError(
            f"{len(failed)}/{len(cells)} sweep cells failed; first error "
            f"({first.task_id}, seed={first.seed}):\n{first.error}"
        )
    return [cell.result for cell in cells]


def run_scenarios(
    configs: Sequence[ScenarioConfig],
    workers: int = 1,
    progress: Optional[ProgressFn] = None,
) -> List[ScenarioResult]:
    """Strict fan-out of plain scenario configs: results in input order,
    any errored cell re-raised as :class:`~repro.errors.RunnerError`.

    The drop-in parallel replacement for
    ``[run_scenario(c) for c in configs]`` used by the figure/table
    modules: per-cell results are identical to the serial path because
    each simulation is fully determined by its configuration.
    """
    cells = ParallelRunner(workers=workers, progress=progress).run(
        scenario_tasks(configs)
    )
    return collect_scenario_results(cells)


def seed_sweep_tasks(
    config: ScenarioConfig, seeds: Iterable[int], prefix: str = "seed"
) -> List[SweepTask]:
    """One task per seed for a fixed configuration."""
    return [
        SweepTask(task_id=f"{prefix}-{seed}", config=replace(config, seed=seed))
        for seed in seeds
    ]


def grid_tasks(
    base: ScenarioConfig, axes: Dict[str, Sequence[Any]]
) -> List[SweepTask]:
    """The cartesian product of configuration axes as tasks.

    ``grid_tasks(base, {"replication": (2, 4, 8), "seed": range(5)})``
    yields 15 tasks with ids like ``replication=2/seed=3``.
    """
    if not axes:
        return [SweepTask(task_id="base", config=base)]
    names = list(axes)
    tasks: List[SweepTask] = []
    for values in product(*(axes[name] for name in names)):
        overrides = dict(zip(names, values))
        task_id = "/".join(f"{name}={value}" for name, value in overrides.items())
        tasks.append(SweepTask(task_id=task_id, config=replace(base, **overrides)))
    return tasks
