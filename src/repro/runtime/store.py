"""Append-only JSONL result store for experiment sweeps.

Every sweep writes two kinds of records to one ``.jsonl`` file:

* a ``run`` header — run id, creation time, git revision, scale preset,
  and free-form metadata — written once when the sweep starts;
* one ``cell`` record per finished grid cell — the full scenario
  configuration (plus its stable hash), the summary scalars the paper
  reports (reliability, reshaping time, final metric values), status,
  and wall-clock duration.  Errored cells are recorded too, with the
  worker traceback, so a crashed cell never silently disappears from a
  sweep.

The file is append-only: resuming an interrupted sweep appends the
missing cells under the same run id, and :meth:`ResultStore.completed`
tells the runner which cells to skip.  The analysis and viz layers read
sweeps back through :meth:`ResultStore.cells` /
:func:`repro.analysis.stats.mean_ci_over_cells` /
:func:`repro.viz.tables.format_store_cells`.

Writes are crash- and concurrency-safe at record granularity: every
record goes out as one ``write()`` on an ``O_APPEND`` descriptor, so
concurrent writers (several cluster workers sharing one shard file, or
a reader racing an appender) interleave whole lines, never bytes.  A
torn trailing line — a writer killed mid-``write`` — is skipped with a
warning on read instead of poisoning the whole store; corruption
*before* the tail (which a torn append cannot produce) still raises
:class:`~repro.errors.StoreError`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import subprocess
import time
import warnings
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Union

from ..errors import StoreError
from ..experiments.scenario import ScenarioConfig, ScenarioResult
from ..obs import log as obs_log

STORE_FORMAT = 1


def config_dict(config: ScenarioConfig) -> Dict[str, Any]:
    """A JSON-safe dict of a scenario configuration."""
    out = dataclasses.asdict(config)
    # Pure execution knob: backends are bit-identical by contract, so a
    # run's identity (hashes, checkpoints, dedup) must not depend on it.
    out.pop("kernel_backend", None)
    for key, value in out.items():
        if isinstance(value, tuple):
            out[key] = list(value)
    return out


def config_hash(config: ScenarioConfig) -> str:
    """Stable short hash identifying a configuration (seed included)."""
    canon = json.dumps(config_dict(config), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode("utf8")).hexdigest()[:16]


def git_revision(cwd: Optional[Union[str, Path]] = None) -> str:
    """The current git commit hash, or ``"unknown"`` outside a repo."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd or os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if out.returncode != 0:
        return "unknown"
    return out.stdout.strip()


def config_from_dict(data: Dict[str, Any]) -> ScenarioConfig:
    """Rebuild a :class:`ScenarioConfig` from :func:`config_dict` output.

    The JSON round trip turns tuples into lists; no configuration field
    is genuinely a list, so every list value converts back.  This is
    what lets a cluster worker reconstruct a task published by a
    coordinator on another machine:
    ``config_from_dict(config_dict(c)) == c`` for every valid config
    (modulo ``kernel_backend``, which :func:`config_dict` strips — each
    worker picks its own backend and computes the same bytes).
    """
    kwargs = {
        key: tuple(value) if isinstance(value, list) else value
        for key, value in data.items()
    }
    return ScenarioConfig(**kwargs)


def _probe_rounds(config: ScenarioConfig) -> Dict[str, int]:
    """The claim-relevant rounds of a scenario, derived from its phase
    structure (so the same labels mean the same thing at every scale):
    the last pre-failure round, the early/late repair snapshots Fig. 8
    compares (failure + 2 / failure + 8), the mid-recovery round the
    Fig. 6 curves are read at, and the last pre-reinjection round."""
    rounds: Dict[str, int] = {}
    failure = config.failure_round
    reinjection = config.reinjection_round
    if failure is not None:
        rounds["pre_failure"] = failure - 1
        rounds["early_repair"] = failure + 2
        rounds["late_repair"] = failure + 8
        if reinjection is not None:
            rounds["mid_recovery"] = (failure + reinjection) // 2
    if reinjection is not None:
        rounds["pre_reinjection"] = reinjection - 1
    return rounds


def series_probes(result: ScenarioResult) -> Dict[str, Dict[str, float]]:
    """Per-metric samples of the recorded series at the claim-relevant
    rounds of this scenario (:func:`_probe_rounds`), dropping any probe
    the run is too short to have reached."""
    probes: Dict[str, Dict[str, float]] = {}
    for label, rnd in _probe_rounds(result.config).items():
        sample = {
            metric: float(series[rnd])
            for metric, series in result.series.items()
            if 0 <= rnd < len(series)
        }
        if sample:
            probes[label] = sample
    return probes


def summarize_result(result: ScenarioResult) -> Dict[str, Any]:
    """The scalar summary persisted per cell: what Table II, the
    Fig. 10 sweeps, and the :mod:`repro.eval` claim scorers read,
    without the O(rounds × metrics) series.

    Beyond the final values, every cell records the series sampled at
    the scenario's claim-relevant rounds (``probes``), the peak of the
    storage series (Fig. 7a), and the steady-state mean message cost
    (Fig. 7b, skipping the bootstrap transient) — so a stored sweep is
    enough to re-check every paper claim without re-simulating.
    """
    storage = result.series.get("storage") or []
    messages = result.series.get("message_cost") or []
    return {
        "reliability": result.reliability,
        "reshaping_time": result.reshaping_time,
        "h_ref_initial": result.h_ref_initial,
        "h_ref_after_failure": result.h_ref_after_failure,
        "rounds": len(result.n_alive),
        "n_alive_final": result.n_alive[-1] if result.n_alive else 0,
        "rps_fallbacks": result.rps_fallbacks,
        "final": {metric: series[-1] for metric, series in result.series.items() if series},
        "probes": series_probes(result),
        "storage_peak": max(storage) if storage else None,
        "message_mean": (
            float(sum(messages[3:]) / len(messages[3:]))
            if len(messages) > 3
            else None
        ),
    }


def cell_record(
    run_id: str,
    task_id: str,
    config: ScenarioConfig,
    *,
    status: str,
    result: Optional[ScenarioResult] = None,
    error: Optional[str] = None,
    duration_s: float = 0.0,
    forked_from: Optional[str] = None,
    worker: Optional[str] = None,
    metrics: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Build one cell record dict (the single definition of the on-disk
    cell shape, shared by :meth:`ResultStore.append_cell` and the
    cluster workers that write shard files).

    ``worker`` names the cluster worker that produced the cell (absent
    for local runs).  ``metrics`` is the cell's observability snapshot
    (absent when observability is off) — like ``worker`` it is excluded
    from :func:`summary_digest`, so instrumented and plain runs digest
    identically.
    """
    if status not in ("ok", "error"):
        raise StoreError(f"cell status must be 'ok' or 'error', got {status!r}")
    record = {
        "kind": "cell",
        "run_id": run_id,
        "task_id": task_id,
        "status": status,
        "seed": config.seed,
        "config": config_dict(config),
        "config_hash": config_hash(config),
        "summary": summarize_result(result) if result is not None else None,
        "error": error,
        "duration_s": round(float(duration_s), 6),
        "forked_from": forked_from,
    }
    if worker is not None:
        record["worker"] = worker
    if metrics is not None:
        record["metrics"] = metrics
    return record


def summary_digest(record: Dict[str, Any]) -> str:
    """A stable digest of *what a cell computed* — configuration hash,
    status, and the summary scalars — deliberately excluding wall-clock
    duration, worker identity, and run id, so a cell run serially and
    the same cell run on a cluster worker digest identically.  The
    cluster's serial-equivalence checks compare these."""
    canon = json.dumps(
        {
            "config_hash": record.get("config_hash"),
            "status": record.get("status"),
            "summary": record.get("summary"),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canon.encode("utf8")).hexdigest()[:16]


class ResultStore:
    """One JSONL file of run headers and cell records."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    # -- writing ---------------------------------------------------------

    def _append(self, record: Dict[str, Any]) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        data = (line + "\n").encode("utf8")
        # One write() on an O_APPEND descriptor: concurrent appenders
        # (cluster workers sharing a shard, a merge racing a straggler)
        # interleave whole records, and a crash can tear at most the
        # final line — which records() skips on read.
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, data)
        finally:
            os.close(fd)

    def append_record(self, record: Dict[str, Any]) -> None:
        """Append one pre-built record (merge path: fold a shard cell
        into this store under a new run)."""
        if record.get("kind") not in ("run", "cell"):
            raise StoreError(
                f"record kind must be 'run' or 'cell', got {record.get('kind')!r}"
            )
        self._append(record)

    def open_run(
        self,
        run_id: Optional[str] = None,
        metadata: Optional[Dict[str, Any]] = None,
    ) -> str:
        """Write a run header; returns the (possibly generated) run id."""
        if run_id is None:
            run_id = time.strftime("run-%Y%m%dT%H%M%S") + f"-{os.getpid()}"
        self._append(
            {
                "kind": "run",
                "format": STORE_FORMAT,
                "run_id": run_id,
                "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
                "git_rev": git_revision(),
                "metadata": metadata or {},
            }
        )
        return run_id

    def append_cell(
        self,
        run_id: str,
        task_id: str,
        config: ScenarioConfig,
        *,
        status: str,
        result: Optional[ScenarioResult] = None,
        error: Optional[str] = None,
        duration_s: float = 0.0,
        forked_from: Optional[str] = None,
        metrics: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record one finished (or failed) grid cell.

        ``forked_from`` is the state digest of the prefix checkpoint a
        fork-mode cell continued from (``None`` for cold runs), so a
        stored sweep is auditable: which cells shared which Phase 1.
        """
        self._append(
            cell_record(
                run_id,
                task_id,
                config,
                status=status,
                result=result,
                error=error,
                duration_s=duration_s,
                forked_from=forked_from,
                metrics=metrics,
            )
        )

    # -- reading ---------------------------------------------------------

    def records(self, kind: Optional[str] = None) -> Iterator[Dict[str, Any]]:
        """Stream every record, optionally filtered by kind.

        A trailing line that does not parse is a *torn append* — a
        writer crashed (or is still) mid-``write`` — and is skipped with
        a warning; every record before it is intact.  An unparseable
        line with valid records after it cannot come from a torn append
        and still raises :class:`~repro.errors.StoreError`.
        """
        if not self.path.exists():
            return
        # Streamed with a one-line holdback: an undecodable line is only
        # a torn append if nothing follows it, so decide when the next
        # non-blank line (or EOF) arrives instead of buffering the file.
        bad: Optional[int] = None
        bad_error: Optional[json.JSONDecodeError] = None
        with self.path.open("r", encoding="utf8") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                if bad is not None:
                    raise StoreError(
                        f"corrupt record at {self.path}:{bad}: {bad_error}"
                    ) from bad_error
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    bad, bad_error = lineno, exc
                    continue
                if kind is None or record.get("kind") == kind:
                    yield record
        if bad is not None:
            warnings.warn(
                f"skipping torn trailing record at {self.path}:{bad} "
                "(interrupted write?)",
                stacklevel=2,
            )
            obs_log.warning(
                "store.torn_record",
                path=str(self.path),
                line=bad,
                error=str(bad_error),
            )

    def runs(self) -> List[Dict[str, Any]]:
        """All run headers, oldest first."""
        return list(self.records(kind="run"))

    def latest_run_id(self) -> Optional[str]:
        run_id = None
        for record in self.records(kind="run"):
            run_id = record["run_id"]
        return run_id

    def cells(
        self,
        run_id: Optional[str] = None,
        status: Optional[str] = None,
        where: Optional[Callable[[Dict[str, Any]], bool]] = None,
        **config_filters: Any,
    ) -> List[Dict[str, Any]]:
        """Cell records matching the filters.

        ``config_filters`` match against the stored configuration
        (``store.cells(replication=4, split="advanced")``); ``where``
        is an arbitrary record predicate for anything richer.
        """
        out: List[Dict[str, Any]] = []
        for record in self.records(kind="cell"):
            if run_id is not None and record["run_id"] != run_id:
                continue
            if status is not None and record["status"] != status:
                continue
            config = record.get("config") or {}
            if any(config.get(k) != v for k, v in config_filters.items()):
                continue
            if where is not None and not where(record):
                continue
            out.append(record)
        return out

    def completed(self, run_id: Optional[str] = None) -> set:
        """Task ids already recorded ``ok`` — the resume skip-set."""
        return {
            record["task_id"]
            for record in self.cells(run_id=run_id, status="ok")
        }

    def completed_hashes(self, run_id: Optional[str] = None) -> Dict[str, str]:
        """``{task_id: config_hash}`` of the ``ok`` cells.  The runner
        resumes against this instead of bare task ids so a cell is only
        skipped when its *configuration* (not just its name) already
        ran — resubmitting the same grid at a different scale or split
        re-runs every cell."""
        return {
            record["task_id"]: record.get("config_hash", "")
            for record in self.cells(run_id=run_id, status="ok")
        }

    def has_run(self, run_id: str) -> bool:
        """Whether a run header with this id exists."""
        return any(record["run_id"] == run_id for record in self.runs())

    def pending_tasks(self, run_id: str, tasks: list) -> list:
        """The subset of ``tasks`` not yet recorded ``ok`` under
        ``run_id`` — the single definition of the resume skip rule
        (match on configuration hash, not bare task id) shared by the
        cold runner and the fork-sweep planner."""
        done = self.completed_hashes(run_id)
        return [
            task
            for task in tasks
            if done.get(task.task_id) != config_hash(task.config)
        ]

    # -- integrity -------------------------------------------------------

    def verify(self) -> Dict[str, Any]:
        """Offline integrity check over the whole store (what
        ``repro results --verify`` runs).

        Reads every line once and reports, without raising:

        * parse state — intact records, a torn trailing line (tolerable:
          a writer crashed or is still mid-append), or mid-file
          corruption (``ok: False`` — a torn append cannot produce it);
        * shape problems — unknown record kinds, cell records missing
          required fields, cells whose stored ``config_hash`` no longer
          matches their stored configuration, cells referencing a run id
          with no run header;
        * counts per kind and per cell status, plus duplicate
          ``(run_id, task_id, config_hash)`` cells (benign — the merge
          path dedupes — but worth surfacing).
        """
        report: Dict[str, Any] = {
            "path": str(self.path),
            "ok": True,
            "runs": 0,
            "cells": 0,
            "cells_ok": 0,
            "cells_error": 0,
            "torn_tail": False,
            "duplicates": 0,
            "problems": [],
        }

        def problem(message: str, fatal: bool = True) -> None:
            report["problems"].append(message)
            if fatal:
                report["ok"] = False

        if not self.path.exists():
            problem(f"store file does not exist: {self.path}")
            return report
        with self.path.open("r", encoding="utf8") as fh:
            lines = [
                (lineno, line.strip())
                for lineno, line in enumerate(fh, start=1)
                if line.strip()
            ]
        run_ids = set()
        seen_cells: set = set()
        for index, (lineno, line) in enumerate(lines):
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                if index == len(lines) - 1:
                    report["torn_tail"] = True
                    problem(
                        f"line {lineno}: torn trailing record ({exc})",
                        fatal=False,
                    )
                else:
                    problem(f"line {lineno}: corrupt record mid-file ({exc})")
                continue
            kind = record.get("kind")
            if kind == "run":
                report["runs"] += 1
                if not record.get("run_id"):
                    problem(f"line {lineno}: run header without run_id")
                else:
                    run_ids.add(record["run_id"])
            elif kind == "cell":
                report["cells"] += 1
                missing = [
                    key
                    for key in ("run_id", "task_id", "status", "config")
                    if key not in record
                ]
                if missing:
                    problem(f"line {lineno}: cell missing fields {missing}")
                    continue
                status = record["status"]
                if status == "ok":
                    report["cells_ok"] += 1
                elif status == "error":
                    report["cells_error"] += 1
                else:
                    problem(f"line {lineno}: unknown cell status {status!r}")
                stored_hash = record.get("config_hash")
                try:
                    recomputed = config_hash(config_from_dict(record["config"]))
                except (TypeError, ValueError) as exc:
                    problem(
                        f"line {lineno}: cell config does not rebuild ({exc})"
                    )
                    continue
                if stored_hash != recomputed:
                    problem(
                        f"line {lineno}: config_hash mismatch "
                        f"(stored {stored_hash}, recomputed {recomputed})"
                    )
                if record["run_id"] not in run_ids:
                    problem(
                        f"line {lineno}: cell references unknown run "
                        f"{record['run_id']!r}",
                        fatal=False,
                    )
                key = (record["run_id"], record["task_id"], stored_hash)
                if key in seen_cells:
                    report["duplicates"] += 1
                seen_cells.add(key)
            else:
                problem(f"line {lineno}: unknown record kind {kind!r}")
        return report

    def series_of(self, field: str, run_id: Optional[str] = None, **config_filters: Any) -> List[float]:
        """One summary scalar across matching ok-cells (query helper for
        the analysis layer), ``None`` entries dropped."""
        values: List[float] = []
        for record in self.cells(run_id=run_id, status="ok", **config_filters):
            summary = record.get("summary") or {}
            value = summary.get(field)
            if value is None:
                value = (summary.get("final") or {}).get(field)
            if value is not None:
                values.append(float(value))
        return values
