"""Deterministic snapshot/restore of a full :class:`~repro.sim.engine.Simulation`.

A checkpoint captures *everything* the next round depends on — network
membership, per-layer node state, every RNG substream (via
``random.Random`` state), pending scheduled events, and the message
meter — so a run can be paused, forked at an interesting round (e.g.
right before a failure), and resumed **bit-identically**: running N
rounds, snapshotting, and running M more produces exactly the state of
an uninterrupted N+M-round run.

Checkpoints restore by deep copy, so one snapshot can seed any number
of divergent continuations (fork semantics).  Disk persistence uses
pickle; the standard event objects (:mod:`repro.sim.failures`,
:mod:`repro.sim.reinjection`) are picklable by construction, while
ad-hoc closure events make a checkpoint memory-only — :func:`save`
reports that as a :class:`~repro.errors.CheckpointError` instead of a
bare pickle traceback.
"""

from __future__ import annotations

import copy
import hashlib
import io
import os
import pickle
import types
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from ..errors import CheckpointError
from ..obs import mem as obs_mem
from ..obs import metrics as obs_metrics
from ..sim.arrays import OBJECT_DIM, ViewBuffer
from ..sim.engine import Simulation

#: On-disk checkpoint format.
#:
#: * Format 1 — the original per-node object layout: ``SimNode``
#:   instances owning their position, per-node ``dict`` views.
#: * Format 2 — the array-backed layout: network state in a
#:   struct-of-arrays :class:`~repro.sim.arrays.NodeTable`, views as
#:   :class:`~repro.sim.arrays.ViewBuffer` columns.
#:
#: :func:`load` still reads format-1 files and :func:`restore` upgrades
#: them in place (same digests, same trajectories); :func:`save` always
#: writes the current format.
CHECKPOINT_FORMAT = 2

_MAGIC = b"repro-ckpt"


@dataclass
class SimulationCheckpoint:
    """A frozen simulation state plus identifying metadata."""

    format: int
    round: int
    seed: int
    n_alive: int
    n_total: int
    layer_names: list
    #: The frozen simulation object.  Treat as opaque: mutate nothing,
    #: restore via :func:`restore` (which deep-copies so the checkpoint
    #: stays reusable).
    sim: Simulation = field(repr=False)

    def describe(self) -> str:
        return (
            f"checkpoint(round={self.round}, seed={self.seed}, "
            f"alive={self.n_alive}/{self.n_total}, "
            f"layers={'/'.join(self.layer_names)})"
        )


def snapshot(sim: Simulation) -> SimulationCheckpoint:
    """Capture the complete current state of ``sim``.

    The source simulation can keep running afterwards; the checkpoint is
    an independent deep copy.
    """
    try:
        frozen = copy.deepcopy(sim)
    except Exception as exc:  # pragma: no cover - deepcopy of sim state
        raise CheckpointError(f"simulation state is not copyable: {exc}") from exc
    return SimulationCheckpoint(
        format=CHECKPOINT_FORMAT,
        round=sim.round,
        seed=sim.seed,
        n_alive=sim.network.n_alive,
        n_total=sim.network.n_total,
        layer_names=[layer.name for layer in sim.layers],
        sim=frozen,
    )


def restore(
    checkpoint: SimulationCheckpoint, engine: Optional[str] = None
) -> Simulation:
    """A fresh simulation continuing exactly from the checkpointed
    round.  Each call returns an independent copy, so one checkpoint can
    fork many divergent futures.  Format-1 (pre-array) checkpoints are
    upgraded to the array-backed layout on the fly — the upgraded run
    produces the exact same trajectory.

    ``engine`` requests a specific execution engine (``"event"`` or
    ``"batch"``): a snapshot taken under the other engine is *converted*
    where semantics allow (network, per-node protocol state, pending
    events and the meter carry over verbatim; RNG substreams are
    re-derived at the switch boundary, so the continuation is a valid
    run of the target engine, not a bit-level extension of the source
    trajectory).  Conversion raises :class:`CheckpointError` when the
    snapshot cannot run under the target engine (non-vector space, or a
    layer stack the converter does not recognise).
    """
    if checkpoint.format not in (1, CHECKPOINT_FORMAT):
        raise CheckpointError(
            f"unsupported checkpoint format {checkpoint.format} "
            f"(this build reads formats 1..{CHECKPOINT_FORMAT})"
        )
    sim = copy.deepcopy(checkpoint.sim)
    if checkpoint.format == 1:
        _upgrade_v1(sim)
    if engine is not None:
        sim = convert_engine(sim, engine)
    return sim


def convert_engine(sim: Simulation, engine: str) -> Simulation:
    """Convert a live simulation to the requested execution engine
    (no-op when it already runs under it); see :func:`restore`."""
    from ..errors import ConfigurationError
    from ..sim.batch.convert import to_batch, to_event

    try:
        if engine == "batch":
            return to_batch(sim)
        if engine == "event":
            return to_event(sim)
    except ConfigurationError as exc:
        raise CheckpointError(
            f"checkpoint cannot run under the {engine!r} engine: {exc}"
        ) from exc
    raise CheckpointError(f"unknown execution engine {engine!r}")


def save(checkpoint: SimulationCheckpoint, path: Union[str, Path]) -> Path:
    """Persist a checkpoint to ``path`` (atomic: write then rename)."""
    path = Path(path)
    with obs_metrics.timer("checkpoint.save"):
        try:
            blob = pickle.dumps(checkpoint, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise CheckpointError(
                "checkpoint is not picklable (a scheduled event is probably a "
                f"closure — use the event classes in repro.sim.failures): {exc}"
            ) from exc
        # Per-process tmp name: two workers publishing the same
        # content-addressed cache entry concurrently must not truncate each
        # other's half-written tmp file before the rename.
        tmp = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_bytes(_MAGIC + blob)
            tmp.replace(path)
        except OSError as exc:
            raise CheckpointError(
                f"cannot write checkpoint {path}: {exc}"
            ) from exc
        obs_metrics.observe("checkpoint.bytes", float(len(blob)))
        if obs_mem.ENABLED:
            obs_mem.scratch("checkpoint", "checkpoint.save.blob", len(blob))
    return path


def load(path: Union[str, Path]) -> SimulationCheckpoint:
    """Read a checkpoint previously written by :func:`save`."""
    path = Path(path)
    with obs_metrics.timer("checkpoint.load"):
        try:
            raw = path.read_bytes()
        except OSError as exc:
            raise CheckpointError(
                f"cannot read checkpoint {path}: {exc}"
            ) from exc
        if not raw.startswith(_MAGIC):
            raise CheckpointError(f"{path} is not a repro checkpoint file")
        try:
            checkpoint = pickle.loads(raw[len(_MAGIC):])
        except Exception as exc:
            raise CheckpointError(f"corrupt checkpoint {path}: {exc}") from exc
        if not isinstance(checkpoint, SimulationCheckpoint):
            raise CheckpointError(
                f"{path} does not contain a SimulationCheckpoint"
            )
        if checkpoint.format not in (1, CHECKPOINT_FORMAT):
            raise CheckpointError(
                f"unsupported checkpoint format {checkpoint.format} in {path}"
            )
    return checkpoint


# -- legacy-format upgrade --------------------------------------------------


def _upgrade_v1(sim: Simulation) -> None:
    """Convert a format-1 (pre-array) simulation object graph to the
    struct-of-arrays layout, in place.

    Format-1 pickles refer to the current classes by name, so they
    unpickle into instances carrying the *old* attribute layout
    (``SimNode.__dict__['pos']``, per-node ``dict`` views, a dict-based
    ``Network``).  This rebuilds the network over a
    :class:`~repro.sim.arrays.NodeTable` and converts every view dict
    into its :class:`~repro.sim.arrays.ViewBuffer` slot, preserving
    membership, insertion order, positions, ages and death records —
    the upgraded simulation has the same :func:`state_digest` and runs
    the same trajectory.
    """
    from ..sim.network import Network

    old = sim.network.__dict__
    network = Network(old["detector"])
    network._next_id = old["_next_id"]
    for nid, old_node in old["nodes"].items():
        legacy = dict(vars(old_node))
        node = network._register(
            nid, legacy.pop("pos"), legacy.pop("initial_point", None)
        )
        legacy.pop("nid", None)
        for attr, value in legacy.items():
            if attr == "tman_view" and isinstance(value, dict):
                dim = sim.space.dim
                value = ViewBuffer(
                    dim if dim is not None else OBJECT_DIM, value.items()
                )
            setattr(node, attr, value)
    # Replay the death record (death order and rounds preserved).
    for nid in old["_dead"]:
        del network._alive[nid]
        network._death_round[nid] = old["_death_round"][nid]
        network._dead.append(nid)
        network.table.mark_dead(network.nodes[nid]._row, old["_death_round"][nid])
    network._alive_cache = None
    sim.network = network
    sim._detected_key = None
    sim._detected_rows_key = None


# -- state fingerprinting ---------------------------------------------------


def _node_state(node) -> tuple:
    """A canonical, order-stable summary of one node's layer state."""
    entries = [("pos", node.pos)]
    for attr in sorted(vars(node)):
        if attr.endswith("_view"):
            view = getattr(node, attr)
            if isinstance(view, (dict, ViewBuffer)):
                entries.append((attr, sorted(view)))
    poly = getattr(node, "poly", None)
    if poly is not None:
        entries.append(
            (
                "poly",
                (
                    sorted(poly.guests),
                    sorted(
                        (origin, tuple(sorted(pts)))
                        for origin, pts in poly.ghosts.items()
                    ),
                    sorted(poly.backups),
                    sorted(
                        (nid, tuple(sorted(sent)))
                        for nid, sent in poly.backup_sent.items()
                    ),
                ),
            )
        )
    return tuple(entries)


def _event_fingerprint(event, depth: int = 3) -> tuple:
    """A stable identity for a scheduled event: its class (or function
    qualname) plus its parameters, recursing into nested objects (e.g.
    a RegionFailure's predicate) up to ``depth`` levels.  Default
    ``repr`` is useless here (it embeds memory addresses), so only
    address-free material is fed to the digest."""
    target = getattr(event, "__self__", event)  # bound method -> instance
    if isinstance(target, types.FunctionType):
        return (target.__qualname__, ())
    params = []
    if depth > 0 and hasattr(target, "__dict__"):
        for key, value in sorted(vars(target).items()):
            if isinstance(value, (int, float, str, bool, tuple, list, frozenset)):
                params.append((key, value))
            else:
                params.append((key, _event_fingerprint(value, depth - 1)))
    return (type(target).__qualname__, tuple(params))


def _rng_state(rng) -> object:
    """A repr-stable state token for either RNG flavour: the event
    engine's ``random.Random`` or the batch engine's numpy Generator."""
    getstate = getattr(rng, "getstate", None)
    if getstate is not None:
        return getstate()
    return ("numpy", rng.bit_generator.state)


def state_digest(sim: Simulation) -> str:
    """A stable SHA-256 fingerprint of the simulation state.

    Two simulations with equal digests agree on round number,
    membership, node positions, per-node protocol state, every RNG
    substream, message-meter history, and the pending event schedule
    (event identity and parameters, not just rounds) — the checkpoint
    round-trip tests assert digest equality between interrupted and
    uninterrupted runs.  Batch-engine simulations sync their array
    state onto the canonical per-node attributes first, so the same
    definition covers both engines (their digests never collide:
    the RNG states differ by construction).
    """
    sync = getattr(sim, "sync_canonical", None)
    if sync is not None:
        sync()
    h = hashlib.sha256()

    def feed(tag: str, value) -> None:
        h.update(tag.encode("utf8"))
        h.update(repr(value).encode("utf8"))

    feed("round", sim.round)
    feed("seed", sim.seed)
    feed("alive", sim.network.alive_ids())
    feed("dead", sim.network.dead_ids())
    for nid in sim.network.alive_ids():
        feed(f"node:{nid}", _node_state(sim.network.node(nid)))
    for name in sorted(sim._rngs):
        feed(f"rng:{name}", _rng_state(sim._rngs[name]))
    feed("rng:engine", _rng_state(sim._engine_rng))
    feed("meter", [sorted(snap.items()) for snap in sim.meter.history])
    feed(
        "pending",
        [
            (rnd, [_event_fingerprint(event) for event in sim._events[rnd]])
            for rnd in sorted(sim._events)
        ],
    )
    return h.hexdigest()


def checkpoint_size(checkpoint: SimulationCheckpoint) -> int:
    """The serialized size of a checkpoint in bytes (for the
    micro-benchmarks tracking snapshot overhead)."""
    buf = io.BytesIO()
    pickle.dump(checkpoint, buf, protocol=pickle.HIGHEST_PROTOCOL)
    return buf.getbuffer().nbytes
