"""The coordinator: plan a grid, publish fork points, enqueue cells.

One process (any of the participants — publishing is idempotent) turns
a sweep grid into a published queue:

1. the grid is partitioned by shared pre-failure prefix with the same
   planner fork-mode sweeps use
   (:func:`repro.runtime.forksweep.plan_fork_sweep`);
2. every prefix checkpoint missing from the shared
   :class:`~repro.runtime.forksweep.CheckpointCache` is simulated once
   (locally, in parallel) and *published* — written atomically under
   its content-addressed name — so each Phase 1 is computed exactly
   once for the whole cluster;
3. each cell is enqueued as a :class:`TaskSpec` carrying the prefix
   hash and the exact published digest; workers *fetch* the checkpoint
   by digest and fall back to a cold run on any cache problem, so a
   lost or corrupted checkpoint costs time, never correctness.

:func:`run_distributed_sweep` composes the whole lifecycle —
publish → drain (with local workers, while remote ones are free to
join) → merge — and :func:`distributed_scenarios` is the
``run_scenarios``-shaped strict fan-out on top of it, used by the
experiment registry's ``queue=`` path.
"""

from __future__ import annotations

import multiprocessing
import pickle
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

from ...errors import ClusterError
from ...experiments.scenario import ScenarioConfig, ScenarioResult
from ...obs import log as obs_log
from ...obs import trace as obs_trace
from ..forksweep import CheckpointCache, PrefixTask, plan_fork_sweep
from ..runner import (
    CellResult,
    ParallelRunner,
    SweepTask,
    collect_scenario_results,
    scenario_tasks,
)
from ..store import ResultStore, config_from_dict
from .merge import MergeReport, merge_queue, merged_records
from .queue import (
    DEFAULT_LEASE_S,
    DEFAULT_MAX_ATTEMPTS,
    TaskSpec,
    WorkQueue,
    open_queue,
)
from .worker import Worker, run_worker

QueueLike = Union[str, WorkQueue]


class Coordinator:
    """Plans and publishes a sweep grid into a shared work queue."""

    def __init__(
        self,
        queue: QueueLike,
        cache: Optional[CheckpointCache] = None,
        workers: Optional[int] = None,
        progress=None,
        mp_context: Optional[str] = None,
    ) -> None:
        self.queue = open_queue(queue)
        self.cache = cache
        self.workers = workers
        self.progress = progress
        self._mp_context = mp_context

    def _resolve_cache(self) -> CheckpointCache:
        if self.cache is not None:
            return self.cache
        return CheckpointCache(self.queue.cache_root())

    def publish(
        self,
        tasks: Sequence[SweepTask],
        run_id: Optional[str] = None,
        metadata: Optional[Dict[str, Any]] = None,
        lease_s: float = DEFAULT_LEASE_S,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        payloads: bool = False,
        fork: bool = True,
    ) -> Dict[str, Any]:
        """Publish the grid (computing + publishing missing prefix
        checkpoints first), or join an identical already-published one.

        Joining skips the prefix work entirely — the original publisher
        already parked every fork point in the shared cache.
        """
        tasks = list(tasks)
        # The ambient span context (the ``sweep.distributed`` span when
        # driven by run_distributed_sweep) is what every worker's cell
        # spans should parent under; it rides in the manifest because
        # ``repro worker`` daemons share no environment with us.
        trace_token = obs_trace.context_token()
        if self.queue.manifest() is not None:
            # Join path: validate against the existing manifest without
            # re-planning (spec kinds don't matter for validation).
            return self.queue.publish(
                [
                    TaskSpec(task_id=t.task_id, config=t.config, payload=payloads)
                    for t in tasks
                ]
            )

        cache = self._resolve_cache()
        by_group: Dict[str, Any] = {}
        if fork:
            with obs_trace.span("prefix.plan"):
                plan = plan_fork_sweep(tasks)
                missing = [
                    group
                    for group in plan.groups
                    if cache.digest_of(group.prefix_hash) is None
                ]
            if missing:
                # Each missing Phase 1 is simulated once, locally, and
                # published into the shared cache.  An errored prefix is
                # tolerated: its cells are enqueued cold.
                ParallelRunner(
                    workers=self.workers,
                    progress=self.progress,
                    mp_context=self._mp_context,
                ).run(
                    [
                        PrefixTask(
                            task_id=f"prefix-{group.prefix_hash}",
                            config=group.prefix,
                            cache_root=str(cache.root),
                        )
                        for group in missing
                    ]
                )
            by_group = {
                task.task_id: group
                for group in plan.groups
                for task in group.tasks
            }

        specs: List[TaskSpec] = []
        for task in tasks:
            group = by_group.get(task.task_id)
            digest = (
                cache.digest_of(group.prefix_hash) if group is not None else None
            )
            if group is not None and digest:
                specs.append(
                    TaskSpec(
                        task_id=task.task_id,
                        config=task.config,
                        kind="fork",
                        prefix_hash=group.prefix_hash,
                        forked_digest=digest,
                        payload=payloads,
                    )
                )
            else:
                specs.append(
                    TaskSpec(
                        task_id=task.task_id, config=task.config, payload=payloads
                    )
                )
        cache_root = None
        if self.cache is not None:
            # Only a non-default cache needs pinning in the manifest;
            # the default lives at a queue-relative location every
            # participant derives identically.
            cache_root = str(cache.root)
        manifest = self.queue.publish(
            specs,
            run_id=run_id,
            metadata=metadata,
            lease_s=lease_s,
            max_attempts=max_attempts,
            cache_root=cache_root,
            trace=trace_token,
        )
        obs_log.info(
            "coordinator.publish",
            queue=str(self.queue.path),
            run_id=manifest.get("run_id"),
            n_tasks=len(specs),
            n_fork=sum(1 for spec in specs if spec.kind == "fork"),
        )
        return manifest


# -- lifecycle helpers -------------------------------------------------------


def wait_complete(
    queue: QueueLike,
    poll_s: float = 0.5,
    timeout_s: Optional[float] = None,
    progress=None,
) -> None:
    """Block until every cell of the queue is done (other machines'
    workers may be finishing cells this process never touched)."""
    queue = open_queue(queue)
    started = time.time()
    last_done = -1
    while not queue.is_complete():
        if timeout_s is not None and time.time() - started > timeout_s:
            status = queue.status()
            raise ClusterError(
                f"queue {queue.path} did not complete within {timeout_s:.0f}s "
                f"({status.get('done', 0)}/{status.get('total', '?')} cells)"
            )
        if progress is not None:
            status = queue.status()
            if status.get("done") != last_done:
                last_done = status.get("done")
                progress(status)
        time.sleep(poll_s)


def drain_queue(
    queue: QueueLike,
    workers: Optional[int] = None,
    poll_s: float = 0.2,
    log=None,
    progress=None,
) -> None:
    """Participate in draining the queue with local workers, then wait
    for full completion (leases held elsewhere included).

    ``workers <= 1`` runs one worker inline in this process — the
    serial-equivalent path; more spawn that many worker *processes*.
    """
    queue = open_queue(queue)
    n = 1 if workers is None else max(1, int(workers))
    if n <= 1:
        Worker(queue, poll_s=poll_s, log=log).run()
    else:
        ctx = multiprocessing.get_context()
        procs = [
            ctx.Process(
                target=run_worker,
                args=(str(queue.path),),
                kwargs={"poll_s": poll_s},
            )
            for _ in range(n)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join()
    wait_complete(queue, poll_s=max(poll_s, 0.2), progress=progress)


@dataclass
class DistributedRun:
    """Outcome of one ``run_distributed_sweep`` invocation."""

    manifest: Dict[str, Any]
    joined: bool  # False: only published, workers will drain it
    records: List[Dict[str, Any]] = field(default_factory=list)
    merge: Optional[MergeReport] = None


def run_distributed_sweep(
    tasks: Sequence[SweepTask],
    queue: QueueLike,
    workers: Optional[int] = None,
    cache: Optional[CheckpointCache] = None,
    store: Optional[ResultStore] = None,
    run_id: Optional[str] = None,
    metadata: Optional[Dict[str, Any]] = None,
    lease_s: float = DEFAULT_LEASE_S,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    payloads: bool = False,
    join: bool = True,
    fork: bool = True,
    poll_s: float = 0.2,
    log=None,
    progress=None,
) -> DistributedRun:
    """Publish a grid to a shared queue and (by default) help drain it.

    With ``join=False`` only the coordinator half runs: the grid and its
    prefix checkpoints are published and the call returns immediately —
    start ``repro worker --queue ...`` processes anywhere that sees the
    share to do the work.  With ``join=True`` the call also runs
    ``workers`` local worker processes, waits until *every* cell is done
    (wherever it ran), and — given a ``store`` — merges all shards into
    one deduplicated run.
    """
    queue = open_queue(queue)
    with obs_trace.span(
        "sweep.distributed", n_tasks=len(tasks), workers=workers or 1
    ):
        coordinator = Coordinator(queue, cache=cache, workers=workers)
        manifest = coordinator.publish(
            tasks,
            run_id=run_id,
            metadata=metadata,
            lease_s=lease_s,
            max_attempts=max_attempts,
            payloads=payloads,
            fork=fork,
        )
        if not join:
            out = DistributedRun(manifest=manifest, joined=False)
        else:
            drain_queue(
                queue, workers=workers, poll_s=poll_s, log=log, progress=progress
            )
            records = merged_records(queue)
            merge = None
            if store is not None:
                merge = merge_queue(queue, store, run_id=run_id, metadata=metadata)
                obs_log.info(
                    "coordinator.merge",
                    queue=str(queue.path),
                    run_id=merge.run_id,
                    unique_cells=merge.unique_cells,
                    duplicates=merge.duplicates,
                    errors=merge.errors,
                )
            out = DistributedRun(
                manifest=manifest, joined=True, records=records, merge=merge
            )
    obs_trace.flush()
    return out


def collect_cells(
    queue: QueueLike, tasks: Sequence[SweepTask]
) -> List[CellResult]:
    """Reassemble :class:`CellResult` objects (full results included,
    for payload-carrying grids) from a drained queue, in task order."""
    queue = open_queue(queue)
    records = merged_records(queue)
    by_id = {record["task_id"]: record for record in records}
    by_hash = {record.get("config_hash"): record for record in records}
    cells: List[CellResult] = []
    for task in tasks:
        record = by_id.get(task.task_id)
        if record is None:
            # Two tasks with identical configs dedupe to one record at
            # merge; the twin's result is the same by determinism.
            from ..store import config_hash

            record = by_hash.get(config_hash(task.config))
        if record is None:
            raise ClusterError(
                f"queue {queue.path} holds no record for cell "
                f"{task.task_id!r}; was the queue fully drained?"
            )
        result: Optional[ScenarioResult] = None
        if record.get("status") == "ok":
            # Keyed by the id of the cell that actually executed (which
            # differs from task.task_id for a deduped identical twin).
            blob = queue.load_payload(record["task_id"])
            if blob is not None:
                result = pickle.loads(blob)
        config = config_from_dict(record["config"])
        cells.append(
            CellResult(
                task_id=record["task_id"],
                status=record.get("status", "error"),
                result=result,
                error=record.get("error"),
                seed=config.seed,
                duration_s=record.get("duration_s", 0.0),
                config=config,
                forked_from=record.get("forked_from"),
            )
        )
    return cells


def distributed_scenarios(
    configs: Sequence[ScenarioConfig],
    queue: QueueLike,
    workers: Optional[int] = None,
    cache: Optional[CheckpointCache] = None,
    poll_s: float = 0.2,
) -> List[ScenarioResult]:
    """Distributed drop-in for
    :func:`repro.runtime.runner.run_scenarios`: publish the configs to a
    shared queue, help drain it, and return full results in input order
    (errors re-raised as :class:`~repro.errors.RunnerError`).  Results
    are identical per-config to the serial path — the workers run the
    same deterministic simulations, wherever they are."""
    tasks = scenario_tasks(configs)
    queue = open_queue(queue)
    run_distributed_sweep(
        tasks,
        queue,
        workers=workers,
        cache=cache,
        payloads=True,
        poll_s=poll_s,
    )
    cells = collect_cells(queue, tasks)
    payload_less = [cell.task_id for cell in cells if cell.ok and cell.result is None]
    if payload_less:
        # Joined a grid someone published without result payloads (e.g.
        # a CLI sweep): the summaries are in the queue, the full series
        # are not — refuse rather than hand back Nones.
        raise ClusterError(
            f"queue {queue.path} was published without result payloads "
            f"({len(payload_less)} ok cells have summaries only, e.g. "
            f"{payload_less[0]!r}); use a fresh queue for "
            "distributed_scenarios(), or read the merged summaries with "
            "merge_queue()/merged_records() instead"
        )
    return collect_scenario_results(cells)
