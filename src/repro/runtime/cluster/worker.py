"""The cluster worker: claim a cell, simulate it, record it, repeat.

A :class:`Worker` is one drain loop over a shared
:class:`~repro.runtime.cluster.queue.WorkQueue`.  Any number of workers
— processes on one machine, daemons on many — run the same loop:

1. :meth:`~repro.runtime.cluster.queue.WorkQueue.claim` a cell (which
   also reaps expired leases and retires exhausted cells);
2. execute it exactly as the local :class:`ParallelRunner` would
   (``_execute_task``: crash isolation, duration, fork provenance) —
   fork cells fetch their coordinator-published checkpoint from the
   shared cache *by digest* and fall back to a cold run on any miss;
3. append the cell record to this worker's shard and mark the cell
   done; a background thread heartbeats the lease the whole time, so a
   *live* slow worker keeps its cell while a *dead* one loses it.

The loop ends when the queue completes, when ``--max-cells`` is
reached, on ``--drain`` when nothing is claimable right now, or
gracefully on SIGTERM/SIGINT (finish the current cell, then exit) via
the ``stop`` event.
"""

from __future__ import annotations

import os
import pickle
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Union

from ... import obs
from ...obs import log as obs_log
from ...obs import metrics as obs_metrics
from ...obs import trace as obs_trace
from ..forksweep import ForkContinuationTask
from ..runner import SweepTask, _execute_task
from ..store import cell_record
from .queue import Lease, TaskSpec, WorkQueue, open_queue

LogFn = Callable[[str], None]


def default_worker_id() -> str:
    """``<host>-<pid>``: unique per process, readable in status output."""
    return f"{socket.gethostname()}-{os.getpid()}"


def task_from_spec(spec: TaskSpec, cache_root: str):
    """The executable task of a published spec.  Fork cells carry the
    coordinator's expected checkpoint digest, so a worker never forks
    from anything but the published fork point."""
    if spec.kind == "fork":
        return ForkContinuationTask(
            task_id=spec.task_id,
            config=spec.config,
            cache_root=cache_root,
            prefix_hash=spec.prefix_hash,
            expect_digest=spec.forked_digest,
        )
    return SweepTask(task_id=spec.task_id, config=spec.config)


@dataclass
class WorkerStats:
    """What one worker loop did."""

    worker_id: str = ""
    cells_ok: int = 0  # recorded by this worker
    cells_error: int = 0  # recorded by this worker, status error
    cells_lost: int = 0  # executed, but another attempt won the marker
    started: float = field(default_factory=time.time)

    @property
    def cells(self) -> int:
        """Cells this worker *executed* (recorded or lost-race) — what
        ``--max-cells`` bounds."""
        return self.cells_ok + self.cells_error + self.cells_lost


class Worker:
    """One drain loop over a shared work queue."""

    def __init__(
        self,
        queue: Union[str, "os.PathLike[str]", WorkQueue],
        worker_id: Optional[str] = None,
        poll_s: float = 0.5,
        log: Optional[LogFn] = None,
    ) -> None:
        self.queue = open_queue(queue)
        self.worker_id = worker_id or default_worker_id()
        self.poll_s = poll_s
        self.log = log or (lambda message: None)

    # -- the loop --------------------------------------------------------

    def run(
        self,
        max_cells: Optional[int] = None,
        drain: bool = False,
        stop: Optional[threading.Event] = None,
    ) -> WorkerStats:
        """Drain the queue; returns what this worker did.

        ``drain`` exits as soon as nothing is claimable *right now*
        (leave straggler cells to their current owners); the default
        keeps polling until the whole queue is complete, picking up any
        lease that expires along the way.
        """
        stats = WorkerStats(worker_id=self.worker_id)
        # Drain-lifetime context: every event this worker emits (and
        # every cell-metrics line it flushes) carries its identity.
        # Restored on return so in-process callers (tests, coordinator
        # helping drain its own queue) don't keep the binding.
        # The manifest's trace token parents every cell span this worker
        # produces under the publisher's sweep span — the manifest, not
        # the environment, because ``repro worker`` daemons may start on
        # machines that never saw the coordinator's env.
        manifest = self.queue.manifest() or {}
        with obs_log.bind(worker=self.worker_id), obs_trace.adopt_token(
            manifest.get("trace")
        ):
            obs_log.info("worker.start", queue=str(self.queue.path))
            self._register(stats)
            while True:
                if stop is not None and stop.is_set():
                    self.log(f"{self.worker_id}: stop requested, draining out")
                    break
                lease = self.queue.claim(self.worker_id)
                if lease is None:
                    if self.queue.is_complete():
                        self.log(f"{self.worker_id}: queue complete")
                        break
                    if drain and not self.queue.has_claimable():
                        self.log(
                            f"{self.worker_id}: nothing claimable, draining"
                        )
                        break
                    time.sleep(self.poll_s)
                    continue
                self._execute(lease, stats)
                self._register(stats)
                if max_cells is not None and stats.cells >= max_cells:
                    self.log(
                        f"{self.worker_id}: reached max-cells={max_cells}"
                    )
                    break
            self._register(stats)
            obs_log.info(
                "worker.done",
                cells_ok=stats.cells_ok,
                cells_error=stats.cells_error,
                cells_lost=stats.cells_lost,
            )
        obs_trace.flush()
        return stats

    # -- one cell --------------------------------------------------------

    def _execute(self, lease: Lease, stats: WorkerStats) -> None:
        spec = lease.task
        task = task_from_spec(spec, str(self.queue.cache_root()))
        manifest = self.queue.manifest() or {}
        interval = max(0.05, float(manifest.get("lease_s", 60.0)) / 4.0)
        hb_stop = threading.Event()
        hb = threading.Thread(
            target=self._heartbeat_loop,
            args=(lease, interval, hb_stop),
            daemon=True,
        )
        hb.start()
        try:
            cell = _execute_task(task)
        finally:
            hb_stop.set()
            hb.join()
        record = cell_record(
            manifest.get("run_id", ""),
            cell.task_id,
            cell.config,
            status=cell.status,
            result=cell.result,
            error=cell.error,
            duration_s=cell.duration_s,
            forked_from=cell.forked_from,
            worker=self.worker_id,
            metrics=cell.metrics,
        )
        payload = None
        if spec.payload and cell.ok:
            payload = pickle.dumps(cell.result, protocol=pickle.HIGHEST_PROTOCOL)
        won = self.queue.complete(lease, record, payload)
        obs_log.info(
            "worker.cell",
            task=cell.task_id,
            status=cell.status,
            attempt=lease.attempt,
            duration_s=round(cell.duration_s, 3),
            won=won,
        )
        if not won:
            # A presumed-dead twin finished first; the records are
            # deterministic duplicates, merge keeps exactly one.
            stats.cells_lost += 1
        elif cell.ok:
            stats.cells_ok += 1
        else:
            stats.cells_error += 1
        mark = "ok " if cell.ok else "ERR"
        self.log(
            f"{self.worker_id}: {mark} {cell.task_id} "
            f"(attempt {lease.attempt}, {cell.duration_s:.2f}s)"
        )

    def _heartbeat_loop(
        self, lease: Lease, interval: float, hb_stop: threading.Event
    ) -> None:
        while not hb_stop.wait(interval):
            with obs_metrics.timer("queue.heartbeat"):
                alive = self.queue.heartbeat(lease)
            if not alive:
                obs_log.warning("worker.lease_lost", task=lease.task.task_id)
                return  # lease lost; nothing further to extend

    def _register(self, stats: WorkerStats) -> None:
        self.queue.register_worker(
            self.worker_id,
            {
                "host": socket.gethostname(),
                "pid": os.getpid(),
                "started": stats.started,
                "last_seen": time.time(),
                "cells_ok": stats.cells_ok,
                "cells_error": stats.cells_error,
                "cells_lost": stats.cells_lost,
            },
        )


def run_worker(
    queue_path: str,
    worker_id: Optional[str] = None,
    max_cells: Optional[int] = None,
    drain: bool = False,
    poll_s: float = 0.5,
) -> WorkerStats:
    """Module-level worker entry point (picklable: the coordinator
    spawns local worker *processes* through this)."""
    # Re-adopt observability settings: under ``spawn`` this process may
    # have imported repro.obs before the parent's env vars were visible.
    obs.configure_from_env()
    return Worker(queue_path, worker_id=worker_id, poll_s=poll_s).run(
        max_cells=max_cells, drain=drain
    )
