"""Folding a drained queue's per-worker shards into one result store.

Cluster execution is at-least-once: a cell can be recorded by several
workers (an expired-but-alive lease, a racing retry).  Every execution
of a cell is a deterministic function of its configuration, so the
duplicates agree on everything but wall-clock and worker identity —
merging is therefore *dedupe by configuration hash* (prefer ``ok`` over
``error``, then a canonical tie-break so every merger picks the same
record) followed by an ordinary append into a
:class:`~repro.runtime.store.ResultStore` run.  The merged run is
byte-identical, cell for cell, to the same grid run serially — which
:func:`diff_stores` verifies (and CI enforces).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from ...errors import ClusterError
from ..store import ResultStore, summary_digest
from .queue import WorkQueue, open_queue


def _preference_key(record: Dict[str, Any]) -> tuple:
    """Sort key choosing THE record for a cell among duplicates:
    ``ok`` beats ``error``, then the canonical JSON of the record breaks
    the tie — arbitrary but identical for every merger."""
    return (
        record.get("status") != "ok",
        json.dumps(record, sort_keys=True, separators=(",", ":")),
    )


def merged_records(queue: Union[str, WorkQueue]) -> List[Dict[str, Any]]:
    """The queue's cell records, deduplicated by configuration hash and
    ordered as the grid was published."""
    queue = open_queue(queue)
    manifest = queue.manifest()
    if manifest is None:
        raise ClusterError(
            f"queue {queue.path} has no published grid to merge"
        )
    by_hash: Dict[str, Dict[str, Any]] = {}
    for record in queue.cell_records():
        key = record.get("config_hash", "")
        best = by_hash.get(key)
        if best is None or _preference_key(record) < _preference_key(best):
            by_hash[key] = record
    ordered: List[Dict[str, Any]] = []
    seen = set()
    for task_id, cfg_hash in manifest.get("task_hashes", {}).items():
        record = by_hash.get(cfg_hash)
        if record is not None and cfg_hash not in seen:
            seen.add(cfg_hash)
            ordered.append(record)
    # Records for cells outside the manifest (shouldn't happen, but a
    # foreign shard dropped into the directory must not vanish
    # silently): append them deterministically at the end.
    for cfg_hash in sorted(set(by_hash) - seen):
        ordered.append(by_hash[cfg_hash])
    return ordered


@dataclass
class MergeReport:
    """What one merge pass did."""

    run_id: str
    total_records: int  # raw shard records, duplicates included
    unique_cells: int
    duplicates: int
    errors: int  # merged cells with status "error"
    appended: int  # actually written (resume skips already-ok cells)
    missing: List[str] = field(default_factory=list)  # ids with no record

    def describe(self) -> str:
        text = (
            f"merged {self.unique_cells} cells "
            f"({self.total_records} shard records, "
            f"{self.duplicates} duplicate(s), {self.errors} error(s)) "
            f"into run {self.run_id}; {self.appended} appended"
        )
        if self.missing:
            text += f"; MISSING {len(self.missing)} cells: {self.missing[:4]}"
        return text


def merge_queue(
    queue: Union[str, WorkQueue],
    store: ResultStore,
    run_id: Optional[str] = None,
    metadata: Optional[Dict[str, Any]] = None,
) -> MergeReport:
    """Fold a queue's shards into ``store`` under one run.

    Idempotent and resumable: merging again (or merging a queue that is
    only partially drained, then merging the rest later) appends only
    cells the run does not already hold ``ok``.  The run id defaults to
    the queue's published run id, so a distributed sweep lands in the
    store exactly like a local ``repro sweep --store`` of the same grid
    would.
    """
    queue = open_queue(queue)
    manifest = queue.manifest()
    if manifest is None:
        raise ClusterError(f"queue {queue.path} has no published grid to merge")
    raw = list(queue.cell_records())
    records = merged_records(queue)
    run_id = run_id or manifest["run_id"]

    if store.has_run(run_id):
        done_hashes = set(store.completed_hashes(run_id).values())
    else:
        done_hashes = set()
        meta = dict(manifest.get("metadata") or {})
        meta.update(metadata or {})
        meta["merged_from"] = str(queue.path)
        meta["workers"] = sorted(queue.workers_seen())
        store.open_run(run_id=run_id, metadata=meta)

    appended = 0
    recorded_hashes = set()
    for record in records:
        recorded_hashes.add(record.get("config_hash", ""))
        if (
            record.get("status") == "ok"
            and record.get("config_hash") in done_hashes
        ):
            continue
        out = dict(record)
        out["run_id"] = run_id
        store.append_record(out)
        appended += 1

    missing = [
        task_id
        for task_id, cfg_hash in manifest.get("task_hashes", {}).items()
        if cfg_hash not in recorded_hashes and cfg_hash not in done_hashes
    ]
    return MergeReport(
        run_id=run_id,
        total_records=len(raw),
        unique_cells=len(records),
        duplicates=len(raw) - len(records),
        errors=sum(1 for r in records if r.get("status") != "ok"),
        appended=appended,
        missing=missing,
    )


def diff_stores(
    a: ResultStore,
    b: ResultStore,
    run_a: Optional[str] = None,
    run_b: Optional[str] = None,
) -> List[str]:
    """Per-cell differences between two stores, as human-readable lines
    (empty = equivalent).

    Cells pair up by configuration hash; paired cells compare by
    :func:`~repro.runtime.store.summary_digest`, which ignores
    wall-clock, worker identity, and run ids — exactly the fields a
    distributed run is allowed to differ on.  This is the
    serial-equivalence check: ``diff_stores(serial, merged) == []``.
    """
    def view(store: ResultStore, run_id: Optional[str]) -> Dict[str, Dict]:
        cells: Dict[str, Dict] = {}
        for record in store.cells(run_id=run_id):
            cells[record.get("config_hash", "")] = record
        return cells

    cells_a, cells_b = view(a, run_a), view(b, run_b)
    diffs: List[str] = []
    for cfg_hash in sorted(set(cells_a) | set(cells_b)):
        ra, rb = cells_a.get(cfg_hash), cells_b.get(cfg_hash)
        if ra is None or rb is None:
            present, absent = (a.path, b.path) if rb is None else (b.path, a.path)
            task = (ra or rb).get("task_id", "?")
            diffs.append(
                f"{task} ({cfg_hash}): only in {present}, missing from {absent}"
            )
            continue
        da, db = summary_digest(ra), summary_digest(rb)
        if da != db:
            diffs.append(
                f"{ra.get('task_id', '?')} ({cfg_hash}): summaries differ "
                f"({da} vs {db}; status {ra.get('status')}/{rb.get('status')})"
            )
    return diffs
