"""repro.runtime.cluster — distributed sweep execution.

A sweep grid drained by many worker processes/machines that share
nothing but a queue — a directory (NFS-style) or a SQLite file:

* :mod:`~repro.runtime.cluster.queue` — :class:`WorkQueue` with atomic
  lease-based claims, heartbeats, lease expiry, and bounded retries
  (dead workers lose their cells, not the run);
* :mod:`~repro.runtime.cluster.coordinator` — plans the grid with the
  fork-sweep prefix planner, publishes each shared Phase-1 checkpoint
  once into the shared :class:`~repro.runtime.forksweep.CheckpointCache`
  (workers fetch by digest), and enqueues every cell;
* :mod:`~repro.runtime.cluster.worker` — the claim/execute/record drain
  loop (``repro worker``), with graceful drain and heartbeating;
* :mod:`~repro.runtime.cluster.merge` — folds per-worker shards into
  one :class:`~repro.runtime.store.ResultStore` run, deduplicated by
  configuration hash and byte-identical to a serial run of the grid.
"""

from .coordinator import (
    Coordinator,
    DistributedRun,
    collect_cells,
    distributed_scenarios,
    drain_queue,
    run_distributed_sweep,
    wait_complete,
)
from .merge import MergeReport, diff_stores, merge_queue, merged_records
from .queue import (
    DEFAULT_LEASE_S,
    DEFAULT_MAX_ATTEMPTS,
    DirWorkQueue,
    Lease,
    SqliteWorkQueue,
    TaskSpec,
    WorkQueue,
    open_queue,
)
from .worker import Worker, WorkerStats, default_worker_id, run_worker

__all__ = [
    # queue
    "WorkQueue",
    "DirWorkQueue",
    "SqliteWorkQueue",
    "TaskSpec",
    "Lease",
    "open_queue",
    "DEFAULT_LEASE_S",
    "DEFAULT_MAX_ATTEMPTS",
    # coordinator
    "Coordinator",
    "DistributedRun",
    "run_distributed_sweep",
    "distributed_scenarios",
    "drain_queue",
    "wait_complete",
    "collect_cells",
    # worker
    "Worker",
    "WorkerStats",
    "run_worker",
    "default_worker_id",
    # merge
    "MergeReport",
    "merge_queue",
    "merged_records",
    "diff_stores",
]
