"""Lease-based work queues shared by many sweep workers.

A :class:`WorkQueue` holds one published sweep grid — every cell as a
:class:`TaskSpec` — plus the mutable claim state that lets any number of
worker processes, on any number of machines, drain it cooperatively.
The only thing workers must share is the queue itself, and two media are
supported:

* :class:`DirWorkQueue` — a plain directory (NFS-style share).  All
  coordination rides on atomic filesystem primitives: a lease is an
  ``O_CREAT|O_EXCL`` file (exactly one claimant can create it), a
  heartbeat is an ``utime`` on that file, completion is an exclusive
  ``done/`` marker, and results are appended to per-worker JSONL shards
  (single-``write()`` ``O_APPEND`` lines via the result-store code).
* :class:`SqliteWorkQueue` — a single SQLite file.  Claims are
  ``BEGIN IMMEDIATE`` transactions; results are rows.

Both implement at-least-once execution with **lease expiry and bounded
retries**: a worker that dies mid-cell simply stops heartbeating, its
lease expires, and the next ``claim()`` hands the cell to someone else
with the attempt counter bumped.  A cell whose lease expires
``max_attempts`` times is recorded as an ``error`` cell (with the
attempt history) instead of wedging the run.  Because every cell is a
deterministic function of its configuration, duplicate executions (a
presumed-dead worker that was merely slow) are harmless — the merge
step dedupes by configuration hash.
"""

from __future__ import annotations

import dataclasses
import json
import os
import sqlite3
import time
import urllib.parse
from contextlib import closing
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Union

from ...errors import ClusterError
from ...experiments.scenario import ScenarioConfig
from ...obs import log as obs_log
from ...obs import metrics as obs_metrics
from ..store import (
    ResultStore,
    cell_record,
    config_dict,
    config_from_dict,
    config_hash,
)

QUEUE_FORMAT = 1
DEFAULT_LEASE_S = 120.0
DEFAULT_MAX_ATTEMPTS = 3

#: File suffixes that select the SQLite backend in :func:`open_queue`.
SQLITE_SUFFIXES = (".db", ".sqlite", ".sqlite3")

TASK_KINDS = ("cold", "fork")


@dataclass(frozen=True)
class TaskSpec:
    """One published grid cell, serializable into any queue medium.

    ``kind == "fork"`` cells carry the prefix hash and the exact state
    digest of the checkpoint the coordinator published for them; a
    worker fetches it by digest from the shared cache and falls back to
    a cold run on any miss.  ``payload`` asks the executing worker to
    park the full pickled :class:`ScenarioResult` in the queue (the
    experiment-registry path needs whole series, not just the summary).
    """

    task_id: str
    config: ScenarioConfig
    kind: str = "cold"
    prefix_hash: str = ""
    forked_digest: str = ""
    payload: bool = False

    def __post_init__(self) -> None:
        if self.kind not in TASK_KINDS:
            raise ClusterError(
                f"task kind must be one of {TASK_KINDS}, got {self.kind!r}"
            )

    def to_dict(self) -> Dict[str, Any]:
        out = dataclasses.asdict(self)
        out["config"] = config_dict(self.config)
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TaskSpec":
        kwargs = dict(data)
        kwargs["config"] = config_from_dict(kwargs["config"])
        return cls(**kwargs)


@dataclass
class Lease:
    """A successful claim: this worker owns this cell until the lease
    expires (kept alive by heartbeats) or it completes."""

    task: TaskSpec
    worker_id: str
    attempt: int
    #: Backend-private handle (the claim-file path for the directory
    #: backend; unused by SQLite).
    token: str = ""
    claimed_at: float = field(default=0.0)


def _qid(task_id: str) -> str:
    """Filesystem-safe, reversible encoding of a task id (ids like
    ``replication=2/seed=0`` contain path separators)."""
    return urllib.parse.quote(task_id, safe="")


class WorkQueue:
    """Backend-independent queue logic: publish/join validation, the
    exhaustion record, shared accessors.  Concrete backends implement
    the storage primitives."""

    path: Path

    # -- publish ---------------------------------------------------------

    def publish(
        self,
        tasks: Sequence[TaskSpec],
        run_id: Optional[str] = None,
        metadata: Optional[Dict[str, Any]] = None,
        lease_s: float = DEFAULT_LEASE_S,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        cache_root: Optional[str] = None,
        trace: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Publish a grid to the queue, or *join* an identical one.

        ``trace`` is the publisher's span-context token
        (``"<trace_id>:<span_id>"``); workers adopt it so every cell
        span — on any machine — parents under the coordinator's sweep
        span and the whole distributed run reads back as one trace
        tree.  First publisher wins; joiners inherit the original
        token.

        Publishing is idempotent: if the queue already holds a manifest
        for exactly this task set (same ids, same configuration hashes)
        the existing manifest is returned — so several machines can all
        run ``repro sweep --distributed`` against the same share and
        one becomes the publisher while the rest join.  A queue holding
        a *different* grid is an error, never silently overwritten.
        """
        tasks = list(tasks)
        ids = [task.task_id for task in tasks]
        if len(set(ids)) != len(ids):
            dupes = sorted({tid for tid in ids if ids.count(tid) > 1})
            raise ClusterError(f"duplicate task ids in published grid: {dupes}")
        if not tasks:
            raise ClusterError("refusing to publish an empty grid")
        existing = self.manifest()
        if existing is not None:
            self._check_join(existing, tasks)
            return existing
        if run_id is None:
            run_id = time.strftime("dist-%Y%m%dT%H%M%S") + f"-{os.getpid()}"
        manifest = {
            "format": QUEUE_FORMAT,
            "run_id": run_id,
            "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "metadata": metadata or {},
            "lease_s": float(lease_s),
            "max_attempts": int(max_attempts),
            "n_tasks": len(tasks),
            "task_hashes": {t.task_id: config_hash(t.config) for t in tasks},
            "cache_root": cache_root,
            "trace": trace,
        }
        published = self._publish(manifest, tasks)
        if published is not None:
            # Someone beat us to the manifest; verify we can join theirs.
            self._check_join(published, tasks)
            return published
        return manifest

    def _check_join(
        self, manifest: Dict[str, Any], tasks: Sequence[TaskSpec]
    ) -> None:
        want = {t.task_id: config_hash(t.config) for t in tasks}
        have = manifest.get("task_hashes", {})
        if want != have:
            missing = sorted(set(want) ^ set(have))[:4]
            raise ClusterError(
                f"queue {self.path} already holds a different grid "
                f"({len(have)} tasks vs {len(want)} published; first "
                f"differing ids: {missing}).  Use a fresh queue path or "
                "finish/merge the existing run first."
            )

    # -- shared helpers --------------------------------------------------

    def run_id(self) -> str:
        manifest = self.manifest()
        if manifest is None:
            raise ClusterError(f"queue {self.path} has no published grid yet")
        return manifest["run_id"]

    def cache_root(self) -> Path:
        """The shared checkpoint-cache directory for this queue's fork
        cells: the manifest's ``cache_root`` if the coordinator pinned
        one, else the backend default next to the queue."""
        manifest = self.manifest() or {}
        pinned = manifest.get("cache_root")
        if pinned:
            return Path(pinned)
        return self.default_cache_root()

    def _exhaust_record(
        self, spec: TaskSpec, attempts: int, worker_id: str
    ) -> Dict[str, Any]:
        return cell_record(
            self.run_id(),
            spec.task_id,
            spec.config,
            status="error",
            error=(
                f"lease expired after {attempts} attempts "
                f"(max_attempts={attempts}); the workers executing this "
                "cell died or stalled repeatedly"
            ),
            worker=worker_id,
        )

    def referenced_prefixes(self) -> Set[str]:
        """Prefix hashes still referenced by unfinished fork cells
        (leased *or* waiting to be claimed).  ``repro checkpoints gc
        --queue`` protects these: deleting a referenced checkpoint would
        silently demote live cells to cold reruns."""
        done = self.done_ids()
        return {
            spec.prefix_hash
            for spec in self.tasks()
            if spec.kind == "fork" and spec.task_id not in done
        }

    def is_complete(self) -> bool:
        manifest = self.manifest()
        if manifest is None:
            return False
        return len(self.done_ids()) >= manifest["n_tasks"]

    # -- backend interface ----------------------------------------------

    def manifest(self) -> Optional[Dict[str, Any]]:
        raise NotImplementedError

    def _publish(
        self, manifest: Dict[str, Any], tasks: Sequence[TaskSpec]
    ) -> Optional[Dict[str, Any]]:
        """Write tasks + manifest; returns an existing manifest if a
        concurrent publisher won the race, else ``None``."""
        raise NotImplementedError

    def tasks(self) -> List[TaskSpec]:
        raise NotImplementedError

    def done_ids(self) -> Set[str]:
        """Task ids with a terminal record (ok, error, or exhausted)."""
        raise NotImplementedError

    def claim(
        self, worker_id: str, now: Optional[float] = None
    ) -> Optional[Lease]:
        """Atomically claim one claimable cell, or ``None``.

        Also the sweep's reaper: scanning for work is when expired
        leases are noticed, so claiming re-offers dead workers' cells
        and retires cells that exhausted their attempt budget.
        """
        raise NotImplementedError

    def has_claimable(self, now: Optional[float] = None) -> bool:
        raise NotImplementedError

    def heartbeat(self, lease: Lease, now: Optional[float] = None) -> bool:
        """Extend a lease; ``False`` if it was lost (requeued/expired
        and re-claimed) — the worker should abandon the cell's result."""
        raise NotImplementedError

    def complete(
        self,
        lease: Lease,
        record: Dict[str, Any],
        payload: Optional[bytes] = None,
    ) -> bool:
        """Record a finished cell; ``True`` if this call won (a racing
        attempt of the same cell may have finished first — the losing
        record is still in a shard and merge dedupes it)."""
        raise NotImplementedError

    def release_leases(self, task_ids: Optional[Sequence[str]] = None) -> int:
        """Expire current leases immediately (all, or the given tasks):
        the manual override for a worker known dead before its lease
        times out.  Attempt counters are preserved."""
        raise NotImplementedError

    def reset(
        self,
        task_ids: Optional[Sequence[str]] = None,
        failed_only: bool = False,
    ) -> List[str]:
        """Force tasks back to pending (clearing done markers, leases,
        and attempt counters); returns the reset ids.  With
        ``failed_only`` every ``error`` cell is reset — the recovery
        path after fixing whatever made them fail."""
        raise NotImplementedError

    def cell_records(self) -> Iterator[Dict[str, Any]]:
        """Every recorded cell, duplicates and all (merge dedupes)."""
        raise NotImplementedError

    def load_payload(self, task_id: str) -> Optional[bytes]:
        raise NotImplementedError

    def workers_seen(self) -> Dict[str, Dict[str, Any]]:
        raise NotImplementedError

    def register_worker(self, worker_id: str, info: Dict[str, Any]) -> None:
        raise NotImplementedError

    def default_cache_root(self) -> Path:
        raise NotImplementedError

    # -- reporting -------------------------------------------------------

    def status(self, now: Optional[float] = None) -> Dict[str, Any]:
        """Aggregate queue state for ``repro queue status``."""
        now = time.time() if now is None else now
        manifest = self.manifest()
        if manifest is None:
            return {"published": False, "path": str(self.path)}
        done = self.done_ids()
        leased, failed, ok = self._lease_view(now)
        total = manifest["n_tasks"]
        return {
            "published": True,
            "path": str(self.path),
            "run_id": manifest["run_id"],
            "created": manifest["created"],
            "lease_s": manifest["lease_s"],
            "max_attempts": manifest["max_attempts"],
            "total": total,
            "done": len(done),
            "ok": len(ok),
            "failed": len(failed),
            "leased": len(leased),
            "pending": total - len(done) - len(leased),
            "leases": leased,
            "workers": self.workers_seen(),
            "complete": len(done) >= total,
            # Reference time of this snapshot, so renderers can turn
            # the workers' ``last_seen`` stamps into heartbeat ages.
            "now": now,
        }

    def _lease_view(self, now: float):
        """``(live_leases, failed_ids, ok_ids)`` — backend-specific."""
        raise NotImplementedError


class DirWorkQueue(WorkQueue):
    """A work queue over a shared directory.

    Layout::

        <root>/manifest.json        published grid (written last, O_EXCL)
        <root>/tasks/<qid>.json     one TaskSpec per cell
        <root>/claims/<qid>@<N>     lease of attempt N (mtime = heartbeat)
        <root>/done/<qid>.json      terminal marker (O_EXCL, one winner)
        <root>/shards/<worker>.jsonl   per-worker cell records
        <root>/payloads/<qid>.pkl   full pickled results (opt-in)
        <root>/workers/<worker>.json   worker registration/heartbeat
        <root>/checkpoints/         default shared CheckpointCache

    Every mutation is a single atomic filesystem operation (exclusive
    create, rename, utime, or one appended line), so any number of
    workers can share the directory without a lock server.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    # -- paths -----------------------------------------------------------

    @property
    def _manifest_path(self) -> Path:
        return self.path / "manifest.json"

    def _dir(self, name: str) -> Path:
        return self.path / name

    def default_cache_root(self) -> Path:
        return self.path / "checkpoints"

    # -- publish ---------------------------------------------------------

    def manifest(self) -> Optional[Dict[str, Any]]:
        try:
            return json.loads(self._manifest_path.read_text(encoding="utf8"))
        except OSError:
            return None
        except json.JSONDecodeError as exc:
            raise ClusterError(
                f"corrupt queue manifest {self._manifest_path}: {exc}"
            ) from exc

    def _publish(self, manifest, tasks):
        for name in ("tasks", "claims", "done", "shards", "payloads", "workers"):
            self._dir(name).mkdir(parents=True, exist_ok=True)
        for spec in tasks:
            path = self._dir("tasks") / f"{_qid(spec.task_id)}.json"
            tmp = path.with_suffix(f".tmp{os.getpid()}")
            tmp.write_text(
                json.dumps(spec.to_dict(), sort_keys=True), encoding="utf8"
            )
            tmp.replace(path)
        # The manifest is the "grid is fully published" marker, so it
        # goes last and exclusively: exactly one concurrent publisher
        # wins, the rest re-read and join.
        try:
            fd = os.open(
                self._manifest_path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644
            )
        except FileExistsError:
            return self.manifest()
        try:
            os.write(
                fd, json.dumps(manifest, sort_keys=True, indent=1).encode("utf8")
            )
        finally:
            os.close(fd)
        return None

    # -- task/claim state ------------------------------------------------

    def _manifest_qids(self) -> Optional[Set[str]]:
        """qids of the published grid, or ``None`` before publication.
        All task views filter on this: a publisher that lost the
        manifest race may have left foreign task files behind, and they
        must be invisible to claims, completion, and merging."""
        manifest = self.manifest()
        if manifest is None:
            return None
        return {_qid(task_id) for task_id in manifest.get("task_hashes", {})}

    def tasks(self) -> List[TaskSpec]:
        wanted = self._manifest_qids()
        out = []
        for path in sorted(self._dir("tasks").glob("*.json")):
            if wanted is not None and path.stem not in wanted:
                continue
            out.append(self._read_spec(path))
        return out

    def _read_spec(self, path: Path) -> TaskSpec:
        try:
            return TaskSpec.from_dict(json.loads(path.read_text(encoding="utf8")))
        except (OSError, json.JSONDecodeError, KeyError, TypeError) as exc:
            raise ClusterError(f"corrupt task spec {path}: {exc}") from exc

    def _spec_of(self, qid: str) -> TaskSpec:
        return self._read_spec(self._dir("tasks") / f"{qid}.json")

    def done_ids(self) -> Set[str]:
        wanted = self._manifest_qids()
        out = set()
        for path in self._dir("done").glob("*.json"):
            if wanted is not None and path.stem not in wanted:
                continue
            out.add(urllib.parse.unquote(path.stem))
        return out

    def _claims_of(self, qid: str) -> List[Path]:
        """Claim files of a task, oldest attempt first."""
        claims = self._dir("claims").glob(f"{qid}@*")
        return sorted(claims, key=lambda p: int(p.name.rsplit("@", 1)[1]))

    def _mark_done(self, qid: str, info: Dict[str, Any]) -> bool:
        path = self._dir("done") / f"{qid}.json"
        try:
            fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        except FileExistsError:
            return False
        try:
            os.write(fd, json.dumps(info, sort_keys=True).encode("utf8"))
        finally:
            os.close(fd)
        return True

    def _append_shard(self, worker_id: str, record: Dict[str, Any]) -> None:
        ResultStore(self._dir("shards") / f"{_qid(worker_id)}.jsonl")._append(
            record
        )

    def claim(self, worker_id, now=None):
        now = time.time() if now is None else now
        manifest = self.manifest()
        if manifest is None:
            return None
        lease_s = manifest["lease_s"]
        max_attempts = manifest["max_attempts"]
        done_dir = self._dir("done")
        wanted = {_qid(task_id) for task_id in manifest.get("task_hashes", {})}
        for task_path in sorted(self._dir("tasks").glob("*.json")):
            qid = task_path.stem
            if qid not in wanted:
                continue
            if (done_dir / f"{qid}.json").exists():
                continue
            claims = self._claims_of(qid)
            attempt = 1
            if claims:
                latest = claims[-1]
                attempt = int(latest.name.rsplit("@", 1)[1]) + 1
                try:
                    age = now - latest.stat().st_mtime
                except OSError:
                    continue  # reset raced us; re-scan next claim call
                if age <= lease_s:
                    continue  # live lease
                obs_metrics.count("queue.lease_expired")
                if attempt > max_attempts:
                    # Retry budget spent: retire the cell as an error so
                    # the run completes instead of spinning forever.
                    spec = self._spec_of(qid)
                    record = self._exhaust_record(
                        spec, attempt - 1, worker_id
                    )
                    self._append_shard(worker_id, record)
                    self._mark_done(
                        qid,
                        {
                            "status": "error",
                            "worker": worker_id,
                            "attempt": attempt - 1,
                            "exhausted": True,
                            "finished": now,
                        },
                    )
                    obs_metrics.count("queue.exhausted")
                    obs_log.warning(
                        "queue.exhausted",
                        task=spec.task_id,
                        attempts=attempt - 1,
                    )
                    continue
            claim_path = self._dir("claims") / f"{qid}@{attempt}"
            try:
                fd = os.open(
                    claim_path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644
                )
            except FileExistsError:
                continue  # another worker won this attempt
            try:
                os.write(
                    fd,
                    json.dumps(
                        {"worker": worker_id, "claimed_at": now}
                    ).encode("utf8"),
                )
            finally:
                os.close(fd)
            lease = Lease(
                task=self._spec_of(qid),
                worker_id=worker_id,
                attempt=attempt,
                token=str(claim_path),
                claimed_at=now,
            )
            obs_metrics.count("queue.claims")
            if attempt > 1:
                obs_metrics.count("queue.retries")
            obs_log.debug(
                "queue.claim", task=lease.task.task_id, attempt=attempt
            )
            return lease
        return None

    def has_claimable(self, now=None):
        now = time.time() if now is None else now
        manifest = self.manifest()
        if manifest is None:
            return False
        done = self.done_ids()
        wanted = {_qid(task_id) for task_id in manifest.get("task_hashes", {})}
        for task_path in self._dir("tasks").glob("*.json"):
            qid = task_path.stem
            if qid not in wanted:
                continue
            if urllib.parse.unquote(qid) in done:
                continue
            claims = self._claims_of(qid)
            if not claims:
                return True
            latest = claims[-1]
            try:
                age = now - latest.stat().st_mtime
            except OSError:
                return True
            if age <= manifest["lease_s"]:
                continue
            # Expired: claimable as a retry, or retireable — either way
            # a claim() call would make progress.
            return True
        return False

    def heartbeat(self, lease, now=None):
        now = time.time() if now is None else now
        try:
            os.utime(lease.token, (now, now))
        except OSError:
            return False
        return True

    def complete(self, lease, record, payload=None):
        qid = _qid(lease.task.task_id)
        if payload is not None:
            path = self._dir("payloads") / f"{qid}.pkl"
            tmp = path.with_suffix(f".tmp{os.getpid()}")
            tmp.write_bytes(payload)
            tmp.replace(path)
        # Record first, done marker second: once the marker exists the
        # record is guaranteed readable.  The reverse order could retire
        # a cell whose result was lost with the crashing worker.
        self._append_shard(lease.worker_id, record)
        return self._mark_done(
            qid,
            {
                "status": record.get("status", "ok"),
                "worker": lease.worker_id,
                "attempt": lease.attempt,
                "finished": time.time(),
            },
        )

    def release_leases(self, task_ids=None):
        wanted = None if task_ids is None else {_qid(t) for t in task_ids}
        released = 0
        for claim in self._dir("claims").glob("*@*"):
            qid = claim.name.rsplit("@", 1)[0]
            if wanted is not None and qid not in wanted:
                continue
            try:
                os.utime(claim, (0, 0))
                released += 1
            except OSError:
                pass
        return released

    def reset(self, task_ids=None, failed_only=False):
        reset_ids = []
        for done_path in list(self._dir("done").glob("*.json")):
            qid = done_path.stem
            task_id = urllib.parse.unquote(qid)
            if task_ids is not None and task_id not in task_ids:
                continue
            if failed_only and task_ids is None:
                try:
                    info = json.loads(done_path.read_text(encoding="utf8"))
                except (OSError, json.JSONDecodeError):
                    info = {}
                if info.get("status") == "ok":
                    continue
            try:
                done_path.unlink()
            except OSError:
                continue
            for claim in self._claims_of(qid):
                try:
                    claim.unlink()
                except OSError:
                    pass
            reset_ids.append(task_id)
        if task_ids is not None:
            # Also clear leases of tasks that never finished.
            for task_id in task_ids:
                qid = _qid(task_id)
                if task_id in reset_ids:
                    continue
                claims = self._claims_of(qid)
                if claims:
                    for claim in claims:
                        try:
                            claim.unlink()
                        except OSError:
                            pass
                    reset_ids.append(task_id)
        return reset_ids

    def cell_records(self):
        for shard in sorted(self._dir("shards").glob("*.jsonl")):
            yield from ResultStore(shard).records(kind="cell")

    def load_payload(self, task_id):
        path = self._dir("payloads") / f"{_qid(task_id)}.pkl"
        try:
            return path.read_bytes()
        except OSError:
            return None

    def workers_seen(self):
        out = {}
        for path in self._dir("workers").glob("*.json"):
            try:
                out[urllib.parse.unquote(path.stem)] = json.loads(
                    path.read_text(encoding="utf8")
                )
            except (OSError, json.JSONDecodeError):
                continue
        return out

    def register_worker(self, worker_id, info):
        path = self._dir("workers") / f"{_qid(worker_id)}.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        tmp.write_text(json.dumps(info, sort_keys=True), encoding="utf8")
        tmp.replace(path)

    def _lease_view(self, now):
        leased: Dict[str, Dict[str, Any]] = {}
        failed, ok = set(), set()
        manifest = self.manifest() or {}
        lease_s = manifest.get("lease_s", DEFAULT_LEASE_S)
        done = {}
        for path in self._dir("done").glob("*.json"):
            try:
                done[path.stem] = json.loads(path.read_text(encoding="utf8"))
            except (OSError, json.JSONDecodeError):
                done[path.stem] = {}
        for qid, info in done.items():
            task_id = urllib.parse.unquote(qid)
            (ok if info.get("status") == "ok" else failed).add(task_id)
        for claim in self._dir("claims").glob("*@*"):
            qid, attempt = claim.name.rsplit("@", 1)
            if qid in done:
                continue
            try:
                stat = claim.stat()
                content = json.loads(claim.read_text(encoding="utf8"))
            except (OSError, json.JSONDecodeError):
                continue
            age = now - stat.st_mtime
            if age > lease_s:
                continue
            task_id = urllib.parse.unquote(qid)
            leased[task_id] = {
                "worker": content.get("worker", "?"),
                "attempt": int(attempt),
                "age_s": round(age, 1),
            }
        return leased, failed, ok


class SqliteWorkQueue(WorkQueue):
    """A work queue inside one SQLite file (single-host multi-process
    sharing, or any filesystem where SQLite's locking works)."""

    _SCHEMA = """
    CREATE TABLE IF NOT EXISTS manifest(
        id INTEGER PRIMARY KEY CHECK (id = 1), value TEXT NOT NULL);
    CREATE TABLE IF NOT EXISTS tasks(
        task_id TEXT PRIMARY KEY, spec TEXT NOT NULL,
        attempts INTEGER NOT NULL DEFAULT 0,
        lease_expires REAL NOT NULL DEFAULT 0,
        worker TEXT NOT NULL DEFAULT '',
        done INTEGER NOT NULL DEFAULT 0,
        status TEXT NOT NULL DEFAULT '');
    CREATE TABLE IF NOT EXISTS records(
        seq INTEGER PRIMARY KEY AUTOINCREMENT,
        worker TEXT NOT NULL, record TEXT NOT NULL);
    CREATE TABLE IF NOT EXISTS payloads(
        task_id TEXT PRIMARY KEY, blob BLOB NOT NULL);
    CREATE TABLE IF NOT EXISTS workers(
        worker_id TEXT PRIMARY KEY, info TEXT NOT NULL);
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._schema_ready = False

    def _connect(self) -> sqlite3.Connection:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        conn = sqlite3.connect(str(self.path), timeout=30.0)
        conn.isolation_level = None  # manual BEGIN IMMEDIATE
        if not self._schema_ready:
            # Once per instance: every operation opens a fresh
            # connection (fork-safe), but the DDL need not ride along
            # on each heartbeat and claim poll.
            conn.executescript(self._SCHEMA)
            self._schema_ready = True
        return conn

    def default_cache_root(self) -> Path:
        return self.path.parent / (self.path.stem + ".checkpoints")

    def manifest(self):
        with closing(self._connect()) as conn:
            row = conn.execute("SELECT value FROM manifest WHERE id=1").fetchone()
        return json.loads(row[0]) if row else None

    def _publish(self, manifest, tasks):
        with closing(self._connect()) as conn:
            conn.execute("BEGIN IMMEDIATE")
            row = conn.execute("SELECT value FROM manifest WHERE id=1").fetchone()
            if row:
                conn.execute("COMMIT")
                return json.loads(row[0])
            conn.executemany(
                "INSERT INTO tasks(task_id, spec) VALUES (?, ?)",
                [
                    (t.task_id, json.dumps(t.to_dict(), sort_keys=True))
                    for t in tasks
                ],
            )
            conn.execute(
                "INSERT INTO manifest(id, value) VALUES (1, ?)",
                (json.dumps(manifest, sort_keys=True),),
            )
            conn.execute("COMMIT")
        return None

    def tasks(self):
        with closing(self._connect()) as conn:
            rows = conn.execute(
                "SELECT spec FROM tasks ORDER BY task_id"
            ).fetchall()
        return [TaskSpec.from_dict(json.loads(row[0])) for row in rows]

    def done_ids(self):
        with closing(self._connect()) as conn:
            rows = conn.execute(
                "SELECT task_id FROM tasks WHERE done=1"
            ).fetchall()
        return {row[0] for row in rows}

    def claim(self, worker_id, now=None):
        now = time.time() if now is None else now
        manifest = self.manifest()
        if manifest is None:
            return None
        lease_s = manifest["lease_s"]
        max_attempts = manifest["max_attempts"]
        with closing(self._connect()) as conn:
            conn.execute("BEGIN IMMEDIATE")
            rows = conn.execute(
                "SELECT task_id, spec, attempts FROM tasks "
                "WHERE done=0 AND lease_expires < ? ORDER BY task_id",
                (now,),
            ).fetchall()
            for task_id, spec_json, attempts in rows:
                spec = TaskSpec.from_dict(json.loads(spec_json))
                if attempts > 0:
                    obs_metrics.count("queue.lease_expired")
                if attempts >= max_attempts:
                    record = self._exhaust_record(spec, attempts, worker_id)
                    conn.execute(
                        "INSERT INTO records(worker, record) VALUES (?, ?)",
                        (worker_id, json.dumps(record, sort_keys=True)),
                    )
                    conn.execute(
                        "UPDATE tasks SET done=1, status='error', worker=? "
                        "WHERE task_id=?",
                        (worker_id, task_id),
                    )
                    obs_metrics.count("queue.exhausted")
                    obs_log.warning(
                        "queue.exhausted", task=task_id, attempts=attempts
                    )
                    continue
                conn.execute(
                    "UPDATE tasks SET attempts=?, lease_expires=?, worker=? "
                    "WHERE task_id=?",
                    (attempts + 1, now + lease_s, worker_id, task_id),
                )
                conn.execute("COMMIT")
                obs_metrics.count("queue.claims")
                if attempts > 0:
                    obs_metrics.count("queue.retries")
                obs_log.debug(
                    "queue.claim", task=task_id, attempt=attempts + 1
                )
                return Lease(
                    task=spec,
                    worker_id=worker_id,
                    attempt=attempts + 1,
                    claimed_at=now,
                )
            conn.execute("COMMIT")
        return None

    def has_claimable(self, now=None):
        now = time.time() if now is None else now
        with closing(self._connect()) as conn:
            row = conn.execute(
                "SELECT COUNT(*) FROM tasks WHERE done=0 AND lease_expires < ?",
                (now,),
            ).fetchone()
        return bool(row and row[0])

    def heartbeat(self, lease, now=None):
        now = time.time() if now is None else now
        manifest = self.manifest()
        lease_s = (manifest or {}).get("lease_s", DEFAULT_LEASE_S)
        with closing(self._connect()) as conn:
            cur = conn.execute(
                "UPDATE tasks SET lease_expires=? "
                "WHERE task_id=? AND worker=? AND done=0 AND attempts=?",
                (now + lease_s, lease.task.task_id, lease.worker_id, lease.attempt),
            )
        return cur.rowcount > 0

    def complete(self, lease, record, payload=None):
        with closing(self._connect()) as conn:
            conn.execute("BEGIN IMMEDIATE")
            conn.execute(
                "INSERT INTO records(worker, record) VALUES (?, ?)",
                (lease.worker_id, json.dumps(record, sort_keys=True)),
            )
            if payload is not None:
                conn.execute(
                    "INSERT OR REPLACE INTO payloads(task_id, blob) "
                    "VALUES (?, ?)",
                    (lease.task.task_id, payload),
                )
            cur = conn.execute(
                "UPDATE tasks SET done=1, status=?, worker=? "
                "WHERE task_id=? AND done=0",
                (
                    record.get("status", "ok"),
                    lease.worker_id,
                    lease.task.task_id,
                ),
            )
            won = cur.rowcount > 0
            conn.execute("COMMIT")
        return won

    def release_leases(self, task_ids=None):
        if task_ids is not None and not task_ids:
            return 0
        with closing(self._connect()) as conn:
            if task_ids is None:
                cur = conn.execute(
                    "UPDATE tasks SET lease_expires=0 "
                    "WHERE done=0 AND lease_expires > 0"
                )
            else:
                cur = conn.execute(
                    "UPDATE tasks SET lease_expires=0 WHERE done=0 AND "
                    f"task_id IN ({','.join('?' * len(task_ids))})",
                    list(task_ids),
                )
        return cur.rowcount

    def reset(self, task_ids=None, failed_only=False):
        if task_ids is not None and not task_ids:
            return []
        with closing(self._connect()) as conn:
            if task_ids is not None:
                placeholders = ",".join("?" * len(task_ids))
                rows = conn.execute(
                    "SELECT task_id FROM tasks WHERE (done=1 OR attempts>0) "
                    f"AND task_id IN ({placeholders})",
                    list(task_ids),
                ).fetchall()
                conn.execute(
                    "UPDATE tasks SET done=0, status='', attempts=0, "
                    f"lease_expires=0, worker='' WHERE task_id IN ({placeholders})",
                    list(task_ids),
                )
            else:
                where = "status='error'" if failed_only else "done=1"
                rows = conn.execute(
                    f"SELECT task_id FROM tasks WHERE done=1 AND {where}"
                ).fetchall()
                conn.execute(
                    "UPDATE tasks SET done=0, status='', attempts=0, "
                    f"lease_expires=0, worker='' WHERE done=1 AND {where}"
                )
        return [row[0] for row in rows]

    def cell_records(self):
        with closing(self._connect()) as conn:
            rows = conn.execute(
                "SELECT record FROM records ORDER BY seq"
            ).fetchall()
        for row in rows:
            yield json.loads(row[0])

    def load_payload(self, task_id):
        with closing(self._connect()) as conn:
            row = conn.execute(
                "SELECT blob FROM payloads WHERE task_id=?", (task_id,)
            ).fetchone()
        return bytes(row[0]) if row else None

    def workers_seen(self):
        with closing(self._connect()) as conn:
            rows = conn.execute("SELECT worker_id, info FROM workers").fetchall()
        return {worker_id: json.loads(info) for worker_id, info in rows}

    def register_worker(self, worker_id, info):
        with closing(self._connect()) as conn:
            conn.execute(
                "INSERT OR REPLACE INTO workers(worker_id, info) VALUES (?, ?)",
                (worker_id, json.dumps(info, sort_keys=True)),
            )

    def _lease_view(self, now):
        with closing(self._connect()) as conn:
            rows = conn.execute(
                "SELECT task_id, status, done, lease_expires, worker, attempts "
                "FROM tasks"
            ).fetchall()
        leased: Dict[str, Dict[str, Any]] = {}
        failed, ok = set(), set()
        for task_id, status, done, lease_expires, worker, attempts in rows:
            if done:
                (ok if status == "ok" else failed).add(task_id)
            elif lease_expires > now:
                leased[task_id] = {"worker": worker, "attempt": attempts}
        return leased, failed, ok


def open_queue(path: Union[str, Path, WorkQueue]) -> WorkQueue:
    """The queue at ``path``: SQLite when the path looks like a database
    file (``.db`` / ``.sqlite`` / ``.sqlite3``), a shared directory
    otherwise.  Passing an already-open queue returns it unchanged."""
    if isinstance(path, WorkQueue):
        return path
    p = Path(path)
    if p.suffix.lower() in SQLITE_SUFFIXES:
        return SqliteWorkQueue(p)
    return DirWorkQueue(p)
