"""repro.runtime — parallel experiment execution, checkpoint/restore,
and persistent results.

The paper's evaluation is a grid of independent simulations; this
subsystem is the machinery that runs such grids at production scale:

* :mod:`repro.runtime.checkpoint` — bit-identical snapshot/restore of a
  full :class:`~repro.sim.engine.Simulation` (pause, fork, resume);
* :mod:`repro.runtime.runner` — :class:`ParallelRunner` fans sweeps
  across worker processes with crash isolation and progress reporting;
* :mod:`repro.runtime.store` — an append-only JSONL result store with
  run metadata (git revision, seeds, config hashes) and query helpers;
* :mod:`repro.runtime.scenarios` — composable churn schedules
  (catastrophic, correlated-region, trickle, flash crowds) opening
  workloads beyond the paper's fixed failure script;
* :mod:`repro.runtime.forksweep` — phase-fork sweeps: one Phase-1
  simulation per shared pre-failure prefix, cached on disk
  (:class:`CheckpointCache`) and forked into every ablation variant,
  with byte-identical results to cold-start sweeps;
* :mod:`repro.runtime.cluster` — distributed sweeps: a lease-based
  :class:`~repro.runtime.cluster.WorkQueue` over a shared directory or
  SQLite file, a coordinator that publishes prefix checkpoints for
  workers to fetch by digest, worker daemons with heartbeats and
  bounded retries, and shard merging that is byte-identical to a
  serial run;
* :mod:`repro.runtime.dispatch` — :func:`execute_scenarios`, the one
  front door choosing serial / process-pool / fork / distributed
  execution.
"""

from .checkpoint import (
    CHECKPOINT_FORMAT,
    SimulationCheckpoint,
    checkpoint_size,
    load,
    restore,
    save,
    snapshot,
    state_digest,
)
from .runner import (
    CellResult,
    ParallelRunner,
    SweepTask,
    default_workers,
    grid_tasks,
    run_scenarios,
    seed_sweep_tasks,
)
from .scenarios import (
    ChurnSchedule,
    catastrophic,
    compose,
    correlated_region,
    flash_crowd,
    mass_failure,
    trickle,
)
from .forksweep import (
    CheckpointCache,
    ForkGroup,
    ForkPlan,
    default_cache_dir,
    fork_scenarios,
    plan_fork_sweep,
    run_fork_sweep,
)
from .store import (
    ResultStore,
    config_dict,
    config_from_dict,
    config_hash,
    git_revision,
    summary_digest,
)
from .cluster import (
    Coordinator,
    DirWorkQueue,
    SqliteWorkQueue,
    TaskSpec,
    Worker,
    WorkQueue,
    diff_stores,
    distributed_scenarios,
    merge_queue,
    open_queue,
    run_distributed_sweep,
)
from .dispatch import execute_scenarios

__all__ = [
    # checkpoint
    "CHECKPOINT_FORMAT",
    "SimulationCheckpoint",
    "snapshot",
    "restore",
    "save",
    "load",
    "state_digest",
    "checkpoint_size",
    # runner
    "ParallelRunner",
    "SweepTask",
    "CellResult",
    "run_scenarios",
    "seed_sweep_tasks",
    "grid_tasks",
    "default_workers",
    # forksweep
    "CheckpointCache",
    "ForkGroup",
    "ForkPlan",
    "default_cache_dir",
    "fork_scenarios",
    "plan_fork_sweep",
    "run_fork_sweep",
    # store
    "ResultStore",
    "config_dict",
    "config_from_dict",
    "config_hash",
    "git_revision",
    "summary_digest",
    # cluster
    "WorkQueue",
    "DirWorkQueue",
    "SqliteWorkQueue",
    "TaskSpec",
    "Worker",
    "Coordinator",
    "open_queue",
    "run_distributed_sweep",
    "distributed_scenarios",
    "merge_queue",
    "diff_stores",
    # dispatch
    "execute_scenarios",
    # scenarios
    "ChurnSchedule",
    "catastrophic",
    "correlated_region",
    "trickle",
    "flash_crowd",
    "mass_failure",
    "compose",
]
