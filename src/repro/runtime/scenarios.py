"""Churn-schedule generators: workloads beyond the paper's fixed script.

The paper's evaluation uses exactly one failure pattern (half the torus
crashes at round 20, fresh nodes reinjected at round 100).  This module
generalises that into composable *schedules* — lists of
``(round, event)`` pairs built from the primitives in
:mod:`repro.sim.failures` and :mod:`repro.sim.reinjection`:

* :func:`catastrophic` — the paper's correlated half-space crash;
* :func:`correlated_region` — a metric ball dies (rack / datacenter /
  geographic-zone outage);
* :func:`trickle` — steady background churn over a window;
* :func:`flash_crowd` — a burst of fresh point-less nodes joining at
  once;
* :func:`mass_failure` — time-correlated but spatially uniform crashes.

Schedules compose (:func:`compose`), install onto any simulation
(:meth:`ChurnSchedule.install`), and are picklable, so a scheduled run
can be checkpointed to disk and fanned out through the parallel runner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from ..errors import ConfigurationError
from ..sim.engine import Event, Simulation
from ..sim.failures import (
    BallPredicate,
    ChurnProcess,
    RandomFailure,
    RegionFailure,
    half_space_failure,
)
from ..sim.reinjection import Reinjection
from ..types import Coord


@dataclass
class ChurnSchedule:
    """A named list of scheduled events, sorted by round."""

    name: str
    events: List[Tuple[int, Event]] = field(default_factory=list)
    description: str = ""

    def add(self, rnd: int, event: Event) -> "ChurnSchedule":
        if rnd < 0:
            raise ConfigurationError("schedule rounds must be non-negative")
        self.events.append((int(rnd), event))
        self.events.sort(key=lambda pair: pair[0])
        return self

    def install(self, sim: Simulation) -> None:
        """Schedule every event onto a simulation."""
        for rnd, event in self.events:
            sim.schedule(rnd, event)

    @property
    def first_round(self) -> int:
        return self.events[0][0] if self.events else 0

    @property
    def last_round(self) -> int:
        return self.events[-1][0] if self.events else 0

    def __len__(self) -> int:
        return len(self.events)


def catastrophic(
    rnd: int, threshold: float, axis: int = 0, keep_upper: bool = True
) -> ChurnSchedule:
    """The paper's correlated catastrophe: one half-space dies at once."""
    schedule = ChurnSchedule(
        name="catastrophic",
        description=f"half-space cut at round {rnd} (axis {axis} < {threshold})",
    )
    return schedule.add(rnd, half_space_failure(axis, threshold, keep_upper))


def correlated_region(
    space, rnd: int, center: Coord, radius: float
) -> ChurnSchedule:
    """Every node within ``radius`` of ``center`` crashes at once — the
    rack/datacenter outage shape of correlated failure."""
    if radius < 0:
        raise ConfigurationError("region radius must be non-negative")
    schedule = ChurnSchedule(
        name="correlated-region",
        description=(
            f"ball outage at round {rnd} (center {tuple(center)}, "
            f"radius {radius})"
        ),
    )
    return schedule.add(rnd, RegionFailure(BallPredicate(space, center, radius)))


def trickle(
    first_round: int, last_round: int, rate: float, seed_key: str = "trickle"
) -> ChurnSchedule:
    """Steady background churn: each round in the window, each alive
    node crashes independently with probability ``rate``."""
    if last_round < first_round:
        raise ConfigurationError("trickle window must not be empty")
    process = ChurnProcess(rate, seed_key=seed_key)
    schedule = ChurnSchedule(
        name="trickle",
        description=(
            f"{rate:.2%} churn per round over rounds "
            f"[{first_round}, {last_round}]"
        ),
    )
    for rnd in range(first_round, last_round + 1):
        schedule.add(rnd, process.apply)
    return schedule


def flash_crowd(rnd: int, positions: Sequence[Coord]) -> ChurnSchedule:
    """A burst of fresh point-less nodes all joining in one round."""
    schedule = ChurnSchedule(
        name="flash-crowd",
        description=f"{len(list(positions))} fresh nodes join at round {rnd}",
    )
    return schedule.add(rnd, Reinjection(positions))


def mass_failure(
    rnd: int, fraction: float, seed_key: str = "mass-failure"
) -> ChurnSchedule:
    """A uniformly random ``fraction`` of nodes crashes at once —
    time-correlated but spatially uncorrelated (what replication alone
    already survives)."""
    schedule = ChurnSchedule(
        name="mass-failure",
        description=f"{fraction:.0%} uniform crash at round {rnd}",
    )
    return schedule.add(rnd, RandomFailure(fraction, seed_key=seed_key))


def compose(*schedules: ChurnSchedule, name: str = "composite") -> ChurnSchedule:
    """Merge schedules into one (events stay sorted by round).

    Composition is how new workloads are built from the primitives: a
    trickle of churn *plus* a datacenter outage *plus* a flash crowd of
    replacements is one :class:`ChurnSchedule`.
    """
    merged = ChurnSchedule(
        name=name,
        description="; ".join(
            s.description or s.name for s in schedules if len(s)
        ),
    )
    for schedule in schedules:
        for rnd, event in schedule.events:
            merged.add(rnd, event)
    return merged
