"""One front door for running a batch of scenario configurations.

Every figure/table module and the sweep aggregator used to carry its
own ``fork``/``workers`` if-ladder; with the cluster backend there are
four execution modes, so the choice lives here once:

* ``queue=...`` — distributed: publish to a shared work queue, help
  drain it alongside any other machine's workers, collect full results
  (:func:`repro.runtime.cluster.distributed_scenarios`);
* ``fork=True`` — phase-fork through the persistent checkpoint cache
  (:func:`repro.runtime.forksweep.fork_scenarios`);
* ``workers > 1`` — local process pool
  (:func:`repro.runtime.runner.run_scenarios`);
* otherwise — plain serial execution.

All four produce identical per-config results; only wall-clock and
where the work happens differ.  Errors surface as
:class:`~repro.errors.RunnerError` on every parallel path.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence

from ..experiments.scenario import ScenarioConfig, ScenarioResult, run_scenario
from ..obs import log as obs_log
from ..obs import trace as obs_trace


def execute_scenarios(
    configs: Sequence[ScenarioConfig],
    workers: int = 1,
    fork: bool = False,
    queue: Optional[str] = None,
    progress=None,
    engine: Optional[str] = None,
) -> List[ScenarioResult]:
    """Run every configuration and return results in input order.

    ``engine`` overrides every configuration's execution engine
    (``"event"`` | ``"batch"``) — the one knob here that *does* change
    results: the batch engine is statistically, not bit-for-bit,
    equivalent (``SEMANTICS_VERSION`` 2; see README "Execution
    engines").  Stored cells and checkpoint-cache keys carry the engine
    in the configuration, so the two backends never cross-contaminate.
    """
    if engine is not None:
        configs = [
            config if config.engine == engine else replace(config, engine=engine)
            for config in configs
        ]
    mode = (
        "distributed"
        if queue is not None
        else "fork" if fork else "pool" if workers and workers > 1 else "serial"
    )
    obs_log.info(
        "dispatch.execute",
        mode=mode,
        n_configs=len(configs),
        workers=workers,
        engine=engine,
    )
    with obs_trace.span("dispatch", mode=mode, n_tasks=len(configs)):
        if queue is not None:
            from .cluster import distributed_scenarios

            return distributed_scenarios(configs, queue, workers=workers)
        if fork:
            from .forksweep import fork_scenarios

            return fork_scenarios(configs, workers=workers, progress=progress)
        if workers and workers > 1:
            from .runner import run_scenarios

            return run_scenarios(configs, workers=workers, progress=progress)
        return [run_scenario(config) for config in configs]
