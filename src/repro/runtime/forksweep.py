"""Phase-fork sweeps: share one Phase-1 simulation across ablations.

The paper's evaluation is two-phase — converge a shape, then hit it
with a catastrophic failure — and a sweep grid typically varies only
*post-failure* parameters (failure fraction, reinjection, run length,
detection delay).  Every such cell re-simulates an identical Phase 1.
This module removes that redundancy:

* :func:`plan_fork_sweep` groups a grid's cells by their *prefix* — the
  projection of the configuration onto the fields that influence rounds
  before ``failure_round`` (see
  :data:`repro.experiments.scenario.DIVERGENT_FIELDS`);
* each unique prefix is simulated once, snapshotted at the fork round,
  and stored in a content-addressed on-disk :class:`CheckpointCache`
  keyed by prefix-config hash + ``state_digest``;
* every cell then restores the snapshot, re-applies its divergent
  fields (:func:`repro.experiments.scenario.apply_divergence`), and
  runs only its continuation under the ordinary
  :class:`~repro.runtime.runner.ParallelRunner` (crash isolation,
  progress, result-store persistence, resume).

Fork-mode results are **byte-identical** to cold-start results — the
grouping is correct by construction (no divergent field is read before
the fork round) and enforced by tests, not assumed.  Any cache problem
(missing, truncated, or semantically stale checkpoint) silently falls
back to a cold ``run_scenario``, never to a crash or a different
result.

The cache is persistent, so the savings compound across invocations:
re-running a sweep with a longer post-failure window, a different
failure fraction, or another experiment that shares configurations
(e.g. Fig. 10a's K=4 column and Fig. 10b's ``advanced`` column) reuses
the stored prefixes outright.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Collection,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..errors import CheckpointError
from ..obs import log as obs_log
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..sim.engine import semantics_version_for
from ..experiments.scenario import (
    ScenarioConfig,
    ScenarioResult,
    apply_divergence,
    finish_scenario,
    fork_round,
    prefix_scenario,
    run_prefix,
    run_scenario,
)
from . import checkpoint as ckpt
from .checkpoint import SimulationCheckpoint
from .runner import (
    CellResult,
    ParallelRunner,
    ProgressFn,
    SweepTask,
    collect_scenario_results,
    scenario_tasks,
)
from .store import ResultStore, config_dict, config_hash

#: Environment variable naming the default checkpoint-cache directory.
CACHE_ENV = "REPRO_CHECKPOINT_DIR"
DEFAULT_CACHE_DIR = ".repro-checkpoints"

CHECKPOINT_SUFFIX = ".ckpt"
META_SUFFIX = ".json"


def default_cache_dir() -> Path:
    """``$REPRO_CHECKPOINT_DIR`` or ``.repro-checkpoints`` in the cwd."""
    return Path(os.environ.get(CACHE_ENV) or DEFAULT_CACHE_DIR)


class CheckpointCache:
    """Content-addressed on-disk store of prefix checkpoints.

    A prefix lives at ``<root>/<prefix_hash>-<state_digest>.ckpt``: the
    file name itself asserts what the checkpoint *is* (which prefix
    configuration, under which simulation semantics — :meth:`key` mixes
    the configured engine's semantics version
    (:func:`repro.sim.engine.semantics_version_for`) into the hash, so
    a declared semantic change orphans every old entry) and what it
    *contains* (the digest of the frozen state).  :meth:`load`
    re-derives the digest and treats any mismatch — bit rot or a
    truncated write — as a cache miss, discarding the damaged file.
    Unintended semantic drift is the golden-digest tests' job
    (``tests/test_golden_digests``); the version bump they prescribe is
    what keeps this cache honest.  A small JSON sidecar per entry
    carries the human-facing metadata (``repro checkpoints ls``) so
    listing never needs to unpickle a checkpoint.
    """

    def __init__(self, root: Optional[Union[str, Path]] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    # -- keys and paths ---------------------------------------------------

    @staticmethod
    def key(prefix: ScenarioConfig) -> str:
        """The cache key of a prefix configuration, versioned by the
        semantics of the engine it runs under — bumping either engine's
        semantics version orphans that engine's entries only."""
        version = semantics_version_for(getattr(prefix, "engine", "event"))
        canon = f"{config_hash(prefix)}:semantics={version}"
        return hashlib.sha256(canon.encode("utf8")).hexdigest()[:16]

    def find(self, prefix_hash: str) -> Optional[Path]:
        """Path of the stored checkpoint for a prefix, if any."""
        if not self.root.is_dir():
            return None
        matches = sorted(self.root.glob(f"{prefix_hash}-*{CHECKPOINT_SUFFIX}"))
        return matches[0] if matches else None

    # -- read/write -------------------------------------------------------

    def load(self, prefix_hash: str) -> Optional[SimulationCheckpoint]:
        """The verified checkpoint for a prefix, or ``None`` on miss."""
        verified = self.load_verified(prefix_hash)
        return verified[0] if verified is not None else None

    def load_verified(
        self, prefix_hash: str, digest: Optional[str] = None
    ) -> Optional[Tuple[SimulationCheckpoint, str]]:
        """``(checkpoint, state_digest)`` for a prefix, ``None`` on miss.

        With ``digest`` the entry must additionally *be* that exact
        state (the fetch half of the cluster's publish/fetch split: a
        worker asks for the checkpoint the coordinator announced, by
        digest, and treats anything else as a miss).  Corrupt entries
        (unreadable pickle, or a state digest that no longer matches the
        file name) are deleted and reported as a miss — the caller
        recomputes, it never crashes.
        """
        with obs_trace.span("checkpoint.fetch", prefix=prefix_hash):
            return self._load_verified(prefix_hash, digest)

    def _load_verified(
        self, prefix_hash: str, digest: Optional[str]
    ) -> Optional[Tuple[SimulationCheckpoint, str]]:
        path = (
            self.find(prefix_hash)
            if digest is None
            else self.root / f"{prefix_hash}-{digest}{CHECKPOINT_SUFFIX}"
        )
        if path is None or not path.exists():
            obs_metrics.count("checkpoint.miss")
            return None
        try:
            loaded = ckpt.load(path)
        except CheckpointError:
            self._discard(path)
            obs_metrics.count("checkpoint.corrupt")
            obs_log.warning(
                "checkpoint.corrupt", prefix=prefix_hash, path=str(path)
            )
            return None
        expected = path.name[: -len(CHECKPOINT_SUFFIX)].split("-", 1)[1]
        if ckpt.state_digest(loaded.sim) != expected:
            self._discard(path)
            obs_metrics.count("checkpoint.corrupt")
            obs_log.warning(
                "checkpoint.digest_mismatch", prefix=prefix_hash, path=str(path)
            )
            return None
        obs_metrics.count("checkpoint.hit")
        return loaded, expected

    def fetch(
        self, prefix_hash: str, digest: str
    ) -> Optional[SimulationCheckpoint]:
        """The checkpoint *published* for a prefix under an exact state
        digest, verified, or ``None`` — what a cluster worker calls to
        pull the fork point its coordinator computed."""
        verified = self.load_verified(prefix_hash, digest=digest)
        return verified[0] if verified is not None else None

    def publish(
        self, prefix: ScenarioConfig, checkpoint: SimulationCheckpoint
    ) -> Tuple[str, Path]:
        """Persist a prefix checkpoint; returns ``(digest, path)``.

        Safe under concurrent publishers of the same prefix (many
        machines racing to warm a shared NFS cache): the checkpoint is
        written to a per-process tmp file and renamed into its
        content-addressed name, so readers only ever see whole entries,
        and the racers converge on identical bytes anyway.
        """
        prefix_hash = self.key(prefix)
        with obs_trace.span("checkpoint.publish", prefix=prefix_hash):
            digest = ckpt.state_digest(checkpoint.sim)
            path = self.root / f"{prefix_hash}-{digest}{CHECKPOINT_SUFFIX}"
            ckpt.save(checkpoint, path)
            meta = {
                "prefix_hash": prefix_hash,
                "semantics_version": semantics_version_for(
                    getattr(prefix, "engine", "event")
                ),
                "engine": getattr(prefix, "engine", "event"),
                "state_digest": digest,
                "round": checkpoint.round,
                "seed": checkpoint.seed,
                "n_alive": checkpoint.n_alive,
                "n_total": checkpoint.n_total,
                "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
                "size_bytes": path.stat().st_size,
                "config": config_dict(prefix),
            }
            path.with_suffix(META_SUFFIX).write_text(
                json.dumps(meta, sort_keys=True, indent=1), encoding="utf8"
            )
            _invalidate_memo(str(self.root), prefix_hash)
            obs_metrics.count("checkpoint.publish")
        obs_log.info(
            "checkpoint.publish",
            prefix=prefix_hash,
            digest=digest,
            round=checkpoint.round,
            size_bytes=meta["size_bytes"],
        )
        return digest, path

    #: Backwards-compatible name for :meth:`publish` (the write half of
    #: the publish/fetch split).
    store = publish

    def digest_of(self, prefix_hash: str) -> Optional[str]:
        """The stored state digest for a prefix (from the file name)."""
        path = self.find(prefix_hash)
        if path is None:
            return None
        return path.name[: -len(CHECKPOINT_SUFFIX)].split("-", 1)[1]

    # -- maintenance ------------------------------------------------------

    def entries(self) -> List[Dict[str, Any]]:
        """Metadata of every cached prefix (for ``repro checkpoints ls``)."""
        if not self.root.is_dir():
            return []
        out: List[Dict[str, Any]] = []
        for path in sorted(self.root.glob(f"*{CHECKPOINT_SUFFIX}")):
            meta_path = path.with_suffix(META_SUFFIX)
            try:
                meta = json.loads(meta_path.read_text(encoding="utf8"))
            except (OSError, json.JSONDecodeError):
                stem = path.name[: -len(CHECKPOINT_SUFFIX)]
                parts = stem.split("-", 1)
                meta = {
                    "prefix_hash": parts[0],
                    "state_digest": parts[1] if len(parts) > 1 else "",
                }
            meta["path"] = str(path)
            try:
                meta.setdefault("size_bytes", path.stat().st_size)
                meta["mtime"] = path.stat().st_mtime
            except OSError:
                continue
            out.append(meta)
        return out

    def gc(
        self,
        older_than_s: Optional[float] = None,
        protect: Collection[str] = (),
    ) -> List[Path]:
        """Delete cached prefixes (all of them, or only entries whose
        checkpoint file is older than ``older_than_s`` seconds);
        returns the removed checkpoint paths.

        ``protect`` is a collection of prefix hashes that must survive
        regardless of age — the CLI passes the prefixes still referenced
        by a live cluster queue (leased or pending fork cells), so a
        cache sweep on a shared directory never yanks a checkpoint out
        from under a running worker.
        """
        removed: List[Path] = []
        protected = set(protect)
        now = time.time()
        for entry in self.entries():
            path = Path(entry["path"])
            if entry.get("prefix_hash") in protected:
                continue
            if older_than_s is not None and now - entry["mtime"] < older_than_s:
                continue
            self._discard(path)
            removed.append(path)
        return removed

    def _discard(self, path: Path) -> None:
        for target in (path, path.with_suffix(META_SUFFIX)):
            try:
                target.unlink()
            except OSError:
                pass


# Per-process memo of loaded checkpoints (with their verified digest),
# so a worker executing several continuations of the same prefix
# unpickles and digest-verifies it once.  Small and FIFO-bounded: one
# entry per distinct prefix a worker happens to see.  Misses are NOT
# memoized — a prefix that appears on disk later (recomputed by another
# worker or sweep) must be found on the next attempt.
_MEMO_CAP = 4
_CKPT_MEMO: Dict[Tuple[str, str], Tuple[SimulationCheckpoint, str]] = {}


def _load_memoized(
    root: str, prefix_hash: str, digest: Optional[str] = None
) -> Optional[Tuple[SimulationCheckpoint, str]]:
    key = (root, prefix_hash)
    if key not in _CKPT_MEMO or (
        digest is not None and _CKPT_MEMO[key][1] != digest
    ):
        verified = CheckpointCache(root).load_verified(prefix_hash, digest=digest)
        if verified is None:
            return None
        while len(_CKPT_MEMO) >= _MEMO_CAP:
            _CKPT_MEMO.pop(next(iter(_CKPT_MEMO)))
        _CKPT_MEMO[key] = verified
    else:
        obs_metrics.count("checkpoint.memo_hit")
    return _CKPT_MEMO[key]


def _invalidate_memo(root: str, prefix_hash: str) -> None:
    _CKPT_MEMO.pop((root, prefix_hash), None)


def clear_checkpoint_memo() -> None:
    """Drop every memoized checkpoint in this process.

    The memo is correctness-neutral (entries are verified on load and
    invalidated on store), so this only matters for tests that mutate
    cache files on disk and need the next load to actually hit them.
    """
    _CKPT_MEMO.clear()


# -- tasks -------------------------------------------------------------------


@dataclass(frozen=True)
class PrefixTask(SweepTask):
    """Simulate one shared prefix and park it in the cache.

    Runs through the ordinary :class:`ParallelRunner` (its ``config`` is
    the *prefix* configuration), but produces a cache entry instead of a
    :class:`ScenarioResult`."""

    cache_root: str = ""

    def run(self) -> None:
        sim = run_prefix(self.config)
        CheckpointCache(self.cache_root).store(self.config, ckpt.snapshot(sim))
        return None


@dataclass(frozen=True)
class ForkContinuationTask(SweepTask):
    """One grid cell executed from the shared prefix checkpoint.

    Restores the cached prefix, applies the cell's divergent fields and
    finishes the scenario.  On any cache miss (including a corrupt or
    stale checkpoint) it falls back to a cold ``run_scenario`` — same
    result, just slower.  After ``run`` the actually-used provenance is
    readable as ``forked_from`` (the prefix state digest, or ``None``
    for a cold fallback), which the runner copies into the cell record.
    """

    cache_root: str = ""
    prefix_hash: str = ""
    #: When set, only the checkpoint with exactly this state digest is
    #: acceptable (a cluster worker forking from the checkpoint its
    #: coordinator published); anything else is a miss -> cold run.
    expect_digest: str = ""

    def run(self) -> ScenarioResult:
        verified = _load_memoized(
            self.cache_root, self.prefix_hash, self.expect_digest or None
        )
        if verified is not None:
            loaded, digest = verified
            try:
                sim = ckpt.restore(loaded)
                apply_divergence(sim, self.config)
                result = finish_scenario(sim)
            except CheckpointError:
                _invalidate_memo(self.cache_root, self.prefix_hash)
            else:
                object.__setattr__(self, "forked_from", digest)
                obs_metrics.count("cells.forked")
                return result
        obs_metrics.count("cells.cold")
        obs_log.debug(
            "forksweep.cold_fallback",
            task=self.task_id,
            prefix=self.prefix_hash,
        )
        return run_scenario(self.config)


# -- planning ----------------------------------------------------------------


@dataclass
class ForkGroup:
    """All cells sharing one pre-failure prefix."""

    prefix: ScenarioConfig
    prefix_hash: str
    fork_round: int
    tasks: List[SweepTask] = field(default_factory=list)


@dataclass
class ForkPlan:
    """A sweep grid partitioned into shared prefixes plus cold cells."""

    groups: List[ForkGroup]
    #: Cells with no usable fork point (no failure, or failure at
    #: round 0) — these always run cold.
    cold: List[SweepTask]

    @property
    def n_cells(self) -> int:
        return len(self.cold) + sum(len(g.tasks) for g in self.groups)

    @property
    def rounds_saved(self) -> int:
        """Simulation rounds the plan avoids versus a cold sweep."""
        return sum(g.fork_round * (len(g.tasks) - 1) for g in self.groups)

    def describe(self) -> str:
        return (
            f"{self.n_cells} cells -> {len(self.groups)} shared "
            f"prefix(es) + {len(self.cold)} cold, saving "
            f"{self.rounds_saved} Phase-1 rounds"
        )


def plan_fork_sweep(tasks: Sequence[SweepTask]) -> ForkPlan:
    """Group grid cells by their shared pre-failure prefix."""
    groups: Dict[str, ForkGroup] = {}
    cold: List[SweepTask] = []
    for task in tasks:
        prefix = prefix_scenario(task.config)
        if prefix is None:
            cold.append(task)
            continue
        prefix_hash = CheckpointCache.key(prefix)
        group = groups.get(prefix_hash)
        if group is None:
            group = groups[prefix_hash] = ForkGroup(
                prefix=prefix,
                prefix_hash=prefix_hash,
                fork_round=fork_round(task.config),
            )
        group.tasks.append(task)
    return ForkPlan(groups=list(groups.values()), cold=cold)


# -- execution ---------------------------------------------------------------


def run_fork_sweep(
    tasks: Sequence[SweepTask],
    workers: Optional[int] = None,
    cache: Optional[CheckpointCache] = None,
    store: Optional[ResultStore] = None,
    run_id: Optional[str] = None,
    metadata: Optional[Dict[str, Any]] = None,
    progress: Optional[ProgressFn] = None,
    mp_context: Optional[str] = None,
) -> List[CellResult]:
    """Run a sweep grid in fork mode; cells in input order.

    Two pool phases: first every prefix missing from the cache is
    simulated (in parallel), then every cell runs its continuation from
    the cached checkpoint — with the same persistence/resume semantics
    as :meth:`ParallelRunner.run`.  Per-cell results are byte-identical
    to a cold sweep of the same tasks.
    """
    tasks = list(tasks)
    cache = cache or CheckpointCache()
    with obs_trace.span("sweep.fork", n_tasks=len(tasks)):
        # When resuming a recorded run, plan only over the cells the
        # runner will actually execute — otherwise a finished sweep
        # whose cache was gc'ed would re-simulate prefixes nobody needs.
        with obs_trace.span("prefix.plan"):
            plan_tasks = tasks
            if store is not None and run_id is not None and store.has_run(run_id):
                plan_tasks = store.pending_tasks(run_id, tasks)
            plan = plan_fork_sweep(plan_tasks)
            missing = [
                group
                for group in plan.groups
                if cache.find(group.prefix_hash) is None
            ]
        if missing:
            prefix_tasks = [
                PrefixTask(
                    task_id=f"prefix-{group.prefix_hash}",
                    config=group.prefix,
                    cache_root=str(cache.root),
                )
                for group in missing
            ]
            # No store: prefixes are infrastructure, not sweep cells.  An
            # errored prefix is tolerated — its cells fall back to cold.
            ParallelRunner(
                workers=workers, progress=progress, mp_context=mp_context
            ).run(prefix_tasks)

        by_group = {
            task.task_id: group for group in plan.groups for task in group.tasks
        }
        run_tasks: List[SweepTask] = []
        for task in tasks:
            group = by_group.get(task.task_id)
            if group is None:
                run_tasks.append(task)
            else:
                run_tasks.append(
                    ForkContinuationTask(
                        task_id=task.task_id,
                        config=task.config,
                        cache_root=str(cache.root),
                        prefix_hash=group.prefix_hash,
                    )
                )
        return ParallelRunner(
            workers=workers, progress=progress, mp_context=mp_context
        ).run(run_tasks, store=store, run_id=run_id, metadata=metadata)


def fork_scenarios(
    configs: Sequence[ScenarioConfig],
    workers: int = 1,
    cache: Optional[CheckpointCache] = None,
    progress: Optional[ProgressFn] = None,
) -> List[ScenarioResult]:
    """Fork-mode drop-in for :func:`repro.runtime.runner.run_scenarios`:
    results in input order, any errored cell re-raised as
    :class:`~repro.errors.RunnerError`, per-config results identical to
    the cold path."""
    cells = run_fork_sweep(
        scenario_tasks(configs), workers=workers, cache=cache, progress=progress
    )
    return collect_scenario_results(cells)
