"""Gossip-based aggregation (push-pull averaging) [Jelasity et al.,
ACM TOCS 2005 — the paper's reference 24].

The paper leans on this protocol family twice: migration's pair-wise
exchange discipline is "a common requirement of gossip-based
aggregation protocols [24]" (Sec. III-F), and sizing the replication
factor K needs the fraction of nodes expected to fail — which a real
deployment estimates *decentralised*.  This layer provides the classic
push-pull averaging primitive and, on top of it, network-size
estimation: every node starts with value 0 except one seed with 1;
averaging converges every node's value to 1/N, so each node can read
off ``N ≈ 1/value`` locally.

Combined with :func:`repro.core.backup.required_replication`, this is
the building block for *adaptive replication*: nodes observing a
shrinking network can locally raise K to keep a target survival
probability — the "components configured independently" direction of
the paper's conclusion.
"""

from __future__ import annotations

from typing import Optional

from ..sim.engine import Simulation
from ..sim.network import SimNode
from .rps import PeerSamplingLayer


class AggregationLayer:
    """Push-pull averaging over the peer-sampling overlay.

    Each round every node picks a random alive peer and both set their
    value to the pair's mean; the global mean is invariant and the
    variance decays exponentially (halved or better per round).
    """

    name = "aggregation"

    def __init__(self, rps: PeerSamplingLayer, initial_value: float = 0.0) -> None:
        self.rps = rps
        self.initial_value = float(initial_value)

    # -- per-node state ----------------------------------------------------

    def init_node(self, sim: Simulation, node: SimNode) -> None:
        node.agg_value = self.initial_value

    def value_of(self, node: SimNode) -> float:
        return node.agg_value

    def set_value(self, node: SimNode, value: float) -> None:
        node.agg_value = float(value)

    # -- one gossip cycle ----------------------------------------------------

    def step(self, sim: Simulation) -> None:
        for nid in sim.shuffled_alive(self.name):
            if not sim.network.is_alive(nid):
                continue
            node = sim.network.node(nid)
            peers = self.rps.sample(sim, node, 1)
            if not peers:
                continue
            partner = sim.network.node(peers[0])
            mean = (node.agg_value + partner.agg_value) / 2.0
            node.agg_value = mean
            partner.agg_value = mean
            # One float each way; floats cost one unit like ids.
            sim.meter.charge_ids(self.name, 2)


class SizeEstimator(AggregationLayer):
    """Decentralised network-size estimation via averaging.

    The designated seed node starts at 1.0, everyone else at 0.0; after
    convergence every node's value approximates ``1/N`` and
    :meth:`estimate` inverts it.  If the seed dies, the surviving mass
    still averages to ``(pre-failure mass on survivors)/N'`` — after a
    catastrophic failure the estimate re-tracks the surviving
    population once re-seeded (call :meth:`reseed`).
    """

    name = "size-estimator"

    def __init__(self, rps: PeerSamplingLayer, seed_node: int = 0) -> None:
        super().__init__(rps, initial_value=0.0)
        self.seed_node = seed_node

    def init_node(self, sim: Simulation, node: SimNode) -> None:
        node.agg_value = 1.0 if node.nid == self.seed_node else 0.0

    def reseed(self, sim: Simulation, seed_node: Optional[int] = None) -> None:
        """Restart the estimation epoch on the current population."""
        if seed_node is None:
            seed_node = sim.network.alive_ids()[0]
        self.seed_node = seed_node
        for node in sim.network.alive_nodes():
            node.agg_value = 1.0 if node.nid == seed_node else 0.0

    def estimate(self, node: SimNode) -> float:
        """This node's local estimate of the network size."""
        if node.agg_value <= 0.0:
            return float("inf")
        return 1.0 / node.agg_value
