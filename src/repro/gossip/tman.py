"""T-Man: gossip-based topology construction [Jelasity et al. 2009].

The middle layer of the stack.  Every node keeps a view of node
descriptors (id + advertised position) and gossips each round: it picks
a partner among its ψ closest view entries, both sides exchange their
``m`` descriptors most relevant *to the other side's position*, and both
merge, keeping the ``cap`` closest entries to their own position.

Parameters follow the paper's setup (Sec. IV-A): views initialised with
10 random peers from RPS, views capped at 100 (unlike the unbounded
original), m = 20 descriptors per message, ψ = 5.

Because Polystyrene moves nodes, every exchange refreshes the positions
recorded for the two participants; this position-update traffic is why
T-Man dominates the message budget in Fig. 7b.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..spaces.base import Space
from ..sim.engine import Simulation
from ..sim.network import SimNode
from ..types import Coord, NodeId
from .ranking import closest_entries, rank_entries
from .rps import PeerSamplingLayer


class TManLayer:
    """One T-Man instance layered over a peer-sampling service."""

    name = "tman"

    def __init__(
        self,
        space: Space,
        rps: PeerSamplingLayer,
        message_size: int = 20,
        psi: int = 5,
        view_cap: int = 100,
        bootstrap_size: int = 10,
    ) -> None:
        if message_size < 1:
            raise ValueError("message_size must be >= 1")
        if psi < 1:
            raise ValueError("psi must be >= 1")
        if view_cap < 1:
            raise ValueError("view_cap must be >= 1")
        self.space = space
        self.rps = rps
        self.message_size = message_size
        self.psi = psi
        self.view_cap = view_cap
        self.bootstrap_size = bootstrap_size
        self._coord_dim = space.dim if space.dim is not None else 1

    # -- per-node state ----------------------------------------------------

    def init_node(self, sim: Simulation, node: SimNode) -> None:
        peers = self.rps.sample(sim, node, self.bootstrap_size)
        node.tman_view = {
            nid: sim.network.node(nid).pos for nid in peers if nid != node.nid
        }

    def view_of(self, node: SimNode) -> Dict[NodeId, Coord]:
        return node.tman_view

    def neighbors(self, sim: Simulation, node: SimNode, k: int) -> List[NodeId]:
        """The node's ``k`` closest *alive* view entries (the
        neighbourhood handed to Polystyrene and to the proximity
        metric)."""
        alive = sim.network.alive_view()
        alive_entries = {
            nid: coord for nid, coord in node.tman_view.items() if nid in alive
        }
        return rank_entries(self.space, node.pos, alive_entries, k)

    # -- one gossip cycle ----------------------------------------------------

    def step(self, sim: Simulation) -> None:
        for nid in sim.shuffled_alive(self.name):
            if sim.network.is_alive(nid):
                self._gossip(sim, sim.network.node(nid))

    def _gossip(self, sim: Simulation, node: SimNode) -> None:
        rng = sim.rng_for(self.name)
        view = node.tman_view
        # Evict detectably-failed peers; the boundary nodes of Fig. 1c do
        # exactly this, then re-link with the closest survivors.
        detected = sim.detected_failed()
        if detected:
            for peer in [p for p in view if p in detected]:
                del view[peer]
        if not view:
            self.init_node(sim, node)
            view = node.tman_view
            if not view:
                return
        partner_id = self._select_partner(sim, rng, node)
        if partner_id is None:
            return
        partner = sim.network.node(partner_id)
        # Symmetric exchange: each side sends the m entries most useful
        # to the *other* side, always including its own fresh descriptor.
        payload = self._build_buffer(node, target_pos=partner.pos)
        reply = self._build_buffer(partner, target_pos=node.pos)
        sim.meter.charge_descriptors(self.name, len(payload), self._coord_dim)
        sim.meter.charge_descriptors(self.name, len(reply), self._coord_dim)
        self._merge(sim, partner, payload)
        self._merge(sim, node, reply)

    def _select_partner(
        self, sim: Simulation, rng, node: SimNode
    ) -> Optional[NodeId]:
        """Random choice among the ψ closest alive view entries."""
        alive = sim.network.alive_view()
        alive_entries = {
            nid: coord for nid, coord in node.tman_view.items() if nid in alive
        }
        if not alive_entries:
            return None
        candidates = rank_entries(self.space, node.pos, alive_entries, self.psi)
        return rng.choice(candidates)

    def _build_buffer(self, node: SimNode, target_pos: Coord) -> Dict[NodeId, Coord]:
        """The ``m`` descriptors from ``node``'s view ∪ {node itself}
        closest to ``target_pos``."""
        pool = dict(node.tman_view)
        pool[node.nid] = node.pos
        return closest_entries(self.space, target_pos, pool, self.message_size)

    def _merge(self, sim: Simulation, node: SimNode, incoming: Dict[NodeId, Coord]) -> None:
        """Merge incoming descriptors, keep the ``cap`` closest to self.

        Incoming coordinates overwrite stored ones: a descriptor that
        arrives now reflects a fresher position than whatever the view
        remembered (nodes move under Polystyrene).
        """
        view = node.tman_view
        detected = sim.detected_failed()
        own = node.nid
        for nid, coord in incoming.items():
            if nid == own or nid in detected:
                continue
            view[nid] = coord
        if len(view) > self.view_cap:
            keep = rank_entries(self.space, node.pos, view, self.view_cap)
            node.tman_view = {nid: view[nid] for nid in keep}
