"""T-Man: gossip-based topology construction [Jelasity et al. 2009].

The middle layer of the stack.  Every node keeps a view of node
descriptors (id + advertised position) and gossips each round: it picks
a partner among its ψ closest view entries, both sides exchange their
``m`` descriptors most relevant *to the other side's position*, and both
merge, keeping the ``cap`` closest entries to their own position.

Parameters follow the paper's setup (Sec. IV-A): views initialised with
10 random peers from RPS, views capped at 100 (unlike the unbounded
original), m = 20 descriptors per message, ψ = 5.

Views are :class:`~repro.sim.arrays.ViewBuffer` slots: descriptor
merges run at dict speed, while the three rankings of a gossip exchange
(partner selection and the two message buffers) and the liveness scans
read the lazily packed id/coordinate arrays — one pack per mutated
view instead of one list → ``np.asarray`` conversion per ranking.
Iteration order, RNG draws and ranking tie-breaks are identical to the
historical dict-based views.

Because Polystyrene moves nodes, every exchange refreshes the positions
recorded for the two participants; this position-update traffic is why
T-Man dominates the message budget in Fig. 7b.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

import numpy as np

from ..obs import metrics as obs_metrics
from ..sim.arrays import OBJECT_DIM, ViewBuffer
from ..sim.engine import Simulation
from ..sim.network import SimNode
from ..spaces.base import Space
from ..types import Coord, NodeId
from .ranking import rank_alive, rank_entries, rank_ids
from .rps import PeerSamplingLayer


def view_dim(space: Space) -> Union[int, str]:
    """The ViewBuffer coordinate layout for a space (float columns for
    vector spaces, object storage otherwise)."""
    return space.dim if space.dim is not None else OBJECT_DIM


class TManLayer:
    """One T-Man instance layered over a peer-sampling service."""

    name = "tman"

    def __init__(
        self,
        space: Space,
        rps: PeerSamplingLayer,
        message_size: int = 20,
        psi: int = 5,
        view_cap: int = 100,
        bootstrap_size: int = 10,
    ) -> None:
        if message_size < 1:
            raise ValueError("message_size must be >= 1")
        if psi < 1:
            raise ValueError("psi must be >= 1")
        if view_cap < 1:
            raise ValueError("view_cap must be >= 1")
        self.space = space
        self.rps = rps
        self.message_size = message_size
        self.psi = psi
        self.view_cap = view_cap
        self.bootstrap_size = bootstrap_size
        self._coord_dim = space.dim if space.dim is not None else 1

    # -- per-node state ----------------------------------------------------

    def _ensure_view(self, node: SimNode) -> ViewBuffer:
        """The node's topology view as a ViewBuffer (tests may have
        attached a plain dict; adopt it transparently)."""
        view = getattr(node, "tman_view", None)
        if type(view) is not ViewBuffer:
            view = ViewBuffer(view_dim(self.space), (view or {}).items())
            node.tman_view = view
        return view

    def init_node(self, sim: Simulation, node: SimNode) -> None:
        peers = self.rps.sample(sim, node, self.bootstrap_size)
        node.tman_view = ViewBuffer(
            view_dim(self.space),
            (
                (nid, sim.network.node(nid).pos)
                for nid in peers
                if nid != node.nid
            ),
        )

    def view_of(self, node: SimNode) -> ViewBuffer:
        return node.tman_view

    def neighbors(self, sim: Simulation, node: SimNode, k: int) -> List[NodeId]:
        """The node's ``k`` closest *alive* view entries (the
        neighbourhood handed to Polystyrene and to the proximity
        metric)."""
        view = self._ensure_view(node)
        if not view:
            return []
        ids, _ = view.arrays()
        mask = sim.network.alive_mask(ids)
        if not mask.any():
            return []
        if view.ranked_pos is node.pos:
            # The view is already sorted by distance to this exact
            # position (the last bounded-view truncation ranked it, and
            # the projection memo has kept the position object stable
            # since): the k closest alive entries are a prefix scan.
            return ids[mask][:k].tolist()
        return rank_alive(self.space, node.pos_array, view, mask, k)

    # -- one gossip cycle ----------------------------------------------------

    def step(self, sim: Simulation) -> None:
        network = sim.network
        for nid in sim.shuffled_alive(self.name):
            if network.is_alive(nid):
                self._gossip(sim, network.node(nid))

    def _gossip(self, sim: Simulation, node: SimNode) -> None:
        rng = sim.rng_for(self.name)
        view = self._ensure_view(node)
        # Evict detectably-failed peers; the boundary nodes of Fig. 1c do
        # exactly this, then re-link with the closest survivors.  The
        # scan is one gather over the packed id column (which partner
        # selection needs packed right after anyway).
        detected = sim.detected_failed()
        if detected:
            ids, _ = view.arrays()
            stale = sim.detected_mask(ids)
            if stale.any():
                view.evict_ids(ids[stale].tolist())
        if not view:
            self.init_node(sim, node)
            view = node.tman_view
            if not view:
                return
        partner_id = self._select_partner(sim, rng, node, view)
        if partner_id is None:
            return
        partner = sim.network.node(partner_id)
        # Symmetric exchange: each side sends the m entries most useful
        # to the *other* side, always including its own fresh descriptor.
        payload = self._build_buffer(node, target_pos=partner.pos_array)
        reply = self._build_buffer(partner, target_pos=node.pos_array)
        sim.meter.charge_descriptors(self.name, len(payload), self._coord_dim)
        sim.meter.charge_descriptors(self.name, len(reply), self._coord_dim)
        obs_metrics.count("exchanges.tman")
        self._merge(sim, partner, payload, detected)
        self._merge(sim, node, reply, detected)

    def _select_partner(
        self, sim: Simulation, rng, node: SimNode, view: ViewBuffer
    ) -> Optional[NodeId]:
        """Random choice among the ψ closest alive view entries."""
        ids, _ = view.arrays()
        mask = sim.network.alive_mask(ids)
        if not mask.any():
            return None
        if view.ranked_pos is node.pos:
            candidates = ids[mask][: self.psi].tolist()
        else:
            candidates = rank_alive(
                self.space, node.pos_array, view, mask, self.psi
            )
        return rng.choice(candidates)

    def _build_buffer(self, node: SimNode, target_pos: Coord) -> Dict[NodeId, Coord]:
        """The ``m`` descriptors from ``node``'s view ∪ {node itself}
        closest to ``target_pos``."""
        view = self._ensure_view(node)
        own = node.nid
        own_pos = node.pos
        ids, coords = view.arrays()
        n = len(ids)
        pool_ids = np.empty(n + 1, dtype=np.int64)
        pool_ids[:n] = ids
        pool_ids[n] = own
        if isinstance(coords, list):
            pool_coords: object = coords + [own_pos]
        else:
            pool_coords = np.empty((n + 1, coords.shape[1]), dtype=float)
            pool_coords[:n] = coords
            pool_coords[n] = own_pos
        keep = rank_ids(
            self.space, target_pos, pool_ids, pool_coords, self.message_size
        )
        entries = view.coords
        return {
            nid: (own_pos if nid == own else entries[nid]) for nid in keep
        }

    def _merge(
        self,
        sim: Simulation,
        node: SimNode,
        incoming: Dict[NodeId, Coord],
        detected=None,
    ) -> None:
        """Merge incoming descriptors, keep the ``cap`` closest entries.

        Incoming coordinates overwrite stored ones: a descriptor that
        arrives now reflects a fresher position than whatever the view
        remembered (nodes move under Polystyrene).
        """
        view = self._ensure_view(node)
        if detected is None:
            detected = sim.detected_failed()
        view.merge_coords(incoming, node.nid, detected)
        if len(view) > self.view_cap:
            ids, coords = view.arrays()
            if isinstance(coords, list):
                keep = rank_entries(
                    self.space, node.pos_array, view, self.view_cap
                )
                view.keep_ranked(keep, ranked_for=node.pos)
            else:
                dists = self.space.rank_sq_block(node.pos_array, coords)
                order = np.lexsort((ids, dists))[: self.view_cap]
                view.set_ranked(ids[order], coords[order], ranked_for=node.pos)
