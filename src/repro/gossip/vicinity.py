"""Vicinity: epidemic semantic-overlay construction [Voulgaris & van
Steen, Euro-Par'05].

The paper presents Polystyrene as "an add-on layer that can be plugged
into any decentralized topology construction algorithm" (Sec. II-C) and
names Vicinity as the other canonical choice next to T-Man.  This layer
provides it, so the claim is testable: the scenario runner accepts
``topology="vicinity"`` and runs the identical Polystyrene stack on it.

Differences from our T-Man implementation, following the Vicinity
design:

* view entries carry an *age*; the gossip partner is the oldest alive
  entry (Cyclon-style), not a random pick among the ψ closest;
* every exchange also folds a few fresh descriptors from the
  peer-sampling layer into the merge, so the overlay keeps exploring
  even once locally converged (T-Man gets this only at bootstrap);
* views are small and fixed-size (``view_size``, default 20) rather
  than capped-at-100.

The per-node view is stored under the same ``tman_view`` attribute the
T-Man layer uses (a coordinate :class:`~repro.sim.arrays.ViewBuffer`);
ages are tracked separately under ``vicinity_age``.  Reusing the
attribute keeps Polystyrene, the proximity metric and every observer
working unchanged over either overlay — they only care about "the
topology view".
"""

from __future__ import annotations

from typing import Dict, List

from ..sim.arrays import ViewBuffer
from ..sim.engine import Simulation
from ..sim.network import SimNode
from ..spaces.base import Space
from ..types import Coord, NodeId
from .ranking import rank_alive, rank_entries, rank_ids
from .rps import PeerSamplingLayer
from .tman import view_dim


class VicinityLayer:
    """One Vicinity instance layered over a peer-sampling service."""

    name = "vicinity"

    def __init__(
        self,
        space: Space,
        rps: PeerSamplingLayer,
        view_size: int = 20,
        message_size: int = 10,
        rps_candidates: int = 3,
        bootstrap_size: int = 10,
    ) -> None:
        if view_size < 1:
            raise ValueError("view_size must be >= 1")
        if message_size < 1:
            raise ValueError("message_size must be >= 1")
        if rps_candidates < 0:
            raise ValueError("rps_candidates cannot be negative")
        self.space = space
        self.rps = rps
        self.view_size = view_size
        self.message_size = message_size
        self.rps_candidates = rps_candidates
        self.bootstrap_size = min(bootstrap_size, view_size)
        self._coord_dim = space.dim if space.dim is not None else 1

    # -- per-node state ----------------------------------------------------

    def _ensure_view(self, node: SimNode) -> ViewBuffer:
        view = getattr(node, "tman_view", None)
        if type(view) is not ViewBuffer:
            view = ViewBuffer(view_dim(self.space), (view or {}).items())
            node.tman_view = view
            if not hasattr(node, "vicinity_age"):
                node.vicinity_age = {nid: 0 for nid in view}
        return view

    def init_node(self, sim: Simulation, node: SimNode) -> None:
        peers = self.rps.sample(sim, node, self.bootstrap_size)
        node.tman_view = ViewBuffer(
            view_dim(self.space),
            (
                (nid, sim.network.node(nid).pos)
                for nid in peers
                if nid != node.nid
            ),
        )
        node.vicinity_age = {nid: 0 for nid in node.tman_view}

    def view_of(self, node: SimNode) -> ViewBuffer:
        return node.tman_view

    def neighbors(self, sim: Simulation, node: SimNode, k: int) -> List[NodeId]:
        """The node's ``k`` closest alive view entries (same interface
        as :meth:`TManLayer.neighbors`, so Polystyrene is agnostic)."""
        view = self._ensure_view(node)
        if not view:
            return []
        ids, _ = view.arrays()
        mask = sim.network.alive_mask(ids)
        if not mask.any():
            return []
        return rank_alive(self.space, node.pos_array, view, mask, k)

    # -- one gossip cycle ----------------------------------------------------

    def step(self, sim: Simulation) -> None:
        network = sim.network
        for nid in sim.shuffled_alive(self.name):
            if network.is_alive(nid):
                self._gossip(sim, network.node(nid))

    def _gossip(self, sim: Simulation, node: SimNode) -> None:
        view = self._ensure_view(node)
        ages = node.vicinity_age
        # Evict detectably-failed peers (ids pruned by the retention
        # policy count as long-detected).
        gone = sim.departed()
        for peer in list(view):
            if gone(peer):
                del view[peer]
                ages.pop(peer, None)
            else:
                ages[peer] = ages.get(peer, 0) + 1
        if not view:
            self.init_node(sim, node)
            view, ages = node.tman_view, node.vicinity_age
            if not view:
                return
        # Vicinity selects the *oldest* view entry as gossip partner.
        partner_id = max(view, key=lambda p: (ages.get(p, 0), p))
        partner = sim.network.node(partner_id)

        payload = self._build_buffer(sim, node, target_pos=partner.pos_array)
        reply = self._build_buffer(sim, partner, target_pos=node.pos_array)
        sim.meter.charge_descriptors(self.name, len(payload), self._coord_dim)
        sim.meter.charge_descriptors(self.name, len(reply), self._coord_dim)
        self._merge(sim, partner, payload)
        self._merge(sim, node, reply)

    def _build_buffer(
        self, sim: Simulation, node: SimNode, target_pos: Coord
    ) -> Dict[NodeId, Coord]:
        """The ``message_size`` descriptors most relevant to the target,
        drawn from the node's view ∪ itself ∪ fresh RPS candidates."""
        view = self._ensure_view(node)
        pool: Dict[NodeId, Coord] = dict(view.items())
        pool[node.nid] = node.pos
        for nid in self.rps.sample(sim, node, self.rps_candidates):
            pool.setdefault(nid, sim.network.node(nid).pos)
        ids = list(pool.keys())
        keep = rank_ids(
            self.space,
            target_pos,
            ids,
            self.space.pack_batch([pool[nid] for nid in ids]),
            self.message_size,
        )
        return {nid: pool[nid] for nid in keep}

    def _merge(
        self, sim: Simulation, node: SimNode, incoming: Dict[NodeId, Coord]
    ) -> None:
        view = self._ensure_view(node)
        ages = node.vicinity_age
        detected = sim.detected_failed()
        own = node.nid
        for nid, coord in incoming.items():
            if nid == own or nid in detected:
                continue
            view[nid] = coord
            ages[nid] = 0  # freshly heard of
        if len(view) > self.view_size:
            keep = rank_entries(self.space, node.pos_array, view, self.view_size)
            view.keep_ranked(keep)
            node.vicinity_age = {nid: ages.get(nid, 0) for nid in keep}
