"""Gossip substrates: random peer sampling (Cyclon) and T-Man.

These are the two lower layers of the paper's architecture (Fig. 3).
They are self-contained and usable without Polystyrene — running T-Man
alone over RPS is exactly the paper's baseline configuration.
"""

from .aggregation import AggregationLayer, SizeEstimator
from .ranking import closest_entries, rank_entries, truncate_closest
from .rps import PeerSamplingLayer
from .tman import TManLayer
from .vicinity import VicinityLayer

__all__ = [
    "PeerSamplingLayer",
    "TManLayer",
    "VicinityLayer",
    "AggregationLayer",
    "SizeEstimator",
    "rank_entries",
    "closest_entries",
    "truncate_closest",
]
