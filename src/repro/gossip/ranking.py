"""Distance-ranking helpers shared by the gossip layers."""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..spaces.base import Space
from ..types import Coord, NodeId


def rank_entries(
    space: Space,
    origin: Coord,
    entries: Dict[NodeId, Coord],
    limit: Optional[int] = None,
) -> List[NodeId]:
    """Node ids from ``entries`` sorted by distance of their recorded
    coordinate to ``origin``, closest first, optionally truncated.

    Ties are broken by node id so rankings are deterministic.
    """
    if not entries:
        return []
    ids = list(entries.keys())
    coords = [entries[nid] for nid in ids]
    dists = space.distance_many(origin, coords)
    order = np.lexsort((ids, dists))  # distance first, id as tie-break
    if limit is not None:
        order = order[:limit]
    return [ids[i] for i in order]


def closest_entries(
    space: Space,
    origin: Coord,
    entries: Dict[NodeId, Coord],
    k: int,
) -> Dict[NodeId, Coord]:
    """The ``k`` closest entries as a new id → coord mapping."""
    return {nid: entries[nid] for nid in rank_entries(space, origin, entries, k)}


def truncate_closest(
    space: Space,
    origin: Coord,
    entries: Dict[NodeId, Coord],
    cap: int,
) -> Dict[NodeId, Coord]:
    """Return ``entries`` unchanged if within ``cap``, else only the
    ``cap`` closest to ``origin`` (T-Man's bounded-view rule)."""
    if len(entries) <= cap:
        return entries
    return closest_entries(space, origin, entries, cap)
