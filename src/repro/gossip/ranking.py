"""Distance-ranking helpers shared by the gossip layers.

Two input shapes are supported everywhere: plain ``{id: coord}`` dicts
(tests, ad-hoc probes, the routing layer) and the array-backed
:class:`~repro.sim.arrays.ViewBuffer` view slots the layers use on the
hot path.  The ViewBuffer path ranks straight off the buffer's packed
id/coordinate arrays — no per-call list building or ``np.asarray``.

Rankings sort by *squared* distance: ``sqrt`` is strictly increasing,
so the order (including the id tie-break) is the order true distances
would produce, one ufunc pass cheaper per call.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..sim.arrays import ViewBuffer
from ..spaces.base import Space
from ..types import Coord, NodeId

Entries = Union[Dict[NodeId, Coord], ViewBuffer]


def rank_ids(
    space: Space,
    origin: Coord,
    ids,
    coords,
    limit: Optional[int] = None,
) -> List[NodeId]:
    """Rank pre-packed (ids, coords) arrays by distance to ``origin``,
    closest first, ties broken by id.  The low-level kernel under
    :func:`rank_entries`.  (Empty input ranks to an empty list through
    the same code path — no special case needed.)"""
    dists = space.rank_sq_block(origin, coords)
    order = np.lexsort((ids, dists))  # distance first, id as tie-break
    if limit is not None:
        order = order[:limit]
    if isinstance(ids, np.ndarray):
        return ids[order].tolist()
    return [ids[i] for i in order]


def rank_entries(
    space: Space,
    origin: Coord,
    entries: Entries,
    limit: Optional[int] = None,
) -> List[NodeId]:
    """Node ids from ``entries`` sorted by distance of their recorded
    coordinate to ``origin``, closest first, optionally truncated.

    Ties are broken by node id so rankings are deterministic.
    """
    if not entries:
        return []
    if isinstance(entries, ViewBuffer):
        ids, coords = entries.arrays()
        return rank_ids(space, origin, ids, coords, limit)
    ids = list(entries.keys())
    coords = [entries[nid] for nid in ids]
    return rank_ids(space, origin, ids, space.pack_batch(coords), limit)


def rank_alive(
    space: Space,
    origin: Coord,
    view: ViewBuffer,
    alive_mask: np.ndarray,
    limit: Optional[int] = None,
) -> List[NodeId]:
    """Rank only the view entries whose mask position is True (the
    alive-filtered ranking of ``neighbors()``), reading the packed id
    and coordinate arrays in place."""
    ids, coords = view.arrays()
    if not alive_mask.all():
        ids = ids[alive_mask]
        if isinstance(coords, list):
            coords = [c for c, keep in zip(coords, alive_mask) if keep]
        else:
            coords = coords[alive_mask]
    dists = space.rank_sq_block(origin, coords)
    order = np.lexsort((ids, dists))
    if limit is not None:
        order = order[:limit]
    return ids[order].tolist()


def closest_entries(
    space: Space,
    origin: Coord,
    entries: Entries,
    k: int,
) -> Dict[NodeId, Coord]:
    """The ``k`` closest entries as a new id → coord mapping."""
    return {nid: entries[nid] for nid in rank_entries(space, origin, entries, k)}


def truncate_closest(
    space: Space,
    origin: Coord,
    entries: Entries,
    cap: int,
) -> Entries:
    """Return ``entries`` unchanged if within ``cap``, else only the
    ``cap`` closest to ``origin`` (T-Man's bounded-view rule)."""
    if len(entries) <= cap:
        return entries
    return closest_entries(space, origin, entries, cap)
