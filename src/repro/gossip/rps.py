"""Random Peer Sampling — a Cyclon-style shuffle service.

The bottom layer of the paper's stack (Fig. 2/3): it "provides each node
with a random sample of the rest of the network" by having nodes
"exchange and shuffle their neighbors' list in asynchronous gossip
rounds" [17], [21].  T-Man draws fresh random candidates from it,
Polystyrene draws backup nodes and one extra migration candidate.

The implementation follows Cyclon: ages on view entries, shuffle with
the oldest neighbour, send a subset including a fresh self-descriptor,
and merge by filling empty slots first then replacing the entries that
were sent out.

Unlike the topology views, RPS views are never distance-ranked, so they
stay plain ``{id: age}`` dicts — every operation here (aging, eviction,
merge) is already a C-speed dict scan, and an array mirror would only
add conversion overhead.

Robustness note: after a catastrophic failure a node's whole view can be
dead.  A real deployment re-bootstraps from a rendezvous service; the
simulator mirrors that with a network-wide random re-seed, used *only*
when the view holds no alive entry (the fallback is counted, so tests
can assert it stays rare in the paper scenario).
"""

from __future__ import annotations

from typing import Dict, List

from ..sim.engine import Simulation
from ..sim.network import SimNode
from ..sim.rng import sample_without
from ..types import NodeId


class PeerSamplingLayer:
    """Cyclon-style random peer sampling."""

    name = "rps"

    def __init__(self, view_size: int = 20, shuffle_length: int = 10) -> None:
        if view_size < 1:
            raise ValueError("view_size must be >= 1")
        if not 1 <= shuffle_length <= view_size:
            raise ValueError("need 1 <= shuffle_length <= view_size")
        self.view_size = view_size
        self.shuffle_length = shuffle_length
        #: How many times a node had to fall back to the bootstrap
        #: oracle because its view contained no alive peer.
        self.bootstrap_fallbacks = 0

    # -- per-node state ----------------------------------------------------

    def init_node(self, sim: Simulation, node: SimNode) -> None:
        rng = sim.rng_for(self.name)
        peers = sim.network.random_alive(rng, self.view_size, exclude=(node.nid,))
        node.rps_view = {nid: 0 for nid in peers}

    def view_of(self, node: SimNode) -> Dict[NodeId, int]:
        return node.rps_view

    # -- sampling API used by upper layers ----------------------------------

    def sample(
        self,
        sim: Simulation,
        node: SimNode,
        k: int = 1,
        exclude: tuple = (),
    ) -> List[NodeId]:
        """Up to ``k`` random *alive* peers from the node's view.

        Falls back to the network bootstrap oracle when the view cannot
        provide any alive candidate.
        """
        rng = sim.rng_for(self.name)
        alive_view = sim.network.alive_view()
        own = node.nid
        alive = [
            nid for nid in node.rps_view if nid in alive_view and nid != own
        ]
        picked = sample_without(rng, alive, k, exclude=exclude)
        if not picked and k > 0:
            self.bootstrap_fallbacks += 1
            picked = sim.network.random_alive(
                rng, k, exclude=set(exclude) | {node.nid}
            )
        return picked

    # -- one gossip cycle ----------------------------------------------------

    def step(self, sim: Simulation) -> None:
        network = sim.network
        for nid in sim.shuffled_alive(self.name):
            if network.is_alive(nid):
                self._shuffle(sim, network.node(nid))

    def _shuffle(self, sim: Simulation, node: SimNode) -> None:
        rng = sim.rng_for(self.name)
        view = node.rps_view
        # Age every entry and evict detectably-failed peers (ids pruned
        # by the retention policy count as long-detected).
        gone = sim.departed()
        for peer in list(view):
            if gone(peer):
                del view[peer]
            else:
                view[peer] += 1
        if not view:
            self.bootstrap_fallbacks += 1
            peers = sim.network.random_alive(
                rng, self.view_size, exclude=(node.nid,)
            )
            view.update({p: 0 for p in peers})
            if not view:
                return
        # Cyclon: shuffle with the oldest neighbour.
        partner_id = max(view, key=lambda p: (view[p], p))
        del view[partner_id]
        if not sim.network.is_alive(partner_id):
            return
        partner = sim.network.node(partner_id)
        sent = sample_without(rng, list(view), self.shuffle_length - 1)
        payload = {nid: view[nid] for nid in sent}
        payload[node.nid] = 0  # fresh self-descriptor
        # Partner answers with a random subset of its own view.
        reply_ids = sample_without(
            rng, list(partner.rps_view), self.shuffle_length, exclude=(node.nid,)
        )
        reply = {nid: partner.rps_view[nid] for nid in reply_ids}
        # RPS traffic is metered under its own layer name; the paper's
        # message plots exclude it.
        dim = getattr(sim.space, "dim", None) or 1
        sim.meter.charge_descriptors(self.name, len(payload) + len(reply), dim)
        self._merge(sim, partner, payload, sent_out=reply_ids)
        self._merge(sim, node, reply, sent_out=sent)

    def _merge(
        self,
        sim: Simulation,
        node: SimNode,
        incoming: Dict[NodeId, int],
        sent_out: List[NodeId],
    ) -> None:
        """Cyclon merge: keep fresh entries, fill free slots first, then
        reuse the slots of entries that were just sent away."""
        view = node.rps_view
        detected = sim.detected_failed()
        replaceable = [nid for nid in sent_out if nid in view]
        for peer, age in incoming.items():
            if peer == node.nid or peer in detected:
                continue
            if peer in view:
                view[peer] = min(view[peer], age)
                continue
            if len(view) < self.view_size:
                view[peer] = age
            elif replaceable:
                del view[replaceable.pop()]
                view[peer] = age
