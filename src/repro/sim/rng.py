"""Deterministic randomness management.

Every stochastic decision in the simulator draws from a
:class:`random.Random` stream derived from a single experiment seed, so
any run is bit-for-bit reproducible from ``(code, seed)``.  Substreams
are derived with a stable hash so that adding a new consumer of
randomness does not perturb the draws of existing ones.
"""

from __future__ import annotations

import random
import zlib
from typing import Iterable, List, Sequence, TypeVar

T = TypeVar("T")


def derive_seed(base_seed: int, *keys) -> int:
    """Derive a stable substream seed from a base seed and labels.

    Uses CRC32 over the textual labels — stable across processes and
    Python versions (unlike built-in ``hash``).
    """
    digest = zlib.crc32(repr(keys).encode("utf8")) & 0xFFFFFFFF
    return (int(base_seed) * 1_000_003 + digest) & 0x7FFFFFFFFFFFFFFF


def spawn(base_seed: int, *keys) -> random.Random:
    """A fresh, independent :class:`random.Random` substream."""
    return random.Random(derive_seed(base_seed, *keys))


def _sample(rng: random.Random, population: Sequence[T], k: int) -> List[T]:
    """``rng.sample`` with a fast path for ``k == 1``.

    ``random.sample(pop, 1)`` consumes exactly one ``_randbelow(n)``
    draw and returns ``[pop[j]]`` in every branch of its algorithm, so
    indexing directly is draw-for-draw identical while skipping the
    pool-copy/selection-set setup.
    """
    if k == 1:
        return [population[rng._randbelow(len(population))]]
    return rng.sample(population, k)


def sample_without(
    rng: random.Random,
    population: Sequence[T],
    k: int,
    exclude: Iterable[T] = (),
) -> List[T]:
    """Sample up to ``k`` distinct items from ``population`` avoiding
    ``exclude``.  Returns fewer than ``k`` items when the population is
    too small rather than raising."""
    excluded = set(exclude)
    if not excluded:
        k = min(k, len(population))
        return _sample(rng, population, k) if k > 0 else []
    candidates = [item for item in population if item not in excluded]
    k = min(k, len(candidates))
    return _sample(rng, candidates, k) if k > 0 else []
