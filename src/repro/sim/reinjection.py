"""Reinjection of fresh nodes (Sec. IV-A, Phase 3).

Reinjected nodes carry *no data point*: "we re-inject 1600 fresh nodes,
containing no data point, but with their pos parameters initialized.
These new nodes are positioned uniformly on the torus, on a grid
parallel to the original one."  Under Polystyrene the migration step
then streams guest points onto them; under plain T-Man they stay where
they were dropped.
"""

from __future__ import annotations

from typing import List, Sequence

from ..types import Coord
from .engine import Event, Simulation
from .network import SimNode


class Reinjection:
    """Picklable event spawning one fresh, point-less node per position."""

    def __init__(self, positions: Sequence[Coord]) -> None:
        self.positions: List[Coord] = [tuple(p) for p in positions]

    def __call__(self, sim: Simulation) -> None:
        for pos in self.positions:
            sim.spawn_node(pos, initial_point=None)


def reinjection(positions: Sequence[Coord]) -> Event:
    """Event spawning one fresh, point-less node per position."""
    return Reinjection(positions)


def spawn_fresh_nodes(sim: Simulation, positions: Sequence[Coord]) -> List[SimNode]:
    """Immediately spawn fresh point-less nodes (imperative variant)."""
    return [sim.spawn_node(tuple(p), initial_point=None) for p in positions]
