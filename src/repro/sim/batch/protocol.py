"""Batch Polystyrene: the four mechanisms, whole-network per round.

Point placement state (guests/ghosts/backups) stays in the canonical
per-node :class:`~repro.core.state.PolystyreneState` objects — these are
dict/set bookkeeping whose cost is driven by *change volume*, and
keeping them canonical means checkpoints, the reliability probe, the
storage metric and engine conversion read them with zero translation.
Everything geometric is vectorised:

* **recovery** — one cached detector set, scanned only on rounds where
  something is detected;
* **backup** — top-ups batch their candidate sampling through the batch
  RPS layer; pushes short-circuit to zero work for nodes whose guest
  set did not change since their last push (dirty-set tracking);
* **migration** — partner candidates are the ψ closest alive topology
  entries plus one RPS draw for *all* nodes in one kernel; every alive
  node's proposal then executes in dependency *waves* (each wave a
  conflict-free matching of the still-pending proposals, drained until
  none remain), so each node initiates exactly one exchange per
  ``migrations_per_round`` — the event engine's rate — while no two
  snapshot-based re-partitions ever touch the same guest set
  concurrently (points cannot be lost or duplicated).  Every wave's
  pools are split by the vectorised
  :func:`~repro.sim.batch.split.batch_split`;
* **projection** — medoids of every changed guest set in one grouped
  pairwise kernel, written back to the node table in bulk.

Message metering follows the event engine's unit accounting exactly
(pulled guest sets, pushed deltas, bare-id confirmations).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

import numpy as np

from ...core.config import PolystyreneConfig
from ...core.state import PolystyreneState
from ...errors import ConfigurationError
from ...obs import mem as obs_mem
from ...obs import metrics as obs_metrics
from ...spaces.base import Space
from ...spaces.euclidean import Euclidean
from ...types import DataPoint, NodeId, PointId
from . import split as batch_split_mod



class BatchPolystyrene:
    """Batch form of :class:`repro.core.protocol.PolystyreneLayer`."""

    name = "polystyrene"

    def __init__(
        self,
        space: Space,
        config: PolystyreneConfig,
        rps,
        tman,
    ) -> None:
        if config.projection == "centroid" and not isinstance(space, Euclidean):
            raise ConfigurationError(
                "centroid projection requires a Euclidean space; "
                f"got {type(space).__name__}"
            )
        self.space = space
        self.config = config
        self.rps = rps
        self.tman = tman
        self._points: Dict[PointId, DataPoint] = {}
        self._point_coords = np.zeros((0, space.dim), dtype=float)
        #: Nodes whose guest set changed since their last projection.
        self._changed: Set[NodeId] = set()
        #: Nodes whose guest set changed since their last backup push.
        self._push_dirty: Set[NodeId] = set()
        #: Nodes that gained a backup this round (need a first full push).
        self._push_pending: Set[NodeId] = set()
        self._last_detected: frozenset = frozenset()
        #: Nodes that may be short of backups (``None`` = everyone,
        #: pending a lazy re-seed): backup sets only shrink in the
        #: detected-drop scan below, so between failures the per-round
        #: top-up scan touches just this set instead of every node.
        self._maybe_short: Optional[Set[NodeId]] = None

    # -- per-node state ----------------------------------------------------

    def _register_point(self, point: DataPoint) -> None:
        pid = point.pid
        if pid >= len(self._point_coords):
            grow = max(pid + 1, len(self._point_coords) * 2, 64)
            fresh = np.zeros((grow, self.space.dim), dtype=float)
            fresh[: len(self._point_coords)] = self._point_coords
            if obs_mem.ENABLED:
                obs_mem.add(
                    "protocol_points",
                    "BatchPolystyrene.point_coords",
                    fresh.nbytes - self._point_coords.nbytes,
                )
            self._point_coords = fresh
        self._points[pid] = point
        self._point_coords[pid] = point.coord

    def init_node(self, sim, node) -> None:
        initial = [node.initial_point] if node.initial_point is not None else []
        node.poly = PolystyreneState(initial)
        if initial:
            node.pos = initial[0].coord
            self._register_point(initial[0])
        if self._maybe_short is not None:
            self._maybe_short.add(node.nid)

    def init_network(self, sim) -> None:
        for node in sim.network.alive_nodes():
            self.init_node(sim, node)

    def adopt(self, sim) -> None:
        """Register every data point reachable from the canonical
        per-node state (engine conversion): initial points, guests and
        ghost copies all index into the shared coordinate table.

        Nodes whose guest set differs from what they last pushed to any
        backup are seeded into the push-dirty set — the event engine
        repairs such drift through its unconditional per-round scan,
        and a conversion mid-drift (e.g. a checkpoint taken after
        migration but before the next backup round) must not strand the
        stale ghost copies forever.
        """
        for node in sim.network.nodes.values():
            if node.initial_point is not None:
                self._register_point(node.initial_point)
            state = getattr(node, "poly", None)
            if state is None:
                continue
            for point in state.guests.values():
                self._register_point(point)
            for ghost in state.ghosts.values():
                for point in ghost.values():
                    self._register_point(point)
            guest_pids = frozenset(state.guests)
            if any(
                state.backup_sent.get(b) != guest_pids
                for b in state.backups
            ):
                self._push_dirty.add(node.nid)
        self._maybe_short = None

    # -- one protocol round --------------------------------------------------

    def step(self, sim) -> None:
        detected = sim.detected_failed()
        if detected:
            self._recover(sim, detected)
        self._backup(sim, detected)
        for _ in range(self.config.migrations_per_round):
            obs_metrics.count("exchanges.migration", self._migration_round(sim))
        self._project(sim)

    # -- step 3: recovery ---------------------------------------------------

    def _recover(self, sim, detected) -> None:
        network = sim.network
        nodes = network.nodes
        for nid in network.alive_ids():
            state = nodes[nid].poly
            ghosts = state.ghosts
            if not ghosts:
                continue
            stale = [
                q for q in ghosts if q in detected or q not in nodes
            ]
            for origin in stale:
                state.add_guests(ghosts[origin].values())
                del ghosts[origin]
            if stale:
                self._changed.add(nid)
                self._push_dirty.add(nid)

    # -- step 2: backup -----------------------------------------------------

    def _backup(self, sim, detected) -> None:
        network = sim.network
        table = network.table
        nodes = network.nodes
        cfg = self.config
        K = cfg.replication
        coord_dim = self.space.dim

        maybe_short = getattr(self, "_maybe_short", None)
        if maybe_short is None:
            # Lazy seed (fresh layer, post-adopt, or restored from an
            # older checkpoint): everyone is a top-up candidate once.
            maybe_short = self._maybe_short = set(network.alive_ids())

        # Line 1: drop failed backups — only re-scanned when the
        # detector *set* changed (fresh backups are sampled alive, so a
        # static post-failure set cannot re-contaminate anyone).  The
        # cached frozenset is rebuilt per round, so compare by value.
        if detected and detected != self._last_detected:
            self._last_detected = detected
            for nid in network.alive_ids():
                state = nodes[nid].poly
                dead = [
                    b
                    for b in state.backups
                    if b in detected or b not in nodes
                ]
                for b in dead:
                    state.backups.discard(b)
                    state.backup_sent.pop(b, None)
                if dead:
                    maybe_short.add(nid)

        # Line 2: top back up to K backups, sampling candidates for all
        # short nodes in one batch.  Backup sets shrink only in the
        # drop scan above (which marks the victims), so nodes outside
        # ``maybe_short`` cannot be short; the scan keeps
        # ``alive_ids`` order for the draw alignment below.
        short: List[NodeId] = []
        if maybe_short:
            for nid in network.alive_ids():
                if nid not in maybe_short:
                    continue
                if len(nodes[nid].poly.backups) < K:
                    short.append(nid)
                else:
                    maybe_short.discard(nid)
        if short:
            rows = np.asarray([nodes[nid].row for nid in short], dtype=np.int64)
            width = max(1, max(len(nodes[nid].poly.backups) for nid in short))
            exclude = np.full((len(short), width), -1, dtype=np.int64)
            for i, nid in enumerate(short):
                for j, b in enumerate(nodes[nid].poly.backups):
                    exclude[i, j] = b
            if cfg.backup_placement == "neighbors":
                cand = self.tman.neighbors_rows(sim, rows, K + width)
            else:
                cand = self.rps.sample_rows(sim, rows, K, exclude=exclude)
            for i, nid in enumerate(short):
                state = nodes[nid].poly
                missing = K - len(state.backups)
                picked = [
                    int(b)
                    for b in cand[i]
                    if b >= 0 and b not in state.backups and b != nid
                ][:missing]
                if len(picked) < missing and cfg.backup_placement == "neighbors":
                    picked += [
                        int(b)
                        for b in self.rps.sample(
                            sim,
                            nodes[nid],
                            missing - len(picked),
                            exclude=tuple(state.backups) + tuple(picked) + (nid,),
                        )
                    ]
                if picked:
                    state.backups.update(picked)
                    self._push_pending.add(nid)
                if len(state.backups) >= K:
                    maybe_short.discard(nid)

        # Lines 3-4: push guests to backups.  With incremental deltas a
        # node whose guests did not change and whose backups all hold a
        # previous copy sends nothing — skip it without touching dicts.
        if cfg.incremental_backup:
            candidates = self._push_dirty | self._push_pending
        else:
            candidates = set(network.alive_ids())
        pts = 0
        ids_units = 0
        for nid in candidates:
            if not network.is_alive(nid):
                self._push_dirty.discard(nid)
                self._push_pending.discard(nid)
                continue
            state = nodes[nid].poly
            guest_pids = frozenset(state.guests)
            for backup_id in state.backups:
                if not network.is_alive(backup_id):
                    continue
                target = nodes[backup_id].poly
                previous = state.backup_sent.get(backup_id)
                if cfg.incremental_backup and previous is not None:
                    added = guest_pids - previous
                    removed = previous - guest_pids
                    if not added and not removed:
                        continue
                    ghost = target.ghosts.setdefault(nid, {})
                    for pid in added:
                        ghost[pid] = state.guests[pid]
                    for pid in removed:
                        ghost.pop(pid, None)
                    pts += len(added)
                    ids_units += len(removed) + 1
                else:
                    target.ghosts[nid] = dict(state.guests)
                    pts += len(guest_pids)
                    ids_units += 1
                state.backup_sent[backup_id] = guest_pids
            self._push_dirty.discard(nid)
            self._push_pending.discard(nid)
        if pts:
            sim.meter.charge_points(self.name, pts, coord_dim)
        if ids_units:
            sim.meter.charge_ids(self.name, ids_units)

    # -- step 4: migration --------------------------------------------------

    def _migration_round(self, sim) -> int:
        """One full migration round: every alive node initiates one
        exchange (the event engine's rate), executed in dependency
        *waves* — each wave is a conflict-free matching of the pending
        proposals, split vectorised, and followed by a projection pass
        so the next wave sees moved positions.  A popular node partnered
        by many initiators therefore chains one exchange per wave,
        reproducing the event engine's intra-round point transport
        without ever re-partitioning the same guest set twice from one
        snapshot.  Returns the exchange count."""
        network = sim.network
        table = network.table
        gen = sim.rng_for(self.name)
        act = sim.alive_act_rows()
        if len(act) < 2:
            return 0
        psi = self.config.psi

        # Candidates: ψ closest alive topology entries + one RPS draw,
        # selected for all initiators from the round-start snapshot.
        neigh = self.tman.neighbors_rows(sim, act, psi)
        own = table._nid_of[act]
        exclude = np.concatenate([neigh, own[:, None]], axis=1)
        extra = self.rps.sample_rows(sim, act, 1, exclude=exclude)
        cand = np.concatenate([neigh, extra], axis=1)
        valid = cand >= 0
        run_v = np.cumsum(valid, axis=1)
        counts = run_v[:, -1]
        # Counting-based stable partition: valid candidates keep their
        # order at the front, invalid slots fill the tail — the same
        # array a stable argsort on ~valid produces, without the sort.
        col = np.arange(cand.shape[1], dtype=np.int64)
        dest = np.where(valid, run_v - 1, counts[:, None] + col - run_v)
        packed = np.empty_like(cand)
        np.put_along_axis(packed, dest, cand, axis=1)
        u = gen.random(len(act))
        j = np.minimum(
            (u * np.maximum(counts, 1)).astype(np.int64),
            np.maximum(counts - 1, 0),
        )
        partner = np.where(
            counts > 0, packed[np.arange(len(act)), j], -1
        )

        prow = table.rows_of(np.maximum(partner, 0))
        perm = gen.permutation(len(act))
        act_l = act.tolist()
        prow_l = prow.tolist()
        partner_l = partner.tolist()
        pending = [
            (act_l[idx], prow_l[idx])
            for idx in perm.tolist()
            if partner_l[idx] >= 0
        ]
        total = 0
        while pending:
            taken = np.zeros(table.n_rows, dtype=bool)
            wave: List = []
            rest: List = []
            for r, q in pending:
                if taken[r] or taken[q]:
                    rest.append((r, q))
                else:
                    taken[r] = True
                    taken[q] = True
                    wave.append((r, q))
            total += self._execute_pairs(sim, wave)
            self._project(sim)
            pending = rest
        return total

    def _execute_pairs(self, sim, pairs: List) -> int:
        """Pool, split and install one wave of disjoint exchanges."""
        network = sim.network
        table = network.table
        if not pairs:
            return 0

        # Pools: q's guests first, then p's guests not already present —
        # the same key order ``dict(sq.guests) | sp.guests`` produces,
        # built as plain id lists (the split only needs coordinates).
        nid_of = table._nid_of
        nodes = network.nodes
        M = len(pairs)
        rows_p = np.asarray([r for r, _ in pairs], dtype=np.int64)
        rows_q = np.asarray([q for _, q in pairs], dtype=np.int64)
        nids_p = nid_of[rows_p].tolist()
        nids_q = nid_of[rows_q].tolist()
        pool_lists: List[List[PointId]] = []
        states = []
        nq_list = []
        disjoint = []
        for m in range(M):
            sp = nodes[nids_p[m]].poly
            sq = nodes[nids_q[m]].poly
            sqg = sq.guests
            spg = sp.guests
            pids = list(sqg)
            if spg:
                pids.extend(pid for pid in spg if pid not in sqg)
            pool_lists.append(pids)
            states.append((sp, sq))
            nq_list.append(len(sqg))
            disjoint.append(len(pids) == len(sqg) + len(spg))
        P = max(1, max(len(p) for p in pool_lists))
        pool_pids = np.zeros((M, P), dtype=np.int64)
        pool_valid = np.zeros((M, P), dtype=bool)
        for m, pids in enumerate(pool_lists):
            pool_pids[m, : len(pids)] = pids
            pool_valid[m, : len(pids)] = True
        coords = self._point_coords[pool_pids]
        if obs_mem.ENABLED:
            obs_mem.scratch(
                "protocol_pools",
                "BatchPolystyrene.wave_pool",
                pool_pids.nbytes + pool_valid.nbytes + coords.nbytes,
            )
        pos = table.coords_rows()
        side_p = batch_split_mod.batch_split(
            self.space, self.config.split, coords, pool_valid, pos[rows_p], pos[rows_q]
        )

        # Fast path, whole wave at once: by construction q's guests
        # occupy the first ``nq`` pool slots and p's the rest, so (for
        # disjoint pools — a shared pid forces the slow path to resolve
        # ownership) the split leaves both guest dicts unchanged iff no
        # q slot maps to p and no p slot maps to q.
        nq = np.asarray(nq_list, dtype=np.int64)
        q_slot = np.arange(P, dtype=np.int64)[None, :] < nq[:, None]
        p_slot = pool_valid & ~q_slot
        moved = (side_p & q_slot) | (~side_p & p_slot)
        unchanged = np.asarray(disjoint, dtype=bool) & ~moved.any(axis=1)

        # Metering: every exchange pulls q's guests to p (one id unit
        # for the request); unchanged pairs push back only q's id
        # confirmations.
        pts = int(nq.sum())
        ids_units = M + int(nq[unchanged].sum()) + int(unchanged.sum())
        points = self._points
        for m in np.flatnonzero(~unchanged).tolist():
            sp, sq = states[m]
            pids = pool_lists[m]
            mask = side_p[m].tolist()
            old_q = sq.guests
            new_p = {}
            new_q = {}
            for k, pid in enumerate(pids):
                if mask[k]:
                    new_p[pid] = points[pid]
                else:
                    new_q[pid] = points[pid]
            new_to_q = sum(1 for pid in new_q if pid not in old_q)
            pts += new_to_q
            ids_units += (len(new_q) - new_to_q) + 1
            if new_p.keys() != sp.guests.keys():
                sp.guests = new_p
                self._changed.add(nids_p[m])
                self._push_dirty.add(nids_p[m])
            if new_q.keys() != old_q.keys():
                sq.guests = new_q
                self._changed.add(nids_q[m])
                self._push_dirty.add(nids_q[m])
        sim.meter.charge_points(self.name, pts, self.space.dim)
        sim.meter.charge_ids(self.name, ids_units)
        return M

    # -- step 1: projection --------------------------------------------------

    def _project(self, sim) -> None:
        if not self._changed:
            return
        network = sim.network
        table = network.table
        nodes = network.nodes
        by_count: Dict[int, List] = {}
        for nid in self._changed:
            if not network.is_alive(nid):
                continue
            node = nodes[nid]
            pids = list(node.poly.guests)
            if not pids:
                continue  # empty guest set keeps its position
            by_count.setdefault(len(pids), []).append((node.row, pids))
        self._changed.clear()
        for g, entries in by_count.items():
            rows = np.asarray([row for row, _ in entries], dtype=np.int64)
            pid_block = np.asarray([pids for _, pids in entries], dtype=np.int64)
            coords = self._point_coords[pid_block]  # (k, g, d)
            if self.config.projection == "centroid":
                new_pos = coords.mean(axis=1)
            elif g <= 2:
                # One point is its own medoid; of two, the first wins.
                new_pos = coords[:, 0, :]
            else:
                k = len(rows)
                d = coords.shape[2]
                origins = coords.reshape(k * g, d)
                blocks = np.broadcast_to(
                    coords[:, None, :, :], (k, g, g, d)
                ).reshape(k * g, g, d)
                pair_sq = self.space.rank_sq_rows(origins, blocks).reshape(k, g, g)
                cost = pair_sq.sum(axis=2)
                best = np.argmin(cost, axis=1)
                new_pos = coords[np.arange(k), best]
            for i, row in enumerate(rows):
                table.set_coord(int(row), tuple(float(c) for c in new_pos[i]))
