"""Vectorised SPLIT: re-partitioning every migration pool at once.

The event engine calls a scalar SPLIT function per exchange; here all
``M`` pools of a migration pass are padded into one ``(M, P)`` block
and each variant runs as a handful of array kernels:

* ``basic`` — each point to the strictly closer node position (ties to
  q), Algorithm 4;
* ``pd`` — partition along each pool's diameter (farthest pair; ties to
  the second endpoint), Algorithm 5's first heuristic;
* ``md`` — basic partition + displacement-minimising cluster-to-node
  assignment via cluster medoids;
* ``advanced`` — PD + MD, the paper's Algorithm 5.

Selection rules (strict comparisons, tie directions, first-wins argmin
for medoids, degenerate-pool fallbacks to ``basic``) mirror the scalar
implementations in :mod:`repro.core.split`, so a single pool splits the
same way either engine computes it; only the batching differs.
"""

from __future__ import annotations

import numpy as np

from ...errors import ConfigurationError
from ...obs import mem as _mem
from ...obs.metrics import timed
from ...spaces.base import Space

VARIANTS = ("basic", "pd", "md", "advanced")


def _pairwise_per_pool(space: Space, coords: np.ndarray) -> np.ndarray:
    """``(M, P, P)`` squared rank distances within each pool."""
    return space.rank_sq_pools(coords)


def _medoid_idx(pair_sq: np.ndarray, cluster: np.ndarray) -> np.ndarray:
    """First-wins medoid index per pool among ``cluster`` members: the
    member minimising the sum of squared distances to the cluster."""
    cost = (pair_sq * cluster[:, None, :]).sum(axis=2)
    cost = np.where(cluster, cost, np.inf)
    return np.argmin(cost, axis=1)


@timed("kernel.batch_split")
def batch_split(
    space: Space,
    variant: str,
    coords: np.ndarray,
    valid: np.ndarray,
    pos_p: np.ndarray,
    pos_q: np.ndarray,
) -> np.ndarray:
    """Side assignment for every pool: ``True`` sends the point to node
    p, ``False`` to node q (positions of invalid padding are arbitrary —
    mask with ``valid``)."""
    if variant not in VARIANTS:
        raise ConfigurationError(f"unknown split function {variant!r}")
    M, P, _ = coords.shape
    # One stacked rank call for both node positions: later migration
    # waves are small, so halving the kernel launches beats the copy.
    both = space.rank_sq_rows(
        np.concatenate([pos_p, pos_q]), np.concatenate([coords, coords])
    )
    dp = both[:M]
    dq = both[M:]
    basic = dp < dq  # ties go to q, as in Algorithm 4
    if variant == "basic" or P < 2:
        return basic
    counts = (valid).sum(axis=1)

    pair_sq = _pairwise_per_pool(space, coords)
    vpair = valid[:, :, None] & valid[:, None, :]
    if _mem.ENABLED:
        _mem.scratch(
            "kernel_pads", "batch_split.pair_sq", pair_sq.nbytes + vpair.nbytes
        )

    if variant in ("pd", "advanced"):
        # Diameter endpoints per pool (first-wins flat argmax, matching
        # the scalar row scan's strict-> update).
        masked = np.where(vpair, pair_sq, -1.0)
        flat_idx = np.argmax(masked.reshape(M, P * P), axis=1)
        i_star = flat_idx // P
        j_star = flat_idx % P
        rows = np.arange(M)
        du = pair_sq[rows, i_star]
        dv = pair_sq[rows, j_star]
        cluster_u = du < dv  # ties to the second endpoint
        n_u = (cluster_u & valid).sum(axis=1)
        degenerate = (counts < 2) | (n_u == 0) | (n_u == counts)
        if variant == "pd":
            side = cluster_u
        else:
            side = _md_assign(
                space, coords, valid, pair_sq, cluster_u, pos_p, pos_q
            )
        return np.where(degenerate[:, None], basic, side)

    # variant == "md": basic partition, displacement-minimising
    # assignment; one-sided pools keep the basic result.
    n_p = (basic & valid).sum(axis=1)
    one_sided = (n_p == 0) | (n_p == counts)
    side = _md_assign(space, coords, valid, pair_sq, basic, pos_p, pos_q)
    return np.where(one_sided[:, None], basic, side)


def _md_assign(
    space: Space,
    coords: np.ndarray,
    valid: np.ndarray,
    pair_sq: np.ndarray,
    cluster_a: np.ndarray,
    pos_p: np.ndarray,
    pos_q: np.ndarray,
) -> np.ndarray:
    """MD heuristic over every pool: hand cluster A to p and its
    complement to q, or the other way round, whichever moves the two
    nodes less (strict ``<`` keeps the A→p orientation)."""
    M = coords.shape[0]
    rows = np.arange(M)
    in_a = cluster_a & valid
    in_b = ~cluster_a & valid
    m_a = coords[rows, _medoid_idx(pair_sq, in_a)]
    m_b = coords[rows, _medoid_idx(pair_sq, in_b)]
    # All four displacement legs in one row-distance call (values are
    # elementwise identical to four separate calls).
    legs = space.distance_rows(
        np.concatenate([m_a, m_b, m_b, m_a]),
        np.concatenate([pos_p, pos_q, pos_p, pos_q]),
    )
    delta_ab = legs[:M] + legs[M : 2 * M]
    delta_ba = legs[2 * M : 3 * M] + legs[3 * M :]
    keep = delta_ab < delta_ba
    return np.where(keep[:, None], cluster_a, ~cluster_a)
