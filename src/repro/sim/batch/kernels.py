"""Grouped flat-array kernels shared by the batch gossip layers.

The batch engine computes every exchange of a round from the
round-start snapshot, then applies all merges at once.  A merge round
is naturally *ragged* — each receiver gets its old view entries plus
the entries of however many messages reached it — so the layers group
everything by receiver row and use the kernels here to deduplicate per
``(receiver, id)`` pair, rank within each receiver group, and truncate
each group to the view capacity.

Receiver rows and descriptor ids are dense small non-negative ints, so
grouping is *counting/radix bucketing*, not comparison sorting: NumPy's
``kind="stable"`` argsort lowers to an O(n) LSD radix pass for 16-bit
integers, and :func:`radix_argsort` cascades two such passes for wider
keys.  Dedup and ranking then run per bucket on short padded segments
(one small ``axis=1`` sort over ~hundreds of columns) instead of one
global composite-key sort over every entry of the round.  The fused
:func:`merge_rank_truncate` goes further for the topology merge: the
receivers' views are *already* padded ``(rows, cap)`` matrices, so the
whole dedup → distance → rank → truncate chain runs in padded form —
no flattening, no ``np.unique``, and (on exact-integer squared
distances, which every grid scenario produces) a single non-stable
integer ``argsort`` per merge.

Every public kernel dispatches through the selectable backend registry
(:mod:`repro.sim.batch.backend`): the reference NumPy implementations
below double as the ``numpy`` backend, and the optional ``numba``
backend substitutes compiled variants with byte-identical outputs.  The
``*_reference`` functions keep the original global-sort implementations
for the equivalence suites and the ``perf_smoke.py --kernel-gate``
micro-benchmark.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ...obs import mem as _mem
from ...obs.metrics import timed
from . import backend as _backend

#: Sort sentinel pushing invalid entries past every real key.
_SENTINEL = np.iinfo(np.int64).max

#: Above this ``rows * id_stride`` product the dense last-writer scatter
#: dedup (one int32 cell per possible ``(row, id)`` pair) would allocate
#: too much scratch; the padded per-row sort path takes over.
_DENSE_DEDUP_LIMIT = 1 << 23

#: Squared distances must stay below 2**51 for the integer rank path:
#: ``sqrt`` is injective on distinct exactly-representable integers up
#: to that bound, which is what makes ranking by the *squared* integer
#: key bit-identical to the reference ranking by float distance.
_MAX_EXACT_SQ = float(1 << 51)


def cumcount(sorted_keys: np.ndarray) -> np.ndarray:
    """Position of each element within its run of equal ``sorted_keys``
    (the input must already be group-sorted)."""
    n = len(sorted_keys)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    starts = np.ones(n, dtype=bool)
    starts[1:] = sorted_keys[1:] != sorted_keys[:-1]
    idx = np.arange(n, dtype=np.int64)
    start_idx = idx[starts]
    group = np.cumsum(starts) - 1
    return idx - start_idx[group]


def radix_argsort(a: np.ndarray) -> np.ndarray:
    """Stable ascending argsort for small non-negative integer keys.

    NumPy's ``kind="stable"`` is an O(n) LSD radix sort for 16-bit
    integers (and timsort for wider types), so keys below ``2**16`` sort
    in one counting pass and keys below ``2**32`` in two cascaded passes
    (low half, then high half) — several times faster than a comparison
    sort on the shuffled composite keys the merge kernels group by.
    """
    n = len(a)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    hi = int(a.max())
    if hi < (1 << 16):
        return np.argsort(a.astype(np.uint16), kind="stable")
    if hi < (1 << 32):
        order = np.argsort((a & 0xFFFF).astype(np.uint16), kind="stable")
        high = (a >> 16).astype(np.uint16)
        return order[np.argsort(high[order], kind="stable")]
    return np.argsort(a, kind="stable")


def group_pairs_order(recv: np.ndarray, ids: np.ndarray) -> np.ndarray:
    """Permutation sorting ``(recv, id)`` pairs lexicographically with
    ties in input order — two radix passes, no composite-key sort."""
    order = radix_argsort(ids)
    return order[radix_argsort(recv[order])]


@timed("kernel.pairs_member")
def pairs_member(
    q_rows: np.ndarray,
    q_ids: np.ndarray,
    s_rows: np.ndarray,
    s_ids: np.ndarray,
) -> np.ndarray:
    """Membership of query ``(row, id)`` pairs in a set of pairs.

    Encodes each pair as ``row * stride + id`` (both are small
    non-negative ints, so the composite stays well inside int64) and
    binary-searches the sorted set keys.
    """
    out = np.zeros(len(q_rows), dtype=bool)
    if len(s_rows) == 0 or len(q_rows) == 0:
        return out
    stride = int(max(q_ids.max(initial=0), s_ids.max(initial=0))) + 1
    s_keys = np.sort(s_rows.astype(np.int64) * stride + s_ids)
    q_keys = q_rows.astype(np.int64) * stride + q_ids
    pos = np.searchsorted(s_keys, q_keys)
    inside = pos < len(s_keys)
    out[inside] = s_keys[pos[inside]] == q_keys[inside]
    return out


# -- dedup_rank_truncate -------------------------------------------------


def _empty_rank_result(ages):
    empty = np.zeros(0, dtype=np.int64)
    return (empty, empty) if ages is None else (empty, empty, empty)


def dedup_rank_truncate_reference(
    recv: np.ndarray,
    ids: np.ndarray,
    dist_of,
    cap: int,
    ages: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, ...]:
    """The original global-sort implementation (composite-key stable
    argsort + lexsort), kept as the equivalence/benchmark reference."""
    if len(recv) == 0:
        return _empty_rank_result(ages)
    stride = int(ids.max(initial=0)) + 1
    key = recv.astype(np.int64) * stride + ids
    order = np.argsort(key, kind="stable")
    k_s = key[order]
    last = np.ones(len(order), dtype=bool)
    last[:-1] = k_s[1:] != k_s[:-1]
    kept = order[last]  # sorted by (recv, id)
    dist = dist_of(kept)
    # lexsort is stable: equal (recv, dist) pairs keep their (recv, id)
    # order, which *is* the id tie-break.
    order2 = np.lexsort((dist, recv[kept]))
    slot = cumcount(recv[kept][order2])
    fit = slot < cap
    sel = kept[order2][fit]
    slot = slot[fit]
    if ages is None:
        return sel, slot
    return sel, slot, ages[sel]


def dedup_rank_truncate_numpy(
    recv: np.ndarray,
    ids: np.ndarray,
    dist_of,
    cap: int,
    ages: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, ...]:
    """Bucketed implementation: radix-group by ``(recv, id)``, keep the
    last copy per pair, then rank each receiver bucket in a padded
    ``(buckets, max_bucket)`` matrix with one ``axis=1`` sort."""
    if len(recv) == 0:
        return _empty_rank_result(ages)
    order = group_pairs_order(recv, ids)
    r_s = recv[order]
    i_s = ids[order]
    last = np.ones(len(order), dtype=bool)
    last[:-1] = (r_s[1:] != r_s[:-1]) | (i_s[1:] != i_s[:-1])
    kept = order[last]  # sorted by (recv, id), freshest copy per pair
    dist = np.asarray(dist_of(kept), dtype=float)
    rrecv = recv[kept]

    # Bucket layout: rrecv is group-sorted, so runs are segments.
    starts = np.ones(len(kept), dtype=bool)
    starts[1:] = rrecv[1:] != rrecv[:-1]
    counts = np.diff(np.append(np.flatnonzero(starts), len(kept)))
    n_buckets = len(counts)
    width = int(counts.max())
    poscol = cumcount(rrecv)
    srow = np.repeat(np.arange(n_buckets, dtype=np.int64), counts)
    dist_pad = np.full((n_buckets, width), np.inf)
    dist_pad[srow, poscol] = dist
    idx_pad = np.zeros((n_buckets, width), dtype=np.int64)
    idx_pad[srow, poscol] = np.arange(len(kept), dtype=np.int64)
    if _mem.ENABLED:
        _mem.scratch(
            "kernel_pads",
            "dedup_rank_truncate.pad",
            dist_pad.nbytes + idx_pad.nbytes,
        )
    # Stable sort on the padded distances: equal distances keep their
    # column order, and columns are id-sorted — the id tie-break.
    order2 = np.argsort(dist_pad, axis=1, kind="stable")
    k = min(cap, width)
    top = order2[:, :k]
    fit = np.arange(k) < np.minimum(counts, cap)[:, None]
    sel = kept[np.take_along_axis(idx_pad, top, axis=1)[fit]]
    slot = np.broadcast_to(np.arange(k, dtype=np.int64), (n_buckets, k))[fit]
    if ages is None:
        return sel, slot
    return sel, slot, ages[sel]


@timed("kernel.dedup_rank_truncate")
def dedup_rank_truncate(
    recv: np.ndarray,
    ids: np.ndarray,
    dist_of,
    cap: int,
    ages: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, ...]:
    """Distance-ranked merge: dedup per ``(recv, id)`` keeping the
    *last* occurrence (callers append entries in increasing freshness
    order — existing view first, then messages in arrival order — so
    the last copy of a descriptor is the freshest), rank each receiver
    group by ``dist_of(kept_indices)`` with id tie-break, and keep the
    ``cap`` closest per receiver.

    ``dist_of`` is called once with the indices (into the flat input)
    that survive dedup and must return their rank distances — deferring
    the distance computation until after dedup keeps the kernel cheap.

    Returns ``(sel, slot)`` (+ ``ages[sel]`` when given): ``sel`` are
    flat input indices of the surviving entries and ``slot`` their
    rank position within their receiver's view.
    """
    return _backend.active_backend().dedup_rank_truncate(
        recv, ids, dist_of, cap, ages
    )


# -- dedup_priority_truncate ---------------------------------------------


def dedup_priority_truncate_reference(
    recv: np.ndarray,
    ids: np.ndarray,
    prio: np.ndarray,
    order_in: np.ndarray,
    ages: np.ndarray,
    cap: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The original three-stable-argsort implementation, kept as the
    equivalence/benchmark reference."""
    empty = np.zeros(0, dtype=np.int64)
    if len(recv) == 0:
        return empty, empty, empty
    n = len(recv)
    sel_key = prio.astype(np.int64) * n + order_in
    pre = np.argsort(sel_key, kind="stable")
    stride = int(ids.max(initial=0)) + 1
    pair_key = recv[pre].astype(np.int64) * stride + ids[pre]
    order = np.argsort(pair_key, kind="stable")
    k_s = pair_key[order]
    first = np.ones(n, dtype=bool)
    first[1:] = k_s[1:] != k_s[:-1]
    starts = np.flatnonzero(first)
    min_age = np.minimum.reduceat(ages[pre][order], starts)
    kept = pre[order[first]]
    final_key = recv[kept].astype(np.int64) * (3 * n) + sel_key[kept]
    order2 = np.argsort(final_key, kind="stable")
    slot = cumcount(recv[kept][order2])
    fit = slot < cap
    sel = kept[order2][fit]
    return sel, slot[fit], min_age[order2][fit]


def dedup_priority_truncate_numpy(
    recv: np.ndarray,
    ids: np.ndarray,
    prio: np.ndarray,
    order_in: np.ndarray,
    ages: np.ndarray,
    cap: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Bucketed implementation: one three-key radix grouping pass
    ``(recv, id, sel_key)`` replaces the pre-sort + composite pair
    sort; the final per-receiver ordering is two more radix passes on
    the (much smaller) survivor set."""
    empty = np.zeros(0, dtype=np.int64)
    if len(recv) == 0:
        return empty, empty, empty
    n = len(recv)
    sel_key = prio.astype(np.int64) * n + order_in
    # LSD radix cascade: least-significant key first.
    order = radix_argsort(sel_key)
    order = order[radix_argsort(ids[order])]
    order = order[radix_argsort(recv[order])]
    r_s = recv[order]
    i_s = ids[order]
    first = np.ones(n, dtype=bool)
    first[1:] = (r_s[1:] != r_s[:-1]) | (i_s[1:] != i_s[:-1])
    starts = np.flatnonzero(first)
    min_age = np.minimum.reduceat(ages[order], starts)
    kept = order[first]  # min (prio, order_in) per (recv, id)
    k_sel = sel_key[kept]
    k_recv = recv[kept]
    order2 = radix_argsort(k_sel)
    order2 = order2[radix_argsort(k_recv[order2])]
    slot = cumcount(k_recv[order2])
    fit = slot < cap
    sel = kept[order2][fit]
    return sel, slot[fit], min_age[order2][fit]


@timed("kernel.dedup_priority_truncate")
def dedup_priority_truncate(
    recv: np.ndarray,
    ids: np.ndarray,
    prio: np.ndarray,
    order_in: np.ndarray,
    ages: np.ndarray,
    cap: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Slot-priority merge (the batch Cyclon rule): dedup per
    ``(recv, id)`` keeping the *lowest* ``(prio, order_in)`` entry with
    the group-minimum age, then keep the first ``cap`` entries per
    receiver in ``(prio, order_in)`` order.

    Priority classes encode "existing non-sent entries keep their
    slots, incoming entries fill the rest, sent-out entries are
    replaced only when space runs out".

    Returns ``(sel, slot, age)``: flat input indices of the survivors,
    their slot within the receiver's view, and their merged age.
    """
    return _backend.active_backend().dedup_priority_truncate(
        recv, ids, prio, order_in, ages, cap
    )


# -- fused padded merge ---------------------------------------------------


def keep_last_per_row(ids_pad: np.ndarray, valid: np.ndarray) -> np.ndarray:
    """Keep-mask over a padded ``(rows, width)`` id matrix: for each
    duplicated id within a row, only the *last* (rightmost) valid copy
    survives.

    Small domains use a dense last-writer scatter — one int32 cell per
    possible ``(row, id)`` pair, written in column order so the final
    write per pair is the rightmost copy (NumPy fancy assignment stores
    the last value for repeated indices).  Large domains fall back to a
    per-row stable sort by id, where the last entry of each equal-id
    run is the rightmost copy.
    """
    n_rows, width = ids_pad.shape
    stride = int(ids_pad.max(initial=-1)) + 1
    if stride <= 0 or not valid.any():
        return np.zeros((n_rows, width), dtype=bool)
    cols = np.broadcast_to(np.arange(width, dtype=np.int32), (n_rows, width))
    if n_rows * stride <= _DENSE_DEDUP_LIMIT:
        # ``empty``, not ``full``: every cell read below was written by
        # the scatter (reads index ``lin_v`` only), so the O(rows*stride)
        # initialisation pass would be pure waste.
        lastcol = np.empty(n_rows * stride, dtype=np.int32)
        if _mem.ENABLED:
            _mem.scratch(
                "kernel_pads", "keep_last_per_row.dense", lastcol.nbytes
            )
        lin = np.arange(n_rows, dtype=np.int64)[:, None] * stride + ids_pad
        lin_v = lin[valid]
        col_v = cols[valid]
        lastcol[lin_v] = col_v
        keep = np.zeros((n_rows, width), dtype=bool)
        keep[valid] = lastcol[lin_v] == col_v
        return keep
    key = np.where(valid, ids_pad, _SENTINEL)
    order = np.argsort(key, axis=1, kind="stable")
    k_s = np.take_along_axis(key, order, axis=1)
    last = np.empty((n_rows, width), dtype=bool)
    last[:, -1] = True
    last[:, :-1] = k_s[:, :-1] != k_s[:, 1:]
    last &= k_s != _SENTINEL
    keep = np.zeros((n_rows, width), dtype=bool)
    np.put_along_axis(keep, order, last, axis=1)
    return keep


def merge_rank_truncate_numpy(
    space,
    pos: np.ndarray,
    ids_pad: np.ndarray,
    coords_pad: np.ndarray,
    valid: np.ndarray,
    cap: int,
    ages_pad: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, ...]:
    """Fused padded merge (see :func:`merge_rank_truncate`)."""
    n_rows, width = ids_pad.shape
    keep = keep_last_per_row(ids_pad, valid)
    dsq = space.rank_sq_rows(pos, coords_pad)
    cnt = keep.sum(axis=1)
    k = min(cap, width)
    stride = int(ids_pad.max(initial=-1)) + 1
    dmax = float(dsq.max(initial=0.0))
    int_ok = (
        stride > 0
        and dmax < _MAX_EXACT_SQ
        and dmax * stride + stride < float(1 << 62)
    )
    if int_ok:
        # Candidate integer squared distances: the truncating ``astype``
        # equals ``floor`` on this non-negative range, so comparing the
        # cast back against ``dsq`` doubles as the integrality test.
        dsq_i = dsq.astype(np.int64)
        int_ok = bool(np.all(dsq_i == dsq))
    if int_ok:
        # Exact-integer squared distances (every grid scenario): the
        # composite (dsq, id) int64 key is a total order, so one
        # *non-stable* sort suffices and ranking by dsq is bit-identical
        # to the reference ranking by sqrt(dsq) (sqrt is injective on
        # distinct integers below 2**51).  Invalid slots (id ``-1``)
        # are overwritten by the sentinel, so the raw ids can feed the
        # key directly.
        key = np.where(keep, dsq_i * stride + ids_pad, _SENTINEL)
        order = np.argsort(key, axis=1)
    else:
        # Float path: rank by sqrt like the reference, id tie-break via
        # a cascade of two stable sorts (by id, then by distance).
        idkey = np.where(keep, ids_pad, _SENTINEL)
        o1 = np.argsort(idkey, axis=1, kind="stable")
        d = np.sqrt(np.where(keep, dsq, np.inf))
        o2 = np.argsort(np.take_along_axis(d, o1, axis=1), axis=1, kind="stable")
        order = np.take_along_axis(o1, o2, axis=1)
    top = order[:, :k]
    fit = np.arange(k) < np.minimum(cnt, cap)[:, None]
    # Harvest with direct row-fancy indexing — ``take_along_axis``'s
    # python-level broadcasting checks dominate at these shapes.
    rix = np.arange(n_rows)[:, None]
    out_ids = np.full((n_rows, cap), -1, dtype=np.int64)
    out_ids[:, :k] = np.where(fit, ids_pad[rix, top], -1)
    out_coords = np.zeros((n_rows, cap, coords_pad.shape[2]), dtype=float)
    out_coords[:, :k] = np.where(fit[:, :, None], coords_pad[rix, top], 0.0)
    if _mem.ENABLED:
        out_bytes = out_ids.nbytes + out_coords.nbytes
        if ages_pad is not None:
            out_bytes += out_ids.nbytes  # out_ages mirrors out_ids
        _mem.scratch("kernel_pads", "merge_rank_truncate.out", out_bytes)
    if ages_pad is None:
        return out_ids, out_coords
    out_ages = np.zeros((n_rows, cap), dtype=np.int64)
    out_ages[:, :k] = np.where(fit, ages_pad[rix, top], 0)
    return out_ids, out_coords, out_ages


@timed("kernel.merge_rank_truncate")
def merge_rank_truncate(
    space,
    pos: np.ndarray,
    ids_pad: np.ndarray,
    coords_pad: np.ndarray,
    valid: np.ndarray,
    cap: int,
    ages_pad: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, ...]:
    """The topology merge in fused padded form — the bucketed successor
    of routing every merge through a flat :func:`dedup_rank_truncate`.

    ``ids_pad``/``coords_pad`` are ``(rows, width)`` padded blocks whose
    columns hold each receiver's existing view entries first and the
    incoming message entries after, in arrival order; ``valid`` masks
    real entries; ``pos`` is each receiver's own position.  Per row the
    kernel keeps the last (freshest) copy of every duplicated id, ranks
    the survivors by canonical-coordinate distance to ``pos`` with id
    tie-break, truncates to ``cap`` and returns ``(rows, cap)`` blocks
    padded with ``-1`` ids / zero coords (+ merged ages, incoming
    entries aging from 0, when ``ages_pad`` is given).

    Output contract: byte-identical to the reference flat pipeline
    (dedup keep-last, rank by ``space.distance_rows``, id tie-break,
    truncate) on canonical coordinates — property-tested per backend in
    ``tests/test_prop_kernels.py``.
    """
    return _backend.active_backend().merge_rank_truncate(
        space, pos, ids_pad, coords_pad, valid, cap, ages_pad
    )


# -- row-distance dispatch ------------------------------------------------


def row_rank_sq_numpy(space, origins: np.ndarray, blocks: np.ndarray) -> np.ndarray:
    return space.rank_sq_rows(origins, blocks)


def row_rank_sq(space, origins: np.ndarray, blocks: np.ndarray) -> np.ndarray:
    """Per-row-origin squared rank distances (``space.rank_sq_rows``)
    through the kernel backend, so compiled backends can substitute a
    fused row-distance kernel for the shipped spaces."""
    return _backend.active_backend().row_rank_sq(space, origins, blocks)


@timed("kernel.topk_smallest")
def topk_smallest(values: np.ndarray, k: int) -> np.ndarray:
    """Column indices of the ``k`` smallest finite values per row of a
    2-D array (unordered); rows pad with whatever argpartition leaves,
    so callers must re-check finiteness after the gather.  Already
    bucketed: ``argpartition`` is an O(width) per-row selection, not a
    sort."""
    m = values.shape[1]
    k = min(k, m)
    if k <= 0 or m == 0:
        return np.zeros((values.shape[0], 0), dtype=np.int64)
    if k >= m:
        return np.broadcast_to(np.arange(m), values.shape).copy()
    return np.argpartition(values, k - 1, axis=1)[:, :k]
