"""Grouped flat-array kernels shared by the batch gossip layers.

The batch engine computes every exchange of a round from the
round-start snapshot, then applies all merges at once.  A merge round
is naturally *ragged* — each receiver gets its old view entries plus
the entries of however many messages reached it — so the layers flatten
everything into parallel ``(receiver_row, id, ...)`` arrays and use the
helpers here to deduplicate per ``(receiver, id)`` pair, rank within
each receiver group, and truncate each group to the view capacity.  All
helpers are pure NumPy (``lexsort`` + run-length masks); nothing here
loops per node.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ...obs.metrics import timed


def cumcount(sorted_keys: np.ndarray) -> np.ndarray:
    """Position of each element within its run of equal ``sorted_keys``
    (the input must already be group-sorted)."""
    n = len(sorted_keys)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    starts = np.ones(n, dtype=bool)
    starts[1:] = sorted_keys[1:] != sorted_keys[:-1]
    idx = np.arange(n, dtype=np.int64)
    start_idx = idx[starts]
    group = np.cumsum(starts) - 1
    return idx - start_idx[group]


@timed("kernel.pairs_member")
def pairs_member(
    q_rows: np.ndarray,
    q_ids: np.ndarray,
    s_rows: np.ndarray,
    s_ids: np.ndarray,
) -> np.ndarray:
    """Membership of query ``(row, id)`` pairs in a set of pairs.

    Encodes each pair as ``row * stride + id`` (both are small
    non-negative ints, so the composite stays well inside int64) and
    binary-searches the sorted set keys.
    """
    out = np.zeros(len(q_rows), dtype=bool)
    if len(s_rows) == 0 or len(q_rows) == 0:
        return out
    stride = int(max(q_ids.max(initial=0), s_ids.max(initial=0))) + 1
    s_keys = np.sort(s_rows.astype(np.int64) * stride + s_ids)
    q_keys = q_rows.astype(np.int64) * stride + q_ids
    pos = np.searchsorted(s_keys, q_keys)
    inside = pos < len(s_keys)
    out[inside] = s_keys[pos[inside]] == q_keys[inside]
    return out


@timed("kernel.dedup_rank_truncate")
def dedup_rank_truncate(
    recv: np.ndarray,
    ids: np.ndarray,
    dist_of,
    cap: int,
    ages: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, ...]:
    """Distance-ranked merge: dedup per ``(recv, id)`` keeping the
    *last* occurrence (callers append entries in increasing freshness
    order — existing view first, then messages in arrival order — so
    the last copy of a descriptor is the freshest), rank each receiver
    group by ``dist_of(kept_indices)`` with id tie-break, and keep the
    ``cap`` closest per receiver.

    ``dist_of`` is called once with the indices (into the flat input)
    that survive dedup and must return their rank distances — deferring
    the distance computation until after dedup keeps the kernel cheap.

    Returns ``(sel, slot)`` (+ ``ages[sel]`` when given): ``sel`` are
    flat input indices of the surviving entries and ``slot`` their
    rank position within their receiver's view.
    """
    if len(recv) == 0:
        empty = np.zeros(0, dtype=np.int64)
        return (empty, empty) if ages is None else (empty, empty, empty)
    # One composite int64 key (recv, id) + one stable sort beats a
    # three-key lexsort on the merge hot path.
    stride = int(ids.max(initial=0)) + 1
    key = recv.astype(np.int64) * stride + ids
    order = np.argsort(key, kind="stable")
    k_s = key[order]
    last = np.ones(len(order), dtype=bool)
    last[:-1] = k_s[1:] != k_s[:-1]
    kept = order[last]  # sorted by (recv, id)
    dist = dist_of(kept)
    # lexsort is stable: equal (recv, dist) pairs keep their (recv, id)
    # order, which *is* the id tie-break.
    order2 = np.lexsort((dist, recv[kept]))
    slot = cumcount(recv[kept][order2])
    fit = slot < cap
    sel = kept[order2][fit]
    slot = slot[fit]
    if ages is None:
        return sel, slot
    return sel, slot, ages[sel]


@timed("kernel.dedup_priority_truncate")
def dedup_priority_truncate(
    recv: np.ndarray,
    ids: np.ndarray,
    prio: np.ndarray,
    order_in: np.ndarray,
    ages: np.ndarray,
    cap: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Slot-priority merge (the batch Cyclon rule): dedup per
    ``(recv, id)`` keeping the *lowest* ``(prio, order_in)`` entry with
    the group-minimum age, then keep the first ``cap`` entries per
    receiver in ``(prio, order_in)`` order.

    Priority classes encode "existing non-sent entries keep their
    slots, incoming entries fill the rest, sent-out entries are
    replaced only when space runs out".

    Returns ``(sel, slot, age)``: flat input indices of the survivors,
    their slot within the receiver's view, and their merged age.
    """
    empty = np.zeros(0, dtype=np.int64)
    if len(recv) == 0:
        return empty, empty, empty
    n = len(recv)
    # Composite int64 keys instead of 4-key lexsorts.
    sel_key = prio.astype(np.int64) * n + order_in
    pre = np.argsort(sel_key, kind="stable")
    stride = int(ids.max(initial=0)) + 1
    pair_key = recv[pre].astype(np.int64) * stride + ids[pre]
    order = np.argsort(pair_key, kind="stable")
    k_s = pair_key[order]
    first = np.ones(n, dtype=bool)
    first[1:] = k_s[1:] != k_s[:-1]
    starts = np.flatnonzero(first)
    min_age = np.minimum.reduceat(ages[pre][order], starts)
    kept = pre[order[first]]
    final_key = recv[kept].astype(np.int64) * (3 * n) + sel_key[kept]
    order2 = np.argsort(final_key, kind="stable")
    slot = cumcount(recv[kept][order2])
    fit = slot < cap
    sel = kept[order2][fit]
    return sel, slot[fit], min_age[order2][fit]


@timed("kernel.topk_smallest")
def topk_smallest(values: np.ndarray, k: int) -> np.ndarray:
    """Column indices of the ``k`` smallest finite values per row of a
    2-D array (unordered); rows pad with whatever argpartition leaves,
    so callers must re-check finiteness after the gather."""
    m = values.shape[1]
    k = min(k, m)
    if k <= 0 or m == 0:
        return np.zeros((values.shape[0], 0), dtype=np.int64)
    if k >= m:
        return np.broadcast_to(np.arange(m), values.shape).copy()
    return np.argpartition(values, k - 1, axis=1)[:, :k]
