"""Optional numba-compiled variants of the bucketed batch kernels.

This module must import cleanly without numba installed: ``HAVE_NUMBA``
is the only symbol the backend registry inspects before deciding whether
a ``numba`` backend exists, and every kernel body below is plain Python
(``_jit`` degrades to the identity decorator) so the implementations
stay testable — and byte-identical — even where compilation is
unavailable.

The compiled kernels cover the hot trio from the profile: the fused
padded topology merge, the flat slot-priority merge, and the
torus-fold row-distance kernel.  Each wrapper validates its fast-path
preconditions in Python and falls back to the reference NumPy
implementation when they do not hold (non-integer distances, exotic
spaces), so the backend never weakens the bit-identical contract.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    HAVE_NUMBA = True
except Exception:  # pragma: no cover - the container default
    numba = None
    HAVE_NUMBA = False


def _jit(fn):
    """``numba.njit`` when available, identity otherwise.

    ``fastmath`` stays off: the bit-identical digest contract forbids
    reassociating float arithmetic.  ``cache=True`` persists the
    compilation across processes (sweeps spawn many workers).
    """
    if not HAVE_NUMBA:
        return fn
    return numba.njit(cache=True, fastmath=False)(fn)


@_jit
def _torus_rank_sq_rows(origins, blocks, periods):
    n_rows, width, dim = blocks.shape
    out = np.empty((n_rows, width))
    for r in range(n_rows):
        for c in range(width):
            acc = 0.0
            for d in range(dim):
                diff = blocks[r, c, d] - origins[r, d]
                if diff < 0.0:
                    diff = -diff
                alt = periods[d] - diff
                if alt < diff:
                    diff = alt
                acc += diff * diff
            out[r, c] = acc
    return out


@_jit
def _merge_core(ids_pad, dsq, valid, stride, cap, coords_pad, ages_pad, has_ages):
    """Per-row dedup (last copy wins) + integer-key rank + truncate.

    Preconditions checked by the caller: ``dsq`` holds exact integers
    and ``dsq.max() * stride + stride`` fits int64 — the same guards as
    the NumPy integer fast path, so the composite ``dsq * stride + id``
    key is a total order and one non-stable sort per row suffices.
    """
    n_rows, width = ids_pad.shape
    dim = coords_pad.shape[2]
    out_ids = np.full((n_rows, cap), -1, np.int64)
    out_coords = np.zeros((n_rows, cap, dim))
    out_ages = np.zeros((n_rows, cap), np.int64)
    lastcol = np.full(stride, -1, np.int32)
    keys = np.empty(width, np.int64)
    cols = np.empty(width, np.int64)
    for r in range(n_rows):
        # Dedup: last valid column per id wins (freshest copy).
        for c in range(width):
            if valid[r, c]:
                lastcol[ids_pad[r, c]] = c
        cnt = 0
        for c in range(width):
            if valid[r, c] and lastcol[ids_pad[r, c]] == c:
                keys[cnt] = np.int64(dsq[r, c]) * stride + ids_pad[r, c]
                cols[cnt] = c
                cnt += 1
        order = np.argsort(keys[:cnt])
        k = min(cnt, cap)
        for j in range(k):
            c = cols[order[j]]
            out_ids[r, j] = ids_pad[r, c]
            for d in range(dim):
                out_coords[r, j, d] = coords_pad[r, c, d]
            if has_ages:
                out_ages[r, j] = ages_pad[r, c]
        # Reset only the touched cells; stride can be large.
        for c in range(width):
            if valid[r, c]:
                lastcol[ids_pad[r, c]] = -1
    return out_ids, out_coords, out_ages


@_jit
def _priority_core(recv, ids, prio, order_in, ages, stride, cap):
    """Flat slot-priority merge: min ``(prio, order_in)`` per
    ``(recv, id)`` with group-minimum age, first ``cap`` survivors per
    receiver in ``(prio, order_in)`` order — identical selection and
    ordering to the reference cascade of stable sorts."""
    n = len(recv)
    sel_key = prio.astype(np.int64) * n + order_in
    pair_key = recv.astype(np.int64) * stride + ids
    order = np.argsort(pair_key, kind="mergesort")
    # Within each (recv, id) run find the min sel_key entry + min age.
    keep = np.zeros(n, np.bool_)
    min_age = np.empty(n, np.int64)
    n_kept = 0
    i = 0
    while i < n:
        j = i
        best = order[i]
        age = ages[order[i]]
        while j + 1 < n and pair_key[order[j + 1]] == pair_key[order[i]]:
            j += 1
            if sel_key[order[j]] < sel_key[best]:
                best = order[j]
            if ages[order[j]] < age:
                age = ages[order[j]]
        keep[best] = True
        min_age[best] = age
        n_kept += 1
        i = j + 1
    kept = np.empty(n_kept, np.int64)
    p = 0
    for t in range(n):
        if keep[t]:
            kept[p] = t
            p += 1
    final_key = recv[kept].astype(np.int64) * (3 * np.int64(n)) + sel_key[kept]
    order2 = np.argsort(final_key, kind="mergesort")
    sel = np.empty(n_kept, np.int64)
    slot = np.empty(n_kept, np.int64)
    age_out = np.empty(n_kept, np.int64)
    m = 0
    run = 0
    prev = np.int64(-1)
    for t in range(n_kept):
        src = kept[order2[t]]
        if recv[src] != prev:
            run = 0
            prev = recv[src]
        if run < cap:
            sel[m] = src
            slot[m] = run
            age_out[m] = min_age[src]
            m += 1
        run += 1
    return sel[:m], slot[:m], age_out[:m]


def merge_rank_truncate_numba(
    space,
    pos: np.ndarray,
    ids_pad: np.ndarray,
    coords_pad: np.ndarray,
    valid: np.ndarray,
    cap: int,
    ages_pad: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, ...]:
    from . import kernels

    dsq = row_rank_sq_numba(space, pos, coords_pad)
    stride = int(ids_pad.max(initial=-1)) + 1
    dmax = float(dsq.max(initial=0.0))
    int_ok = (
        stride > 0
        and dmax < kernels._MAX_EXACT_SQ
        and dmax * stride + stride < float(1 << 62)
        and bool(np.all(dsq == np.floor(dsq)))
    )
    if not int_ok:
        return kernels.merge_rank_truncate_numpy(
            space, pos, ids_pad, coords_pad, valid, cap, ages_pad
        )
    has_ages = ages_pad is not None
    if not has_ages:
        ages_pad = np.zeros((1, 1), dtype=np.int64)
    out_ids, out_coords, out_ages = _merge_core(
        np.ascontiguousarray(ids_pad),
        dsq,
        np.ascontiguousarray(valid),
        stride,
        cap,
        np.ascontiguousarray(coords_pad),
        np.ascontiguousarray(ages_pad),
        has_ages,
    )
    if has_ages:
        return out_ids, out_coords, out_ages
    return out_ids, out_coords


def dedup_priority_truncate_numba(
    recv: np.ndarray,
    ids: np.ndarray,
    prio: np.ndarray,
    order_in: np.ndarray,
    ages: np.ndarray,
    cap: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    if len(recv) == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty, empty
    stride = int(ids.max(initial=0)) + 1
    return _priority_core(
        np.ascontiguousarray(recv, dtype=np.int64),
        np.ascontiguousarray(ids, dtype=np.int64),
        np.ascontiguousarray(prio, dtype=np.int64),
        np.ascontiguousarray(order_in, dtype=np.int64),
        np.ascontiguousarray(ages, dtype=np.int64),
        stride,
        cap,
    )


def row_rank_sq_numba(space, origins: np.ndarray, blocks: np.ndarray) -> np.ndarray:
    periods = getattr(space, "_periods_arr", None)
    if periods is None:
        return space.rank_sq_rows(origins, blocks)
    out = _torus_rank_sq_rows(
        np.ascontiguousarray(origins, dtype=float),
        np.ascontiguousarray(blocks, dtype=float),
        np.ascontiguousarray(periods, dtype=float),
    )
    # The scalar fold cannot reproduce ``_row_dot``'s summation (NumPy's
    # vecdot may fuse multiply-adds, shifting the last ulp).  On exact
    # integer squared distances — every grid scenario — both are exact
    # and identical; anything else re-runs the reference kernel so the
    # backend stays bit-identical.
    if np.all(out == np.floor(out)):
        return out
    return space.rank_sq_rows(origins, blocks)


def build_backend():
    from .backend import KernelBackend

    return KernelBackend(
        "numba",
        merge_rank_truncate=merge_rank_truncate_numba,
        dedup_priority_truncate=dedup_priority_truncate_numba,
        row_rank_sq=row_rank_sq_numba,
    )
