"""``repro.sim.batch`` — the batch-synchronous vectorised engine.

A selectable execution backend (``ScenarioConfig.engine = "batch"``)
that advances the whole network one round at a time with array kernels
instead of per-node Python control flow.  Ships as simulation-semantics
version 2: trajectories are *statistically* equivalent to the event
engine (version 1), not bit-identical — see the engine module docstring
for the exact semantic contract and ``tests/test_engine_equivalence``
for the enforced equivalence bands.
"""

from .engine import SEMANTICS_VERSION, BatchSimulation, generator_for
from .protocol import BatchPolystyrene
from .rps import BatchPeerSampling
from .topology import BatchTMan, BatchVicinity

__all__ = [
    "SEMANTICS_VERSION",
    "BatchSimulation",
    "BatchPeerSampling",
    "BatchPolystyrene",
    "BatchTMan",
    "BatchVicinity",
    "generator_for",
]
