"""Batch random peer sampling — the whole-network Cyclon shuffle.

State is two padded arrays indexed by node-table row: ``ids`` ``(R, V)``
(``-1`` marks an empty slot) and ``ages`` ``(R, V)``.  One
:meth:`BatchPeerSampling.step` call runs the round for every alive node:

1. groom every view (evict detected peers, age the rest, re-seed empty
   views from the bootstrap oracle — the counted fallback);
2. pick every node's partner (its oldest entry) and drop that entry;
3. build all shuffle payloads and replies from the groomed round-start
   snapshot (random subsets plus a fresh self-descriptor);
4. apply every merge at once with the batch Cyclon rule
   (:func:`~repro.sim.batch.kernels.dedup_priority_truncate`): existing
   non-sent entries keep their slots, incoming entries fill empty slots
   first and replace sent-out entries only when space runs out,
   duplicate descriptors keep the minimum age.

The semantic deltas against the event engine's sequential Cyclon are
the batch-synchronous snapshot (a reply is computed from the partner's
round-start view, not its mid-round state) and message ordering (a node
partnered by several initiators merges their payloads in initiator
order).  Statistically the shuffle is the same service: every node
keeps a uniformly-refreshed random sample of the alive network.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ...types import NodeId
from . import kernels

#: Cap on the scratch matrix of the vectorised bootstrap sampler
#: (rows x alive floats); bigger populations are processed in row chunks.
_BOOTSTRAP_CHUNK = 1 << 22


class BatchPeerSampling:
    """Array-backed Cyclon peer sampling for :class:`BatchSimulation`."""

    name = "rps"

    def __init__(self, view_size: int = 20, shuffle_length: int = 10) -> None:
        if view_size < 1:
            raise ValueError("view_size must be >= 1")
        if not 1 <= shuffle_length <= view_size:
            raise ValueError("need 1 <= shuffle_length <= view_size")
        self.view_size = view_size
        self.shuffle_length = shuffle_length
        #: How many times a node had to fall back to the bootstrap
        #: oracle because its view contained no alive peer.
        self.bootstrap_fallbacks = 0
        self._ids = np.full((0, view_size), -1, dtype=np.int64)
        self._ages = np.zeros((0, view_size), dtype=np.int64)

    # -- storage -----------------------------------------------------------

    def _ensure_rows(self, n: int) -> None:
        have = len(self._ids)
        if n <= have:
            return
        grow = max(n, have * 2, 8) - have
        self._ids = np.concatenate(
            [self._ids, np.full((grow, self.view_size), -1, dtype=np.int64)]
        )
        self._ages = np.concatenate(
            [self._ages, np.zeros((grow, self.view_size), dtype=np.int64)]
        )

    def view_arrays(self):
        """The raw ``(ids, ages)`` state (rows indexed by table row)."""
        return self._ids, self._ages

    # -- bootstrap oracle --------------------------------------------------

    def _bootstrap_rows(
        self, sim, rows: np.ndarray, k: Optional[int] = None
    ) -> np.ndarray:
        """``(len(rows), k)`` uniform alive peers per row, self excluded,
        distinct within each row; short rows pad with ``-1``."""
        k = self.view_size if k is None else k
        table = sim.network.table
        alive_ids = np.asarray(sim.network.alive_ids(), dtype=np.int64)
        n = len(alive_ids)
        out = np.full((len(rows), k), -1, dtype=np.int64)
        if n == 0 or len(rows) == 0:
            return out
        gen = sim.rng_for(self.name)
        own = table._nid_of[rows]
        chunk = max(1, _BOOTSTRAP_CHUNK // max(1, n))
        for lo in range(0, len(rows), chunk):
            hi = min(lo + chunk, len(rows))
            keys = gen.random((hi - lo, n))
            keys[alive_ids[None, :] == own[lo:hi, None]] = np.inf
            pick = kernels.topk_smallest(keys, k)
            got = alive_ids[pick]
            finite = np.isfinite(np.take_along_axis(keys, pick, axis=1))
            out[lo:hi, : pick.shape[1]] = np.where(finite, got, -1)
        return out

    # -- per-node state ----------------------------------------------------

    def init_network(self, sim) -> None:
        table = sim.network.table
        self._ensure_rows(table.n_rows)
        rows = np.flatnonzero(table.alive_rows())
        self._ids[rows] = self._bootstrap_rows(sim, rows)
        self._ages[rows] = 0

    def init_node(self, sim, node) -> None:
        self._ensure_rows(node.row + 1)
        self._ids[node.row] = self._bootstrap_rows(
            sim, np.asarray([node.row], dtype=np.int64)
        )[0]
        self._ages[node.row] = 0

    def view_of(self, node) -> Dict[NodeId, int]:
        ids = self._ids[node.row]
        ages = self._ages[node.row]
        return {int(i): int(a) for i, a in zip(ids, ages) if i >= 0}

    # -- sampling API used by upper layers ----------------------------------

    def sample_rows(
        self,
        sim,
        rows: np.ndarray,
        k: int,
        exclude: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Up to ``k`` random alive peers per row from each row's view,
        ``(len(rows), k)`` with ``-1`` padding; rows whose view offers no
        alive candidate fall back to the bootstrap oracle (counted)."""
        self._ensure_rows(int(rows.max(initial=-1)) + 1)
        table = sim.network.table
        ids = self._ids[rows]
        cand = sim.alive_entry_mask(ids)
        own = table._nid_of[rows]
        cand &= ids != own[:, None]
        if exclude is not None and exclude.shape[1]:
            cand &= ~(ids[:, :, None] == exclude[:, None, :]).any(axis=2)
        gen = sim.rng_for(self.name)
        keys = gen.random(ids.shape)
        keys[~cand] = np.inf
        pick = kernels.topk_smallest(keys, k)
        got = np.take_along_axis(ids, pick, axis=1)
        finite = np.isfinite(np.take_along_axis(keys, pick, axis=1))
        out = np.full((len(rows), k), -1, dtype=np.int64)
        out[:, : pick.shape[1]] = np.where(finite, got, -1)
        starved = ~finite.any(axis=1) if pick.shape[1] else np.ones(len(rows), bool)
        if k > 0 and starved.any():
            self.bootstrap_fallbacks += int(starved.sum())
            fallback = self._bootstrap_rows(sim, rows[starved], k)
            if exclude is not None and exclude.shape[1]:
                bad = (
                    fallback[:, :, None] == exclude[starved][:, None, :]
                ).any(axis=2)
                fallback[bad] = -1
            out[starved] = fallback
        return out

    def sample(self, sim, node, k: int = 1, exclude: tuple = ()) -> list:
        """Scalar convenience mirroring the event layer's ``sample``."""
        rows = np.asarray([node.row], dtype=np.int64)
        excl = (
            np.asarray([list(exclude)], dtype=np.int64)
            if exclude
            else None
        )
        got = self.sample_rows(sim, rows, k, exclude=excl)[0]
        return [int(nid) for nid in got if nid >= 0]

    # -- one whole-network shuffle round -------------------------------------

    def step(self, sim) -> None:
        network = sim.network
        table = network.table
        self._ensure_rows(table.n_rows)
        R = table.n_rows
        ids = self._ids
        ages = self._ages
        act = sim.alive_act_rows()
        if len(act) == 0:
            return
        gen = sim.rng_for(self.name)
        V = self.view_size

        # 1. groom: evict detected, age the rest, re-seed empty views.
        A_ids = ids[act]
        A_ages = ages[act]
        valid = A_ids >= 0
        evict = valid & sim.detected_entry_mask(A_ids)
        A_ids[evict] = -1
        valid &= ~evict
        A_ages[valid] += 1
        empty = ~valid.any(axis=1)
        if empty.any():
            seeded = self._bootstrap_rows(sim, act[empty])
            self.bootstrap_fallbacks += int(empty.sum())
            A_ids[empty] = seeded
            A_ages[empty] = 0
            valid = A_ids >= 0

        # 2. partner: the oldest entry (max age, ties to the max id).
        agekey = np.where(valid, A_ages, -1)
        oldest = agekey.max(axis=1)
        oldmask = valid & (agekey == oldest[:, None])
        partner = np.max(np.where(oldmask, A_ids, -1), axis=1)
        has_partner = partner >= 0
        pcol = np.argmax(
            oldmask & (A_ids == partner[:, None]), axis=1
        )
        A_ids[has_partner, pcol[has_partner]] = -1
        valid = A_ids >= 0
        ids[act] = A_ids
        ages[act] = A_ages

        # Exchanges only proceed with alive partners (a dead undetected
        # partner costs the initiator its entry, as in the event engine).
        prow = np.full(len(act), -1, dtype=np.int64)
        known = has_partner.copy()
        prow[known] = table.rows_of(partner[known])
        palive = np.zeros(len(act), dtype=bool)
        ok = prow >= 0
        palive[ok] = table.alive_rows()[prow[ok]] if R else False
        ex = np.flatnonzero(has_partner & palive)
        if len(ex) == 0:
            return
        n_ex = len(ex)
        irow = act[ex]
        qrow = prow[ex]
        own_ex = table._nid_of[irow]

        # 3. buffers from the groomed snapshot.  No array-wide state
        # copy: nothing below mutates the views until the final
        # scatter-back, so fancy-indexed gathers *are* the snapshot.
        l = self.shuffle_length
        take = min(l - 1, V)
        ikeys = gen.random((n_ex, V))
        ikeys[~valid[ex]] = np.inf
        pay_ids = np.full((n_ex, take + 1), -1, dtype=np.int64)
        pay_ages = np.zeros((n_ex, take + 1), dtype=np.int64)
        ipick = ifinite = None
        if take > 0:
            ipick = kernels.topk_smallest(ikeys, take)
            got = np.take_along_axis(A_ids[ex], ipick, axis=1)
            ifinite = np.isfinite(np.take_along_axis(ikeys, ipick, axis=1))
            pay_ids[:, :take] = np.where(ifinite, got, -1)
            pay_ages[:, :take] = np.where(
                ifinite, np.take_along_axis(A_ages[ex], ipick, axis=1), 0
            )
        pay_ids[:, take] = own_ex  # fresh self-descriptor, age 0

        P_ids = ids[qrow]
        P_ages = ages[qrow]
        pvalid = (P_ids >= 0) & (P_ids != own_ex[:, None])
        rkeys = gen.random((n_ex, V))
        rkeys[~pvalid] = np.inf
        rtake = min(l, V)
        qpick = kernels.topk_smallest(rkeys, rtake)
        got = np.take_along_axis(P_ids, qpick, axis=1)
        qfinite = np.isfinite(np.take_along_axis(rkeys, qpick, axis=1))
        rep_ids = np.where(qfinite, got, -1)
        rep_ages = np.where(
            qfinite, np.take_along_axis(P_ages, qpick, axis=1), 0
        )

        dim = sim.space.dim or 1
        n_desc = int((pay_ids >= 0).sum() + (rep_ids >= 0).sum())
        sim.meter.charge_descriptors(self.name, n_desc, dim)

        # 4. merges.  Sent-out entries: initiators sent their payload
        # subset (not the self-descriptor), partners sent their reply.
        # Both subsets were picked as view *columns*, and ids are unique
        # within a view row, so a (row, slot) scatter marks exactly the
        # (row, id) pairs the former sorted-key membership test did.
        # Writes are True-only: a row partnered by several initiators
        # accumulates all its reply picks.
        sent_mask = np.zeros((len(ids), V), dtype=bool)
        flat_sent = sent_mask.ravel()
        if ipick is not None:
            lin = irow[:, None] * V + ipick
            flat_sent[lin[ifinite]] = True
        lin = qrow[:, None] * V + qpick
        flat_sent[lin[qfinite]] = True

        # Incoming flat entries: replies to initiators first, then
        # payloads to partners (initiator order).
        inc_recv = np.concatenate(
            [np.repeat(irow, rtake), np.repeat(qrow, take + 1)]
        )
        inc_ids = np.concatenate([rep_ids.ravel(), pay_ids.ravel()])
        inc_ages = np.concatenate([rep_ages.ravel(), pay_ages.ravel()])
        inc_keep = inc_ids >= 0
        inc_keep &= inc_ids != table._nid_of[inc_recv]
        inc_keep[inc_keep] &= ~sim.detected_entry_mask(inc_ids[inc_keep])
        inc_recv = inc_recv[inc_keep]
        inc_ids = inc_ids[inc_keep]
        inc_ages = inc_ages[inc_keep]

        touched = np.zeros(len(ids), dtype=bool)
        touched[irow] = True
        touched[qrow] = True
        recv_rows = np.flatnonzero(touched)
        E_ids = ids[recv_rows]
        E_ages = ages[recv_rows]
        ex_recv = np.repeat(recv_rows, V)
        ex_ids = E_ids.ravel()
        ex_ages = E_ages.ravel()
        ex_slot = np.tile(np.arange(V, dtype=np.int64), len(recv_rows))
        ex_keep = ex_ids >= 0
        ex_recv = ex_recv[ex_keep]
        ex_ids = ex_ids[ex_keep]
        ex_ages = ex_ages[ex_keep]
        ex_slot = ex_slot[ex_keep]
        was_sent = sent_mask[recv_rows].ravel()[ex_keep]

        f_recv = np.concatenate([ex_recv, inc_recv])
        f_ids = np.concatenate([ex_ids, inc_ids])
        f_ages = np.concatenate([ex_ages, inc_ages])
        f_prio = np.concatenate(
            [np.where(was_sent, 2, 0), np.ones(len(inc_recv), dtype=np.int64)]
        )
        f_order = np.concatenate(
            [ex_slot, np.arange(len(inc_recv), dtype=np.int64)]
        )
        sel, slot, age = kernels.dedup_priority_truncate(
            f_recv, f_ids, f_prio, f_order, f_ages, V
        )
        ids[recv_rows] = -1
        ages[recv_rows] = 0
        ids[f_recv[sel], slot] = f_ids[sel]
        ages[f_recv[sel], slot] = age

    # -- canonical-state bridge ---------------------------------------------

    def materialize(self, sim) -> None:
        """Write ``node.rps_view`` dicts from the arrays (all known
        nodes; dead nodes keep their last groomed view, as in the event
        engine)."""
        self._ensure_rows(sim.network.table.n_rows)
        for node in sim.network.nodes.values():
            node.rps_view = self.view_of(node)

    def adopt(self, sim) -> None:
        """Read per-node ``rps_view`` dicts into the arrays (engine
        conversion), then drop the per-node attribute so stale reads
        fail loudly instead of silently diverging."""
        self._ensure_rows(sim.network.table.n_rows)
        self._ids[:] = -1
        self._ages[:] = 0
        for node in sim.network.nodes.values():
            view = getattr(node, "rps_view", None)
            if view is None:
                continue
            entries = list(view.items())[: self.view_size]
            for j, (nid, age) in enumerate(entries):
                self._ids[node.row, j] = nid
                self._ages[node.row, j] = age
            if hasattr(node, "rps_view"):
                del node.rps_view
