"""Batch-synchronous simulation engine (``SEMANTICS_VERSION = 2``).

:class:`BatchSimulation` drives the same network, event schedule,
message meter and observers as the event engine, but each layer
advances the *whole network* one round at a time with array kernels:
every exchange of a round is computed from the round-start snapshot of
the :class:`~repro.sim.arrays.NodeTable` and the layer's padded view
arrays, then all merges are applied at once.

Where the two engines differ (the documented batch semantics):

* **RNG** — one ``numpy.random.Generator`` substream per layer, keyed
  exactly like :func:`repro.sim.rng.spawn` keys the event engine's
  ``random.Random`` streams (``derive_seed(seed, "layer", name)``), but
  drawing vectorised batches.  Draw sequences therefore differ from the
  event engine — trajectories are *statistically*, not bit-for-bit,
  equivalent (enforced by ``tests/test_engine_equivalence``).
* **Exchange timing** — all partner selections and message buffers of a
  round are computed from the groomed round-start state; merges land
  afterwards.  In the event engine exchanges are sequential within a
  round.
* **Migration** — every alive node still initiates one exchange per
  configured ``migrations_per_round`` (the event engine's rate), but
  the proposals execute in dependency *waves*: each wave is a
  conflict-free matching of the pending proposals (drained until none
  remain), so simultaneous snapshot-based re-partitions can never lose
  or duplicate points while chained intra-round point transport is
  preserved.

Everything *around* the round loop is shared with the event engine:
scheduled events (failures, reinjection, probes), the failure-detector
model, checkpoint deep-copy/restore, and the scenario runner seams.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ...errors import ConfigurationError
from ...spaces.base import Space
from ..engine import Layer, Observer, Simulation
from ..network import Network
from ..rng import derive_seed

#: Version of the *batch* simulation semantics (the event engine is
#: version 1 — :data:`repro.sim.engine.SEMANTICS_VERSION`).  Bump in the
#: same change that alters any batch-mode trajectory; it keys the
#: phase-fork checkpoint cache for ``engine="batch"`` configurations and
#: the batch golden digests.
SEMANTICS_VERSION = 2


def generator_for(seed: int, *keys) -> np.random.Generator:
    """A deterministic ``numpy.random.Generator`` substream, keyed the
    same way :func:`repro.sim.rng.spawn` keys the scalar streams."""
    return np.random.default_rng(derive_seed(seed, *keys))


class BatchSimulation(Simulation):
    """Batch-synchronous drop-in for :class:`~repro.sim.engine.Simulation`.

    The constructor signature, ``step``/``run``/``schedule``/``spawn_node``
    and the observer protocol match the event engine; layers must be the
    batch implementations from this package (they consume the array
    state this engine maintains).
    """

    semantics_version = SEMANTICS_VERSION

    #: Whether the per-node canonical attributes currently mirror the
    #: array state (set by :meth:`sync_canonical`, cleared by anything
    #: that can mutate layer state), so read-only repeat syncs — e.g.
    #: a routing probe firing hundreds of routes per round — are O(1).
    _canonical_synced = False

    def __init__(
        self,
        space: Space,
        network: Network,
        layers: Sequence[Layer],
        seed: int = 0,
        observers: Sequence[Observer] = (),
    ) -> None:
        if not isinstance(space.dim, int):
            raise ConfigurationError(
                "the batch engine needs a fixed-dimension vector space "
                f"(got {type(space).__name__} with dim={space.dim!r}); "
                "use the event engine for object-coordinate spaces"
            )
        super().__init__(space, network, layers, seed=seed, observers=observers)
        # Replace the scalar substreams with vector generators under the
        # same derivation keys.
        self._rngs = {
            layer.name: generator_for(self.seed, "layer", layer.name)
            for layer in layers
        }
        self._engine_rng = generator_for(self.seed, "engine")

    def rng_for(self, layer_name: str) -> np.random.Generator:
        """The dedicated vector-RNG substream of a layer."""
        if layer_name not in self._rngs:
            self._rngs[layer_name] = generator_for(self.seed, "layer", layer_name)
        return self._rngs[layer_name]

    def step(self) -> int:
        self._canonical_synced = False
        return super().step()

    def spawn_node(self, pos, initial_point=None):
        self._canonical_synced = False
        return super().spawn_node(pos, initial_point)

    # -- batch helpers used by the layers ---------------------------------

    def init_all_nodes(self) -> None:
        """Vectorised network-wide initialisation: layers that provide
        ``init_network`` bootstrap all nodes in one shot; the rest fall
        back to per-node ``init_node``."""
        for layer in self.layers:
            init_network = getattr(layer, "init_network", None)
            if init_network is not None:
                init_network(self)
            else:
                for node in self.network.alive_nodes():
                    layer.init_node(self, node)

    def alive_act_rows(self) -> np.ndarray:
        """The sorted table rows of the alive nodes — the round-start
        pack every batch layer grooms and exchanges over.  Liveness only
        changes between rounds (scheduled events run before the first
        layer), so the pack is computed once per round and shared by all
        layers, cached per (round, membership) exactly like
        :meth:`detected_mask`.  The returned array is read-only."""
        key = (self.round, self.network.n_alive, self.network.n_total)
        # ``getattr``: simulations restored from older checkpoints may
        # lack the cache attributes.
        if getattr(self, "_act_rows_key", None) != key:
            rows = np.flatnonzero(self.network.table.alive_rows())
            rows.setflags(write=False)
            self._act_rows = rows
            self._act_rows_key = key
        return self._act_rows

    def detected_entry_mask(self, ids: np.ndarray) -> np.ndarray:
        """Vectorised failure-detector test over an id array of any
        shape; ``-1`` pads report not-detected (callers mask validity
        separately), released ids report detected."""
        flat = np.ascontiguousarray(ids).ravel()
        out = np.zeros(flat.shape, dtype=bool)
        valid = flat >= 0
        if valid.any():
            out[valid] = self.detected_mask(flat[valid])
        return out.reshape(ids.shape)

    def alive_entry_mask(self, ids: np.ndarray) -> np.ndarray:
        """Vectorised liveness test over an id array of any shape
        (``-1`` pads and released ids report dead)."""
        flat = np.ascontiguousarray(ids).ravel()
        out = np.zeros(flat.shape, dtype=bool)
        valid = flat >= 0
        if valid.any():
            out[valid] = self.network.alive_mask(flat[valid])
        return out.reshape(ids.shape)

    # -- canonical-state bridge -------------------------------------------

    def sync_canonical(self) -> None:
        """Write every layer's array state back onto the per-node
        attributes the event engine uses (``rps_view`` dicts,
        ``tman_view`` ViewBuffers, ...).

        Pure and idempotent (no RNG draws), so callers may sync at any
        time: :func:`repro.runtime.checkpoint.state_digest` syncs before
        fingerprinting, the engine converter before building an event
        simulation, and the routing layer before walking views.  Repeat
        syncs with no intervening step are skipped.
        """
        if self._canonical_synced:
            return
        for layer in self.layers:
            materialize = getattr(layer, "materialize", None)
            if materialize is not None:
                materialize(self)
        self._canonical_synced = True

    def adopt_canonical(self) -> None:
        """Read per-node view attributes into the layers' array state —
        the inverse of :meth:`sync_canonical`, used when an event-engine
        simulation is converted to this engine."""
        self._canonical_synced = False
        for layer in self.layers:
            adopt = getattr(layer, "adopt", None)
            if adopt is not None:
                adopt(self)
