"""Cross-engine conversion of live simulations.

A format-2 checkpoint freezes one engine's object graph; these
converters rebuild the *other* engine's layer stack around the same
network, protocol state, pending events, meter and observers.  What
carries over verbatim: membership and positions (the node table),
Polystyrene state (guests/ghosts/backups — canonical in both engines),
the message-meter history, the event schedule, scenario handles, and
the retention policy.  What does not: RNG substreams — the two engines
draw through incompatible generators, so fresh substreams are derived
from ``(seed, layer, "engine-switch", round)``.  A converted
continuation is therefore a valid, deterministic run of the target
engine from the snapshot state, not a bit-level extension of the source
trajectory (which could not exist across a semantics change).

Conversion refuses (``ConfigurationError``) when the snapshot cannot
run under the target engine: object-coordinate spaces (the batch engine
needs fixed-dimension vectors) or a layer stack the converter does not
recognise (custom test layers).
"""

from __future__ import annotations

from ...core.protocol import PolystyreneLayer, StaticHolderLayer
from ...errors import ConfigurationError
from ...gossip.rps import PeerSamplingLayer
from ...gossip.tman import TManLayer
from ...gossip.vicinity import VicinityLayer
from ..engine import Simulation
from .engine import BatchSimulation, generator_for
from .protocol import BatchPolystyrene
from .rps import BatchPeerSampling
from .topology import BatchTMan, BatchVicinity


def _carry_over(src, dst) -> None:
    dst.meter = src.meter
    dst.round = src.round
    dst._events = src._events
    dst.retention_rounds = src.retention_rounds
    handles = getattr(src, "scenario_handles", None)
    if handles is not None:
        dst.scenario_handles = handles


def to_batch(sim: Simulation) -> BatchSimulation:
    """An equivalent :class:`BatchSimulation` over the same state."""
    if isinstance(sim, BatchSimulation):
        return sim
    layers = list(sim.layers)
    if len(layers) != 3 or not isinstance(layers[0], PeerSamplingLayer):
        raise ConfigurationError(
            "unrecognised layer stack "
            f"{[type(layer).__name__ for layer in layers]}; the engine "
            "converter handles the scenario stack (rps + tman/vicinity + "
            "polystyrene/static) only"
        )
    rps_l, topo_l, top_l = layers
    rps = BatchPeerSampling(rps_l.view_size, rps_l.shuffle_length)
    rps.bootstrap_fallbacks = rps_l.bootstrap_fallbacks
    if isinstance(topo_l, VicinityLayer):
        topo: object = BatchVicinity(
            sim.space,
            rps,
            view_size=topo_l.view_size,
            message_size=topo_l.message_size,
            rps_candidates=topo_l.rps_candidates,
            bootstrap_size=topo_l.bootstrap_size,
        )
    elif isinstance(topo_l, TManLayer):
        topo = BatchTMan(
            sim.space,
            rps,
            message_size=topo_l.message_size,
            psi=topo_l.psi,
            view_cap=topo_l.view_cap,
            bootstrap_size=topo_l.bootstrap_size,
        )
    else:
        raise ConfigurationError(
            f"unrecognised topology layer {type(topo_l).__name__}"
        )
    if isinstance(top_l, PolystyreneLayer):
        top: object = BatchPolystyrene(sim.space, top_l.config, rps, topo)
    elif isinstance(top_l, StaticHolderLayer):
        top = StaticHolderLayer()
    else:
        raise ConfigurationError(
            f"unrecognised protocol layer {type(top_l).__name__}"
        )
    out = BatchSimulation(
        sim.space,
        sim.network,
        [rps, topo, top],
        seed=sim.seed,
        observers=sim.observers,
    )
    _carry_over(sim, out)
    out._rngs = {
        layer.name: generator_for(
            sim.seed, "layer", layer.name, "engine-switch", sim.round
        )
        for layer in out.layers
    }
    out._engine_rng = generator_for(
        sim.seed, "engine", "engine-switch", sim.round
    )
    out.adopt_canonical()  # covers every layer, BatchPolystyrene included
    return out


def to_event(sim: Simulation) -> Simulation:
    """An equivalent event-engine :class:`Simulation` over the same
    state (inverse of :func:`to_batch`)."""
    if not isinstance(sim, BatchSimulation):
        return sim
    layers = list(sim.layers)
    if len(layers) != 3 or not isinstance(layers[0], BatchPeerSampling):
        raise ConfigurationError(
            "unrecognised layer stack "
            f"{[type(layer).__name__ for layer in layers]}; the engine "
            "converter handles the scenario stack (rps + tman/vicinity + "
            "polystyrene/static) only"
        )
    sim.sync_canonical()
    rps_l, topo_l, top_l = layers
    rps = PeerSamplingLayer(rps_l.view_size, rps_l.shuffle_length)
    rps.bootstrap_fallbacks = rps_l.bootstrap_fallbacks
    if isinstance(topo_l, BatchVicinity):
        topo: object = VicinityLayer(
            sim.space,
            rps,
            view_size=topo_l.view_size,
            message_size=topo_l.message_size,
            rps_candidates=topo_l.rps_candidates,
            bootstrap_size=topo_l.bootstrap_size,
        )
    elif isinstance(topo_l, BatchTMan):
        topo = TManLayer(
            sim.space,
            rps,
            message_size=topo_l.message_size,
            psi=topo_l.psi,
            view_cap=topo_l.view_cap,
            bootstrap_size=topo_l.bootstrap_size,
        )
    else:
        raise ConfigurationError(
            f"unrecognised topology layer {type(topo_l).__name__}"
        )
    if isinstance(top_l, BatchPolystyrene):
        top: object = PolystyreneLayer(sim.space, top_l.config, rps, topo)
    elif isinstance(top_l, StaticHolderLayer):
        top = StaticHolderLayer()
    else:
        raise ConfigurationError(
            f"unrecognised protocol layer {type(top_l).__name__}"
        )
    out = Simulation(
        sim.space,
        sim.network,
        [rps, topo, top],
        seed=sim.seed,
        observers=sim.observers,
    )
    _carry_over(sim, out)
    from ..rng import spawn

    out._rngs = {
        layer.name: spawn(sim.seed, "layer", layer.name, "engine-switch", sim.round)
        for layer in out.layers
    }
    out._engine_rng = spawn(sim.seed, "engine", "engine-switch", sim.round)
    return out
