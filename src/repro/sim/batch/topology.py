"""Batch topology construction: whole-network T-Man and Vicinity.

View state lives in padded arrays indexed by node-table row: ``ids``
``(R, C)`` with ``-1`` empty slots, ``coords`` ``(R, C, d)`` holding the
*advertised* positions the descriptors carried (Vicinity adds ``ages``
``(R, C)``).  One ``step`` runs the round for every alive node from the
groomed round-start snapshot:

1. evict detectably-failed peers, re-bootstrap empty views from the
   peer-sampling layer;
2. select every node's gossip partner (T-Man: uniform among the ψ
   closest alive entries; Vicinity: the oldest entry);
3. build both exchange buffers of every pair — the ``m`` descriptors of
   ``view ∪ {self}`` (Vicinity: ``∪ fresh RPS candidates``) closest to
   the *other* side's position — from the snapshot;
4. merge all messages at once (fresher coordinates overwrite, own id
   and detected peers excluded) and truncate every touched view to the
   ``cap`` entries closest to the receiver's position, stored in ranked
   order.

Steps 2-3 are fused: the view gather that ranks entries for partner
selection is reused as the initiator's buffer pool, and both directions
of every exchange rank in a single stacked row-distance + top-k call.
Step 4 scatters the messages into one padded ``(receivers, width)``
block next to the receivers' existing views and runs the fused
:func:`~repro.sim.batch.kernels.merge_rank_truncate` — no flat
re-concatenation, no global sort.

Batch-vs-event semantic deltas: exchanges are snapshot-based rather
than sequential, a node reached by several messages merges them in one
ranked truncation (the event engine truncates only on overflow and
keeps insertion order below the cap), and ranking ties behind the
partner choice break by slot rather than by id.  The constructed
overlay is statistically the same.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ...obs import mem as obs_mem
from ...obs import metrics as obs_metrics
from ...spaces.base import Space
from ...types import NodeId
from ..arrays import ViewBuffer
from . import kernels


class _BatchTopologyBase:
    """Shared array plumbing of the two batch topology layers."""

    name = "tman"

    def __init__(
        self,
        space: Space,
        rps,
        capacity: int,
        bootstrap_size: int,
        with_ages: bool,
    ) -> None:
        self.space = space
        self.rps = rps
        self.capacity = capacity
        self.bootstrap_size = bootstrap_size
        self._coord_dim = space.dim
        self._ids = np.full((0, capacity), -1, dtype=np.int64)
        self._coords = np.zeros((0, capacity, space.dim), dtype=float)
        self._ages = np.zeros((0, capacity), dtype=np.int64) if with_ages else None

    # -- storage -----------------------------------------------------------

    def _ensure_rows(self, n: int) -> None:
        have = len(self._ids)
        if n <= have:
            return
        grow = max(n, have * 2, 8) - have
        self._ids = np.concatenate(
            [self._ids, np.full((grow, self.capacity), -1, dtype=np.int64)]
        )
        self._coords = np.concatenate(
            [
                self._coords,
                np.zeros((grow, self.capacity, self._coord_dim), dtype=float),
            ]
        )
        if self._ages is not None:
            self._ages = np.concatenate(
                [self._ages, np.zeros((grow, self.capacity), dtype=np.int64)]
            )
        if obs_mem.ENABLED:
            # int64 ids (+ int64 ages) and float64 coords per new slot.
            added = 8 * grow * self.capacity * (1 + self._coord_dim)
            if self._ages is not None:
                added += 8 * grow * self.capacity
            obs_mem.add("topology_views", f"{self.name}.views", added)

    def view_arrays(self):
        """The raw ``(ids, coords)`` state (rows indexed by table row)."""
        return self._ids, self._coords

    # -- bootstrap ---------------------------------------------------------

    def _bootstrap(self, sim, rows: np.ndarray) -> None:
        """(Re-)initialise the views of ``rows`` with random peers from
        the peer-sampling layer, recorded at their current positions."""
        if len(rows) == 0:
            return
        table = sim.network.table
        peers = self.rps.sample_rows(sim, rows, self.bootstrap_size)
        self._ids[rows] = -1
        self._coords[rows] = 0.0
        if self._ages is not None:
            self._ages[rows] = 0
        n_peers = peers.shape[1]
        if n_peers:
            valid = peers >= 0
            flat = peers[valid]
            sub_ids = np.full((len(rows), n_peers), -1, dtype=np.int64)
            sub_ids[valid] = flat
            sub_coords = np.zeros((len(rows), n_peers, self._coord_dim))
            sub_coords[valid] = table.gather(flat)
            self._ids[rows, :n_peers] = sub_ids
            self._coords[rows, :n_peers] = sub_coords

    def init_network(self, sim) -> None:
        self._ensure_rows(sim.network.table.n_rows)
        self._bootstrap(sim, sim.alive_act_rows())

    def init_node(self, sim, node) -> None:
        self._ensure_rows(node.row + 1)
        self._bootstrap(sim, np.asarray([node.row], dtype=np.int64))

    # -- queries -----------------------------------------------------------

    def neighbors_rows(self, sim, rows: np.ndarray, k: int) -> np.ndarray:
        """``(len(rows), k)`` closest *alive* view entries per row,
        closest first, ``-1`` padded — the vectorised form of
        ``neighbors`` feeding migration and the proximity metric."""
        self._ensure_rows(sim.network.table.n_rows)
        ids = self._ids[rows]
        coords = self._coords[rows]
        pos = sim.network.table.coords_rows()[rows]
        cand = sim.alive_entry_mask(ids)
        d = kernels.row_rank_sq(self.space, pos, coords)
        d[~cand] = np.inf
        pick = kernels.topk_smallest(d, k)
        rix = np.arange(len(rows))[:, None]
        kd = d[rix, pick]
        order = np.argsort(kd, axis=1, kind="stable")
        pick = pick[rix, order]
        kd = kd[rix, order]
        return np.where(np.isfinite(kd), ids[rix, pick], -1)

    def neighbors(self, sim, node, k: int) -> List[NodeId]:
        """Scalar interface kept for the backup placement heuristic and
        ad-hoc probes."""
        got = self.neighbors_rows(sim, np.asarray([node.row], dtype=np.int64), k)
        return [int(nid) for nid in got[0] if nid >= 0]

    def view_of(self, node) -> ViewBuffer:
        ids = self._ids[node.row]
        coords = self._coords[node.row]
        return ViewBuffer(
            self._coord_dim,
            (
                (int(nid), tuple(float(c) for c in coord))
                for nid, coord in zip(ids, coords)
                if nid >= 0
            ),
        )

    # -- shared step pieces ------------------------------------------------

    def _groom(self, sim, act: np.ndarray) -> None:
        """Evict detected peers and re-bootstrap empty views in place."""
        ids_act = self._ids[act]
        valid = ids_act >= 0
        evict = valid & sim.detected_entry_mask(ids_act)
        if evict.any():
            ids_act[evict] = -1
            self._ids[act] = ids_act
            if self._ages is not None:
                ages = self._ages[act]
                ages[evict] = 0
                self._ages[act] = ages
        if self._ages is not None:
            ages = self._ages[act]
            ages[ids_act >= 0] += 1
            self._ages[act] = ages
        empty = ~(ids_act >= 0).any(axis=1)
        if empty.any():
            self._bootstrap(sim, act[empty])

    def _exchange_buffers(
        self,
        sim,
        irow: np.ndarray,
        qrow: np.ndarray,
        pos: np.ndarray,
        m: int,
        view_i=None,
        extra_i=None,
        extra_q=None,
    ):
        """Both directions' ``m``-descriptor buffers of every exchange
        in one fused selection.

        Each side's pool is its view entries plus its own fresh
        descriptor (plus optional extra descriptors at current
        positions); the payload ranks the initiator's pool against the
        *partner's* position and the reply the partner's pool against
        the *initiator's* — stacked into a single row-distance + top-k
        call so the gathers and kernel launches happen once per layer
        step.  ``view_i`` reuses an already-gathered ``(ids, coords)``
        view block for the initiator side (the partner-selection rank
        already paid for it).
        """
        pool_i = self._pool_blocks(sim, irow, pos, view_i, extra_i)
        pool_q = self._pool_blocks(sim, qrow, pos, None, extra_q)
        pool_ids = np.concatenate([pool_i[0], pool_q[0]])
        pool_coords = np.concatenate([pool_i[1], pool_q[1]])
        target = np.concatenate([pos[qrow], pos[irow]])
        d = kernels.row_rank_sq(self.space, target, pool_coords)
        d[pool_ids < 0] = np.inf
        pick = kernels.topk_smallest(d, m)
        rix = np.arange(len(pool_ids))[:, None]
        kd = d[rix, pick]
        ids = np.where(np.isfinite(kd), pool_ids[rix, pick], -1)
        coords = pool_coords[rix, pick]
        E = len(irow)
        return (ids[:E], coords[:E]), (ids[E:], coords[E:])

    def _pool_blocks(self, sim, rows, pos, view=None, extra_ids=None):
        """One side's padded pool: view entries, own fresh descriptor,
        optional extra descriptors at current positions."""
        table = sim.network.table
        if view is None:
            view = (self._ids[rows], self._coords[rows])
        own = table._nid_of[rows]
        blocks_ids = [view[0], own[:, None]]
        blocks_coords = [view[1], pos[rows][:, None, :]]
        if extra_ids is not None and extra_ids.shape[1]:
            valid = extra_ids >= 0
            extra_coords = np.zeros(extra_ids.shape + (self._coord_dim,))
            if valid.any():
                extra_coords[valid] = table.gather(extra_ids[valid])
            blocks_ids.append(extra_ids)
            blocks_coords.append(extra_coords)
        return (
            np.concatenate(blocks_ids, axis=1),
            np.concatenate(blocks_coords, axis=1),
        )

    def _apply_merges(
        self,
        sim,
        recv_blocks,
        ids_blocks,
        coords_blocks,
    ) -> None:
        """Scatter the (receiver, message) blocks into one padded block
        next to the receivers' existing views and run the fused ranked
        merge-truncate.

        Column order per receiver — existing view entries first, then
        incoming entries in message-arrival order — reproduces the
        freshest-copy-wins dedup of the former flat pipeline exactly.
        """
        table = sim.network.table
        pos = table.coords_rows()
        C = self.capacity
        dim = self._coord_dim

        # Receivers: every row addressed by a message gets re-ranked,
        # even if all its incoming entries are filtered out below.
        rec = np.concatenate(recv_blocks)
        touched = np.zeros(len(self._ids), dtype=bool)
        touched[rec] = True
        recv_rows = np.flatnonzero(touched)
        uidx = np.zeros(len(self._ids), dtype=np.int64)
        uidx[recv_rows] = np.arange(len(recv_rows))

        inc_rows = np.concatenate(
            [np.repeat(rows, blk.shape[1]) for rows, blk in zip(recv_blocks, ids_blocks)]
        )
        inc_ids = np.concatenate([blk.ravel() for blk in ids_blocks])
        inc_coords = np.concatenate([blk.reshape(-1, dim) for blk in coords_blocks])
        keep = inc_ids >= 0
        keep &= inc_ids != table._nid_of[inc_rows]
        keep[keep] &= ~sim.detected_entry_mask(inc_ids[keep])
        inc_rows = inc_rows[keep]
        inc_ids = inc_ids[keep]
        inc_coords = inc_coords[keep]

        # Per-receiver incoming columns in flat arrival order: a stable
        # radix grouping by receiver keeps equal-receiver entries in
        # input order, and the run position is the column offset.
        order = kernels.radix_argsort(inc_rows)
        rows_s = inc_rows[order]
        poscol = kernels.cumcount(rows_s)
        max_in = int(poscol.max()) + 1 if len(poscol) else 0

        U = len(recv_rows)
        width = C + max_in
        ids_pad = np.full((U, width), -1, dtype=np.int64)
        coords_pad = np.zeros((U, width, dim))
        ids_pad[:, :C] = self._ids[recv_rows]
        coords_pad[:, :C] = self._coords[recv_rows]
        urow = uidx[rows_s]
        ids_pad[urow, C + poscol] = inc_ids[order]
        coords_pad[urow, C + poscol] = inc_coords[order]
        valid = ids_pad >= 0
        ages_pad = None
        if self._ages is not None:
            ages_pad = np.zeros((U, width), dtype=np.int64)
            # Incoming descriptors are freshly heard of: age 0.
            ages_pad[:, :C] = self._ages[recv_rows]
        if obs_mem.ENABLED:
            pad_bytes = ids_pad.nbytes + coords_pad.nbytes + valid.nbytes
            if ages_pad is not None:
                pad_bytes += ages_pad.nbytes
            obs_mem.scratch("topology_pads", f"{self.name}.merge_pad", pad_bytes)

        # Receiver-bucketed dispatch: a handful of flooded receivers
        # would otherwise pad *every* row to the global maximum, so rows
        # are grouped into incoming-count buckets and each bucket merges
        # at its own width.  A row occupies columns ``[0, C + count)``,
        # so narrowing is a pure column slice, and the kernel ranks each
        # row independently — results are identical to one full-width
        # call.
        cnt_in = (
            np.bincount(urow, minlength=U)
            if len(urow)
            else np.zeros(U, dtype=np.int64)
        )
        if U and max_in > 8:
            b1, b2 = max_in // 4, max_in // 2
            buckets = [
                (cnt_in <= b1, b1),
                ((cnt_in > b1) & (cnt_in <= b2), b2),
                (cnt_in > b2, max_in),
            ]
        else:
            buckets = [(np.ones(U, dtype=bool), max_in)]
        for sel, up in buckets:
            rows_g = np.flatnonzero(sel)
            if not len(rows_g):
                continue
            wg = C + up
            gr = recv_rows[rows_g]
            if ages_pad is not None:
                out_ids, out_coords, out_ages = kernels.merge_rank_truncate(
                    self.space,
                    pos[gr],
                    ids_pad[rows_g, :wg],
                    coords_pad[rows_g, :wg],
                    valid[rows_g, :wg],
                    C,
                    ages_pad[rows_g, :wg],
                )
                self._ages[gr] = out_ages
            else:
                out_ids, out_coords = kernels.merge_rank_truncate(
                    self.space,
                    pos[gr],
                    ids_pad[rows_g, :wg],
                    coords_pad[rows_g, :wg],
                    valid[rows_g, :wg],
                    C,
                )
            self._ids[gr] = out_ids
            self._coords[gr] = out_coords

    # -- canonical-state bridge ---------------------------------------------

    def materialize(self, sim) -> None:
        for node in sim.network.nodes.values():
            node.tman_view = self.view_of(node)
            if self._ages is not None:
                ids = self._ids[node.row]
                ages = self._ages[node.row]
                node.vicinity_age = {
                    int(i): int(a) for i, a in zip(ids, ages) if i >= 0
                }

    def adopt(self, sim) -> None:
        self._ensure_rows(sim.network.table.n_rows)
        self._ids[:] = -1
        self._coords[:] = 0.0
        if self._ages is not None:
            self._ages[:] = 0
        for node in sim.network.nodes.values():
            view = getattr(node, "tman_view", None)
            if view is None:
                continue
            ages = getattr(node, "vicinity_age", {})
            for j, (nid, coord) in enumerate(list(view.items())[: self.capacity]):
                self._ids[node.row, j] = nid
                self._coords[node.row, j] = coord
                if self._ages is not None:
                    self._ages[node.row, j] = ages.get(nid, 0)
            del node.tman_view
            if hasattr(node, "vicinity_age"):
                del node.vicinity_age


class BatchTMan(_BatchTopologyBase):
    """Whole-network T-Man gossip (batch form of
    :class:`repro.gossip.tman.TManLayer`)."""

    name = "tman"

    def __init__(
        self,
        space: Space,
        rps,
        message_size: int = 20,
        psi: int = 5,
        view_cap: int = 100,
        bootstrap_size: int = 10,
    ) -> None:
        if message_size < 1:
            raise ValueError("message_size must be >= 1")
        if psi < 1:
            raise ValueError("psi must be >= 1")
        if view_cap < 1:
            raise ValueError("view_cap must be >= 1")
        super().__init__(space, rps, view_cap, bootstrap_size, with_ages=False)
        self.message_size = message_size
        self.psi = psi
        self.view_cap = view_cap

    def step(self, sim) -> None:
        table = sim.network.table
        self._ensure_rows(table.n_rows)
        act = sim.alive_act_rows()
        if len(act) == 0:
            return
        gen = sim.rng_for(self.name)
        self._groom(sim, act)

        # Partner: uniform among the ψ closest alive view entries.  The
        # gathered view blocks feed the buffer pools below unchanged.
        pos = table.coords_rows()
        ids_act = self._ids[act]
        coords_act = self._coords[act]
        d = kernels.row_rank_sq(self.space, pos[act], coords_act)
        d[~sim.alive_entry_mask(ids_act)] = np.inf
        pick = kernels.topk_smallest(d, self.psi)
        kd = np.take_along_axis(d, pick, axis=1)
        finite = np.isfinite(kd)
        avail = finite.sum(axis=1)
        has = avail > 0
        order = np.argsort(kd, axis=1, kind="stable")
        sorted_cols = np.take_along_axis(pick, order, axis=1)
        u = gen.random(len(act))
        j = np.minimum((u * np.maximum(avail, 1)).astype(np.int64), np.maximum(avail - 1, 0))
        col = np.take_along_axis(sorted_cols, j[:, None], axis=1)[:, 0]
        partner = np.where(has, ids_act[np.arange(len(act)), col], -1)

        ex = np.flatnonzero(partner >= 0)
        if len(ex) == 0:
            return
        irow = act[ex]
        qrow = table.rows_of(partner[ex])

        # Symmetric exchange buffers from the snapshot.
        (pay_ids, pay_coords), (rep_ids, rep_coords) = self._exchange_buffers(
            sim,
            irow,
            qrow,
            pos,
            self.message_size,
            view_i=(ids_act[ex], coords_act[ex]),
        )
        n_desc = int((pay_ids >= 0).sum() + (rep_ids >= 0).sum())
        sim.meter.charge_descriptors(self.name, n_desc, self._coord_dim)
        obs_metrics.count("exchanges.tman", len(ex))

        self._apply_merges(
            sim,
            recv_blocks=[qrow, irow],
            ids_blocks=[pay_ids, rep_ids],
            coords_blocks=[pay_coords, rep_coords],
        )


class BatchVicinity(_BatchTopologyBase):
    """Whole-network Vicinity gossip (batch form of
    :class:`repro.gossip.vicinity.VicinityLayer`)."""

    name = "vicinity"

    def __init__(
        self,
        space: Space,
        rps,
        view_size: int = 20,
        message_size: int = 10,
        rps_candidates: int = 3,
        bootstrap_size: int = 10,
    ) -> None:
        if view_size < 1:
            raise ValueError("view_size must be >= 1")
        if message_size < 1:
            raise ValueError("message_size must be >= 1")
        if rps_candidates < 0:
            raise ValueError("rps_candidates cannot be negative")
        super().__init__(
            space, rps, view_size, min(bootstrap_size, view_size), with_ages=True
        )
        self.view_size = view_size
        self.message_size = message_size
        self.rps_candidates = rps_candidates

    def step(self, sim) -> None:
        table = sim.network.table
        self._ensure_rows(table.n_rows)
        act = sim.alive_act_rows()
        if len(act) == 0:
            return
        self._groom(sim, act)

        # Partner: the oldest entry (ties to the max id), alive or not —
        # a dead-but-undetected partner still answers, as in the event
        # engine's PeerSim-style model.
        ids_act = self._ids[act]
        valid = ids_act >= 0
        agekey = np.where(valid, self._ages[act], -1)
        oldest = agekey.max(axis=1)
        can = valid & (agekey == oldest[:, None])
        partner = np.max(np.where(can, ids_act, -1), axis=1)
        ex = np.flatnonzero(partner >= 0)
        if len(ex) == 0:
            return
        qrow_all = table.rows_of(partner[ex])
        known = qrow_all >= 0
        ex = ex[known]
        if len(ex) == 0:
            return
        irow = act[ex]
        qrow = qrow_all[known]
        pos = table.coords_rows()

        # Buffers fold in fresh RPS candidates on both sides (two
        # separate draws: the initiator draw precedes the partner draw
        # in the layer's RNG stream).
        extra_i = self.rps.sample_rows(sim, irow, self.rps_candidates)
        extra_q = self.rps.sample_rows(sim, qrow, self.rps_candidates)
        (pay_ids, pay_coords), (rep_ids, rep_coords) = self._exchange_buffers(
            sim,
            irow,
            qrow,
            pos,
            self.message_size,
            view_i=(ids_act[ex], self._coords[irow]),
            extra_i=extra_i,
            extra_q=extra_q,
        )
        n_desc = int((pay_ids >= 0).sum() + (rep_ids >= 0).sum())
        sim.meter.charge_descriptors(self.name, n_desc, self._coord_dim)

        self._apply_merges(
            sim,
            recv_blocks=[qrow, irow],
            ids_blocks=[pay_ids, rep_ids],
            coords_blocks=[pay_coords, rep_coords],
        )
