"""Selectable kernel backend registry for the batch engine.

The batch layers call every hot kernel through the thin dispatchers in
:mod:`repro.sim.batch.kernels`; those dispatchers consult the *active
backend* resolved here.  A backend is a named bundle of kernel
implementations sharing the exact signatures (and the bit-identical
output contract) of the reference NumPy kernels:

* ``numpy`` — the default: pure-NumPy receiver-bucketed kernels
  (radix grouping, padded per-bucket ranking).  Always available.
* ``numba`` — optional compiled variants of the bucketed dedup/truncate
  and row-distance kernels (:mod:`repro.sim.batch._numba`).  Lazily
  imported; when numba is not installed the resolution *silently* falls
  back to ``numpy`` — an optional accelerator must never change whether
  a scenario runs, and the equivalence suites guarantee it cannot
  change what the scenario computes.

Selection precedence: an explicit :func:`set_active` call (the
``ScenarioConfig.kernel_backend`` plumbing) > the
``REPRO_KERNEL_BACKEND`` environment variable > ``numpy``.  The choice
is process-global — kernels are free functions on the hot path and a
per-call lookup is all the indirection they can afford — and it is a
pure execution knob: golden digests are byte-identical across backends,
so results, config hashes and checkpoints never depend on it.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional

#: Environment variable naming the preferred backend.
ENV_VAR = "REPRO_KERNEL_BACKEND"

#: Names accepted by :func:`get_backend` / ``ScenarioConfig.kernel_backend``.
KNOWN_BACKENDS = ("numpy", "numba")


class KernelBackend:
    """A named bundle of kernel implementations.

    Unset attributes fall back to the reference NumPy implementation,
    so a backend only overrides the kernels it actually accelerates.
    """

    def __init__(self, name: str, **impls: Callable) -> None:
        self.name = name
        for key, fn in impls.items():
            setattr(self, key, fn)

    def __getattr__(self, key: str):
        # Fallback for kernels this backend does not override.  The
        # numpy backend defines every kernel, so this cannot recurse.
        if self.name == "numpy":
            raise AttributeError(key)
        return getattr(get_backend("numpy"), key)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"KernelBackend({self.name!r})"


_instances: Dict[str, KernelBackend] = {}
_active: Optional[KernelBackend] = None


def _build_numpy() -> KernelBackend:
    from . import kernels

    return KernelBackend(
        "numpy",
        dedup_rank_truncate=kernels.dedup_rank_truncate_numpy,
        dedup_priority_truncate=kernels.dedup_priority_truncate_numpy,
        merge_rank_truncate=kernels.merge_rank_truncate_numpy,
        row_rank_sq=kernels.row_rank_sq_numpy,
    )


def _build_numba() -> Optional[KernelBackend]:
    from . import _numba

    if not _numba.HAVE_NUMBA:
        return None
    return _numba.build_backend()


_FACTORIES = {"numpy": _build_numpy, "numba": _build_numba}


def available_backends() -> tuple:
    """Names that would resolve to themselves right now."""
    out = []
    for name in KNOWN_BACKENDS:
        if get_backend(name).name == name:
            out.append(name)
    return tuple(out)


def get_backend(name: Optional[str] = None) -> KernelBackend:
    """The backend for ``name`` (default: the environment's choice),
    falling back to ``numpy`` when the request cannot be satisfied."""
    if name is None:
        name = os.environ.get(ENV_VAR) or "numpy"
    if name not in _FACTORIES:
        name = "numpy"
    backend = _instances.get(name)
    if backend is None:
        backend = _FACTORIES[name]()
        if backend is None:  # optional dependency missing -> numpy
            backend = get_backend("numpy")
        _instances[name] = backend
    return backend


def active_backend() -> KernelBackend:
    """The backend the kernel dispatchers use (resolved lazily once;
    :func:`set_active` re-resolves)."""
    global _active
    if _active is None:
        _active = get_backend()
    return _active


def set_active(name: Optional[str]) -> KernelBackend:
    """Select the process-wide backend (``None`` re-reads the
    environment).  Returns the backend actually activated — requesting
    an unavailable backend activates ``numpy``."""
    global _active
    _active = get_backend(name)
    return _active


class use_backend:
    """Context manager scoping a backend choice (tests and benchmarks):

    >>> with use_backend("numba"):
    ...     run_cell()
    """

    def __init__(self, name: Optional[str]) -> None:
        self.name = name

    def __enter__(self) -> KernelBackend:
        global _active
        self._prev = _active
        return set_active(self.name)

    def __exit__(self, *exc) -> None:
        global _active
        _active = self._prev
