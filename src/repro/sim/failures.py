"""Failure injection: catastrophic correlated failures and churn.

The paper's headline scenario kills every node in one half of the torus
at once (a *spatially correlated* catastrophic failure).  This module
provides that event plus the other failure models used by tests and
ablations: arbitrary region predicates, uniform random mass failures
(Glacier's time-correlated model), and steady background churn.
"""

from __future__ import annotations

from typing import Callable, Iterable, List

from ..types import Coord, NodeId
from . import rng as rng_mod
from .engine import Event, Simulation

RegionPredicate = Callable[[Coord], bool]


def select_region(
    sim: Simulation, predicate: RegionPredicate, on_initial: bool = True
) -> List[NodeId]:
    """Alive nodes whose position satisfies ``predicate``.

    With ``on_initial=True`` the predicate is evaluated on each node's
    *original* position (its initial data point), which is what a
    rack/datacenter-correlated failure targets — where the node was
    placed, not where migration may have moved its advertised position.
    Nodes without an initial point (reinjected ones) are matched on
    their current position.
    """
    selected: List[NodeId] = []
    for node in sim.network.alive_nodes():
        coord = node.pos
        if on_initial and node.initial_point is not None:
            coord = node.initial_point.coord
        if predicate(coord):
            selected.append(node.nid)
    return selected


def region_failure(predicate: RegionPredicate, on_initial: bool = True) -> Event:
    """Event crashing every alive node inside a region simultaneously."""

    def event(sim: Simulation) -> None:
        sim.network.fail(select_region(sim, predicate, on_initial), sim.round)

    return event


def half_space_failure(axis: int, threshold: float, keep_upper: bool = True) -> Event:
    """Crash all nodes on one side of an axis-aligned cut.

    ``half_space_failure(0, width/2)`` reproduces the paper's
    catastrophic failure: all nodes whose original x-coordinate is below
    half the torus width crash at once (Fig. 1c / Sec. IV-A Phase 2).
    """

    def predicate(coord: Coord) -> bool:
        below = coord[axis] < threshold
        return below if keep_upper else not below

    return region_failure(predicate)


def random_failure(fraction: float, seed_key: str = "random-failure") -> Event:
    """Crash a uniformly random fraction of the alive nodes.

    The *time*-correlated (but not space-correlated) model — what
    replication alone protects against.  Deterministic given the
    simulation seed.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("failure fraction must be in [0, 1]")

    def event(sim: Simulation) -> None:
        rng = rng_mod.spawn(sim.seed, seed_key, sim.round)
        alive = sim.network.alive_ids()
        count = int(round(fraction * len(alive)))
        sim.network.fail(rng.sample(alive, count), sim.round)

    return event


def fail_nodes(nids: Iterable[NodeId]) -> Event:
    """Crash an explicit set of nodes."""
    frozen = list(nids)

    def event(sim: Simulation) -> None:
        sim.network.fail([nid for nid in frozen if sim.network.is_alive(nid)], sim.round)

    return event


class ChurnProcess:
    """Steady background churn: each round, each alive node crashes
    independently with probability ``rate``.

    Not part of the paper's evaluation (which isolates the catastrophic
    event) but required to show Polystyrene also tolerates ordinary
    churn.  Install via :meth:`events` or call :meth:`apply` manually.
    """

    def __init__(self, rate: float, seed_key: str = "churn") -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError("churn rate must be in [0, 1)")
        self.rate = float(rate)
        self.seed_key = seed_key

    def apply(self, sim: Simulation) -> List[NodeId]:
        rng = rng_mod.spawn(sim.seed, self.seed_key, sim.round)
        victims = [
            nid for nid in sim.network.alive_ids() if rng.random() < self.rate
        ]
        # Never kill the whole network: keep at least one survivor so the
        # simulation stays well-defined.
        if victims and len(victims) >= sim.network.n_alive:
            victims = victims[:-1]
        sim.network.fail(victims, sim.round)
        return victims

    def schedule(self, sim: Simulation, first_round: int, last_round: int) -> None:
        """Schedule the churn event on every round of a window."""
        for rnd in range(first_round, last_round + 1):
            sim.schedule(rnd, self.apply)
