"""Failure injection: catastrophic correlated failures and churn.

The paper's headline scenario kills every node in one half of the torus
at once (a *spatially correlated* catastrophic failure).  This module
provides that event plus the other failure models used by tests and
ablations: arbitrary region predicates, uniform random mass failures
(Glacier's time-correlated model), and steady background churn.

Events are small callable objects rather than closures so that a
simulation with pending scheduled events remains picklable — the
property :mod:`repro.runtime.checkpoint` relies on to save a paused run
to disk.  The factory functions (:func:`region_failure`,
:func:`half_space_failure`, ...) are the stable public API.
"""

from __future__ import annotations

from typing import Callable, Iterable, List

from ..types import Coord, NodeId
from . import rng as rng_mod
from .engine import Event, Simulation

RegionPredicate = Callable[[Coord], bool]


def select_region(
    sim: Simulation, predicate: RegionPredicate, on_initial: bool = True
) -> List[NodeId]:
    """Alive nodes whose position satisfies ``predicate``.

    With ``on_initial=True`` the predicate is evaluated on each node's
    *original* position (its initial data point), which is what a
    rack/datacenter-correlated failure targets — where the node was
    placed, not where migration may have moved its advertised position.
    Nodes without an initial point (reinjected ones) are matched on
    their current position.
    """
    selected: List[NodeId] = []
    for node in sim.network.alive_nodes():
        coord = node.pos
        if on_initial and node.initial_point is not None:
            coord = node.initial_point.coord
        if predicate(coord):
            selected.append(node.nid)
    return selected


class HalfSpacePredicate:
    """Picklable axis-aligned half-space membership test."""

    def __init__(self, axis: int, threshold: float, keep_upper: bool = True) -> None:
        self.axis = int(axis)
        self.threshold = float(threshold)
        self.keep_upper = bool(keep_upper)

    def __call__(self, coord: Coord) -> bool:
        below = coord[self.axis] < self.threshold
        return below if self.keep_upper else not below


class BallPredicate:
    """Picklable membership test for a metric ball (correlated-region
    failures: a rack, a datacenter, a geographic zone)."""

    def __init__(self, space, center: Coord, radius: float) -> None:
        self.space = space
        self.center = tuple(center)
        self.radius = float(radius)

    def __call__(self, coord: Coord) -> bool:
        return self.space.distance(self.center, coord) <= self.radius


class RegionFailure:
    """Event crashing every alive node inside a region simultaneously."""

    def __init__(self, predicate: RegionPredicate, on_initial: bool = True) -> None:
        self.predicate = predicate
        self.on_initial = bool(on_initial)

    def __call__(self, sim: Simulation) -> None:
        sim.network.fail(
            select_region(sim, self.predicate, self.on_initial), sim.round
        )


class RandomFailure:
    """Event crashing a uniformly random fraction of the alive nodes."""

    def __init__(self, fraction: float, seed_key: str = "random-failure") -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("failure fraction must be in [0, 1]")
        self.fraction = float(fraction)
        self.seed_key = seed_key

    def __call__(self, sim: Simulation) -> None:
        rng = rng_mod.spawn(sim.seed, self.seed_key, sim.round)
        alive = sim.network.alive_ids()
        count = int(round(self.fraction * len(alive)))
        sim.network.fail(rng.sample(alive, count), sim.round)


class NodeSetFailure:
    """Event crashing an explicit set of nodes."""

    def __init__(self, nids: Iterable[NodeId]) -> None:
        self.nids = list(nids)

    def __call__(self, sim: Simulation) -> None:
        sim.network.fail(
            [nid for nid in self.nids if sim.network.is_alive(nid)], sim.round
        )


def region_failure(predicate: RegionPredicate, on_initial: bool = True) -> Event:
    """Event crashing every alive node inside a region simultaneously.

    The event is picklable iff ``predicate`` is (use
    :class:`HalfSpacePredicate` / :class:`BallPredicate` for checkpoint-
    safe events; arbitrary lambdas work for in-memory runs only).
    """
    return RegionFailure(predicate, on_initial)


def half_space_failure(axis: int, threshold: float, keep_upper: bool = True) -> Event:
    """Crash all nodes on one side of an axis-aligned cut.

    ``half_space_failure(0, width/2)`` reproduces the paper's
    catastrophic failure: all nodes whose original x-coordinate is below
    half the torus width crash at once (Fig. 1c / Sec. IV-A Phase 2).
    """
    return RegionFailure(HalfSpacePredicate(axis, threshold, keep_upper))


def random_failure(fraction: float, seed_key: str = "random-failure") -> Event:
    """Crash a uniformly random fraction of the alive nodes.

    The *time*-correlated (but not space-correlated) model — what
    replication alone protects against.  Deterministic given the
    simulation seed.
    """
    return RandomFailure(fraction, seed_key)


def fail_nodes(nids: Iterable[NodeId]) -> Event:
    """Crash an explicit set of nodes."""
    return NodeSetFailure(nids)


class ChurnProcess:
    """Steady background churn: each round, each alive node crashes
    independently with probability ``rate``.

    Not part of the paper's evaluation (which isolates the catastrophic
    event) but required to show Polystyrene also tolerates ordinary
    churn.  Install via :meth:`events` or call :meth:`apply` manually.
    """

    def __init__(self, rate: float, seed_key: str = "churn") -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError("churn rate must be in [0, 1)")
        self.rate = float(rate)
        self.seed_key = seed_key

    def apply(self, sim: Simulation) -> List[NodeId]:
        rng = rng_mod.spawn(sim.seed, self.seed_key, sim.round)
        victims = [
            nid for nid in sim.network.alive_ids() if rng.random() < self.rate
        ]
        # Never kill the whole network: keep at least one survivor so the
        # simulation stays well-defined.
        if victims and len(victims) >= sim.network.n_alive:
            victims = victims[:-1]
        sim.network.fail(victims, sim.round)
        return victims

    def schedule(self, sim: Simulation, first_round: int, last_round: int) -> None:
        """Schedule the churn event on every round of a window."""
        for rnd in range(first_round, last_round + 1):
            sim.schedule(rnd, self.apply)
