"""Cycle-driven P2P simulator — the reproduction's PeerSim substitute.

Provides the network model (crash-stop nodes, pluggable failure
detectors), the round engine, scheduled failure/reinjection events, the
message-cost meter with the paper's accounting units, and observer
hooks for metrics collection.
"""

from .arrays import NodeTable, ViewBuffer
from .engine import Layer, Observer, Simulation
from .failures import (
    ChurnProcess,
    fail_nodes,
    half_space_failure,
    random_failure,
    region_failure,
    select_region,
)
from .network import (
    DelayedFailureDetector,
    FailureDetector,
    Network,
    PerfectFailureDetector,
    SimNode,
)
from .observers import AliveCountObserver, CallbackObserver, PositionSnapshotter
from .reinjection import reinjection, spawn_fresh_nodes
from .rng import derive_seed, sample_without, spawn
from .transport import MessageMeter

__all__ = [
    "Simulation",
    "Layer",
    "Observer",
    "Network",
    "SimNode",
    "NodeTable",
    "ViewBuffer",
    "FailureDetector",
    "PerfectFailureDetector",
    "DelayedFailureDetector",
    "MessageMeter",
    "ChurnProcess",
    "region_failure",
    "half_space_failure",
    "random_failure",
    "fail_nodes",
    "select_region",
    "reinjection",
    "spawn_fresh_nodes",
    "CallbackObserver",
    "PositionSnapshotter",
    "AliveCountObserver",
    "derive_seed",
    "spawn",
    "sample_without",
]
