"""Message-cost accounting.

The paper measures communication in abstract units: "a single coordinate
uses the same size as a node ID, and take this as our arbitrary
communication unit.  Sending a node descriptor (its ID, plus its
coordinates) counts as 3 units, while a set of 2D coordinates counts
as 2" (Sec. IV-A).  Peer-sampling traffic is excluded from the paper's
plots; we still meter it under its own layer name so the exclusion is a
reporting choice, not a blind spot.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional


class MessageMeter:
    """Accumulates cost units per protocol layer, snapshotted per round."""

    def __init__(self) -> None:
        self._current: Dict[str, float] = defaultdict(float)
        self._history: List[Dict[str, float]] = []

    # -- charging --------------------------------------------------------

    def charge(self, layer: str, units: float) -> None:
        """Add ``units`` of traffic attributed to ``layer`` this round."""
        if units < 0:
            raise ValueError("message cost cannot be negative")
        self._current[layer] += units

    def charge_descriptors(self, layer: str, count: int, coord_dim: int) -> None:
        """Charge ``count`` node descriptors (ID + coordinates each)."""
        self.charge(layer, count * (1 + coord_dim))

    def charge_points(self, layer: str, count: int, coord_dim: int) -> None:
        """Charge ``count`` bare data points (coordinates only)."""
        self.charge(layer, count * coord_dim)

    def charge_ids(self, layer: str, count: int) -> None:
        """Charge ``count`` bare identifiers (1 unit each)."""
        self.charge(layer, count)

    # -- reading ---------------------------------------------------------

    def round_cost(self, layer: Optional[str] = None) -> float:
        """Cost accumulated so far in the current round."""
        if layer is None:
            return float(sum(self._current.values()))
        return float(self._current.get(layer, 0.0))

    def end_round(self) -> Dict[str, float]:
        """Close the current round; return and archive its per-layer costs."""
        snapshot = dict(self._current)
        self._history.append(snapshot)
        self._current = defaultdict(float)
        return snapshot

    @property
    def history(self) -> List[Dict[str, float]]:
        """Per-round snapshots, oldest first."""
        return self._history

    def series(self, layer: Optional[str] = None, exclude: tuple = ()) -> List[float]:
        """Per-round total cost, for one layer or all layers minus
        ``exclude`` (e.g. ``exclude=("rps",)`` to mirror the paper)."""
        out: List[float] = []
        for snap in self._history:
            if layer is not None:
                out.append(snap.get(layer, 0.0))
            else:
                out.append(sum(v for k, v in snap.items() if k not in exclude))
        return out
