"""The simulated network: nodes, liveness, and failure detection.

We follow the paper's system model (Sec. III-A): message-passing nodes
over reliable channels, a crash-stop fault model (nodes fail by crashing
and never recover), and a possibly imperfect failure detector.  The
default detector is perfect (a crash is visible the same round); a
delayed detector models detection latency, which the paper's "reactive
ping / heartbeat" implementations would exhibit.

Node state lives in a struct-of-arrays :class:`~repro.sim.arrays.NodeTable`
(contiguous coordinate/liveness columns); :class:`SimNode` is a thin view
over one table row.  Scalar code reads ``node.pos`` exactly as before
(the canonical coordinate tuple), while batch consumers — ranking,
metrics, the failure-detector scans — read whole columns through
:meth:`Network.alive_mask` / :meth:`Network.positions_of` without
touching Python objects.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional

import numpy as np

from ..errors import DeadNodeError, UnknownNodeError
from ..types import Coord, DataPoint, NodeId
from .arrays import NodeTable


class SimNode:
    """A simulated physical node — a view over one :class:`NodeTable` row.

    Protocol layers attach their per-node state as attributes
    (``rps_view``, ``tman_view``, ``poly``), mirroring PeerSim's
    protocol-slot design without the indirection.

    ``pos`` is the node's *advertised* position — the value the topology
    construction layer sees.  For plain T-Man it is the node's fixed
    original position; under Polystyrene the projection step rewrites it
    every round.  Reads return the canonical coordinate object (the
    exact tuple last written); writes go through the table so the
    coordinate column stays in sync.

    A node can also be constructed *detached* (``SimNode(nid, pos)``)
    for unit tests and ad-hoc probes; it then owns its position without
    a backing table.
    """

    def __init__(
        self,
        nid: NodeId,
        pos: Coord = None,
        initial_point: Optional[DataPoint] = None,
        *,
        table: Optional[NodeTable] = None,
        row: int = -1,
    ) -> None:
        self.nid = nid
        self.initial_point = initial_point
        self._table = table
        if table is None:
            self._row = 0
            self._poscache = [pos]
        else:
            self._row = row
            self._poscache = table._pos_cache

    @property
    def pos(self) -> Coord:
        return self._poscache[self._row]

    @pos.setter
    def pos(self, value: Coord) -> None:
        if self._table is not None:
            self._table.set_coord(self._row, value)
        else:
            self._poscache[0] = value

    @property
    def row(self) -> int:
        """This node's row in the backing table (-1 when detached)."""
        return self._row if self._table is not None else -1

    @property
    def pos_array(self):
        """The node's position as an array row view when table-backed in
        vector mode (zero-conversion kernel origin), else the canonical
        coordinate object."""
        table = self._table
        if table is not None and table._coords is not None:
            return table._coords[self._row]
        return self._poscache[self._row]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimNode({self.nid}, pos={self.pos})"


class FailureDetector:
    """Base failure detector: answers "has ``nid``'s crash been
    detected as of round ``rnd``?"."""

    def detects(self, network: "Network", nid: NodeId, rnd: int) -> bool:
        raise NotImplementedError


class PerfectFailureDetector(FailureDetector):
    """Crashes are detected in the round they occur."""

    def detects(self, network: "Network", nid: NodeId, rnd: int) -> bool:
        return not network.is_alive(nid)


class DelayedFailureDetector(FailureDetector):
    """Crashes become visible ``delay`` rounds after they occur.

    Models heartbeat timeout latency; with ``delay=0`` it behaves like
    the perfect detector.  Never reports false positives (an alive node
    is never suspected), so it is an eventually-perfect detector.
    """

    def __init__(self, delay: int) -> None:
        if delay < 0:
            raise ValueError("detection delay cannot be negative")
        self.delay = int(delay)

    def detects(self, network: "Network", nid: NodeId, rnd: int) -> bool:
        death = network.death_round(nid)
        if death is None:
            return False
        return rnd >= death + self.delay


class Network:
    """Registry of all nodes, alive and crashed, over a NodeTable."""

    def __init__(self, detector: Optional[FailureDetector] = None) -> None:
        self.table = NodeTable()
        self.nodes: Dict[NodeId, SimNode] = {}
        self._alive: Dict[NodeId, None] = {}  # insertion-ordered set
        self._death_round: Dict[NodeId, int] = {}
        self.detector: FailureDetector = detector or PerfectFailureDetector()
        self._next_id: NodeId = 0
        self._alive_cache: Optional[List[NodeId]] = None
        self._dead: List[NodeId] = []

    # -- membership ------------------------------------------------------

    def add_node(
        self, pos: Coord, initial_point: Optional[DataPoint] = None
    ) -> SimNode:
        """Create and register a fresh alive node."""
        nid = self._next_id
        self._next_id += 1
        return self._register(nid, pos, initial_point)

    def _register(
        self, nid: NodeId, pos: Coord, initial_point: Optional[DataPoint]
    ) -> SimNode:
        row = self.table.add(nid, pos)
        node = SimNode(nid, initial_point=initial_point, table=self.table, row=row)
        self.nodes[nid] = node
        self._alive[nid] = None
        self._alive_cache = None
        return node

    def node(self, nid: NodeId) -> SimNode:
        try:
            return self.nodes[nid]
        except KeyError:
            raise UnknownNodeError(f"unknown node id {nid}") from None

    def alive_node(self, nid: NodeId) -> SimNode:
        node = self.node(nid)
        if nid not in self._alive:
            raise DeadNodeError(f"node {nid} has crashed")
        return node

    def remove_node(self, nid: NodeId) -> None:
        """Forget a crashed node entirely, recycling its table row.

        Long-churn runs with reinjection call this once no view can
        still reference the id; the freed row is reused by the next
        node added (free-list reuse), bounding table growth by the
        peak population instead of the total churn volume.
        """
        node = self.node(nid)
        if nid in self._alive:
            raise DeadNodeError(f"cannot remove alive node {nid}")
        self.table.release(nid)
        node._table = None
        node._poscache = [None]
        node._row = 0
        del self.nodes[nid]
        self._death_round.pop(nid, None)
        self._dead.remove(nid)

    def prune_dead(self, before_round: int) -> List[NodeId]:
        """Forget every crashed node whose death round is at most
        ``before_round`` (the retention policy's sweep).

        The death record is ordered by death round, so the sweep stops
        at the first survivor.  Safe once every recovery that could read
        a pruned id has fired: stale view entries of a pruned id resolve
        to "dead and long-detected" (no table row), never to another
        node — node ids are never reused.
        """
        pruned: List[NodeId] = []
        while self._dead and self._death_round[self._dead[0]] <= before_round:
            nid = self._dead[0]
            self.remove_node(nid)
            pruned.append(nid)
        return pruned

    # -- liveness --------------------------------------------------------

    def is_alive(self, nid: NodeId) -> bool:
        return nid in self._alive

    def detects_failed(self, nid: NodeId, rnd: int) -> bool:
        """Whether the failure detector reports ``nid`` as failed."""
        if nid not in self.nodes:
            raise UnknownNodeError(f"unknown node id {nid}")
        return self.detector.detects(self, nid, rnd)

    def death_round(self, nid: NodeId) -> Optional[int]:
        """Round in which ``nid`` crashed, or ``None`` if alive."""
        return self._death_round.get(nid)

    def fail(self, nids: Iterable[NodeId], rnd: int) -> List[NodeId]:
        """Crash the given nodes (crash-stop).  Idempotent; returns the
        ids actually transitioned this call."""
        failed: List[NodeId] = []
        for nid in nids:
            if nid not in self.nodes:
                raise UnknownNodeError(f"unknown node id {nid}")
            if nid in self._alive:
                del self._alive[nid]
                self._death_round[nid] = rnd
                self._dead.append(nid)
                self.table.mark_dead(self.nodes[nid]._row, rnd)
                failed.append(nid)
        if failed:
            self._alive_cache = None
        return failed

    # -- enumeration & sampling -----------------------------------------

    def alive_ids(self) -> List[NodeId]:
        """All alive node ids (cached between membership changes)."""
        if self._alive_cache is None:
            self._alive_cache = list(self._alive)
        return self._alive_cache

    def alive_view(self) -> Dict[NodeId, None]:
        """The live alive-set mapping, for O(1) ``nid in view`` checks
        on hot paths (do not mutate)."""
        return self._alive

    def dead_ids(self) -> List[NodeId]:
        """Ids of all crashed nodes, in order of death."""
        return self._dead

    def alive_nodes(self) -> List[SimNode]:
        return [self.nodes[nid] for nid in self.alive_ids()]

    @property
    def n_alive(self) -> int:
        return len(self._alive)

    @property
    def n_total(self) -> int:
        return len(self.nodes)

    # -- batch reads (the array hot path) --------------------------------

    def alive_mask(self, ids: np.ndarray) -> np.ndarray:
        """Vectorised liveness test for an array of node ids."""
        return self.table.alive_mask(ids)

    def positions_of(self, ids: np.ndarray):
        """Current *true* positions of the given node ids as a packed
        batch ((n, dim) array in vector mode, list otherwise)."""
        return self.table.gather(ids)

    def alive_positions(self):
        """Packed batch of all alive nodes' current positions, in
        :meth:`alive_ids` order."""
        ids = np.asarray(self.alive_ids(), dtype=np.int64)
        return self.table.gather(ids)

    def random_alive(
        self,
        rng: random.Random,
        k: int = 1,
        exclude: Iterable[NodeId] = (),
    ) -> List[NodeId]:
        """Sample up to ``k`` distinct alive node ids, avoiding
        ``exclude``.  Used as a bootstrap oracle (initial views) and as
        the last-resort fallback when a node's peer-sampling view holds
        no alive candidate."""
        excluded = set(exclude)
        pool = self.alive_ids()
        if excluded:
            pool = [nid for nid in pool if nid not in excluded]
        k = min(k, len(pool))
        return rng.sample(pool, k) if k > 0 else []
