"""The simulated network: nodes, liveness, and failure detection.

We follow the paper's system model (Sec. III-A): message-passing nodes
over reliable channels, a crash-stop fault model (nodes fail by crashing
and never recover), and a possibly imperfect failure detector.  The
default detector is perfect (a crash is visible the same round); a
delayed detector models detection latency, which the paper's "reactive
ping / heartbeat" implementations would exhibit.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional

from ..errors import DeadNodeError, UnknownNodeError
from ..types import Coord, DataPoint, NodeId


class SimNode:
    """A simulated physical node.

    Protocol layers attach their per-node state as attributes
    (``rps_view``, ``tman_view``, ``poly``), mirroring PeerSim's
    protocol-slot design without the indirection.

    ``pos`` is the node's *advertised* position — the value the topology
    construction layer sees.  For plain T-Man it is the node's fixed
    original position; under Polystyrene the projection step rewrites it
    every round.
    """

    def __init__(
        self,
        nid: NodeId,
        pos: Coord,
        initial_point: Optional[DataPoint] = None,
    ) -> None:
        self.nid = nid
        self.pos = pos
        #: The data point this node was born with (``None`` for nodes
        #: reinjected later with an initialised position but no point).
        self.initial_point = initial_point

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimNode({self.nid}, pos={self.pos})"


class FailureDetector:
    """Base failure detector: answers "has ``nid``'s crash been
    detected as of round ``rnd``?"."""

    def detects(self, network: "Network", nid: NodeId, rnd: int) -> bool:
        raise NotImplementedError


class PerfectFailureDetector(FailureDetector):
    """Crashes are detected in the round they occur."""

    def detects(self, network: "Network", nid: NodeId, rnd: int) -> bool:
        return not network.is_alive(nid)


class DelayedFailureDetector(FailureDetector):
    """Crashes become visible ``delay`` rounds after they occur.

    Models heartbeat timeout latency; with ``delay=0`` it behaves like
    the perfect detector.  Never reports false positives (an alive node
    is never suspected), so it is an eventually-perfect detector.
    """

    def __init__(self, delay: int) -> None:
        if delay < 0:
            raise ValueError("detection delay cannot be negative")
        self.delay = int(delay)

    def detects(self, network: "Network", nid: NodeId, rnd: int) -> bool:
        death = network.death_round(nid)
        if death is None:
            return False
        return rnd >= death + self.delay


class Network:
    """Registry of all nodes, alive and crashed."""

    def __init__(self, detector: Optional[FailureDetector] = None) -> None:
        self.nodes: Dict[NodeId, SimNode] = {}
        self._alive: Dict[NodeId, None] = {}  # insertion-ordered set
        self._death_round: Dict[NodeId, int] = {}
        self.detector: FailureDetector = detector or PerfectFailureDetector()
        self._next_id: NodeId = 0
        self._alive_cache: Optional[List[NodeId]] = None
        self._dead: List[NodeId] = []

    # -- membership ------------------------------------------------------

    def add_node(
        self, pos: Coord, initial_point: Optional[DataPoint] = None
    ) -> SimNode:
        """Create and register a fresh alive node."""
        nid = self._next_id
        self._next_id += 1
        node = SimNode(nid, pos, initial_point)
        self.nodes[nid] = node
        self._alive[nid] = None
        self._alive_cache = None
        return node

    def node(self, nid: NodeId) -> SimNode:
        try:
            return self.nodes[nid]
        except KeyError:
            raise UnknownNodeError(f"unknown node id {nid}") from None

    def alive_node(self, nid: NodeId) -> SimNode:
        node = self.node(nid)
        if nid not in self._alive:
            raise DeadNodeError(f"node {nid} has crashed")
        return node

    # -- liveness --------------------------------------------------------

    def is_alive(self, nid: NodeId) -> bool:
        return nid in self._alive

    def detects_failed(self, nid: NodeId, rnd: int) -> bool:
        """Whether the failure detector reports ``nid`` as failed."""
        if nid not in self.nodes:
            raise UnknownNodeError(f"unknown node id {nid}")
        return self.detector.detects(self, nid, rnd)

    def death_round(self, nid: NodeId) -> Optional[int]:
        """Round in which ``nid`` crashed, or ``None`` if alive."""
        return self._death_round.get(nid)

    def fail(self, nids: Iterable[NodeId], rnd: int) -> List[NodeId]:
        """Crash the given nodes (crash-stop).  Idempotent; returns the
        ids actually transitioned this call."""
        failed: List[NodeId] = []
        for nid in nids:
            if nid not in self.nodes:
                raise UnknownNodeError(f"unknown node id {nid}")
            if nid in self._alive:
                del self._alive[nid]
                self._death_round[nid] = rnd
                self._dead.append(nid)
                failed.append(nid)
        if failed:
            self._alive_cache = None
        return failed

    # -- enumeration & sampling -----------------------------------------

    def alive_ids(self) -> List[NodeId]:
        """All alive node ids (cached between membership changes)."""
        if self._alive_cache is None:
            self._alive_cache = list(self._alive)
        return self._alive_cache

    def alive_view(self) -> Dict[NodeId, None]:
        """The live alive-set mapping, for O(1) ``nid in view`` checks
        on hot paths (do not mutate)."""
        return self._alive

    def dead_ids(self) -> List[NodeId]:
        """Ids of all crashed nodes, in order of death."""
        return self._dead

    def alive_nodes(self) -> List[SimNode]:
        return [self.nodes[nid] for nid in self.alive_ids()]

    @property
    def n_alive(self) -> int:
        return len(self._alive)

    @property
    def n_total(self) -> int:
        return len(self.nodes)

    def random_alive(
        self,
        rng: random.Random,
        k: int = 1,
        exclude: Iterable[NodeId] = (),
    ) -> List[NodeId]:
        """Sample up to ``k`` distinct alive node ids, avoiding
        ``exclude``.  Used as a bootstrap oracle (initial views) and as
        the last-resort fallback when a node's peer-sampling view holds
        no alive candidate."""
        excluded = set(exclude)
        pool = self.alive_ids()
        if excluded:
            pool = [nid for nid in pool if nid not in excluded]
        k = min(k, len(pool))
        return rng.sample(pool, k) if k > 0 else []
